//! Workspace umbrella crate: re-exports the S4 reproduction's crates for
//! the workspace-level integration tests and examples.
//!
//! The system itself lives in the `crates/` members; see the README for
//! the architecture overview and DESIGN.md for the paper-to-module map.

pub use s4_baseline as baseline;
pub use s4_capacity as capacity;
pub use s4_clock as clock;
pub use s4_core as core;
pub use s4_delta as delta;
pub use s4_fs as fs;
pub use s4_journal as journal;
pub use s4_lfs as lfs;
pub use s4_obs as obs;
pub use s4_simdisk as simdisk;
pub use s4_workloads as workloads;
