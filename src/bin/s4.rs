//! `s4` — a command-line front end for S4 disk images.
//!
//! The §3.6 "version and administration tools" as a CLI: time-enhanced
//! `ls` and `cat`, restoration from the history pool, and audit-log
//! inspection, all against a persistent disk-image file.
//!
//! ```console
//! $ s4 format image.s4 256          # 256 MB self-securing image
//! $ s4 put image.s4 docs/plan.txt < plan.txt
//! $ s4 ls image.s4 docs
//! $ s4 cat image.s4 docs/plan.txt
//! $ s4 rm image.s4 docs/plan.txt
//! $ s4 ls image.s4 docs --at 12.5  # the directory 12.5 sim-seconds in
//! $ s4 cat image.s4 docs/plan.txt --at 12.5
//! $ s4 restore image.s4 docs/plan.txt 12.5
//! $ s4 audit image.s4
//! ```
//!
//! Simulated time inside the image advances with activity and persists
//! across invocations; `--at <secs>` addresses that timeline.

use std::io::Read as _;
use std::process::ExitCode;
use std::sync::Arc;

use s4_clock::{NetworkModel, SimClock, SimDuration, SimTime};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, UserId};
use s4_fs::tools;
use s4_fs::{FileKind, FileServer, LoopbackTransport, S4FileServer, S4FsConfig};
use s4_simdisk::FileDisk;

const PARTITION: &str = "root";

fn usage() -> ExitCode {
    eprintln!(
        "usage: s4 <command> <image> [args]\n\
         commands:\n\
           format <image> <megabytes>\n\
           put <image> <path>            (content from stdin)\n\
           cat <image> <path> [--at <secs>]\n\
           ls <image> [path] [--at <secs>]\n\
           rm <image> <path>\n\
           mkdir <image> <path>\n\
           restore <image> <path> <secs>\n\
           pin <image> <path> <secs>     (landmark: survives the window)\n\
           pins <image> <path>\n\
           audit <image>\n\
           stats <image> [<image>...] [--json]\n\
                                         (metrics + flight-recorder tail; several\n\
                                          images = array mode, per-shard + aggregate)\n\
           reshard <image>... --targets <new-image>... [--slot <n>] [--mirrors <m>]\n\
                                         (split an array's residue classes onto fresh\n\
                                          images: all slots without --slot, one with;\n\
                                          target images are created, one per mirror)\n\
           txn <image> [<image>...] [--mirrors <m>]\n\
                                         (cross-shard transaction status; mounting\n\
                                          resolves any in-doubt transactions)\n\
           trace <image> [<image>...] [<trace-id-hex>] [--slowest <k>] [--mirrors <m>]\n\
                                         (cross-shard causal trace assembly from the\n\
                                          member flight recorders: one id renders its\n\
                                          tree, --slowest the k worst, neither lists all)\n\
           detect <image>                (run the intrusion detectors over the audit log)\n\
           plan <image> <secs> --client <id> [--user <id>]   (recovery plan for intrusion at <secs>)\n\
           revert <image> <secs> --client <id> [--user <id>] (plan and execute the recovery)\n\
           now <image>"
    );
    ExitCode::from(2)
}

/// Collects `--client <id>` / `--user <id>` flags into a suspect set.
fn parse_suspects(args: &[String]) -> Result<s4_detect::Suspects, String> {
    let mut suspects = s4_detect::Suspects::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let (set, what) = match a.as_str() {
            "--client" => (&mut suspects.clients, "client"),
            "--user" => (&mut suspects.users, "user"),
            _ => continue,
        };
        let id: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("--{what} needs a numeric id"))?;
        set.insert(id);
    }
    if suspects.clients.is_empty() && suspects.users.is_empty() {
        return Err("name at least one suspect with --client <id> or --user <id>".into());
    }
    Ok(suspects)
}

fn parse_at(args: &[String]) -> Option<SimTime> {
    let idx = args.iter().position(|a| a == "--at")?;
    let secs: f64 = args.get(idx + 1)?.parse().ok()?;
    Some(SimTime::from_micros((secs * 1e6) as u64))
}

fn open_fs(image: &str) -> Result<S4FileServer<LoopbackTransport<FileDisk>>, String> {
    let dev = FileDisk::open(image).map_err(|e| format!("open {image}: {e}"))?;
    let clock = SimClock::new();
    let drive = S4Drive::mount(dev, DriveConfig::default(), clock)
        .map_err(|e| format!("mount {image}: {e}"))?;
    // Each CLI invocation is a little session; advance time so versions
    // created by successive invocations are distinguishable.
    drive.clock().advance(SimDuration::from_millis(250));
    let drive = Arc::new(drive);
    S4FileServer::mount(
        LoopbackTransport::new(drive, NetworkModel::free()),
        RequestContext::user(UserId(1), ClientId(1)),
        PARTITION,
        S4FsConfig::default(),
    )
    .map_err(|e| format!("mount fs: {e}"))
}

fn close(fs: S4FileServer<LoopbackTransport<FileDisk>>) -> Result<(), String> {
    let drive = Arc::into_inner(fs.into_transport().into_drive()).expect("sole drive handle");
    drive.unmount().map_err(|e| format!("unmount: {e}"))?;
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, image) = match (args.first(), args.get(1)) {
        (Some(c), Some(i)) => (c.as_str(), i.as_str()),
        _ => return Err("missing arguments".into()),
    };
    match cmd {
        "format" => {
            let mb: u64 = args
                .get(2)
                .and_then(|s| s.parse().ok())
                .ok_or("format: need size in MB")?;
            let dev = FileDisk::create(image, mb * 2048).map_err(|e| e.to_string())?;
            let clock = SimClock::new();
            clock.advance(SimDuration::from_secs(1));
            let drive = Arc::new(
                S4Drive::format(dev, DriveConfig::default(), clock).map_err(|e| e.to_string())?,
            );
            // Create the exported root directory.
            let fs = S4FileServer::mount(
                LoopbackTransport::new(drive, NetworkModel::free()),
                RequestContext::user(UserId(1), ClientId(1)),
                PARTITION,
                S4FsConfig::default(),
            )
            .map_err(|e| e.to_string())?;
            close(fs)?;
            println!("formatted {image}: {mb} MB self-securing image");
        }
        "put" => {
            let path = args.get(2).ok_or("put: need a path")?;
            let mut data = Vec::new();
            std::io::stdin()
                .read_to_end(&mut data)
                .map_err(|e| e.to_string())?;
            let fs = open_fs(image)?;
            let (dir_path, name) = match path.rfind('/') {
                Some(i) => (&path[..i], &path[i + 1..]),
                None => ("", path.as_str()),
            };
            let dir = fs.resolve_path(dir_path).map_err(|e| e.to_string())?;
            let h = match fs.lookup(dir, name) {
                Ok(h) => h,
                Err(_) => fs.create(dir, name).map_err(|e| e.to_string())?,
            };
            fs.truncate(h, 0).map_err(|e| e.to_string())?;
            if !data.is_empty() {
                fs.write(h, 0, &data).map_err(|e| e.to_string())?;
            }
            println!("wrote {} bytes to {path} at {}", data.len(), fs.now());
            close(fs)?;
        }
        "cat" => {
            let path = args.get(2).ok_or("cat: need a path")?;
            let fs = open_fs(image)?;
            let data = match parse_at(&args) {
                Some(t) => tools::read_file_at(&fs, path, t).map_err(|e| e.to_string())?,
                None => {
                    let h = fs.resolve_path(path).map_err(|e| e.to_string())?;
                    let size = fs.getattr(h).map_err(|e| e.to_string())?.size;
                    fs.read(h, 0, size).map_err(|e| e.to_string())?
                }
            };
            use std::io::Write as _;
            std::io::stdout()
                .write_all(&data)
                .map_err(|e| e.to_string())?;
            close(fs)?;
        }
        "ls" => {
            let default = String::new();
            let path = args
                .get(2)
                .filter(|a| !a.starts_with("--"))
                .unwrap_or(&default);
            let fs = open_fs(image)?;
            let rows = match parse_at(&args) {
                Some(t) => tools::ls_at(&fs, path, t).map_err(|e| e.to_string())?,
                None => {
                    let dir = fs.resolve_path(path).map_err(|e| e.to_string())?;
                    fs.readdir(dir)
                        .map_err(|e| e.to_string())?
                        .into_iter()
                        .map(|(n, h, k)| {
                            let size = fs.getattr(h).map(|a| a.size).unwrap_or(0);
                            (n, k, size)
                        })
                        .collect()
                }
            };
            for (name, kind, size) in rows {
                let k = match kind {
                    FileKind::Dir => "d",
                    FileKind::Symlink => "l",
                    FileKind::File => "-",
                };
                println!("{k} {size:>10} {name}");
            }
            close(fs)?;
        }
        "rm" => {
            let path = args.get(2).ok_or("rm: need a path")?;
            let fs = open_fs(image)?;
            let (dir_path, name) = match path.rfind('/') {
                Some(i) => (&path[..i], &path[i + 1..]),
                None => ("", path.as_str()),
            };
            let dir = fs.resolve_path(dir_path).map_err(|e| e.to_string())?;
            fs.remove(dir, name).map_err(|e| e.to_string())?;
            println!("removed {path} (recoverable until the window expires)");
            close(fs)?;
        }
        "mkdir" => {
            let path = args.get(2).ok_or("mkdir: need a path")?;
            let fs = open_fs(image)?;
            let (dir_path, name) = match path.rfind('/') {
                Some(i) => (&path[..i], &path[i + 1..]),
                None => ("", path.as_str()),
            };
            let dir = fs.resolve_path(dir_path).map_err(|e| e.to_string())?;
            fs.mkdir(dir, name).map_err(|e| e.to_string())?;
            close(fs)?;
        }
        "restore" => {
            let path = args.get(2).ok_or("restore: need a path")?;
            let secs: f64 = args
                .get(3)
                .and_then(|s| s.parse().ok())
                .ok_or("restore: need a time in seconds")?;
            let t = SimTime::from_micros((secs * 1e6) as u64);
            let fs = open_fs(image)?;
            tools::restore_file(&fs, path, t).map_err(|e| e.to_string())?;
            println!("restored {path} to its contents at {t}");
            close(fs)?;
        }
        "pin" => {
            let path = args.get(2).ok_or("pin: need a path")?;
            let secs: f64 = args
                .get(3)
                .and_then(|s| s.parse().ok())
                .ok_or("pin: need a time in seconds")?;
            let t = SimTime::from_micros((secs * 1e6) as u64);
            let fs = open_fs(image)?;
            let h = fs.resolve_path_at(path, t).map_err(|e| e.to_string())?;
            {
                let drive = fs.transport().drive();
                drive
                    .op_mark_landmark(fs.context(), s4_core::ObjectId(h), t)
                    .map_err(|e| e.to_string())?;
            }
            println!("pinned {path} @ {t} as a landmark (survives the detection window)");
            close(fs)?;
        }
        "pins" => {
            let path = args.get(2).ok_or("pins: need a path")?;
            let fs = open_fs(image)?;
            let h = fs.resolve_path(path).map_err(|e| e.to_string())?;
            let rows = {
                let drive = fs.transport().drive();
                drive
                    .landmarks(fs.context(), s4_core::ObjectId(h))
                    .map_err(|e| e.to_string())?
            };
            for (t, size) in rows {
                println!("{t}  {size} bytes");
            }
            close(fs)?;
        }
        "audit" => {
            let fs = open_fs(image)?;
            let records = {
                let drive = fs.transport().drive();
                let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);
                drive
                    .read_audit_records(&admin)
                    .map_err(|e| e.to_string())?
            };
            for r in &records {
                println!(
                    "{:>14} user={:<4} client={:<4} {:<14} {} ok={}",
                    r.time.to_string(),
                    r.user.0,
                    r.client.0,
                    format!("{:?}", r.op),
                    r.object,
                    r.ok
                );
            }
            eprintln!("{} records", records.len());
            close(fs)?;
        }
        "stats" if args.iter().skip(2).any(|a| !a.starts_with("--")) => {
            // Array mode: every image is one shard; metrics aggregate
            // across the member drives and the flight-recorder tail is
            // the time-merged view.
            let devices = args[1..]
                .iter()
                .filter(|a| !a.starts_with("--"))
                .map(|p| FileDisk::open(p).map_err(|e| format!("open {p}: {e}")))
                .collect::<Result<Vec<_>, String>>()?;
            let (array, _reports) = s4_array::S4Array::mount(
                devices,
                DriveConfig::default(),
                s4_array::ArrayConfig::default(),
                SimClock::new(),
            )
            .map_err(|e| format!("mount array: {e}"))?;
            if args.iter().any(|a| a == "--json") {
                println!("{}", array.metrics_json());
            } else {
                print!("{}", array.metrics_text());
                let admin = RequestContext::admin(
                    ClientId(0),
                    array.shard_drive(0).config().admin_token,
                );
                let log = array.flight_log_merged(&admin).map_err(|e| e.to_string())?;
                eprintln!(
                    "flight recorder: {} persisted traces across {} shards",
                    log.len(),
                    array.shard_count()
                );
                for e in log.iter().rev().take(10).rev() {
                    eprintln!(
                        "  shard={} #{:<6} {:>14} user={:<4} client={:<4} {:<14} {} ok={}",
                        e.shard,
                        e.record.seq,
                        e.record.time.to_string(),
                        e.record.user.0,
                        e.record.client.0,
                        format!("{:?}", e.record.op),
                        e.record.object,
                        e.record.ok
                    );
                }
            }
            array.unmount().map_err(|e| format!("unmount array: {e}"))?;
        }
        "reshard" => {
            let flag = |name: &str| {
                args.iter()
                    .position(|a| a == name)
                    .and_then(|i| args.get(i + 1))
                    .and_then(|s| s.parse::<usize>().ok())
            };
            let mirrors = flag("--mirrors").unwrap_or(1);
            let slot = flag("--slot");
            let tpos = args
                .iter()
                .position(|a| a == "--targets")
                .ok_or("reshard: need --targets <new-image>...")?;
            let sources: Vec<&String> =
                args[1..tpos].iter().filter(|a| !a.starts_with("--")).collect();
            let target_paths: Vec<&String> = args[tpos + 1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            let devices = sources
                .iter()
                .map(|p| FileDisk::open(p).map_err(|e| format!("open {p}: {e}")))
                .collect::<Result<Vec<_>, String>>()?;
            let sectors = devices
                .first()
                .map(s4_simdisk::BlockDev::num_sectors)
                .ok_or("reshard: need at least one source image")?;
            let (array, _reports) = s4_array::S4Array::mount(
                devices,
                DriveConfig::default(),
                s4_array::ArrayConfig {
                    mirrors,
                    ..s4_array::ArrayConfig::default()
                },
                SimClock::new(),
            )
            .map_err(|e| format!("mount array: {e}"))?;
            let targets = target_paths
                .iter()
                .map(|p| FileDisk::create(p, sectors).map_err(|e| format!("create {p}: {e}")))
                .collect::<Result<Vec<_>, String>>()?;
            let cfg = s4_reshard::ReshardConfig::default();
            let reports = match slot {
                Some(s) => vec![s4_reshard::split_shard(&array, s, targets, cfg)
                    .map_err(|e| format!("reshard: {e}"))?],
                None => {
                    let base = array.epoch().base;
                    if targets.len() != base * mirrors {
                        return Err(format!(
                            "reshard: doubling {base} shards x {mirrors} mirrors needs {} \
                             target images, got {}",
                            base * mirrors,
                            targets.len()
                        ));
                    }
                    let mut groups = Vec::with_capacity(base);
                    let mut it = targets.into_iter();
                    for _ in 0..base {
                        groups.push(it.by_ref().take(mirrors).collect());
                    }
                    s4_reshard::double_array(&array, groups, cfg)
                        .map_err(|e| format!("reshard: {e}"))?
                }
            };
            for r in &reports {
                println!(
                    "slot {} -> {}: snapshot={} catchup={} (rounds={}) final_delta={} \
                     cleaned={} pause={}us",
                    r.source_slot,
                    r.target_slot,
                    r.snapshot_objects,
                    r.catchup_objects,
                    r.catchup_rounds,
                    r.final_delta_objects,
                    r.cleaned_objects,
                    r.flip.pause.as_micros()
                );
            }
            println!("{}", s4_reshard::status_text(&array));
            array.unmount().map_err(|e| format!("unmount array: {e}"))?;
        }
        "txn" => {
            let flag = |name: &str| {
                args.iter()
                    .position(|a| a == name)
                    .and_then(|i| args.get(i + 1))
                    .and_then(|s| s.parse::<usize>().ok())
            };
            let mirrors = flag("--mirrors").unwrap_or(1);
            let devices = args[1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .map(|p| FileDisk::open(p).map_err(|e| format!("open {p}: {e}")))
                .collect::<Result<Vec<_>, String>>()?;
            if devices.is_empty() {
                return Err("txn: need at least one image".into());
            }
            let (array, _reports) = s4_array::S4Array::mount(
                devices,
                DriveConfig::default(),
                s4_array::ArrayConfig {
                    mirrors,
                    ..s4_array::ArrayConfig::default()
                },
                SimClock::new(),
            )
            .map_err(|e| format!("mount array: {e}"))?;
            println!("{}", array.txn_status_text());
            array.unmount().map_err(|e| format!("unmount array: {e}"))?;
        }
        "trace" => {
            let flag = |name: &str| {
                args.iter()
                    .position(|a| a == name)
                    .and_then(|i| args.get(i + 1))
                    .and_then(|s| s.parse::<usize>().ok())
            };
            let mirrors = flag("--mirrors").unwrap_or(1);
            let slowest = flag("--slowest");
            let parse_id = |s: &str| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok();
            let mut positional: Vec<&String> = {
                let mut out = Vec::new();
                let mut skip = false;
                for a in &args[1..] {
                    if skip {
                        skip = false;
                    } else if a == "--mirrors" || a == "--slowest" {
                        skip = true;
                    } else if !a.starts_with("--") {
                        out.push(a);
                    }
                }
                out
            };
            // The last positional is the trace id when it parses as hex
            // and is not an image on disk; everything before it is a
            // shard image.
            let mut wanted = None;
            if let Some(last) = positional.last() {
                if !std::path::Path::new(last.as_str()).exists() {
                    if let Some(id) = parse_id(last) {
                        wanted = Some(id);
                        positional.pop();
                    }
                }
            }
            let devices = positional
                .iter()
                .map(|p| FileDisk::open(p).map_err(|e| format!("open {p}: {e}")))
                .collect::<Result<Vec<_>, String>>()?;
            if devices.is_empty() {
                return Err("trace: need at least one image".into());
            }
            let (array, _reports) = s4_array::S4Array::mount(
                devices,
                DriveConfig::default(),
                s4_array::ArrayConfig {
                    mirrors,
                    ..s4_array::ArrayConfig::default()
                },
                SimClock::new(),
            )
            .map_err(|e| format!("mount array: {e}"))?;
            let admin =
                RequestContext::admin(ClientId(0), array.shard_drive(0).config().admin_token);
            let trees = array
                .assemble_all_traces(&admin)
                .map_err(|e| format!("trace: {e}"))?;
            match (wanted, slowest) {
                (Some(id), _) => match trees.iter().find(|t| t.trace_id == id) {
                    Some(t) => print!("{}", s4_detect::render_trace_tree(t)),
                    None => return Err(format!("trace: no spans recorded for id {id:#x}")),
                },
                (None, Some(k)) => {
                    for t in s4_detect::slowest_traces(&trees, k) {
                        print!("{}", s4_detect::render_trace_tree(t));
                    }
                }
                (None, None) => {
                    for t in &trees {
                        println!(
                            "{:#018x} origin shard {}: {} shard(s), {} member stream(s), \
                             {} span(s), max rpc {}us",
                            t.trace_id,
                            t.origin,
                            t.shards().len(),
                            t.members().len(),
                            t.spans.len(),
                            t.max_rpc_us()
                        );
                    }
                    eprintln!(
                        "{} traces assembled from {} shards",
                        trees.len(),
                        array.shard_count()
                    );
                }
            }
            array.unmount().map_err(|e| format!("unmount array: {e}"))?;
        }
        "stats" => {
            let fs = open_fs(image)?;
            {
                let drive = fs.transport().drive();
                if args.iter().any(|a| a == "--json") {
                    println!("{}", drive.metrics_json());
                } else {
                    // Prometheus-style exposition on stdout; the
                    // flight-recorder tail as human context on stderr.
                    print!("{}", drive.metrics_text());
                    let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);
                    let log = s4_detect::flight_log(drive, &admin).map_err(|e| e.to_string())?;
                    eprintln!("flight recorder: {} persisted traces", log.len());
                    for e in log.iter().rev().take(10).rev() {
                        eprintln!(
                            "  #{:<6} {:>14} user={:<4} client={:<4} {:<14} {} ok={} \
                             rpc={}us journal={}us lfs={}us disk={}us",
                            e.seq,
                            e.time.to_string(),
                            e.user.0,
                            e.client.0,
                            format!("{:?}", e.op),
                            e.object,
                            e.ok,
                            e.rpc_us,
                            e.journal_us,
                            e.lfs_us,
                            e.disk_us
                        );
                    }
                }
            }
            close(fs)?;
        }
        "detect" => {
            let fs = open_fs(image)?;
            {
                let drive = fs.transport().drive();
                let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);
                let cov = s4_detect::audit_coverage(drive, &admin).map_err(|e| e.to_string())?;
                let stored = s4_detect::read_alerts(drive, &admin).map_err(|e| e.to_string())?;
                let alerts = s4_detect::scan_audit(drive, &admin).map_err(|e| e.to_string())?;
                for a in &alerts {
                    println!("{a}");
                }
                eprintln!(
                    "{} alerts from {} audit records ({} persisted by the online monitor, \
                     {} records lost with the volatile tail)",
                    alerts.len(),
                    cov.decodable,
                    stored.len(),
                    cov.missing()
                );
            }
            close(fs)?;
        }
        "plan" | "revert" => {
            let secs: f64 = args
                .get(2)
                .and_then(|s| s.parse().ok())
                .ok_or("plan/revert: need the intrusion time in seconds")?;
            let t = SimTime::from_micros((secs * 1e6) as u64);
            let suspects = parse_suspects(&args)?;
            let fs = open_fs(image)?;
            {
                let drive = fs.transport().drive();
                let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);
                let plan = s4_detect::plan_recovery(drive, &admin, &suspects, t)
                    .map_err(|e| e.to_string())?;
                if plan.actions.is_empty() {
                    println!("nothing to recover: no suspect mutations after {t}");
                }
                for (i, pa) in plan.actions.iter().enumerate() {
                    println!("{i:>3}: {}", pa.action);
                    println!("     {}", pa.reason);
                }
                if cmd == "revert" {
                    let report = s4_detect::execute_plan_atomic_on(drive, &admin, &plan)
                        .map_err(|e| e.to_string())?;
                    for (old, new) in &report.undeleted {
                        println!("undeleted {old} as {new}");
                    }
                    for (i, e) in &report.failed {
                        eprintln!("action {i} failed: {e}");
                    }
                    println!("applied {} / {} actions", report.applied, plan.actions.len());
                }
            }
            close(fs)?;
        }
        "now" => {
            let fs = open_fs(image)?;
            println!("{}", fs.now());
            close(fs)?;
        }
        _ => return Err(format!("unknown command {cmd}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if e == "missing arguments" {
                return usage();
            }
            eprintln!("s4: {e}");
            ExitCode::FAILURE
        }
    }
}
