//! Shared harness for the figure-regeneration benchmarks.
//!
//! Builds the paper's four experimental systems (§5.1.1) over the same
//! simulated substrate:
//!
//! 1. **S4 drive** (Figure 1a) — the S4 client on the workstation talks
//!    S4 RPC over the network to a network-attached object store: every
//!    S4 RPC pays the LAN cost.
//! 2. **S4-enhanced NFS server** (Figure 1b) — the NFS-to-S4 translation
//!    lives in the server: only NFS operations cross the network; S4 RPCs
//!    are server-internal.
//! 3. **FreeBSD NFS (FFS)** — update-in-place, fully synchronous
//!    metadata.
//! 4. **Linux NFS (ext2, sync)** — update-in-place with the paper's
//!    observed batched-inode "sync-mount flaw".
//!
//! All four expose [`s4_fs::FileServer`], are driven by identical traces,
//! and are measured on the same simulated clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use s4_baseline::{UipConfig, UipServer};
use s4_clock::{NetworkModel, SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, UserId};
use s4_fs::{
    FileAttr, FileKind, FileServer, FsResult, Handle, LoopbackTransport, S4FileServer, S4FsConfig,
};
use s4_simdisk::{DiskModelParams, MemDisk, StatsHandle, TimedDisk};
use s4_workloads::{replay_with_clock, FsOp, ReplayStats};

pub use s4_workloads::ops::replay_with_clock as replay;

/// Default simulated disk size for experiments (bytes). The paper used a
/// 9 GB drive; experiments here default to a smaller disk with the same
/// relative behavior so they run in seconds (override per-bench).
pub const DEFAULT_DISK_BYTES: u64 = 1 << 30;

/// The four benchmarked configurations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemKind {
    /// Figure 1a: network-attached S4 drive.
    S4Drive,
    /// Figure 1b: S4-enhanced NFS server.
    S4Nfs,
    /// FreeBSD FFS NFS baseline.
    FreeBsdNfs,
    /// Linux ext2 sync NFS baseline.
    LinuxNfs,
}

impl SystemKind {
    /// All four systems in the paper's presentation order.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::S4Drive,
        SystemKind::S4Nfs,
        SystemKind::FreeBsdNfs,
        SystemKind::LinuxNfs,
    ];

    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::S4Drive => "S4 drive",
            SystemKind::S4Nfs => "S4-NFS server",
            SystemKind::FreeBsdNfs => "BSD-NFS (FFS)",
            SystemKind::LinuxNfs => "Linux-NFS (ext2 sync)",
        }
    }
}

/// A [`FileServer`] wrapper that charges the NFS network cost per
/// operation (used for the three server-side configurations, where only
/// NFS crosses the wire).
pub struct RemoteFs<S: FileServer> {
    inner: S,
    net: NetworkModel,
    clock: SimClock,
}

impl<S: FileServer> RemoteFs<S> {
    /// Wraps `inner`, charging `net` per operation on `clock`.
    pub fn new(inner: S, net: NetworkModel, clock: SimClock) -> Self {
        RemoteFs { inner, net, clock }
    }

    fn charge(&self, req_bytes: usize, resp_bytes: usize) {
        self.clock
            .advance(self.net.rpc_cost(64 + req_bytes, 32 + resp_bytes));
    }

    /// The wrapped server.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: FileServer> FileServer for RemoteFs<S> {
    fn root(&self) -> Handle {
        self.inner.root()
    }
    fn lookup(&self, dir: Handle, name: &str) -> FsResult<Handle> {
        self.charge(name.len(), 8);
        self.inner.lookup(dir, name)
    }
    fn create(&self, dir: Handle, name: &str) -> FsResult<Handle> {
        self.charge(name.len(), 8);
        self.inner.create(dir, name)
    }
    fn mkdir(&self, dir: Handle, name: &str) -> FsResult<Handle> {
        self.charge(name.len(), 8);
        self.inner.mkdir(dir, name)
    }
    fn symlink(&self, dir: Handle, name: &str, target: &str) -> FsResult<Handle> {
        self.charge(name.len() + target.len(), 8);
        self.inner.symlink(dir, name, target)
    }
    fn readlink(&self, file: Handle) -> FsResult<String> {
        self.charge(8, 64);
        self.inner.readlink(file)
    }
    fn read(&self, file: Handle, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        let r = self.inner.read(file, offset, len);
        if let Ok(d) = &r {
            self.charge(16, d.len());
        }
        r
    }
    fn write(&self, file: Handle, offset: u64, data: &[u8]) -> FsResult<()> {
        self.charge(data.len(), 0);
        self.inner.write(file, offset, data)
    }
    fn getattr(&self, file: Handle) -> FsResult<FileAttr> {
        self.charge(8, 64);
        self.inner.getattr(file)
    }
    fn truncate(&self, file: Handle, size: u64) -> FsResult<()> {
        self.charge(16, 0);
        self.inner.truncate(file, size)
    }
    fn remove(&self, dir: Handle, name: &str) -> FsResult<()> {
        self.charge(name.len(), 0);
        self.inner.remove(dir, name)
    }
    fn rmdir(&self, dir: Handle, name: &str) -> FsResult<()> {
        self.charge(name.len(), 0);
        self.inner.rmdir(dir, name)
    }
    fn rename(&self, fd: Handle, fname: &str, td: Handle, tname: &str) -> FsResult<()> {
        self.charge(fname.len() + tname.len(), 0);
        self.inner.rename(fd, fname, td, tname)
    }
    fn readdir(&self, dir: Handle) -> FsResult<Vec<(String, Handle, FileKind)>> {
        let r = self.inner.readdir(dir);
        if let Ok(es) = &r {
            self.charge(8, es.len() * 24);
        }
        r
    }
    fn now(&self) -> s4_clock::SimTime {
        self.inner.now()
    }
}

/// A fully assembled system under test.
pub struct System {
    /// Which configuration this is.
    pub kind: SystemKind,
    /// The file server to drive.
    pub fs: Box<dyn FileServer>,
    /// The shared simulated clock.
    pub clock: SimClock,
    /// Disk counters.
    pub disk_stats: StatsHandle,
    /// The S4 drive, for configurations that have one (maintenance hooks,
    /// audit access).
    pub drive: Option<Arc<S4Drive<TimedDisk<MemDisk>>>>,
}

/// Experiment-wide knobs.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Simulated disk capacity in bytes.
    pub disk_bytes: u64,
    /// Drive configuration for the S4 systems.
    pub drive: DriveConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            disk_bytes: DEFAULT_DISK_BYTES,
            drive: DriveConfig::default(),
        }
    }
}

/// The benchmark client context.
pub fn bench_ctx() -> RequestContext {
    RequestContext::user(UserId(100), ClientId(1))
}

/// Builds one of the four systems.
pub fn build_system(kind: SystemKind, config: &SystemConfig) -> System {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let disk = TimedDisk::new(
        MemDisk::with_capacity_bytes(config.disk_bytes),
        DiskModelParams::cheetah_9gb_10k(),
        clock.clone(),
    );
    let disk_stats = disk.stats_handle();
    match kind {
        SystemKind::S4Drive | SystemKind::S4Nfs => {
            let drive = Arc::new(
                S4Drive::format(disk, config.drive, clock.clone()).expect("format S4 drive"),
            );
            // Figure 1a: S4 RPCs cross the LAN. Figure 1b: S4 RPCs are
            // server-internal; NFS ops cross the LAN instead.
            let (rpc_net, nfs_net) = match kind {
                SystemKind::S4Drive => (NetworkModel::lan_100mbit(), None),
                _ => (NetworkModel::free(), Some(NetworkModel::lan_100mbit())),
            };
            let transport = LoopbackTransport::new(drive.clone(), rpc_net);
            let s4fs = S4FileServer::mount(transport, bench_ctx(), "bench", S4FsConfig::default())
                .expect("mount S4 fs");
            let fs: Box<dyn FileServer> = match nfs_net {
                None => Box::new(s4fs),
                Some(net) => Box::new(RemoteFs::new(s4fs, net, clock.clone())),
            };
            System {
                kind,
                fs,
                clock,
                disk_stats,
                drive: Some(drive),
            }
        }
        SystemKind::FreeBsdNfs | SystemKind::LinuxNfs => {
            let uip = UipServer::format(
                disk,
                UipConfig {
                    sync_inodes: kind == SystemKind::FreeBsdNfs,
                    ..UipConfig::default()
                },
                clock.clone(),
            )
            .expect("format baseline");
            let fs: Box<dyn FileServer> = Box::new(RemoteFs::new(
                uip,
                NetworkModel::lan_100mbit(),
                clock.clone(),
            ));
            System {
                kind,
                fs,
                clock,
                disk_stats,
                drive: None,
            }
        }
    }
}

/// Replays a trace and returns its stats (think time honored).
pub fn run_phase(system: &System, trace: &[FsOp]) -> ReplayStats {
    replay_with_clock(system.fs.as_ref(), trace, &system.clock)
}

/// Pretty seconds.
pub fn secs(d: SimDuration) -> String {
    format!("{:8.2}s", d.as_secs_f64())
}

/// Prints a standard figure header.
pub fn banner(title: &str, subtitle: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("{subtitle}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4_workloads::{micro_benchmark, MicroConfig};

    #[test]
    fn all_four_systems_run_the_same_trace() {
        let m = micro_benchmark(&MicroConfig {
            files: 30,
            dirs: 3,
            ..MicroConfig::default()
        });
        for kind in SystemKind::ALL {
            let sys = build_system(
                kind,
                &SystemConfig {
                    disk_bytes: 64 << 20,
                    ..SystemConfig::default()
                },
            );
            let create = run_phase(&sys, &m.create);
            assert_eq!(create.errors, 0, "{kind:?} create errors");
            let read = run_phase(&sys, &m.read);
            assert_eq!(read.errors, 0, "{kind:?} read errors");
            assert_eq!(read.bytes_read, 30 * 1024, "{kind:?}");
            let delete = run_phase(&sys, &m.delete);
            assert_eq!(delete.errors, 0, "{kind:?} delete errors");
            assert!(create.elapsed > SimDuration::ZERO, "{kind:?} costs time");
        }
    }

    #[test]
    fn s4_drive_pays_more_network_than_s4_nfs() {
        // Config (a) sends several S4 RPCs per NFS op across the LAN;
        // config (b) sends one NFS op. With identical storage, (a) should
        // be slower on a metadata-heavy trace.
        let m = micro_benchmark(&MicroConfig {
            files: 60,
            dirs: 2,
            ..MicroConfig::default()
        });
        let a = build_system(SystemKind::S4Drive, &SystemConfig::default());
        let b = build_system(SystemKind::S4Nfs, &SystemConfig::default());
        let ta = run_phase(&a, &m.create).elapsed;
        let tb = run_phase(&b, &m.create).elapsed;
        assert!(ta > tb, "S4-drive {ta:?} vs S4-NFS {tb:?}");
    }
}
