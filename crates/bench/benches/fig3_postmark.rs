//! Figure 3: PostMark creation and transaction times for the four
//! systems.
//!
//! Paper result: "The S4 systems' performance is similar to both BSD and
//! Linux NFS performance, doing slightly better due to their log
//! structured layout."
//!
//! Scale: paper-default PostMark (5,000 files, 20,000 transactions,
//! 512 B–9 KiB). Set `S4_BENCH_SCALE` (e.g. `0.1`) to shrink for smoke
//! runs.

use s4_bench::{banner, build_system, run_phase, secs, SystemConfig, SystemKind};
use s4_workloads::postmark::{self, PostmarkConfig};

fn scale() -> f64 {
    std::env::var("S4_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

fn main() {
    let s = scale();
    let config = PostmarkConfig {
        nfiles: ((5_000.0 * s) as usize).max(50),
        transactions: ((20_000.0 * s) as usize).max(200),
        ..PostmarkConfig::default()
    };
    banner(
        "Figure 3: PostMark benchmark",
        &format!(
            "{} files (512B-9KB), {} transactions, equal biases",
            config.nfiles, config.transactions
        ),
    );

    let phases = postmark::generate(&config);
    println!(
        "{:<24} {:>10} {:>12} {:>10} {:>12}",
        "system", "create", "(disk wIO)", "txns", "(disk wIO)"
    );
    let mut rows = Vec::new();
    for kind in SystemKind::ALL {
        let sys = build_system(kind, &SystemConfig::default());
        let w0 = sys.disk_stats.snapshot();
        let create = run_phase(&sys, &phases.create);
        let w1 = sys.disk_stats.snapshot();
        let txn = run_phase(&sys, &phases.transactions);
        let w2 = sys.disk_stats.snapshot();
        assert_eq!(create.errors + txn.errors, 0, "{kind:?} had errors");
        println!(
            "{:<24} {:>10} {:>12} {:>10} {:>12}",
            kind.label(),
            secs(create.elapsed),
            w1.since(&w0).writes,
            secs(txn.elapsed),
            w2.since(&w1).writes,
        );
        rows.push((kind, create.elapsed, txn.elapsed));
    }

    // Paper-shape check: S4 comparable to (or better than) the
    // update-in-place baselines on the transaction phase.
    let get = |k: SystemKind| rows.iter().find(|(rk, _, _)| *rk == k).unwrap().2;
    let s4 = get(SystemKind::S4Nfs).as_secs_f64();
    let bsd = get(SystemKind::FreeBsdNfs).as_secs_f64();
    println!();
    println!(
        "S4-NFS / BSD-NFS transaction-time ratio: {:.2} (paper: ~1.0 or below)",
        s4 / bsd
    );
}
