//! Figure 4: SSH-build (unpack / configure / build) for the four systems.
//!
//! Paper result: "Performance is similar across the S4 and BSD
//! configurations. The superior performance of the Linux NFS server in
//! the configure stage is due to a much lower number of write I/Os ...
//! apparently due to a flaw in the synchronous mount option."

use s4_bench::{banner, build_system, run_phase, secs, SystemConfig, SystemKind};
use s4_workloads::sshbuild::{sshbuild_phases, SshBuildConfig};

fn main() {
    let config = SshBuildConfig::default();
    banner(
        "Figure 4: SSH-build benchmark",
        &format!(
            "{} sources, {} headers, {} configure probes",
            config.sources, config.headers, config.probes
        ),
    );
    let phases = sshbuild_phases(&config);

    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>10}",
        "system", "unpack", "configure", "(cfg wIO)", "build"
    );
    let mut cfg_rows = Vec::new();
    for kind in SystemKind::ALL {
        let sys = build_system(kind, &SystemConfig::default());
        let unpack = run_phase(&sys, &phases.unpack);
        let w0 = sys.disk_stats.snapshot();
        let configure = run_phase(&sys, &phases.configure);
        let w1 = sys.disk_stats.snapshot();
        let build = run_phase(&sys, &phases.build);
        assert_eq!(
            unpack.errors + configure.errors + build.errors,
            0,
            "{kind:?} had errors"
        );
        let cfg_wio = w1.since(&w0).writes;
        println!(
            "{:<24} {:>10} {:>10} {:>12} {:>10}",
            kind.label(),
            secs(unpack.elapsed),
            secs(configure.elapsed),
            cfg_wio,
            secs(build.elapsed),
        );
        cfg_rows.push((kind, configure.elapsed, cfg_wio));
    }

    // Paper-shape check: the Linux sync-mount "flaw" shows up as fewer
    // configure-phase write I/Os than BSD.
    let get = |k: SystemKind| cfg_rows.iter().find(|(rk, _, _)| *rk == k).unwrap();
    let bsd = get(SystemKind::FreeBsdNfs);
    let linux = get(SystemKind::LinuxNfs);
    println!();
    println!(
        "configure-phase write I/Os: BSD {} vs Linux {} (paper: Linux much lower)",
        bsd.2, linux.2
    );
}
