//! Figure 6 (and §5.1.4): auditing overhead in S4.
//!
//! Micro-benchmark: 10,000 1 KiB files in 10 directories — create, read
//! in creation order, delete in creation order — with audit logging on
//! and off. Paper results: create −2.8%, read −7.2% (audit blocks
//! interleave with data in segments, hurting read locality), delete
//! −2.9%. The macro (PostMark) penalty was 1–3%.

use s4_bench::{banner, bench_ctx, secs};
use s4_clock::{NetworkModel, SimClock, SimDuration};
use s4_core::{DriveConfig, S4Drive};
use s4_fs::{LoopbackTransport, S4FileServer, S4FsConfig};
use s4_simdisk::{DiskModelParams, MemDisk, TimedDisk};
use s4_workloads::micro::{micro_benchmark, MicroConfig};
use s4_workloads::postmark::{self, PostmarkConfig};
use s4_workloads::replay;
use std::sync::Arc;

fn build(audit: bool, cache_blocks: usize) -> S4FileServer<LoopbackTransport<TimedDisk<MemDisk>>> {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let disk = TimedDisk::new(
        MemDisk::with_capacity_bytes(1 << 30),
        DiskModelParams::cheetah_9gb_10k(),
        clock.clone(),
    );
    let mut dconf = DriveConfig {
        audit_enabled: audit,
        ..DriveConfig::default()
    };
    dconf.log.cache_blocks = cache_blocks;
    let drive = Arc::new(S4Drive::format(disk, dconf, clock).unwrap());
    S4FileServer::mount(
        LoopbackTransport::new(drive, NetworkModel::lan_100mbit()),
        bench_ctx(),
        "fig6",
        S4FsConfig::default(),
    )
    .unwrap()
}

fn main() {
    let scale: f64 = std::env::var("S4_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let m = micro_benchmark(&MicroConfig {
        files: ((10_000.0 * scale) as usize).max(100),
        ..MicroConfig::default()
    });
    banner(
        "Figure 6: auditing overhead in S4",
        "10,000 x 1KB files in 10 dirs: create, read (creation order), delete",
    );

    // A small buffer cache so the read phase actually hits the disk (the
    // paper's effect is about on-disk layout, not cache behavior).
    let cache = 2048; // 8 MB
    let mut results = Vec::new();
    for audit in [false, true] {
        let fs = build(audit, cache);
        let t0 = s4_workloads::ops::server_time(&fs);
        let create = replay(&fs, &m.create);
        let read = replay(&fs, &m.read);
        let delete = replay(&fs, &m.delete);
        assert_eq!(create.errors + read.errors + delete.errors, 0);
        results.push((audit, create.elapsed, read.elapsed, delete.elapsed));
        let _ = t0;
    }
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "audit", "create", "read", "delete"
    );
    for (audit, c, r, d) in &results {
        println!(
            "{:<14} {:>10} {:>10} {:>10}",
            if *audit { "enabled" } else { "disabled" },
            secs(*c),
            secs(*r),
            secs(*d)
        );
    }
    let (_, c0, r0, d0) = results[0];
    let (_, c1, r1, d1) = results[1];
    let pct = |off: s4_clock::SimDuration, on: s4_clock::SimDuration| {
        (on.as_secs_f64() - off.as_secs_f64()) / off.as_secs_f64() * 100.0
    };
    println!();
    println!(
        "overhead: create {:+.1}%  read {:+.1}%  delete {:+.1}%   (paper: +2.8%, +7.2%, +2.9%)",
        pct(c0, c1),
        pct(r0, r1),
        pct(d0, d1)
    );

    // §5.1.4 macro check: PostMark with auditing on/off.
    let pm = postmark::generate(&PostmarkConfig {
        nfiles: ((2_000.0 * scale) as usize).max(100),
        transactions: ((8_000.0 * scale) as usize).max(400),
        ..PostmarkConfig::default()
    });
    let mut macro_t = Vec::new();
    for audit in [false, true] {
        let fs = build(audit, 32 * 1024);
        let create = replay(&fs, &pm.create);
        let txn = replay(&fs, &pm.transactions);
        assert_eq!(create.errors + txn.errors, 0);
        macro_t.push(create.elapsed + txn.elapsed);
    }
    println!(
        "macro (PostMark) audit overhead: {:+.1}%   (paper: 1-3%)",
        pct(macro_t[0], macro_t[1])
    );
}
