//! Figure 5: overhead of foreground cleaning in S4.
//!
//! The paper runs PostMark transactions over initial file sets filling
//! 2%..90% of the disk, once "without cleaning" and once with the
//! cleaner "competing with foreground activity", and reports up to ~50%
//! degradation (worse than a standard LFS cleaner's ~34%, because S4
//! cleans *objects* rather than segments and pays extra reads).
//!
//! In this reproduction the detection window is set to zero for the
//! experiment (the cleaner must have expired work to reclaim on any
//! timescale a benchmark can exercise):
//!
//! * the *baseline* run performs expiry, frees fully-dead segments, and
//!   copy-cleans only when free space drops below a small emergency
//!   reserve (the "normal S4 system");
//! * the *cleaner* run copy-forwards live blocks out of the
//!   lowest-utilization segments continuously, competing with every
//!   chunk of foreground work.
//!
//! Reported metric: transactions per simulated second vs initial
//! utilization.

use s4_bench::bench_ctx;
use s4_clock::{SimClock, SimDuration};
use s4_core::{DriveConfig, S4Drive};
use s4_fs::{FileServer, LoopbackTransport, S4FileServer, S4FsConfig};
use s4_lfs::CleanerConfig;
use s4_simdisk::{DiskModelParams, MemDisk, TimedDisk};
use s4_workloads::postmark::{self, PostmarkConfig};
use s4_workloads::replay;
use std::sync::Arc;

const DISK_BYTES: u64 = 192 << 20;
const CHUNK: usize = 200;

fn run_once(utilization_pct: u64, continuous: bool, transactions: usize) -> (f64, u64) {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let disk = TimedDisk::new(
        MemDisk::with_capacity_bytes(DISK_BYTES),
        DiskModelParams::cheetah_9gb_10k(),
        clock.clone(),
    );
    let dconf = DriveConfig {
        detection_window: SimDuration::ZERO,
        cleaner: if continuous {
            CleanerConfig {
                min_free_target: u32::MAX, // never satisfied: always clean
                max_segments_per_pass: 2,
            }
        } else {
            CleanerConfig {
                min_free_target: 32, // emergency reserve only
                max_segments_per_pass: 4,
            }
        },
        ..DriveConfig::default()
    };
    let drive = Arc::new(S4Drive::format(disk, dconf, clock.clone()).unwrap());
    let fs = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), s4_clock::NetworkModel::lan_100mbit()),
        bench_ctx(),
        "fig5",
        S4FsConfig::default(),
    )
    .unwrap();

    // Initial set sized to the requested utilization in *blocks* (a
    // 512B..9KB file occupies ceil(size/4K) blocks, ~6.7 KB on average).
    // The fill phase runs full maintenance so transient version churn
    // expires as it would in steady state.
    // ~1.71 data blocks per file plus per-file metadata (checkpoint
    // share, directory entry, audit records) and block rounding.
    let avg_footprint = 8_000;
    let nfiles = (DISK_BYTES * utilization_pct / 100 / avg_footprint) as usize;
    let pm = postmark::generate(&PostmarkConfig {
        nfiles: nfiles.max(10),
        transactions,
        ..PostmarkConfig::default()
    });
    // Reclaims until `target` segments are allocatable. Reclamation
    // (expiry + dead-freeing + copy-cleaning) produces *pending-free*
    // segments; an anchor is written only when pending segments must be
    // converted to allocatable ones — anchors carry the object map, so
    // anchoring per chunk would dominate the write stream.
    let num_segments = drive.log().geometry().num_segments;
    // The reachable watermark shrinks as the live set grows.
    let slack = num_segments.saturating_sub(num_segments * utilization_pct as u32 / 100);
    let healthy = (slack / 2).clamp(12, num_segments / 8);
    // Any maintenance step can hit PoolFull at extreme utilization; the
    // row is then reported unattainable.
    let reclaim_to = |target: u32, copy: bool| -> Result<(), s4_core::S4Error> {
        drive.expire_versions()?;
        drive.log().free_dead_segments();
        if copy {
            // Bounded per invocation: at very high utilization the
            // cleaner cannot keep up with foreground churn no matter
            // what (each freed segment costs ~u/(1-u) copies); the run
            // then ends early and reports throughput up to that point.
            for _ in 0..8 {
                let u = drive.log().usage_snapshot();
                if u.free_segments() + u.pending_free_segments() >= target {
                    break;
                }
                // Copy-cleaning consumes free segments and produces only
                // *pending* ones; promote before the log head starves.
                if drive.free_segments() < 8 {
                    drive.force_anchor()?;
                }
                match drive.clean() {
                    Ok(o) if o.dead_freed + o.copied_segments > 0 => {}
                    _ => break,
                }
            }
        }
        if drive.free_segments() < target {
            // Promote pending-free segments for reuse.
            drive.force_anchor()?;
        }
        Ok(())
    };
    for chunk in pm.create.chunks(CHUNK) {
        let stats = replay(&fs, chunk);
        if stats.errors > 0 || reclaim_to(healthy, true).is_err() {
            // The pool cannot host this utilization plus transient churn;
            // report the row as unattainable.
            return (f64::NAN, 0);
        }
    }

    // Measured phase: transactions with per-mode maintenance.
    let start = fs.now();
    let mut done = 0u64;
    for chunk in pm.transactions.chunks(CHUNK) {
        let stats = replay(&fs, chunk);
        done += stats.ops - stats.errors;
        if stats.errors > 0 {
            break; // pool exhausted: report throughput up to here
        }
        let r = if continuous {
            // Competing cleaner: several copy passes per chunk regardless
            // of need ("continuous foreground cleaner activity"), plus
            // whatever it takes to stay at the healthy watermark. At high
            // utilization each pass relocates more live blocks, so the
            // competition cost grows with utilization as in the paper.
            for _ in 0..4 {
                if drive.free_segments() < 8 {
                    let _ = drive.force_anchor();
                }
                let _ = drive.clean();
            }
            reclaim_to(healthy, true)
        } else {
            // "Cleaner disabled": expiry and free-of-dead-segments only,
            // never copying. At high utilization the run may exhaust the
            // pool and be reported partial, exactly what a cleanerless S4
            // would do.
            reclaim_to(healthy, false)
        };
        if r.is_err() {
            break;
        }
    }
    let elapsed = (fs.now() - start).as_secs_f64();
    (done as f64 / elapsed, done)
}

fn main() {
    let scale: f64 = std::env::var("S4_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    // Default is a 1/40 scale of the paper's 50,000 transactions: the
    // sweep runs 20 drive-lifetimes (10 utilizations x 2 modes) and the
    // 90% fills dominate; S4_BENCH_SCALE multiplies.
    let transactions = ((1_250.0 * scale) as usize).max(400);
    println!();
    println!("================================================================");
    println!("Figure 5: overhead of foreground cleaning in S4");
    println!(
        "PostMark, {transactions} transactions, {} MB drive, window=0",
        DISK_BYTES >> 20
    );
    println!("================================================================");
    println!(
        "{:>6} {:>16} {:>16} {:>12}",
        "util%", "no-clean txn/s", "cleaner txn/s", "overhead%"
    );
    for util in [2u64, 10, 20, 30, 40, 50, 60, 70, 80, 90] {
        let (base, bdone) = run_once(util, false, transactions);
        let (cleaned, cdone) = run_once(util, true, transactions);
        if base.is_nan() || cleaned.is_nan() {
            println!("{util:>6} {:>16} {:>16} {:>12}", "-", "-", "unattainable");
            continue;
        }
        let overhead = (base - cleaned) / base * 100.0;
        let note = if bdone < transactions as u64 * 2 || cdone < transactions as u64 * 2 {
            " (partial)"
        } else {
            ""
        };
        println!("{util:>6} {base:>16.1} {cleaned:>16.1} {overhead:>11.1}%{note}");
    }
    println!();
    println!("paper shape: performance falls with utilization; continuous cleaning");
    println!("costs up to ~50% at high utilization (S4 cleans objects, not segments)");
}
