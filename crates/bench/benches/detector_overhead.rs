//! Online-detector overhead on PostMark (ROADMAP open item).
//!
//! Runs the same PostMark workload through the S4 drive twice — with and
//! without [`install_standard_monitor`] — and reports the cost along both
//! axes the monitor can show up on:
//!
//! * **simulated time** — extra storage work (alert blobs persisted to
//!   the reserved alert object ride the same log as data);
//! * **host CPU per audit record** — the rule set timed directly over
//!   the workload's captured audit stream (differencing the two
//!   whole-run wall clocks drowns in warm-up noise). This is the
//!   previously ad-hoc "~15µs/record" number, now tracked.
//!
//! The final line is machine-readable: `BENCH_JSON {...}` — one JSON
//! object per run, suitable for appending to a BENCH_*.json series.

use std::sync::Arc;
use std::time::Instant;

use s4_bench::{banner, bench_ctx, secs};
use s4_clock::{NetworkModel, SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive};
use s4_core::AuditRecord;
use s4_detect::{install_standard_monitor, DetectorSet};
use s4_fs::{LoopbackTransport, S4FileServer, S4FsConfig};
use s4_simdisk::{DiskModelParams, MemDisk, TimedDisk};
use s4_workloads::postmark::{self, PostmarkConfig};
use s4_workloads::replay;

struct Run {
    sim: SimDuration,
    wall: f64,
    records: Vec<AuditRecord>,
    lat: LatencySummary,
}

/// Per-layer latency percentiles (simulated µs) pulled from the drive's
/// observability registry at the end of a run.
struct LatencySummary {
    rpc_p50: u64,
    rpc_p90: u64,
    rpc_p99: u64,
    rpc_max: u64,
    journal_p99: u64,
    lfs_p99: u64,
    disk_p99: u64,
}

impl LatencySummary {
    fn capture<D: s4_simdisk::BlockDev>(drive: &S4Drive<D>) -> Self {
        let reg = drive.registry();
        let rpc = reg.histogram("s4_rpc_latency_us", "");
        LatencySummary {
            rpc_p50: rpc.percentile(0.5),
            rpc_p90: rpc.percentile(0.9),
            rpc_p99: rpc.percentile(0.99),
            rpc_max: rpc.max(),
            journal_p99: reg.histogram("s4_journal_latency_us", "").percentile(0.99),
            lfs_p99: reg.histogram("s4_lfs_latency_us", "").percentile(0.99),
            disk_p99: reg.histogram("s4_disk_latency_us", "").percentile(0.99),
        }
    }
}

fn run(pm: &postmark::PostmarkPhases, monitor: bool) -> Run {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let disk = TimedDisk::new(
        MemDisk::with_capacity_bytes(1 << 30),
        DiskModelParams::cheetah_9gb_10k(),
        clock.clone(),
    );
    let drive = Arc::new(S4Drive::format(disk, DriveConfig::default(), clock.clone()).unwrap());
    if monitor {
        install_standard_monitor(&drive);
    }
    let fs = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::lan_100mbit()),
        bench_ctx(),
        "detov",
        S4FsConfig::default(),
    )
    .unwrap();

    let t0 = Instant::now();
    let create = replay(&fs, &pm.create);
    let txn = replay(&fs, &pm.transactions);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(create.errors + txn.errors, 0);

    let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);
    let records = drive.read_audit_records(&admin).unwrap();
    Run {
        sim: create.elapsed + txn.elapsed,
        wall,
        records,
        lat: LatencySummary::capture(&drive),
    }
}

fn main() {
    let scale: f64 = std::env::var("S4_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let nfiles = ((2_000.0 * scale) as usize).max(100);
    let transactions = ((8_000.0 * scale) as usize).max(400);
    let pm = postmark::generate(&PostmarkConfig {
        nfiles,
        transactions,
        ..PostmarkConfig::default()
    });
    banner(
        "Online-detector overhead (standard rule set, PostMark)",
        "same trace with and without install_standard_monitor",
    );

    let base = run(&pm, false);
    let mon = run(&pm, true);
    // Both runs audit every request identically; the monitor only adds
    // rule evaluation and alert persistence.
    assert_eq!(
        base.records.len(),
        mon.records.len(),
        "audit streams must match"
    );
    let records = mon.records.len();

    let sim_pct =
        (mon.sim.as_secs_f64() - base.sim.as_secs_f64()) / base.sim.as_secs_f64() * 100.0;

    // Detector CPU, measured directly: the standard rule set over the
    // workload's own audit stream (warm pass first, then timed).
    DetectorSet::standard().scan(&mon.records);
    let t0 = Instant::now();
    let passes = 5;
    for _ in 0..passes {
        DetectorSet::standard().scan(&mon.records);
    }
    let us_per_record = t0.elapsed().as_secs_f64() / (passes * records) as f64 * 1e6;

    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "monitor", "sim time", "host time", "records"
    );
    for (label, r) in [("off", &base), ("on", &mon)] {
        println!(
            "{:<12} {:>12} {:>11.2}s {:>12}",
            label,
            secs(r.sim),
            r.wall,
            r.records.len()
        );
    }
    println!();
    println!(
        "simulated overhead {sim_pct:+.2}%   detector cpu {us_per_record:.2} us/record \
         (tracked; was ~15 us/record ad hoc)"
    );
    println!(
        "rpc latency (monitored, sim us): p50 {} p90 {} p99 {} max {}   \
         p99 by layer: journal {} lfs {} disk {}",
        mon.lat.rpc_p50,
        mon.lat.rpc_p90,
        mon.lat.rpc_p99,
        mon.lat.rpc_max,
        mon.lat.journal_p99,
        mon.lat.lfs_p99,
        mon.lat.disk_p99,
    );
    println!(
        "BENCH_JSON {{\"bench\":\"detector_overhead\",\"nfiles\":{nfiles},\
\"transactions\":{transactions},\"records\":{records},\
\"sim_base_s\":{sim_base:.6},\"sim_monitored_s\":{sim_mon:.6},\
\"sim_overhead_pct\":{sim_pct:.3},\"wall_base_s\":{wall_base:.3},\
\"wall_monitored_s\":{wall_mon:.3},\"detector_us_per_record\":{us_per_record:.3},\
\"rpc_p50_us\":{rpc_p50},\"rpc_p90_us\":{rpc_p90},\"rpc_p99_us\":{rpc_p99},\
\"rpc_max_us\":{rpc_max},\"journal_p99_us\":{journal_p99},\
\"lfs_p99_us\":{lfs_p99},\"disk_p99_us\":{disk_p99}}}",
        records = records,
        sim_base = base.sim.as_secs_f64(),
        sim_mon = mon.sim.as_secs_f64(),
        wall_base = base.wall,
        wall_mon = mon.wall,
        rpc_p50 = mon.lat.rpc_p50,
        rpc_p90 = mon.lat.rpc_p90,
        rpc_p99 = mon.lat.rpc_p99,
        rpc_max = mon.lat.rpc_max,
        journal_p99 = mon.lat.journal_p99,
        lfs_p99 = mon.lat.lfs_p99,
        disk_p99 = mon.lat.disk_p99,
    );
}
