//! Criterion micro-benchmarks for the hot primitives underneath the
//! figure harnesses: journal entry codec, journal-sector packing, CRC,
//! LZSS, xdelta, block-cache operations, and the drive's write/read path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use s4_clock::{HybridTimestamp, SimClock, SimTime};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, UserId};
use s4_journal::{encode_sectors, JournalEntry, PtrChange};
use s4_lfs::{BlockAddr, BlockCache};
use s4_simdisk::MemDisk;

fn sample_entries(n: u64) -> Vec<JournalEntry> {
    (0..n)
        .map(|i| JournalEntry::Write {
            stamp: HybridTimestamp::new(SimTime::from_micros(i), i),
            old_size: i * 4096,
            new_size: (i + 1) * 4096,
            changes: vec![PtrChange {
                lbn: i,
                old: BlockAddr(i),
                new: BlockAddr(i + 100),
            }],
        })
        .collect()
}

fn bench_journal(c: &mut Criterion) {
    let entries = sample_entries(64);
    c.bench_function("journal/encode_sectors_64_entries", |b| {
        b.iter(|| encode_sectors(black_box(&entries)))
    });
    let mut buf = Vec::new();
    entries[0].encode_into(&mut buf);
    c.bench_function("journal/decode_entry", |b| {
        b.iter(|| {
            let mut pos = 0;
            JournalEntry::decode_from(black_box(&buf), &mut pos).unwrap()
        })
    });
}

fn bench_crc(c: &mut Criterion) {
    let block = vec![0xA5u8; 4096];
    c.bench_function("lfs/crc32_4k", |b| {
        b.iter(|| s4_lfs::crc::crc32(black_box(&block)))
    });
}

fn bench_delta(c: &mut Criterion) {
    let old = b"static int handle_packet(struct conn *c) { return enqueue(c); }\n".repeat(200);
    let mut new = old.clone();
    new[4000..4010].copy_from_slice(b"EDITEDLINE");
    c.bench_function("delta/xdelta_diff_13k", |b| {
        b.iter(|| s4_delta::diff(black_box(&old), black_box(&new)))
    });
    c.bench_function("delta/lzss_compress_13k", |b| {
        b.iter(|| s4_delta::compress(black_box(&old)))
    });
}

fn bench_cache(c: &mut Criterion) {
    let cache = BlockCache::new(1024);
    for i in 0..1024u64 {
        cache.insert(BlockAddr(i), bytes::Bytes::from(vec![0u8; 64]));
    }
    c.bench_function("lfs/block_cache_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            cache.get(black_box(BlockAddr(i)))
        })
    });
}

fn bench_drive(c: &mut Criterion) {
    let clock = SimClock::new();
    // Zero window + periodic reclamation keep the pool from filling while
    // criterion drives tens of thousands of version-creating writes.
    let config = DriveConfig {
        detection_window: s4_clock::SimDuration::ZERO,
        ..DriveConfig::default()
    };
    let drive = S4Drive::format(
        MemDisk::with_capacity_bytes(512 << 20),
        config,
        clock.clone(),
    )
    .unwrap();
    let ctx = RequestContext::user(UserId(1), ClientId(1));
    let oid = drive.op_create(&ctx, None).unwrap();
    let payload = vec![7u8; 4096];
    let mut n = 0u32;
    c.bench_function("drive/write_4k_version", |b| {
        b.iter(|| {
            n += 1;
            if n.is_multiple_of(4096) {
                clock.advance(s4_clock::SimDuration::from_secs(1));
                drive.op_sync(&ctx).unwrap();
                drive.expire_versions().unwrap();
                drive.log().free_dead_segments();
                drive.force_anchor().unwrap();
            }
            drive.op_write(&ctx, oid, 0, black_box(&payload)).unwrap()
        })
    });
    drive.op_sync(&ctx).unwrap();
    c.bench_function("drive/read_4k", |b| {
        b.iter(|| drive.op_read(&ctx, oid, 0, 4096, None).unwrap())
    });
    let t = drive.now();
    c.bench_function("drive/time_based_read_4k", |b| {
        b.iter(|| {
            drive
                .op_read(&ctx, oid, 0, 4096, Some(black_box(t)))
                .unwrap()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_journal, bench_crc, bench_delta, bench_cache, bench_drive
);
criterion_main!(benches);
