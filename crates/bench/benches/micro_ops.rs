//! Micro-benchmarks for the hot primitives underneath the figure
//! harnesses: journal entry codec, CRC, LZSS, xdelta, block-cache
//! operations, and the drive's write/read path.
//!
//! Self-contained timing harness (no external bench framework so the
//! tier-1 build stays hermetic): each case is warmed up, then run for a
//! fixed wall-clock budget and reported as ns/op.

use std::hint::black_box;
use std::time::{Duration, Instant};

use s4_bench::banner;
use s4_clock::{HybridTimestamp, SimClock, SimTime};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, UserId};
use s4_journal::{encode_sectors, JournalEntry, PtrChange};
use s4_lfs::{BlockAddr, BlockCache, Bytes};
use s4_simdisk::MemDisk;

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(800);

/// Runs `op` repeatedly for the measurement budget and prints ns/op.
fn bench<R>(name: &str, mut op: impl FnMut() -> R) {
    let mut spin = |budget: Duration| -> (u64, Duration) {
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            for _ in 0..16 {
                black_box(op());
            }
            iters += 16;
        }
        (iters, start.elapsed())
    };
    spin(WARMUP);
    let (iters, elapsed) = spin(MEASURE);
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<34} {ns:>12.1} ns/op   ({iters} iters)");
}

fn sample_entries(n: u64) -> Vec<JournalEntry> {
    (0..n)
        .map(|i| JournalEntry::Write {
            stamp: HybridTimestamp::new(SimTime::from_micros(i), i),
            old_size: i * 4096,
            new_size: (i + 1) * 4096,
            changes: vec![PtrChange {
                lbn: i,
                old: BlockAddr(i),
                new: BlockAddr(i + 100),
            }],
        })
        .collect()
}

fn bench_journal() {
    let entries = sample_entries(64);
    bench("journal/encode_sectors_64_entries", || {
        encode_sectors(black_box(&entries))
    });
    let mut buf = Vec::new();
    entries[0].encode_into(&mut buf);
    bench("journal/decode_entry", || {
        let mut pos = 0;
        JournalEntry::decode_from(black_box(&buf), &mut pos).unwrap()
    });
}

fn bench_crc() {
    let block = vec![0xA5u8; 4096];
    bench("lfs/crc32_4k", || s4_lfs::crc::crc32(black_box(&block)));
}

fn bench_delta() {
    let old = b"static int handle_packet(struct conn *c) { return enqueue(c); }\n".repeat(200);
    let mut new = old.clone();
    new[4000..4010].copy_from_slice(b"EDITEDLINE");
    bench("delta/xdelta_diff_13k", || {
        s4_delta::diff(black_box(&old), black_box(&new))
    });
    bench("delta/lzss_compress_13k", || {
        s4_delta::compress(black_box(&old))
    });
}

fn bench_cache() {
    let cache = BlockCache::new(1024);
    for i in 0..1024u64 {
        cache.insert(BlockAddr(i), Bytes::from(vec![0u8; 64]));
    }
    let mut i = 0u64;
    bench("lfs/block_cache_hit", || {
        i = (i + 1) % 1024;
        cache.get(black_box(BlockAddr(i)))
    });
}

fn bench_drive() {
    let clock = SimClock::new();
    // Zero window + periodic reclamation keep the pool from filling while
    // the harness drives tens of thousands of version-creating writes.
    let config = DriveConfig {
        detection_window: s4_clock::SimDuration::ZERO,
        ..DriveConfig::default()
    };
    let drive = S4Drive::format(
        MemDisk::with_capacity_bytes(512 << 20),
        config,
        clock.clone(),
    )
    .unwrap();
    let ctx = RequestContext::user(UserId(1), ClientId(1));
    let oid = drive.op_create(&ctx, None).unwrap();
    let payload = vec![7u8; 4096];
    let mut n = 0u32;
    bench("drive/write_4k_version", || {
        n += 1;
        if n.is_multiple_of(4096) {
            clock.advance(s4_clock::SimDuration::from_secs(1));
            drive.op_sync(&ctx).unwrap();
            drive.expire_versions().unwrap();
            drive.log().free_dead_segments();
            drive.force_anchor().unwrap();
        }
        drive.op_write(&ctx, oid, 0, black_box(&payload)).unwrap()
    });
    drive.op_sync(&ctx).unwrap();
    bench("drive/read_4k", || {
        drive.op_read(&ctx, oid, 0, 4096, None).unwrap()
    });
    let t = drive.now();
    bench("drive/time_based_read_4k", || {
        drive
            .op_read(&ctx, oid, 0, 4096, Some(black_box(t)))
            .unwrap()
    });
}

fn main() {
    banner(
        "micro_ops: hot-path primitives",
        "journal codec, crc32, delta, block cache, drive write/read",
    );
    bench_journal();
    bench_crc();
    bench_delta();
    bench_cache();
    bench_drive();
}
