//! Array scale-out: simulated throughput of a PostMark-style mixed
//! object workload on 1 / 2 / 4 / 8 shards.
//!
//! Each shard is an independent simulated drive (own disk model, own
//! clock — as independent spindles are), built with `from_drives` so
//! per-shard simulated time accumulates separately. The same request
//! stream is replayed against every array size; elapsed time is the
//! *slowest shard's* busy time, so throughput reflects the parallelism
//! actually extracted: perfect routing balance gives linear speedup,
//! broadcast `Sync`s and residue skew eat into it.
//!
//! The final line is machine-readable: `BENCH_JSON {...}` — the
//! committed baseline lives in `BENCH_array.json`.

use s4_array::{ArrayConfig, S4Array};
use s4_bench::{banner, bench_ctx};
use s4_clock::{SimClock, SimDuration};
use s4_core::{DriveConfig, ObjectId, Request, Response, S4Drive};
use s4_simdisk::{DiskModelParams, MemDisk, TimedDisk};

/// Deterministic 64-bit LCG (same constants as MMIX).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

struct RunResult {
    ops: u64,
    elapsed: SimDuration,
    wall: f64,
}

/// Builds an `n`-shard array of independently-clocked timed drives and
/// replays the mixed workload. Returns (ops, slowest-shard sim time).
fn run(n: usize, nfiles: usize, transactions: usize) -> RunResult {
    let start = SimDuration::from_secs(1);
    let drives: Vec<S4Drive<TimedDisk<MemDisk>>> = (0..n)
        .map(|i| {
            let clock = SimClock::new();
            clock.advance(start);
            let disk = TimedDisk::new(
                MemDisk::with_capacity_bytes(1 << 30),
                DiskModelParams::cheetah_9gb_10k(),
                clock.clone(),
            );
            S4Drive::format(
                disk,
                DriveConfig::default().with_oid_class(n as u64, i as u64),
                clock,
            )
            .unwrap()
        })
        .collect();
    let array = S4Array::from_drives(drives, ArrayConfig::default()).unwrap();
    let ctx = bench_ctx();
    let mut rng = Lcg(0x5345_4355);
    let mut ops = 0u64;
    let t0 = std::time::Instant::now();

    // Population phase: PostMark's file set, written once.
    let mut oids: Vec<ObjectId> = Vec::with_capacity(nfiles);
    for _ in 0..nfiles {
        let oid = match array.dispatch(&ctx, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("unexpected response {other:?}"),
        };
        let size = 512 + (rng.next() % 8704) as usize; // 512 B – 9 KiB
        array
            .dispatch(
                &ctx,
                &Request::Write {
                    oid,
                    offset: 0,
                    data: vec![0xA5; size],
                },
            )
            .unwrap();
        oids.push(oid);
        ops += 2;
    }
    array.dispatch(&ctx, &Request::Sync).unwrap();
    ops += 1;

    // Transaction phase: PostMark's equal read/write bias plus a tail
    // of appends, with a periodic durability barrier.
    for t in 0..transactions {
        let oid = oids[(rng.next() as usize) % oids.len()];
        let req = match rng.next() % 10 {
            0..=4 => Request::Read {
                oid,
                offset: 0,
                len: 512 + rng.next() % 4096,
                time: None,
            },
            5..=8 => Request::Write {
                oid,
                offset: rng.next() % 4096,
                data: vec![0x5A; 512 + (rng.next() % 4096) as usize],
            },
            _ => Request::Append {
                oid,
                data: vec![0x3C; 256],
            },
        };
        array.dispatch(&ctx, &req).unwrap();
        ops += 1;
        if (t + 1) % 200 == 0 {
            array.dispatch(&ctx, &Request::Sync).unwrap();
            ops += 1;
        }
    }
    array.dispatch(&ctx, &Request::Sync).unwrap();
    ops += 1;

    // The run takes as long as its busiest shard.
    let elapsed = (0..n)
        .map(|s| {
            SimDuration::from_micros(
                array.shard_drive(s).clock().now().as_micros() - start.as_micros(),
            )
        })
        .max()
        .unwrap();
    let wall = t0.elapsed().as_secs_f64();
    array.unmount().unwrap();
    RunResult { ops, elapsed, wall }
}

fn main() {
    let scale: f64 = std::env::var("S4_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let nfiles = ((800.0 * scale) as usize).max(64);
    let transactions = ((6_000.0 * scale) as usize).max(400);
    banner(
        "Array scale-out: PostMark-style mixed workload",
        &format!("{nfiles} objects (512B-9KB), {transactions} transactions, shards 1/2/4/8"),
    );

    println!(
        "{:<8} {:>10} {:>14} {:>16} {:>10}",
        "shards", "ops", "sim elapsed", "ops/sim-sec", "speedup"
    );
    let shard_counts = [1usize, 2, 4, 8];
    let mut throughputs = Vec::new();
    let mut base = 0.0f64;
    for &n in &shard_counts {
        let r = run(n, nfiles, transactions);
        let tput = r.ops as f64 / r.elapsed.as_secs_f64();
        if n == 1 {
            base = tput;
        }
        println!(
            "{:<8} {:>10} {:>13.3}s {:>16.0} {:>9.2}x  (wall {:.2}s)",
            n,
            r.ops,
            r.elapsed.as_secs_f64(),
            tput,
            tput / base,
            r.wall,
        );
        throughputs.push(tput);
    }

    let speedups: Vec<f64> = throughputs.iter().map(|t| t / base).collect();
    println!();
    println!(
        "4-shard speedup {:.2}x (acceptance: >= 2x), 8-shard {:.2}x",
        speedups[2], speedups[3]
    );
    assert!(
        speedups[2] >= 2.0,
        "4 shards must at least double 1-shard throughput: {:.2}x",
        speedups[2]
    );

    let fmt = |v: &[f64], p: usize| {
        v.iter()
            .map(|x| format!("{x:.*}", p))
            .collect::<Vec<_>>()
            .join(",")
    };
    println!(
        "BENCH_JSON {{\"bench\":\"fig_array\",\"nfiles\":{nfiles},\
\"transactions\":{transactions},\"shards\":[1,2,4,8],\
\"throughput_ops_per_sim_s\":[{}],\"speedup_vs_1\":[{}]}}",
        fmt(&throughputs, 0),
        fmt(&speedups, 3),
    );
}
