//! Array scale-out: simulated throughput of a PostMark-style mixed
//! object workload on 1 / 2 / 4 / 8 shards.
//!
//! Each shard is an independent simulated drive (own disk model, own
//! clock — as independent spindles are), built with `from_drives` so
//! per-shard simulated time accumulates separately. The same request
//! stream is replayed against every array size; elapsed time is the
//! *slowest shard's* busy time, so throughput reflects the parallelism
//! actually extracted: perfect routing balance gives linear speedup,
//! broadcast `Sync`s and residue skew eat into it.
//!
//! The final line is machine-readable: `BENCH_JSON {...}` — the
//! committed baseline lives in `BENCH_array.json`.

use s4_array::{ArrayConfig, S4Array};
use s4_bench::{banner, bench_ctx};
use s4_clock::{SimClock, SimDuration};
use s4_core::{DriveConfig, ObjectId, Request, Response, S4Drive};
use s4_simdisk::{
    BlockDev, DiskModelParams, FaultPlan, FaultyDisk, MemDisk, RequestClassMask, TimedDisk,
};

/// Deterministic 64-bit LCG (same constants as MMIX).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

struct RunResult {
    ops: u64,
    elapsed: SimDuration,
    wall: f64,
}

/// Replays the PostMark-style workload against `array`. Returns the
/// operation count.
fn workload<D: BlockDev + 'static>(
    array: &S4Array<D>,
    nfiles: usize,
    transactions: usize,
) -> u64 {
    let ctx = bench_ctx();
    let mut rng = Lcg(0x5345_4355);
    let mut ops = 0u64;

    // Population phase: PostMark's file set, written once.
    let mut oids: Vec<ObjectId> = Vec::with_capacity(nfiles);
    for _ in 0..nfiles {
        let oid = match array.dispatch(&ctx, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("unexpected response {other:?}"),
        };
        let size = 512 + (rng.next() % 8704) as usize; // 512 B – 9 KiB
        array
            .dispatch(
                &ctx,
                &Request::Write {
                    oid,
                    offset: 0,
                    data: vec![0xA5; size],
                },
            )
            .unwrap();
        oids.push(oid);
        ops += 2;
    }
    array.dispatch(&ctx, &Request::Sync).unwrap();
    ops += 1;

    // Transaction phase: PostMark's equal read/write bias plus a tail
    // of appends, with a periodic durability barrier.
    for t in 0..transactions {
        let oid = oids[(rng.next() as usize) % oids.len()];
        let req = match rng.next() % 10 {
            0..=4 => Request::Read {
                oid,
                offset: 0,
                len: 512 + rng.next() % 4096,
                time: None,
            },
            5..=8 => Request::Write {
                oid,
                offset: rng.next() % 4096,
                data: vec![0x5A; 512 + (rng.next() % 4096) as usize],
            },
            _ => Request::Append {
                oid,
                data: vec![0x3C; 256],
            },
        };
        array.dispatch(&ctx, &req).unwrap();
        ops += 1;
        if (t + 1) % 200 == 0 {
            array.dispatch(&ctx, &Request::Sync).unwrap();
            ops += 1;
        }
    }
    array.dispatch(&ctx, &Request::Sync).unwrap();
    ops += 1;
    ops
}

/// The run takes as long as its busiest member drive.
fn elapsed_of<D: BlockDev + 'static>(array: &S4Array<D>, start: SimDuration) -> SimDuration {
    (0..array.shard_count())
        .flat_map(|s| (0..array.mirror_count()).map(move |k| (s, k)))
        .map(|(s, k)| {
            SimDuration::from_micros(
                array.member_drive(s, k).clock().now().as_micros() - start.as_micros(),
            )
        })
        .max()
        .unwrap()
}

/// Builds an `n`-shard array of independently-clocked timed drives and
/// replays the mixed workload. Returns (ops, slowest-shard sim time).
fn run(n: usize, nfiles: usize, transactions: usize) -> RunResult {
    let start = SimDuration::from_secs(1);
    let drives: Vec<S4Drive<TimedDisk<MemDisk>>> = (0..n)
        .map(|i| {
            let clock = SimClock::new();
            clock.advance(start);
            let disk = TimedDisk::new(
                MemDisk::with_capacity_bytes(1 << 30),
                DiskModelParams::cheetah_9gb_10k(),
                clock.clone(),
            );
            S4Drive::format(
                disk,
                DriveConfig::default().with_oid_class(n as u64, i as u64),
                clock,
            )
            .unwrap()
        })
        .collect();
    let array = S4Array::from_drives(drives, ArrayConfig::default()).unwrap();
    let t0 = std::time::Instant::now();
    let ops = workload(&array, nfiles, transactions);
    let elapsed = elapsed_of(&array, start);
    let wall = t0.elapsed().as_secs_f64();
    array.unmount().unwrap();
    RunResult { ops, elapsed, wall }
}

/// A 4-shard, 2-mirror array of timed drives. With `kill_one`, shard
/// 0's first replica dies a few device writes into the run, so almost
/// the whole workload executes in degraded mode — the datapoint the
/// healthy run is compared against.
fn run_mirrored(kill_one: bool, nfiles: usize, transactions: usize) -> RunResult {
    const SHARDS: usize = 4;
    const MIRRORS: usize = 2;
    let start = SimDuration::from_secs(1);
    let drives: Vec<S4Drive<FaultyDisk<TimedDisk<MemDisk>>>> = (0..SHARDS * MIRRORS)
        .map(|i| {
            let clock = SimClock::new();
            clock.advance(start);
            let config = DriveConfig::default().with_oid_class(SHARDS as u64, (i / MIRRORS) as u64);
            // Format fault-free, then re-arm: the victim's death counter
            // must count workload writes, not format's.
            let disk = FaultyDisk::new(
                TimedDisk::new(
                    MemDisk::with_capacity_bytes(1 << 30),
                    DiskModelParams::cheetah_9gb_10k(),
                    clock.clone(),
                ),
                FaultPlan::none(),
            );
            let drive = S4Drive::format(disk, config, clock.clone()).unwrap();
            let disk = drive.unmount().unwrap().into_inner();
            let plan = if kill_one && i == 0 {
                FaultPlan::member_death_after_requests(
                    10,
                    RequestClassMask::WRITES.union(RequestClassMask::SYNCS),
                )
            } else {
                FaultPlan::none()
            };
            S4Drive::mount(FaultyDisk::new(disk, plan), config, clock).unwrap()
        })
        .collect();
    let array = S4Array::from_drives(
        drives,
        ArrayConfig {
            mirrors: MIRRORS,
            ..ArrayConfig::default()
        },
    )
    .unwrap();
    let t0 = std::time::Instant::now();
    let ops = workload(&array, nfiles, transactions);
    if kill_one {
        assert!(array.shard_degraded(0), "victim member never died");
    }
    let elapsed = elapsed_of(&array, start);
    let wall = t0.elapsed().as_secs_f64();
    // A degraded array refuses to unmount (the dead member cannot
    // sync); dropping it joins the workers either way.
    drop(array);
    RunResult { ops, elapsed, wall }
}

fn main() {
    let scale: f64 = std::env::var("S4_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let nfiles = ((800.0 * scale) as usize).max(64);
    let transactions = ((6_000.0 * scale) as usize).max(400);
    banner(
        "Array scale-out: PostMark-style mixed workload",
        &format!("{nfiles} objects (512B-9KB), {transactions} transactions, shards 1/2/4/8"),
    );

    println!(
        "{:<8} {:>10} {:>14} {:>16} {:>10}",
        "shards", "ops", "sim elapsed", "ops/sim-sec", "speedup"
    );
    let shard_counts = [1usize, 2, 4, 8];
    let mut throughputs = Vec::new();
    let mut base = 0.0f64;
    for &n in &shard_counts {
        let r = run(n, nfiles, transactions);
        let tput = r.ops as f64 / r.elapsed.as_secs_f64();
        if n == 1 {
            base = tput;
        }
        println!(
            "{:<8} {:>10} {:>13.3}s {:>16.0} {:>9.2}x  (wall {:.2}s)",
            n,
            r.ops,
            r.elapsed.as_secs_f64(),
            tput,
            tput / base,
            r.wall,
        );
        throughputs.push(tput);
    }

    let speedups: Vec<f64> = throughputs.iter().map(|t| t / base).collect();
    println!();
    println!(
        "4-shard speedup {:.2}x (acceptance: >= 2x), 8-shard {:.2}x",
        speedups[2], speedups[3]
    );
    assert!(
        speedups[2] >= 2.0,
        "4 shards must at least double 1-shard throughput: {:.2}x",
        speedups[2]
    );

    // Fault-tolerance datapoint: the same workload on a 4×2 mirrored
    // array, healthy vs. running degraded after a member kill. Degraded
    // mode must not collapse client throughput — reads fail over and
    // writes simply stop paying for the dead replica.
    println!();
    let healthy = run_mirrored(false, nfiles, transactions);
    let h_tput = healthy.ops as f64 / healthy.elapsed.as_secs_f64();
    let degraded = run_mirrored(true, nfiles, transactions);
    let d_tput = degraded.ops as f64 / degraded.elapsed.as_secs_f64();
    let ratio = d_tput / h_tput;
    println!(
        "4x2 mirrored: healthy {h_tput:.0} ops/sim-s, degraded (one member dead) \
{d_tput:.0} ops/sim-s ({ratio:.2}x, acceptance: >= 0.5x)"
    );
    assert!(
        ratio >= 0.5,
        "degraded mode must not halve client throughput: {ratio:.2}x"
    );

    let fmt = |v: &[f64], p: usize| {
        v.iter()
            .map(|x| format!("{x:.*}", p))
            .collect::<Vec<_>>()
            .join(",")
    };
    println!(
        "BENCH_JSON {{\"bench\":\"fig_array\",\"nfiles\":{nfiles},\
\"transactions\":{transactions},\"shards\":[1,2,4,8],\
\"throughput_ops_per_sim_s\":[{}],\"speedup_vs_1\":[{}],\
\"mirrored_healthy_ops_per_sim_s\":{h_tput:.0},\
\"mirrored_degraded_ops_per_sim_s\":{d_tput:.0},\
\"degraded_over_healthy\":{ratio:.3}}}",
        fmt(&throughputs, 0),
        fmt(&speedups, 3),
    );
}
