//! Figure 2: efficiency of metadata versioning — journal-based metadata
//! vs a conventional versioning system.
//!
//! "When writing to an indirect block, a conventional versioning system
//! allocates a new data block, a new indirect block, and a new inode ...
//! With journal-based metadata, a single journal entry suffices."
//! (§4.2.2, including the "up to 4x growth" observation for large
//! files.)
//!
//! The harness updates single blocks of files at each indirection depth
//! and reports the metadata written per update under both schemes, then
//! measures total space growth for a burst of updates to a large file.

use s4_bench::banner;
use s4_clock::{HybridTimestamp, SimTime};
use s4_journal::conventional::{ConventionalMeta, CountingSink, N_DIRECT, PTRS_PER_BLOCK};
use s4_journal::{encode_sectors, JournalEntry, PtrChange};
use s4_lfs::{BlockAddr, BLOCK_SIZE};

fn journal_entry_bytes(lbn: u64, seq: u64) -> usize {
    let e = JournalEntry::Write {
        stamp: HybridTimestamp::new(SimTime::from_micros(seq), seq),
        old_size: (lbn + 1) * BLOCK_SIZE as u64,
        new_size: (lbn + 1) * BLOCK_SIZE as u64,
        changes: vec![PtrChange {
            lbn,
            old: BlockAddr(seq),
            new: BlockAddr(seq + 1),
        }],
    };
    e.encoded_len()
}

fn main() {
    banner(
        "Figure 2: efficiency of metadata versioning",
        "per-update metadata cost: conventional versioning vs journal-based",
    );

    let cases: [(&str, u64); 4] = [
        ("direct block", 0),
        ("single indirect", N_DIRECT + 1),
        ("double indirect", N_DIRECT + PTRS_PER_BLOCK + 1),
        (
            "triple indirect",
            N_DIRECT + PTRS_PER_BLOCK + PTRS_PER_BLOCK * PTRS_PER_BLOCK + 1,
        ),
    ];
    println!(
        "{:<18} {:>24} {:>22}",
        "updated block", "conventional (bytes)", "journal entry (bytes)"
    );
    for (name, lbn) in cases {
        let mut conv = ConventionalMeta::new();
        let mut sink = CountingSink::default();
        let cost = conv.update_block(lbn, BlockAddr(1), &mut sink);
        let conv_bytes = cost.metadata_bytes();
        let j = journal_entry_bytes(lbn, 1);
        println!(
            "{:<18} {:>17} ({} blks) {:>16}  ({:.0}x less)",
            name,
            conv_bytes,
            cost.indirect_blocks + cost.inode_blocks,
            j,
            conv_bytes as f64 / j as f64
        );
    }

    // Space growth for a burst of updates to a large (triple-indirect)
    // file — the paper's "up to 4x growth" observation.
    println!();
    let updates = 10_000u64;
    let base = N_DIRECT + PTRS_PER_BLOCK + PTRS_PER_BLOCK * PTRS_PER_BLOCK;
    let mut conv = ConventionalMeta::new();
    let mut sink = CountingSink::default();
    let mut entries = Vec::new();
    for i in 0..updates {
        let lbn = base + (i % 512);
        conv.update_block(lbn, BlockAddr(i), &mut sink);
        entries.push(JournalEntry::Write {
            stamp: HybridTimestamp::new(SimTime::from_micros(i), i),
            old_size: 0,
            new_size: 0,
            changes: vec![PtrChange {
                lbn,
                old: BlockAddr(i),
                new: BlockAddr(i + 1),
            }],
        });
    }
    let data_bytes = updates * BLOCK_SIZE as u64;
    let conv_meta = sink.blocks * BLOCK_SIZE as u64;
    // Journal entries are packed into sectors; count real packed bytes.
    let packed: usize = encode_sectors(&entries)
        .iter()
        .map(|s| s.finish(1, BlockAddr::NONE).len())
        .sum();
    println!("{updates} single-block updates to a triple-indirect file:");
    println!("  data written          : {:>12} bytes", data_bytes);
    println!(
        "  conventional metadata : {:>12} bytes ({:.2}x of data -> {:.2}x total growth)",
        conv_meta,
        conv_meta as f64 / data_bytes as f64,
        1.0 + conv_meta as f64 / data_bytes as f64
    );
    println!(
        "  journal-based metadata: {:>12} bytes ({:.4}x of data)",
        packed,
        packed as f64 / data_bytes as f64
    );
    println!();
    println!("paper: conventional versioning caused up to 4x disk-usage growth;");
    println!("journal-based metadata reduces each update to a ~60-byte entry");
}
