//! Online-reshard cost: client throughput while a live `4 → 8` split
//! migrates every residue class, versus the same workload on a steady
//! 4-shard array — plus the flip pause, the only instant a client can
//! ever be made to wait.
//!
//! The mixed PostMark-style workload (as in `fig_array`) is replayed in
//! chunks; between chunks the migration advances one split (snapshot,
//! catch-up, flip). Simulated elapsed time is the slowest member
//! drive's busy time, so the migration's historical reads, re-exports,
//! and epoch installs are all charged against throughput exactly where
//! they land.
//!
//! Acceptance: the flip pause must not exceed one shard's queue drain —
//! `queue_depth` requests at the steady per-op service time. The final
//! line is machine-readable `BENCH_JSON {...}`; the committed baseline
//! lives in `BENCH_reshard.json`.

use s4_array::{ArrayConfig, S4Array};
use s4_bench::{banner, bench_ctx};
use s4_clock::{SimClock, SimDuration};
use s4_core::{DriveConfig, ObjectId, Request, Response, S4Drive};
use s4_reshard::{split_shard, ReshardConfig};
use s4_simdisk::{DiskModelParams, MemDisk, TimedDisk};

const SHARDS: usize = 4;

/// Deterministic 64-bit LCG (same constants as MMIX).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

fn build_array() -> S4Array<TimedDisk<MemDisk>> {
    let start = SimDuration::from_secs(1);
    let drives: Vec<S4Drive<TimedDisk<MemDisk>>> = (0..SHARDS)
        .map(|i| {
            let clock = SimClock::new();
            clock.advance(start);
            let disk = TimedDisk::new(
                MemDisk::with_capacity_bytes(1 << 30),
                DiskModelParams::cheetah_9gb_10k(),
                clock.clone(),
            );
            S4Drive::format(
                disk,
                DriveConfig::default().with_oid_class(SHARDS as u64, i as u64),
                clock,
            )
            .unwrap()
        })
        .collect();
    S4Array::from_drives(drives, ArrayConfig::default()).unwrap()
}

fn populate(array: &S4Array<TimedDisk<MemDisk>>, nfiles: usize, rng: &mut Lcg) -> (Vec<ObjectId>, u64) {
    let ctx = bench_ctx();
    let mut ops = 0u64;
    let mut oids = Vec::with_capacity(nfiles);
    for _ in 0..nfiles {
        let oid = match array.dispatch(&ctx, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("unexpected response {other:?}"),
        };
        let size = 512 + (rng.next() % 8704) as usize;
        array
            .dispatch(&ctx, &Request::Write { oid, offset: 0, data: vec![0xA5; size] })
            .unwrap();
        oids.push(oid);
        ops += 2;
    }
    array.dispatch(&ctx, &Request::Sync).unwrap();
    (oids, ops + 1)
}

fn transactions(
    array: &S4Array<TimedDisk<MemDisk>>,
    oids: &[ObjectId],
    count: usize,
    rng: &mut Lcg,
) -> u64 {
    let ctx = bench_ctx();
    let mut ops = 0u64;
    for t in 0..count {
        let oid = oids[(rng.next() as usize) % oids.len()];
        let req = match rng.next() % 10 {
            0..=4 => Request::Read { oid, offset: 0, len: 512 + rng.next() % 4096, time: None },
            5..=8 => Request::Write {
                oid,
                offset: rng.next() % 4096,
                data: vec![0x5A; 512 + (rng.next() % 4096) as usize],
            },
            _ => Request::Append { oid, data: vec![0x3C; 256] },
        };
        array.dispatch(&ctx, &req).unwrap();
        ops += 1;
        if (t + 1) % 200 == 0 {
            array.dispatch(&ctx, &Request::Sync).unwrap();
            ops += 1;
        }
    }
    ops
}

/// Slowest member drive's simulated busy time since `start`.
fn elapsed_of(array: &S4Array<TimedDisk<MemDisk>>, start: SimDuration) -> SimDuration {
    (0..array.shard_count())
        .map(|s| {
            SimDuration::from_micros(
                array.shard_drive(s).clock().now().as_micros() - start.as_micros(),
            )
        })
        .max()
        .unwrap()
}

fn target_disk(clock: &SimClock) -> TimedDisk<MemDisk> {
    TimedDisk::new(
        MemDisk::with_capacity_bytes(1 << 30),
        DiskModelParams::cheetah_9gb_10k(),
        clock.clone(),
    )
}

fn main() {
    let scale: f64 = std::env::var("S4_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let nfiles = ((600.0 * scale) as usize).max(64);
    let txns = ((4_800.0 * scale) as usize).max(400);
    let start = SimDuration::from_secs(1);
    banner(
        "Online reshard: live 4 -> 8 split vs steady state",
        &format!("{nfiles} objects (512B-9KB), {txns} transactions, splits interleaved"),
    );

    // --- Steady baseline: the whole workload on an untouched array.
    let steady = build_array();
    let mut rng = Lcg(0x5345_4355);
    let (oids, mut steady_ops) = populate(&steady, nfiles, &mut rng);
    steady_ops += transactions(&steady, &oids, txns, &mut rng);
    let before_barrier = elapsed_of(&steady, start);
    // A queue drain ends in a durability barrier; measure what one
    // costs with a realistic amount of dirty state (the tail of the
    // transaction phase since the last periodic sync).
    steady.dispatch(&bench_ctx(), &Request::Sync).unwrap();
    steady_ops += 1;
    let steady_elapsed = elapsed_of(&steady, start);
    let barrier_us = (steady_elapsed.as_micros() - before_barrier.as_micros()) as f64;
    let steady_tput = steady_ops as f64 / steady_elapsed.as_secs_f64();
    // One request's steady per-shard service time, for the drain bound.
    let op_us = steady_elapsed.as_micros() as f64 * SHARDS as f64 / steady_ops as f64;
    steady.unmount().unwrap();

    // --- Migration run: identical stream, but between chunks the array
    // splits one residue class, until all four have moved.
    let migrating = build_array();
    let mut rng = Lcg(0x5345_4355);
    let (oids, mut mig_ops) = populate(&migrating, nfiles, &mut rng);
    let chunk = txns / (SHARDS + 1);
    let mut reports = Vec::new();
    for slot in 0..SHARDS {
        mig_ops += transactions(&migrating, &oids, chunk, &mut rng);
        let clock = migrating.shard_drive(slot).clock().clone();
        let report = split_shard(
            &migrating,
            slot,
            vec![target_disk(&clock)],
            ReshardConfig { lag_threshold: 0, ..ReshardConfig::default() },
        )
        .unwrap();
        reports.push(report);
    }
    mig_ops += transactions(&migrating, &oids, txns - SHARDS * chunk, &mut rng);
    assert_eq!(migrating.epoch().base, 2 * SHARDS);
    let mig_elapsed = elapsed_of(&migrating, start);
    let mig_tput = mig_ops as f64 / mig_elapsed.as_secs_f64();
    migrating.unmount().unwrap();

    let ratio = mig_tput / steady_tput;
    let snapshot: usize = reports.iter().map(|r| r.snapshot_objects).sum();
    let catchup: usize = reports.iter().map(|r| r.catchup_objects).sum();
    let final_delta: usize = reports.iter().map(|r| r.final_delta_objects).sum();
    let max_pause_us = reports
        .iter()
        .map(|r| r.flip.pause.as_micros())
        .max()
        .unwrap();
    let queue_depth = ArrayConfig::default().queue_depth;
    let drain_bound_us = queue_depth as f64 * op_us + barrier_us;

    println!(
        "{:<22} {:>10} {:>14} {:>16}",
        "run", "ops", "sim elapsed", "ops/sim-sec"
    );
    println!(
        "{:<22} {:>10} {:>13.3}s {:>16.0}",
        "steady 4 shards",
        steady_ops,
        steady_elapsed.as_secs_f64(),
        steady_tput
    );
    println!(
        "{:<22} {:>10} {:>13.3}s {:>16.0}  ({ratio:.2}x of steady)",
        "migrating 4 -> 8",
        mig_ops,
        mig_elapsed.as_secs_f64(),
        mig_tput
    );
    println!();
    println!(
        "migrated: snapshot={snapshot} catchup={catchup} final_delta={final_delta} objects \
         across {SHARDS} splits"
    );
    println!(
        "flip pauses: {}",
        reports
            .iter()
            .map(|r| format!("slot {} {}us", r.source_slot, r.flip.pause.as_micros()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "worst flip pause {max_pause_us}us vs one shard's queue drain \
         ({queue_depth} x {op_us:.0}us + {barrier_us:.0}us barrier = {drain_bound_us:.0}us)"
    );
    assert!(
        (max_pause_us as f64) <= drain_bound_us,
        "flip pause {max_pause_us}us exceeds a queue drain ({drain_bound_us:.0}us)"
    );
    assert!(
        ratio >= 0.5,
        "migration must not halve client throughput: {ratio:.2}x"
    );

    println!(
        "BENCH_JSON {{\"bench\":\"fig_reshard\",\"nfiles\":{nfiles},\
\"transactions\":{txns},\"steady_ops_per_sim_s\":{steady_tput:.0},\
\"migrating_ops_per_sim_s\":{mig_tput:.0},\"migrating_over_steady\":{ratio:.3},\
\"snapshot_objects\":{snapshot},\"catchup_objects\":{catchup},\
\"final_delta_objects\":{final_delta},\"max_flip_pause_us\":{max_pause_us},\
\"steady_barrier_us\":{barrier_us:.0},\"queue_drain_bound_us\":{drain_bound_us:.0}}}"
    );
}
