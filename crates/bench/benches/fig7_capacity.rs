//! Figure 7: projected detection window for a 10 GB history pool.
//!
//! Reproduces both halves of §5.2: the analytical projection from the
//! three workload-study write rates (AFS 143 MB/day, NT 1 GB/day,
//! Elephant 110 MB/day) and the empirical space-efficiency factors of
//! cross-version differencing and differencing + compression, measured
//! by running the delta machinery over a synthetic daily-evolving source
//! tree (standing in for the paper's CVS checkouts). Paper: differencing
//! gave ~200% improvement, compression another ~200% (500% total), for
//! windows between 50 and 470 days.

use s4_bench::banner;
use s4_capacity::{figure7_rows, measure_factors};
use s4_workloads::srctree::{self, SourceTreeConfig};

fn main() {
    banner(
        "Figure 7: projected detection window (10 GB history pool)",
        "write rates from the AFS / NT / Elephant workload studies",
    );

    // Empirical factors from the synthetic source-tree evolution.
    let tree = srctree::generate(&SourceTreeConfig::default());
    let m = measure_factors(&tree);
    println!(
        "measured space-efficiency factors over {} files x {} daily versions:",
        tree.files.len(),
        tree.files[0].versions.len()
    );
    println!(
        "  full copies {:>9} bytes | differencing {:>8} bytes ({:.2}x) | +compression {:>8} bytes ({:.2}x)",
        m.full_bytes,
        m.diff_bytes,
        m.diff_factor(),
        m.diff_compress_bytes,
        m.compress_factor()
    );
    println!("  paper: ~3x from differencing, ~5x adding compression");
    println!();

    let pool_gb = 10.0;
    println!(
        "{:<10} {:>14} {:>16} {:>22}",
        "workload", "baseline days", "+differencing", "+diff+compression"
    );
    for row in figure7_rows(pool_gb, m.diff_factor(), m.compress_factor()) {
        println!(
            "{:<10} {:>14.0} {:>16.0} {:>22.0}",
            row.profile.name, row.baseline_days, row.diff_days, row.diff_compress_days
        );
    }
    println!();
    println!("paper headline: 10GB yields >70 days (AFS), 10 days (NT), >90 days");
    println!("(Elephant) baseline; 50-470 days with differencing + compression");
}
