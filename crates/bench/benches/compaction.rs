//! In-drive cross-version differencing (§4.2.2's "future work", built):
//! how much history-pool space the cleaner's differencing pass recovers
//! on a live drive, and what that does to the effective detection
//! window.
//!
//! A synthetic development workload writes daily-edited source files
//! through the full drive stack; we then run `compact_history` and
//! compare the history pool's footprint.

use std::sync::Arc;

use s4_clock::{SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, UserId};
use s4_simdisk::{DiskModelParams, MemDisk, TimedDisk};
use s4_workloads::srctree::{self, SourceTreeConfig};

fn main() {
    let scale: f64 = std::env::var("S4_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    println!();
    println!("================================================================");
    println!("In-drive differencing: history-pool compaction on a live S4 drive");
    println!("================================================================");

    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let disk = TimedDisk::new(
        MemDisk::with_capacity_bytes(1 << 30),
        DiskModelParams::cheetah_9gb_10k(),
        clock.clone(),
    );
    let drive = Arc::new(S4Drive::format(disk, DriveConfig::default(), clock.clone()).unwrap());
    let ctx = RequestContext::user(UserId(1), ClientId(1));

    // Evolve a source tree through the drive: every daily version of
    // every file is written (and versioned) in place.
    let tree = srctree::generate(&SourceTreeConfig {
        files: ((60.0 * scale) as usize).max(10),
        ..SourceTreeConfig::default()
    });
    let mut oids = Vec::new();
    for f in &tree.files {
        let oid = drive.op_create(&ctx, None).unwrap();
        oids.push(oid);
        for v in &f.versions {
            drive.op_truncate(&ctx, oid, 0).unwrap();
            drive.op_write(&ctx, oid, 0, v).unwrap();
            drive.op_sync(&ctx).unwrap();
            clock.advance(SimDuration::from_secs(60));
        }
    }

    let geo_bytes = 128.0 * 4096.0; // blocks per segment * block size
    let before_util = drive.utilization();
    let t0 = drive.now();
    let (encoded, released) = drive.compact_history().unwrap();
    drive.log().free_dead_segments();
    drive.force_anchor().unwrap();
    let pass_time = drive.now() - t0;
    let after_util = drive.utilization();

    let files = tree.files.len();
    let days = tree.files[0].versions.len();
    println!("workload        : {files} files x {days} daily versions (through the drive)");
    println!("blocks encoded  : {encoded} history blocks -> deltas ({released} released)");
    println!(
        "pool utilization: {:.2}% -> {:.2}%  ({:.2}x space factor on the whole pool)",
        before_util * 100.0,
        after_util * 100.0,
        before_util / after_util
    );
    println!(
        "pass cost       : {:.2}s simulated ({:.1} segments of I/O equivalent)",
        pass_time.as_secs_f64(),
        pass_time.as_secs_f64() * 21e6 / geo_bytes
    );
    println!();
    println!("paper: \"once the differencing is complete, the old blocks can be");
    println!("discarded, and the difference left in its place\" — extending a 10GB");
    println!("pool's window by the measured factor (see fig7_capacity)");
}
