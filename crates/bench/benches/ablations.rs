//! Ablation studies for the design choices behind S4's performance
//! (§5.1.5's "fundamental costs" plus this reproduction's own knobs):
//!
//! 1. **Protection cost** — S4 with full protection (versioning pinned by
//!    a long window + auditing) vs the same drive with auditing off and a
//!    zero window (history reclaimed eagerly): the paper claims the
//!    fundamental costs degrade performance by <13% vs "similar systems
//!    that provide no data protection guarantees".
//! 2. **Segment size** — log batching granularity vs PostMark time.
//! 3. **Buffer-cache size** — the Figure-5 "sharp drop from 2% to 10%
//!    ... caused by the set of files expanding beyond the drive's cache".
//! 4. **Readahead** — segment-granular prefetch vs single-block reads on
//!    the creation-order read scan.

use std::sync::Arc;

use s4_bench::bench_ctx;
use s4_clock::{NetworkModel, SimClock, SimDuration};
use s4_core::{DriveConfig, S4Drive};
use s4_fs::{LoopbackTransport, S4FileServer, S4FsConfig};
use s4_lfs::LogConfig;
use s4_simdisk::{DiskModelParams, MemDisk, TimedDisk};
use s4_workloads::micro::{micro_benchmark, MicroConfig};
use s4_workloads::postmark::{self, PostmarkConfig};
use s4_workloads::replay;

fn scale() -> f64 {
    std::env::var("S4_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

fn build(dconf: DriveConfig) -> S4FileServer<LoopbackTransport<TimedDisk<MemDisk>>> {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let disk = TimedDisk::new(
        MemDisk::with_capacity_bytes(1 << 30),
        DiskModelParams::cheetah_9gb_10k(),
        clock.clone(),
    );
    let drive = Arc::new(S4Drive::format(disk, dconf, clock).unwrap());
    S4FileServer::mount(
        LoopbackTransport::new(drive, NetworkModel::lan_100mbit()),
        bench_ctx(),
        "abl",
        S4FsConfig::default(),
    )
    .unwrap()
}

fn postmark_secs(dconf: DriveConfig, pm: &postmark::PostmarkPhases) -> (f64, f64) {
    let fs = build(dconf);
    let create = replay(&fs, &pm.create);
    let txn = replay(&fs, &pm.transactions);
    assert_eq!(create.errors + txn.errors, 0);
    (create.elapsed.as_secs_f64(), txn.elapsed.as_secs_f64())
}

fn main() {
    let s = scale();
    let pm = postmark::generate(&PostmarkConfig {
        nfiles: ((2_000.0 * s) as usize).max(100),
        transactions: ((8_000.0 * s) as usize).max(400),
        ..PostmarkConfig::default()
    });

    println!();
    println!("================================================================");
    println!("Ablations: the cost of each design choice (PostMark unless noted)");
    println!("================================================================");

    // ---------------------------------------------------------- 1
    let full = postmark_secs(DriveConfig::default(), &pm);
    let unprotected = {
        let dconf = DriveConfig {
            audit_enabled: false,
            detection_window: SimDuration::ZERO,
            ..DriveConfig::default()
        };
        // Eager reclamation between phases approximates a system keeping
        // no history at all.
        let fs = build(dconf);
        let drive = fs.transport().drive().clone();
        let mut total = (0.0, 0.0);
        let t0 = drive.now();
        for chunk in pm.create.chunks(1000) {
            assert_eq!(replay(&fs, chunk).errors, 0);
            drive.expire_versions().unwrap();
            drive.log().free_dead_segments();
        }
        total.0 = (drive.now() - t0).as_secs_f64();
        let t1 = drive.now();
        for chunk in pm.transactions.chunks(1000) {
            assert_eq!(replay(&fs, chunk).errors, 0);
            drive.expire_versions().unwrap();
            drive.log().free_dead_segments();
        }
        total.1 = (drive.now() - t1).as_secs_f64();
        total
    };
    println!("[1] protection cost (versioning window + audit) vs none:");
    println!(
        "    full protection : create {:8.2}s  txns {:8.2}s",
        full.0, full.1
    );
    println!(
        "    no protection   : create {:8.2}s  txns {:8.2}s",
        unprotected.0, unprotected.1
    );
    println!(
        "    overhead        : create {:+.1}%  txns {:+.1}%   (paper: <13%)",
        (full.0 - unprotected.0) / unprotected.0 * 100.0,
        (full.1 - unprotected.1) / unprotected.1 * 100.0
    );

    // ---------------------------------------------------------- 2
    println!();
    println!("[2] segment size (log batching granularity):");
    for blocks in [32u32, 128, 512] {
        let dconf = DriveConfig {
            log: LogConfig {
                blocks_per_segment: blocks,
                ..LogConfig::default()
            },
            ..DriveConfig::default()
        };
        let (c, t) = postmark_secs(dconf, &pm);
        println!(
            "    {:>4} KiB segments: create {c:8.2}s  txns {t:8.2}s",
            blocks * 4
        );
    }

    // ---------------------------------------------------------- 3
    println!();
    println!("[3] buffer-cache size (micro-benchmark read phase):");
    let m = micro_benchmark(&MicroConfig {
        files: ((6_000.0 * s) as usize).max(200),
        ..MicroConfig::default()
    });
    for cache_mb in [2usize, 8, 32, 128] {
        let dconf = DriveConfig {
            log: LogConfig {
                cache_blocks: cache_mb * 256,
                ..LogConfig::default()
            },
            ..DriveConfig::default()
        };
        let fs = build(dconf);
        assert_eq!(replay(&fs, &m.create).errors, 0);
        let read = replay(&fs, &m.read);
        assert_eq!(read.errors, 0);
        println!(
            "    {cache_mb:>4} MB cache: read {:8.2}s",
            read.elapsed.as_secs_f64()
        );
    }

    // ---------------------------------------------------------- 4
    println!();
    println!("[4] readahead (creation-order read scan, cold-ish cache):");
    for ra in [1u32, 8, 32] {
        let dconf = DriveConfig {
            log: LogConfig {
                cache_blocks: 2048, // 8 MB: the scan must hit the disk
                readahead_blocks: ra,
                ..LogConfig::default()
            },
            ..DriveConfig::default()
        };
        let fs = build(dconf);
        assert_eq!(replay(&fs, &m.create).errors, 0);
        let read = replay(&fs, &m.read);
        assert_eq!(read.errors, 0);
        println!(
            "    {:>3}-block readahead: read {:8.2}s",
            ra,
            read.elapsed.as_secs_f64()
        );
    }
}
