//! Tracing overhead: the 8-client stress workload on a 4-shard array,
//! with request tracing on (the default) vs. off.
//!
//! Every dispatch already persists a v1 flight-recorder record; tracing
//! adds the entry-point id stamp, the 10 extra v2 bytes, the per-layer
//! latency histograms, and the tail-latency exemplar buffer. The claim
//! (DESIGN §6j) is that the whole causal-tracing pipeline costs at most
//! 5% of client throughput. Eight threads hammer the array in-process
//! (the transport stamp is one branch and an atomic increment — the
//! interesting cost is inside the drives), wall clock is taken per
//! round, and the configs are interleaved best-of-N so background noise
//! hits both equally.
//!
//! The final line is machine-readable: `BENCH_JSON {...}` — the
//! committed baseline lives in `BENCH_trace.json`.

use std::sync::Arc;

use s4_array::{ArrayConfig, S4Array};
use s4_bench::banner;
use s4_clock::{SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, ObjectId, Request, RequestContext, Response, UserId};
use s4_simdisk::MemDisk;

const SHARDS: usize = 4;
const CLIENTS: u32 = 8;
const ROUNDS: usize = 5;

/// Deterministic 64-bit LCG (same constants as MMIX).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// One full 8-client stress run; returns the wall-clock seconds of the
/// client phase and the array (still live) for post-run inspection.
fn run(trace: bool, ops_per_client: u64) -> (f64, Arc<S4Array<MemDisk>>) {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let devices = (0..SHARDS)
        .map(|_| MemDisk::with_capacity_bytes(256 << 20))
        .collect();
    let array = Arc::new(
        S4Array::format(
            devices,
            DriveConfig::small_test(),
            ArrayConfig {
                trace,
                ..ArrayConfig::default()
            },
            clock,
        )
        .unwrap(),
    );

    let t0 = std::time::Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let a = Arc::clone(&array);
            std::thread::spawn(move || {
                let ctx = RequestContext::user(UserId(100 + c), ClientId(c));
                let mut rng = Lcg(0x7452_4143 ^ u64::from(c));
                let oid = match a.dispatch(&ctx, &Request::Create).unwrap() {
                    Response::Created(oid) => oid,
                    other => panic!("unexpected response {other:?}"),
                };
                let mut oids: Vec<ObjectId> = vec![oid];
                for t in 0..ops_per_client {
                    let oid = oids[(rng.next() as usize) % oids.len()];
                    let req = match rng.next() % 10 {
                        0 => Request::Create,
                        1..=4 => Request::Read {
                            oid,
                            offset: 0,
                            len: 256 + rng.next() % 2048,
                            time: None,
                        },
                        5..=8 => Request::Write {
                            oid,
                            offset: rng.next() % 2048,
                            data: vec![0x5A; 256 + (rng.next() % 2048) as usize],
                        },
                        _ => Request::Append {
                            oid,
                            data: vec![0x3C; 128],
                        },
                    };
                    if let Response::Created(oid) = a.dispatch(&ctx, &req).unwrap() {
                        oids.push(oid);
                    }
                    if (t + 1) % 500 == 0 {
                        a.dispatch(&ctx, &Request::Sync).unwrap();
                    }
                }
                a.dispatch(&ctx, &Request::Sync).unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    (t0.elapsed().as_secs_f64(), array)
}

fn main() {
    let scale: f64 = std::env::var("S4_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let ops_per_client = ((3_000.0 * scale) as u64).max(500);
    banner(
        "Tracing overhead: 8-client stress, tracing on vs off",
        &format!("{SHARDS} shards, {CLIENTS} clients x {ops_per_client} ops, best of {ROUNDS}"),
    );

    // Warm-up round (page-cache, allocator, thread pools) then the
    // interleaved measurement rounds.
    let _ = run(true, ops_per_client.min(500));

    let mut traced_walls = Vec::with_capacity(ROUNDS);
    let mut plain_walls = Vec::with_capacity(ROUNDS);
    let mut traces_assembled = 0usize;
    println!("{:<8} {:>14} {:>14}", "round", "traced", "untraced");
    for round in 0..ROUNDS {
        let (tw, traced_array) = run(true, ops_per_client);
        let (pw, plain_array) = run(false, ops_per_client);
        println!("{:<8} {:>13.3}s {:>13.3}s", round, tw, pw);
        traced_walls.push(tw);
        plain_walls.push(pw);
        if round == 0 {
            // Sanity on the datapoint itself: the traced run really
            // produced assemblable causal trees, the untraced one none.
            let admin = RequestContext::admin(ClientId(0), 42);
            traces_assembled = traced_array.assemble_all_traces(&admin).unwrap().len();
            let plain = plain_array.assemble_all_traces(&admin).unwrap().len();
            assert!(traces_assembled > 0, "traced run assembled no traces");
            assert_eq!(plain, 0, "untraced run must not record trace ids");
        }
        // Threads are joined, so each Arc is sole-owned again.
        for a in [traced_array, plain_array] {
            Arc::try_unwrap(a)
                .unwrap_or_else(|_| panic!("client thread still holds the array"))
                .unmount()
                .unwrap();
        }
    }

    let best = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let (traced, plain) = (best(&traced_walls), best(&plain_walls));
    let overhead = traced / plain - 1.0;
    let ops = u64::from(CLIENTS) * ops_per_client;
    println!();
    println!(
        "best-of-{ROUNDS}: traced {traced:.3}s, untraced {plain:.3}s -> overhead {:.1}% \
         (acceptance: <= 5%), {traces_assembled} traces assembled",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.05,
        "tracing overhead {:.2}% exceeds the 5% budget",
        overhead * 100.0
    );

    println!(
        "BENCH_JSON {{\"bench\":\"fig_trace\",\"shards\":{SHARDS},\"clients\":{CLIENTS},\
\"ops_per_client\":{ops_per_client},\"total_ops\":{ops},\
\"wall_traced_s\":{traced:.4},\"wall_untraced_s\":{plain:.4},\
\"overhead_frac\":{overhead:.4},\"traces_assembled\":{traces_assembled}}}"
    );
}
