//! Fault injection for crash-recovery and failure testing.
//!
//! [`FaultyDisk`] wraps any [`BlockDev`] and applies a [`FaultPlan`]:
//! after a configured number of counted requests the device can tear the
//! in-flight write (persist only a prefix of its sectors) and/or fail
//! permanently. Integration tests use this to emulate power loss
//! mid-segment and verify that remount recovers a consistent state from
//! the log.
//!
//! Which request classes count toward the fault trigger is controlled by
//! [`RequestClassMask`]. Historically only `write()` requests counted,
//! which made crash points *between* a data write and its `sync()`
//! unreachable; plans can now count sync and read requests too. A fault
//! that fires on a write tears it per [`FaultPlan::torn`] — a
//! [`TornPattern`] deciding sector-by-sector what persists (prefix,
//! interleaved, or holed); a fault that fires on a sync or read simply
//! fails the request (there is nothing to tear).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::dev::{BlockDev, DiskError};
use crate::SECTOR_SIZE;

/// Bitmask of request classes that count toward (and may trigger) a
/// [`FaultPlan`].
///
/// Plain `u8`-backed newtype — no external bitflags dependency. Combine
/// with [`RequestClassMask::union`] or the `|` operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestClassMask(u8);

impl RequestClassMask {
    /// Write requests.
    pub const WRITES: RequestClassMask = RequestClassMask(0b001);
    /// Sync (flush/barrier) requests.
    pub const SYNCS: RequestClassMask = RequestClassMask(0b010);
    /// Read requests.
    pub const READS: RequestClassMask = RequestClassMask(0b100);
    /// Every request class.
    pub const ALL: RequestClassMask = RequestClassMask(0b111);
    /// No request class (the plan can never fire).
    pub const NONE: RequestClassMask = RequestClassMask(0);

    /// Union of two masks.
    pub const fn union(self, other: RequestClassMask) -> RequestClassMask {
        RequestClassMask(self.0 | other.0)
    }

    /// True if every class in `other` is present in `self`.
    pub const fn contains(self, other: RequestClassMask) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for RequestClassMask {
    type Output = RequestClassMask;
    fn bitor(self, rhs: RequestClassMask) -> RequestClassMask {
        self.union(rhs)
    }
}

/// Sector-level persistence shape of a torn write: which sectors of the
/// offending multi-sector write actually reach the platter before power
/// dies. Real disks reorder sectors within a queued write, so a crash
/// can persist an arbitrary subset — not just a prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TornPattern {
    /// Persist only the first `n` sectors (the historical behaviour;
    /// `Prefix(0)` drops the write entirely).
    Prefix(u64),
    /// Persist alternating sectors, keeping those whose index within the
    /// write is congruent to `phase` (mod 2) — the interleaved loss a
    /// disk's zig-zag servo scheduling can produce.
    Interleaved {
        /// Parity of the sector indices that persist (0 or 1).
        phase: u64,
    },
    /// Persist everything except a hole of `len` sectors starting at
    /// index `start` within the write — a dropped DMA chunk mid-write.
    Holed {
        /// First lost sector index within the write.
        start: u64,
        /// Number of consecutive lost sectors.
        len: u64,
    },
}

impl TornPattern {
    /// Whether sector `index` (within the torn write) persists.
    pub fn keeps(self, index: u64) -> bool {
        match self {
            TornPattern::Prefix(n) => index < n,
            TornPattern::Interleaved { phase } => index % 2 == phase % 2,
            TornPattern::Holed { start, len } => index < start || index >= start + len,
        }
    }
}

/// How the fault manifests once the trigger count is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// The historical crash model: the firing write tears per
    /// [`FaultPlan::torn`], then (with `die_after_fault`) the whole
    /// device refuses requests until [`FaultyDisk::revive`].
    PowerLoss,
    /// Whole-member death: the firing request and every request after it
    /// fail with [`DiskError::DeviceFailed`], permanently (no revive is
    /// expected — the member is replaced, not rebooted). Nothing tears:
    /// the failing request performs no I/O at all.
    MemberDeath,
    /// A flaky-but-alive medium: every `period`-th counted request (from
    /// the trigger onward) fails with a transient [`DiskError::Io`]; the
    /// device never dies and intervening requests succeed. Exercises
    /// bounded-retry paths.
    Intermittent {
        /// Counted requests between consecutive transient failures
        /// (clamped to at least 1).
        period: u64,
    },
}

/// What should go wrong, and when.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Number of counted requests to let through untouched before the
    /// fault fires. `u64::MAX` means never. (The name predates
    /// [`FaultPlan::counted`]; with a wider mask it counts every request
    /// class in the mask, not just writes.)
    pub writes_until_fault: u64,
    /// When the fault fires on a write, which sectors of the offending
    /// write persist. Ignored when the fault fires on a sync or read.
    pub torn: TornPattern,
    /// If true, every request after the fault fails with
    /// [`DiskError::DeviceFailed`] until [`FaultyDisk::revive`] is called —
    /// emulating power loss.
    pub die_after_fault: bool,
    /// Which request classes count toward `writes_until_fault`. Defaults
    /// to [`RequestClassMask::WRITES`] in the stock constructors, matching
    /// the historical behaviour.
    pub counted: RequestClassMask,
    /// How the fault manifests (power loss, member death, intermittent).
    pub mode: FaultMode,
}

impl FaultPlan {
    /// A plan that never faults.
    pub fn none() -> Self {
        FaultPlan {
            writes_until_fault: u64::MAX,
            torn: TornPattern::Prefix(0),
            die_after_fault: false,
            counted: RequestClassMask::WRITES,
            mode: FaultMode::PowerLoss,
        }
    }

    /// A plan that never faults but counts requests of the given classes,
    /// observable via [`FaultyDisk::requests_seen`] — used to measure a
    /// workload's fault domain before enumerating injection points.
    pub fn count_only(counted: RequestClassMask) -> Self {
        FaultPlan {
            writes_until_fault: u64::MAX,
            torn: TornPattern::Prefix(0),
            die_after_fault: false,
            counted,
            mode: FaultMode::PowerLoss,
        }
    }

    /// Power loss after `n` successful writes, tearing the (n+1)-th write
    /// to a `torn_sectors`-sector prefix. Only writes count.
    pub fn power_loss_after_writes(n: u64, torn_sectors: u64) -> Self {
        FaultPlan {
            writes_until_fault: n,
            torn: TornPattern::Prefix(torn_sectors),
            die_after_fault: true,
            counted: RequestClassMask::WRITES,
            mode: FaultMode::PowerLoss,
        }
    }

    /// Power loss after `n` counted requests of the given classes, tearing
    /// the offending request to a `torn_sectors`-sector prefix if it is a
    /// write.
    pub fn power_loss_after_requests(
        n: u64,
        torn_sectors: u64,
        counted: RequestClassMask,
    ) -> Self {
        FaultPlan {
            writes_until_fault: n,
            torn: TornPattern::Prefix(torn_sectors),
            die_after_fault: true,
            counted,
            mode: FaultMode::PowerLoss,
        }
    }

    /// Power loss after `n` counted requests, tearing the offending write
    /// per an arbitrary [`TornPattern`].
    pub fn power_loss_with_pattern(
        n: u64,
        torn: TornPattern,
        counted: RequestClassMask,
    ) -> Self {
        FaultPlan {
            writes_until_fault: n,
            torn,
            die_after_fault: true,
            counted,
            mode: FaultMode::PowerLoss,
        }
    }

    /// Whole-member death after `n` counted requests: the (n+1)-th
    /// counted request and everything after it fail with
    /// [`DiskError::DeviceFailed`].
    pub fn member_death_after_requests(n: u64, counted: RequestClassMask) -> Self {
        FaultPlan {
            writes_until_fault: n,
            torn: TornPattern::Prefix(0),
            die_after_fault: true,
            counted,
            mode: FaultMode::MemberDeath,
        }
    }

    /// Intermittent transient I/O errors: starting at counted request
    /// `start`, every `period`-th counted request fails with a transient
    /// [`DiskError::Io`]; the device stays alive throughout.
    pub fn intermittent_io(start: u64, period: u64, counted: RequestClassMask) -> Self {
        FaultPlan {
            writes_until_fault: start,
            torn: TornPattern::Prefix(0),
            die_after_fault: false,
            counted,
            mode: FaultMode::Intermittent { period },
        }
    }
}

/// A [`BlockDev`] wrapper that injects faults per a [`FaultPlan`].
pub struct FaultyDisk<D: BlockDev> {
    inner: D,
    plan: FaultPlan,
    /// Live copy of `plan.writes_until_fault`; set to `u64::MAX` on revive
    /// so the fault does not re-fire.
    armed_at: AtomicU64,
    requests_seen: AtomicU64,
    dead: AtomicBool,
}

impl<D: BlockDev> FaultyDisk<D> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        FaultyDisk {
            inner,
            plan,
            armed_at: AtomicU64::new(plan.writes_until_fault),
            requests_seen: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        }
    }

    /// True once the fault has fired and the device is refusing requests.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Brings a dead device back to life ("reboot"): subsequent requests
    /// succeed and observe whatever was actually persisted.
    pub fn revive(&self) {
        self.dead.store(false, Ordering::SeqCst);
        // Disarm the plan so the fault does not re-fire.
        self.armed_at.store(u64::MAX, Ordering::SeqCst);
    }

    /// Consumes the wrapper, returning the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Returns a reference to the inner device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Counted requests observed so far (only classes in the plan's
    /// [`RequestClassMask`] increment this).
    pub fn requests_seen(&self) -> u64 {
        self.requests_seen.load(Ordering::SeqCst)
    }

    /// Counts one request of class `class` against the plan.
    fn count(&self, class: RequestClassMask) -> Counted {
        if !self.plan.counted.contains(class) {
            return Counted::Pass;
        }
        let armed_at = self.armed_at.load(Ordering::SeqCst);
        let n = self.requests_seen.fetch_add(1, Ordering::SeqCst);
        if let FaultMode::Intermittent { period } = self.plan.mode {
            return if armed_at != u64::MAX
                && n >= armed_at
                && (n - armed_at).is_multiple_of(period.max(1))
            {
                Counted::Fire
            } else {
                Counted::Pass
            };
        }
        if n == armed_at {
            Counted::Fire
        } else if n > armed_at && self.plan.die_after_fault {
            Counted::Dead
        } else {
            Counted::Pass
        }
    }

    /// Handles a firing fault on a read or sync (no data to tear).
    fn fire_simple(&self, what: &str) -> DiskError {
        match self.plan.mode {
            FaultMode::MemberDeath => {
                self.dead.store(true, Ordering::SeqCst);
                DiskError::DeviceFailed
            }
            FaultMode::Intermittent { .. } => DiskError::Io(format!("injected {what} fault")),
            FaultMode::PowerLoss => {
                if self.plan.die_after_fault {
                    self.dead.store(true, Ordering::SeqCst);
                }
                DiskError::Io(format!("injected {what} fault"))
            }
        }
    }
}

/// Outcome of counting one request against the plan.
enum Counted {
    /// Request proceeds normally.
    Pass,
    /// The fault fires on this request.
    Fire,
    /// The fault already fired and the plan kills later requests.
    Dead,
}

impl<D: BlockDev> BlockDev for FaultyDisk<D> {
    fn num_sectors(&self) -> u64 {
        self.inner.num_sectors()
    }

    fn read(&self, sector: u64, buf: &mut [u8]) -> Result<(), DiskError> {
        if self.is_dead() {
            return Err(DiskError::DeviceFailed);
        }
        match self.count(RequestClassMask::READS) {
            Counted::Fire => Err(self.fire_simple("read")),
            Counted::Dead => Err(DiskError::DeviceFailed),
            Counted::Pass => self.inner.read(sector, buf),
        }
    }

    fn write(&self, sector: u64, buf: &[u8]) -> Result<(), DiskError> {
        if self.is_dead() {
            return Err(DiskError::DeviceFailed);
        }
        match self.count(RequestClassMask::WRITES) {
            Counted::Fire => {
                match self.plan.mode {
                    FaultMode::MemberDeath => {
                        self.dead.store(true, Ordering::SeqCst);
                        return Err(DiskError::DeviceFailed);
                    }
                    // A transient write failure persists nothing: the
                    // controller fails before touching the medium, so the
                    // caller can safely retry.
                    FaultMode::Intermittent { .. } => {
                        return Err(DiskError::Io("injected write fault".into()));
                    }
                    FaultMode::PowerLoss => {}
                }
                // Tear the write: persist only the sectors the pattern
                // keeps, as maximal contiguous runs.
                let nsectors = buf.len().div_ceil(SECTOR_SIZE) as u64;
                let mut run_start: Option<u64> = None;
                for i in 0..=nsectors {
                    let keep = i < nsectors && self.plan.torn.keeps(i);
                    match (keep, run_start) {
                        (true, None) => run_start = Some(i),
                        (false, Some(s)) => {
                            let lo = (s as usize) * SECTOR_SIZE;
                            let hi = ((i as usize) * SECTOR_SIZE).min(buf.len());
                            self.inner.write(sector + s, &buf[lo..hi])?;
                            run_start = None;
                        }
                        _ => {}
                    }
                }
                if self.plan.die_after_fault {
                    self.dead.store(true, Ordering::SeqCst);
                }
                Err(DiskError::Io("injected torn write".into()))
            }
            Counted::Dead => Err(DiskError::DeviceFailed),
            Counted::Pass => self.inner.write(sector, buf),
        }
    }

    fn sync(&self) -> Result<(), DiskError> {
        if self.is_dead() {
            return Err(DiskError::DeviceFailed);
        }
        match self.count(RequestClassMask::SYNCS) {
            Counted::Fire => Err(self.fire_simple("sync")),
            Counted::Dead => Err(DiskError::DeviceFailed),
            Counted::Pass => self.inner.sync(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::MemDisk;

    #[test]
    fn no_fault_plan_is_transparent() {
        let d = FaultyDisk::new(MemDisk::new(64), FaultPlan::none());
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        let mut out = [0u8; SECTOR_SIZE];
        d.read(0, &mut out).unwrap();
        assert_eq!(out[0], 1);
    }

    #[test]
    fn torn_write_persists_prefix_only() {
        let d = FaultyDisk::new(MemDisk::new(64), FaultPlan::power_loss_after_writes(1, 1));
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        // This 4-sector write tears after 1 sector.
        let err = d.write(8, &[2u8; SECTOR_SIZE * 4]).unwrap_err();
        assert!(matches!(err, DiskError::Io(_)));
        assert!(d.is_dead());
        assert!(matches!(
            d.read(0, &mut [0u8; SECTOR_SIZE]),
            Err(DiskError::DeviceFailed)
        ));

        d.revive();
        let mut out = [0u8; SECTOR_SIZE];
        d.read(8, &mut out).unwrap();
        assert_eq!(out[0], 2, "first torn sector persisted");
        d.read(9, &mut out).unwrap();
        assert_eq!(out[0], 0, "later sectors of torn write lost");
    }

    #[test]
    fn interleaved_tear_keeps_alternating_sectors() {
        for phase in [0u64, 1] {
            let d = FaultyDisk::new(
                MemDisk::new(64),
                FaultPlan::power_loss_with_pattern(
                    0,
                    TornPattern::Interleaved { phase },
                    RequestClassMask::WRITES,
                ),
            );
            assert!(d.write(8, &[9u8; SECTOR_SIZE * 4]).is_err());
            d.revive();
            for i in 0..4u64 {
                let mut out = [0u8; SECTOR_SIZE];
                d.read(8 + i, &mut out).unwrap();
                let expect = if i % 2 == phase { 9 } else { 0 };
                assert_eq!(out[0], expect, "sector {i} phase {phase}");
            }
        }
    }

    #[test]
    fn holed_tear_loses_middle_run_only() {
        let d = FaultyDisk::new(
            MemDisk::new(64),
            FaultPlan::power_loss_with_pattern(
                0,
                TornPattern::Holed { start: 1, len: 2 },
                RequestClassMask::WRITES,
            ),
        );
        assert!(d.write(0, &[5u8; SECTOR_SIZE * 4]).is_err());
        d.revive();
        for (i, expect) in [(0u64, 5u8), (1, 0), (2, 0), (3, 5)] {
            let mut out = [0u8; SECTOR_SIZE];
            d.read(i, &mut out).unwrap();
            assert_eq!(out[0], expect, "sector {i}");
        }
    }

    #[test]
    fn torn_pattern_keep_decisions() {
        assert!(TornPattern::Prefix(2).keeps(1));
        assert!(!TornPattern::Prefix(2).keeps(2));
        assert!(TornPattern::Interleaved { phase: 0 }.keeps(4));
        assert!(!TornPattern::Interleaved { phase: 0 }.keeps(3));
        assert!(TornPattern::Holed { start: 2, len: 3 }.keeps(1));
        assert!(!TornPattern::Holed { start: 2, len: 3 }.keeps(4));
        assert!(TornPattern::Holed { start: 2, len: 3 }.keeps(5));
    }

    #[test]
    fn revive_disarms_plan() {
        let d = FaultyDisk::new(MemDisk::new(64), FaultPlan::power_loss_after_writes(0, 0));
        assert!(d.write(0, &[1u8; SECTOR_SIZE]).is_err());
        d.revive();
        for i in 0..10 {
            d.write(i, &[3u8; SECTOR_SIZE]).unwrap();
        }
    }

    #[test]
    fn writes_only_mask_ignores_sync_and_reads() {
        // Fault after 1 counted request, writes-only: sync and read must
        // neither count nor fire.
        let d = FaultyDisk::new(MemDisk::new(64), FaultPlan::power_loss_after_writes(1, 0));
        d.sync().unwrap();
        d.read(0, &mut [0u8; SECTOR_SIZE]).unwrap();
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        d.sync().unwrap();
        assert!(d.write(1, &[2u8; SECTOR_SIZE]).is_err());
        assert!(d.is_dead());
    }

    #[test]
    fn sync_counts_and_fires_with_syncs_mask() {
        let mask = RequestClassMask::WRITES | RequestClassMask::SYNCS;
        let d = FaultyDisk::new(
            MemDisk::new(64),
            FaultPlan::power_loss_after_requests(2, 0, mask),
        );
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap(); // request 0
        d.sync().unwrap(); // request 1
        let err = d.sync().unwrap_err(); // request 2: fires
        assert!(matches!(err, DiskError::Io(_)));
        assert!(d.is_dead());
        d.revive();
        // The write before the fault persisted.
        let mut out = [0u8; SECTOR_SIZE];
        d.read(0, &mut out).unwrap();
        assert_eq!(out[0], 1);
    }

    #[test]
    fn read_counts_and_fires_with_reads_mask() {
        let d = FaultyDisk::new(
            MemDisk::new(64),
            FaultPlan::power_loss_after_requests(1, 0, RequestClassMask::ALL),
        );
        d.write(0, &[7u8; SECTOR_SIZE]).unwrap(); // request 0
        let err = d.read(0, &mut [0u8; SECTOR_SIZE]).unwrap_err(); // request 1: fires
        assert!(matches!(err, DiskError::Io(_)));
        assert!(d.is_dead());
    }

    #[test]
    fn fault_on_sync_loses_nothing_already_written() {
        // A fault firing on sync must not tear or drop prior writes: the
        // crash point sits between a data write and its barrier.
        let mask = RequestClassMask::WRITES | RequestClassMask::SYNCS;
        let d = FaultyDisk::new(
            MemDisk::new(64),
            FaultPlan::power_loss_after_requests(3, 0, mask),
        );
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap(); // 0
        d.write(1, &[2u8; SECTOR_SIZE]).unwrap(); // 1
        d.write(2, &[3u8; SECTOR_SIZE]).unwrap(); // 2
        assert!(d.sync().is_err()); // 3: fires
        d.revive();
        for (i, v) in [1u8, 2, 3].iter().enumerate() {
            let mut out = [0u8; SECTOR_SIZE];
            d.read(i as u64, &mut out).unwrap();
            assert_eq!(out[0], *v);
        }
    }

    #[test]
    fn member_death_fails_everything_without_tearing() {
        let d = FaultyDisk::new(
            MemDisk::new(64),
            FaultPlan::member_death_after_requests(1, RequestClassMask::WRITES),
        );
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap(); // request 0
        assert!(matches!(
            d.write(1, &[2u8; SECTOR_SIZE * 4]),
            Err(DiskError::DeviceFailed)
        ));
        assert!(d.is_dead());
        // Reads die too (whole-member death, not a media error).
        assert!(matches!(
            d.read(0, &mut [0u8; SECTOR_SIZE]),
            Err(DiskError::DeviceFailed)
        ));
        // The failing write persisted nothing.
        d.revive();
        let mut out = [0u8; SECTOR_SIZE];
        d.read(1, &mut out).unwrap();
        assert_eq!(out[0], 0, "dead member's write never reached the medium");
        d.read(0, &mut out).unwrap();
        assert_eq!(out[0], 1, "pre-death write intact");
    }

    #[test]
    fn intermittent_fails_periodically_and_stays_alive() {
        let d = FaultyDisk::new(
            MemDisk::new(64),
            FaultPlan::intermittent_io(2, 3, RequestClassMask::WRITES),
        );
        let mut outcomes = Vec::new();
        for i in 0..9u64 {
            outcomes.push(d.write(i, &[7u8; SECTOR_SIZE]).is_ok());
        }
        // Requests 2, 5, 8 fail; everything else succeeds.
        assert_eq!(
            outcomes,
            vec![true, true, false, true, true, false, true, true, false]
        );
        assert!(!d.is_dead());
        // Failed writes persisted nothing; successful ones did.
        d.revive();
        let mut out = [0u8; SECTOR_SIZE];
        d.read(2, &mut out).unwrap();
        assert_eq!(out[0], 0);
        d.read(3, &mut out).unwrap();
        assert_eq!(out[0], 7);
    }

    #[test]
    fn count_only_observes_without_firing() {
        let d = FaultyDisk::new(MemDisk::new(64), FaultPlan::count_only(RequestClassMask::ALL));
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        d.sync().unwrap();
        d.read(0, &mut [0u8; SECTOR_SIZE]).unwrap();
        assert_eq!(d.requests_seen(), 3);
        assert!(!d.is_dead());
    }

    #[test]
    fn mask_ops() {
        let m = RequestClassMask::WRITES | RequestClassMask::READS;
        assert!(m.contains(RequestClassMask::WRITES));
        assert!(m.contains(RequestClassMask::READS));
        assert!(!m.contains(RequestClassMask::SYNCS));
        assert!(RequestClassMask::ALL.contains(m));
        assert!(!RequestClassMask::NONE.contains(RequestClassMask::WRITES));
    }
}
