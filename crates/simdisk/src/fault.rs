//! Fault injection for crash-recovery and failure testing.
//!
//! [`FaultyDisk`] wraps any [`BlockDev`] and applies a [`FaultPlan`]:
//! after a configured number of writes the device can tear the in-flight
//! write (persist only a prefix of its sectors) and/or fail permanently.
//! Integration tests use this to emulate power loss mid-segment and verify
//! that remount recovers a consistent state from the log.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::dev::{BlockDev, DiskError};
use crate::SECTOR_SIZE;

/// What should go wrong, and when.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Number of write requests to let through untouched before the fault
    /// fires. `u64::MAX` means never.
    pub writes_until_fault: u64,
    /// When the fault fires, persist only this many sectors of the
    /// offending write (0 = drop it entirely).
    pub torn_write_sectors: u64,
    /// If true, every request after the fault fails with
    /// [`DiskError::DeviceFailed`] until [`FaultyDisk::revive`] is called —
    /// emulating power loss.
    pub die_after_fault: bool,
}

impl FaultPlan {
    /// A plan that never faults.
    pub fn none() -> Self {
        FaultPlan {
            writes_until_fault: u64::MAX,
            torn_write_sectors: 0,
            die_after_fault: false,
        }
    }

    /// Power loss after `n` successful writes, tearing the (n+1)-th write
    /// to `torn_sectors` sectors.
    pub fn power_loss_after_writes(n: u64, torn_sectors: u64) -> Self {
        FaultPlan {
            writes_until_fault: n,
            torn_write_sectors: torn_sectors,
            die_after_fault: true,
        }
    }
}

/// A [`BlockDev`] wrapper that injects faults per a [`FaultPlan`].
pub struct FaultyDisk<D: BlockDev> {
    inner: D,
    plan: FaultPlan,
    /// Live copy of `plan.writes_until_fault`; set to `u64::MAX` on revive
    /// so the fault does not re-fire.
    armed_at: AtomicU64,
    writes_seen: AtomicU64,
    dead: AtomicBool,
}

impl<D: BlockDev> FaultyDisk<D> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        FaultyDisk {
            inner,
            plan,
            armed_at: AtomicU64::new(plan.writes_until_fault),
            writes_seen: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        }
    }

    /// True once the fault has fired and the device is refusing requests.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Brings a dead device back to life ("reboot"): subsequent requests
    /// succeed and observe whatever was actually persisted.
    pub fn revive(&self) {
        self.dead.store(false, Ordering::SeqCst);
        // Disarm the plan so the fault does not re-fire.
        self.armed_at.store(u64::MAX, Ordering::SeqCst);
    }

    /// Consumes the wrapper, returning the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Returns a reference to the inner device.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: BlockDev> BlockDev for FaultyDisk<D> {
    fn num_sectors(&self) -> u64 {
        self.inner.num_sectors()
    }

    fn read(&self, sector: u64, buf: &mut [u8]) -> Result<(), DiskError> {
        if self.is_dead() {
            return Err(DiskError::DeviceFailed);
        }
        self.inner.read(sector, buf)
    }

    fn write(&self, sector: u64, buf: &[u8]) -> Result<(), DiskError> {
        if self.is_dead() {
            return Err(DiskError::DeviceFailed);
        }
        let armed_at = self.armed_at.load(Ordering::SeqCst);
        let n = self.writes_seen.fetch_add(1, Ordering::SeqCst);
        if n == armed_at {
            // Tear the write: persist only a prefix.
            let keep = (self.plan.torn_write_sectors as usize * SECTOR_SIZE).min(buf.len());
            if keep > 0 {
                self.inner.write(sector, &buf[..keep])?;
            }
            if self.plan.die_after_fault {
                self.dead.store(true, Ordering::SeqCst);
            }
            return Err(DiskError::Io("injected torn write".into()));
        }
        if n > armed_at && self.plan.die_after_fault {
            return Err(DiskError::DeviceFailed);
        }
        self.inner.write(sector, buf)
    }

    fn sync(&self) -> Result<(), DiskError> {
        if self.is_dead() {
            return Err(DiskError::DeviceFailed);
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::MemDisk;

    #[test]
    fn no_fault_plan_is_transparent() {
        let d = FaultyDisk::new(MemDisk::new(64), FaultPlan::none());
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        let mut out = [0u8; SECTOR_SIZE];
        d.read(0, &mut out).unwrap();
        assert_eq!(out[0], 1);
    }

    #[test]
    fn torn_write_persists_prefix_only() {
        let d = FaultyDisk::new(MemDisk::new(64), FaultPlan::power_loss_after_writes(1, 1));
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        // This 4-sector write tears after 1 sector.
        let err = d.write(8, &[2u8; SECTOR_SIZE * 4]).unwrap_err();
        assert!(matches!(err, DiskError::Io(_)));
        assert!(d.is_dead());
        assert!(matches!(
            d.read(0, &mut [0u8; SECTOR_SIZE]),
            Err(DiskError::DeviceFailed)
        ));

        d.revive();
        let mut out = [0u8; SECTOR_SIZE];
        d.read(8, &mut out).unwrap();
        assert_eq!(out[0], 2, "first torn sector persisted");
        d.read(9, &mut out).unwrap();
        assert_eq!(out[0], 0, "later sectors of torn write lost");
    }

    #[test]
    fn revive_disarms_plan() {
        let d = FaultyDisk::new(MemDisk::new(64), FaultPlan::power_loss_after_writes(0, 0));
        assert!(d.write(0, &[1u8; SECTOR_SIZE]).is_err());
        d.revive();
        for i in 0..10 {
            d.write(i, &[3u8; SECTOR_SIZE]).unwrap();
        }
    }
}
