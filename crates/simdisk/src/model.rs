//! Mechanical disk service-time model.
//!
//! Calibrated by default to the paper's 9 GB 10,000 RPM Seagate Cheetah
//! (≈0.8 ms track-to-track seek, ≈5.2 ms average seek, 3 ms average
//! rotational latency, ≈21 MB/s media rate). The model tracks head
//! position so sequential transfers (the LFS segment-write case) pay only
//! media transfer time, while scattered synchronous writes (the FFS
//! baseline case) pay seek + rotation per request — the asymmetry the
//! paper's Figure 3 result rests on.

use s4_clock::SimDuration;

/// Static parameters of the mechanical model.
#[derive(Clone, Copy, Debug)]
pub struct DiskModelParams {
    /// Sectors per track; together with the sector count this fixes the
    /// cylinder count used for seek-distance computation.
    pub sectors_per_track: u64,
    /// Minimum (track-to-track) seek time.
    pub min_seek: SimDuration,
    /// Average seek time (one third of a full-stroke seek, per convention).
    pub avg_seek: SimDuration,
    /// Full-stroke seek time.
    pub max_seek: SimDuration,
    /// Time for one full platter rotation.
    pub rotation: SimDuration,
    /// Media transfer rate in bytes per second.
    pub transfer_bytes_per_sec: u64,
    /// Fixed per-request controller/command overhead.
    pub command_overhead: SimDuration,
}

impl DiskModelParams {
    /// The paper's server disk: Seagate Cheetah 9 GB, 10,000 RPM Ultra2
    /// SCSI.
    pub fn cheetah_9gb_10k() -> Self {
        DiskModelParams {
            sectors_per_track: 334, // ~170 KB tracks
            min_seek: SimDuration::from_micros(800),
            avg_seek: SimDuration::from_micros(5_200),
            max_seek: SimDuration::from_micros(10_600),
            rotation: SimDuration::from_micros(6_000), // 10,000 RPM
            transfer_bytes_per_sec: 21_000_000,
            command_overhead: SimDuration::from_micros(100),
        }
    }

    /// A "free" disk with no mechanical costs, for logic-only tests.
    pub fn free() -> Self {
        DiskModelParams {
            sectors_per_track: 1024,
            min_seek: SimDuration::ZERO,
            avg_seek: SimDuration::ZERO,
            max_seek: SimDuration::ZERO,
            rotation: SimDuration::ZERO,
            transfer_bytes_per_sec: u64::MAX,
            command_overhead: SimDuration::ZERO,
        }
    }
}

/// Stateful service-time model: remembers where the head is and where the
/// platter is in its rotation.
#[derive(Clone, Debug)]
pub struct DiskModel {
    params: DiskModelParams,
    num_cylinders: u64,
    /// Track the head currently sits on.
    current_track: u64,
    /// Sector index the head will pass next (position within the track),
    /// advanced deterministically by transfer lengths so rotational latency
    /// is reproducible without randomness.
    angular_sector: u64,
}

impl DiskModel {
    /// Creates a model for a device of `num_sectors` sectors.
    pub fn new(params: DiskModelParams, num_sectors: u64) -> Self {
        let num_cylinders = num_sectors.div_ceil(params.sectors_per_track).max(1);
        DiskModel {
            params,
            num_cylinders,
            current_track: 0,
            angular_sector: 0,
        }
    }

    /// Returns the model parameters.
    pub fn params(&self) -> &DiskModelParams {
        &self.params
    }

    /// Seek time for a move of `distance` cylinders, using the standard
    /// piecewise sqrt/linear curve anchored at min/avg/max seek times.
    fn seek_time(&self, distance: u64) -> SimDuration {
        if distance == 0 {
            return SimDuration::ZERO;
        }
        let d = distance as f64;
        let n = self.num_cylinders.max(2) as f64;
        let min = self.params.min_seek.as_micros() as f64;
        let max = self.params.max_seek.as_micros() as f64;
        // Square-root law for short seeks, linear tail for long ones,
        // normalized so distance 1 -> min_seek and distance n-1 -> max_seek.
        let frac = (d / (n - 1.0)).min(1.0);
        let us = if frac < 0.3 {
            min + (max * 0.6 - min) * (frac / 0.3).sqrt()
        } else {
            max * 0.6 + (max - max * 0.6) * ((frac - 0.3) / 0.7)
        };
        SimDuration::from_micros(us.round() as u64)
    }

    /// Rotational latency to reach `target_sector_on_track` from the
    /// current angular position.
    fn rotation_time(&self, target_sector_on_track: u64) -> SimDuration {
        let spt = self.params.sectors_per_track;
        if self.params.rotation == SimDuration::ZERO || spt == 0 {
            return SimDuration::ZERO;
        }
        let gap = (target_sector_on_track + spt - self.angular_sector % spt) % spt;
        SimDuration::from_micros(self.params.rotation.as_micros() * gap / spt)
    }

    /// Media transfer time for `bytes` bytes.
    fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.params.transfer_bytes_per_sec == u64::MAX {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros(bytes * 1_000_000 / self.params.transfer_bytes_per_sec)
    }

    /// Computes the service time of a request for `count` sectors starting
    /// at `sector`, and advances the head/rotation state.
    ///
    /// A request that begins exactly where the previous one ended pays
    /// neither seek nor rotational latency — the sequential-append fast
    /// path that log-structured layouts exploit.
    pub fn service(&mut self, sector: u64, count: u64) -> SimDuration {
        let spt = self.params.sectors_per_track;
        let target_track = sector / spt;
        let target_angle = sector % spt;

        let sequential =
            target_track == self.current_track && target_angle == self.angular_sector % spt;

        let mut t = self.params.command_overhead;
        if !sequential {
            let distance = target_track.abs_diff(self.current_track);
            t += self.seek_time(distance);
            t += self.rotation_time(target_angle);
        }
        t += self.transfer_time(count * super::SECTOR_SIZE as u64);

        // Advance state: the head ends after the last sector transferred.
        let end = sector + count;
        self.current_track = end / spt;
        self.angular_sector = end % spt;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DiskModel {
        DiskModel::new(DiskModelParams::cheetah_9gb_10k(), 17_000_000) // ~8.7 GB
    }

    #[test]
    fn sequential_is_much_cheaper_than_random() {
        let mut m = model();
        // Prime position at sector 0.
        m.service(0, 8);
        let seq = m.service(8, 8);
        let mut m2 = model();
        m2.service(0, 8);
        let random = m2.service(9_000_000, 8);
        assert!(
            random.as_micros() > seq.as_micros() * 5,
            "random {random:?} should dwarf sequential {seq:?}"
        );
    }

    #[test]
    fn zero_distance_seek_is_free() {
        let m = model();
        assert_eq!(m.seek_time(0), SimDuration::ZERO);
    }

    #[test]
    fn seek_curve_is_monotonic_and_bounded() {
        let m = model();
        let mut last = SimDuration::ZERO;
        for d in [1u64, 10, 100, 1_000, 10_000, 50_000] {
            let t = m.seek_time(d);
            assert!(t >= last, "seek time must not decrease with distance");
            last = t;
        }
        assert!(m.seek_time(u64::MAX / 2) <= m.params.max_seek);
        assert!(m.seek_time(1) >= m.params.min_seek);
    }

    #[test]
    fn large_sequential_transfer_approaches_media_rate() {
        let mut m = model();
        m.service(0, 1);
        // 1 MB sequential: ~50 ms at 21 MB/s.
        let t = m.service(1, 2048);
        let ms = t.as_millis_f64();
        assert!((40.0..70.0).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn rotation_wraps_correctly() {
        let mut m = model();
        m.service(0, 1); // head now at angular sector 1
                         // Request the sector just behind the head: nearly a full rotation.
        let t = m.service(0, 1);
        assert!(
            t.as_micros()
                >= m.params.rotation.as_micros() * 9 / 10 - m.params.command_overhead.as_micros()
        );
    }

    #[test]
    fn free_model_costs_nothing_but_overhead() {
        let mut m = DiskModel::new(DiskModelParams::free(), 1_000_000);
        assert_eq!(m.service(123_456, 64), SimDuration::ZERO);
    }
}
