//! The sector-addressed block device trait and its in-memory / file-backed
//! implementations.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use s4_clock::sync::Mutex;

/// Size of one sector in bytes. Every transfer is a whole number of sectors.
pub const SECTOR_SIZE: usize = 512;

/// Sectors per sparse allocation chunk in [`MemDisk`] (64 KiB chunks).
const CHUNK_SECTORS: u64 = 128;

/// Errors surfaced by block devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// A request referenced sectors beyond the end of the device.
    OutOfRange {
        /// First sector of the offending request.
        sector: u64,
        /// Number of sectors requested.
        count: u64,
        /// Total sectors on the device.
        capacity: u64,
    },
    /// A buffer length was not a whole number of sectors.
    UnalignedLength(usize),
    /// The underlying medium failed (injected fault or real I/O error).
    Io(String),
    /// The device was configured to fail all requests (simulated death).
    DeviceFailed,
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::OutOfRange {
                sector,
                count,
                capacity,
            } => write!(
                f,
                "request for {count} sectors at {sector} exceeds capacity {capacity}"
            ),
            DiskError::UnalignedLength(len) => {
                write!(f, "buffer length {len} is not a multiple of {SECTOR_SIZE}")
            }
            DiskError::Io(msg) => write!(f, "I/O error: {msg}"),
            DiskError::DeviceFailed => write!(f, "device failed"),
        }
    }
}

impl std::error::Error for DiskError {}

/// A sector-addressed block device.
///
/// Implementations must be usable behind a shared reference from multiple
/// threads; interior locking is the implementation's responsibility.
pub trait BlockDev: Send + Sync {
    /// Total number of sectors on the device.
    fn num_sectors(&self) -> u64;

    /// Reads `buf.len() / SECTOR_SIZE` sectors starting at `sector`.
    fn read(&self, sector: u64, buf: &mut [u8]) -> Result<(), DiskError>;

    /// Writes `buf.len() / SECTOR_SIZE` sectors starting at `sector`.
    fn write(&self, sector: u64, buf: &[u8]) -> Result<(), DiskError>;

    /// Forces durability of previously written sectors. In-memory devices
    /// treat this as a no-op; file-backed devices fsync.
    fn sync(&self) -> Result<(), DiskError> {
        Ok(())
    }

    /// Reads sectors *without* charging simulated service time — a
    /// simulation-support hook used when a server satisfies a request
    /// from its own memory cache but the simulator keeps the authoritative
    /// bytes on the device. Plain devices treat this as [`BlockDev::read`];
    /// timed wrappers bypass their cost model.
    fn peek(&self, sector: u64, buf: &mut [u8]) -> Result<(), DiskError> {
        self.read(sector, buf)
    }

    /// Capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.num_sectors() * SECTOR_SIZE as u64
    }
}

/// Validates a request against device capacity and buffer alignment,
/// returning the sector count.
pub(crate) fn check_request(capacity: u64, sector: u64, buf_len: usize) -> Result<u64, DiskError> {
    if !buf_len.is_multiple_of(SECTOR_SIZE) {
        return Err(DiskError::UnalignedLength(buf_len));
    }
    let count = (buf_len / SECTOR_SIZE) as u64;
    if sector.checked_add(count).is_none_or(|end| end > capacity) {
        return Err(DiskError::OutOfRange {
            sector,
            count,
            capacity,
        });
    }
    Ok(count)
}

/// A sparse in-memory block device.
///
/// Storage is allocated in 64 KiB chunks on first write, so a mostly-empty
/// multi-gigabyte simulated drive costs only what is actually written.
/// Unwritten sectors read as zeros.
pub struct MemDisk {
    num_sectors: u64,
    chunks: Mutex<HashMap<u64, Box<[u8]>>>,
}

impl MemDisk {
    /// Creates a device with `num_sectors` sectors, all reading as zero.
    pub fn new(num_sectors: u64) -> Self {
        MemDisk {
            num_sectors,
            chunks: Mutex::new(HashMap::new()),
        }
    }

    /// Creates a device with at least `bytes` bytes of capacity.
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        Self::new(bytes.div_ceil(SECTOR_SIZE as u64))
    }

    /// Number of bytes of backing memory currently allocated (test hook for
    /// verifying sparseness).
    pub fn allocated_bytes(&self) -> usize {
        self.chunks.lock().len() * (CHUNK_SECTORS as usize) * SECTOR_SIZE
    }

    /// Discards all contents, returning the device to all-zeros.
    pub fn wipe(&self) {
        self.chunks.lock().clear();
    }
}

impl Clone for MemDisk {
    /// Deep-copies the device contents — a point-in-time image snapshot,
    /// used by fault campaigns that replay many crash schedules from one
    /// captured state.
    fn clone(&self) -> Self {
        MemDisk {
            num_sectors: self.num_sectors,
            chunks: Mutex::new(self.chunks.lock().clone()),
        }
    }
}

impl BlockDev for MemDisk {
    fn num_sectors(&self) -> u64 {
        self.num_sectors
    }

    fn read(&self, sector: u64, buf: &mut [u8]) -> Result<(), DiskError> {
        let count = check_request(self.num_sectors, sector, buf.len())?;
        let chunks = self.chunks.lock();
        for i in 0..count {
            let s = sector + i;
            let chunk_idx = s / CHUNK_SECTORS;
            let within = ((s % CHUNK_SECTORS) as usize) * SECTOR_SIZE;
            let dst = &mut buf[(i as usize) * SECTOR_SIZE..][..SECTOR_SIZE];
            match chunks.get(&chunk_idx) {
                Some(chunk) => dst.copy_from_slice(&chunk[within..within + SECTOR_SIZE]),
                None => dst.fill(0),
            }
        }
        Ok(())
    }

    fn write(&self, sector: u64, buf: &[u8]) -> Result<(), DiskError> {
        let count = check_request(self.num_sectors, sector, buf.len())?;
        let mut chunks = self.chunks.lock();
        for i in 0..count {
            let s = sector + i;
            let chunk_idx = s / CHUNK_SECTORS;
            let within = ((s % CHUNK_SECTORS) as usize) * SECTOR_SIZE;
            let chunk = chunks
                .entry(chunk_idx)
                .or_insert_with(|| vec![0u8; (CHUNK_SECTORS as usize) * SECTOR_SIZE].into());
            chunk[within..within + SECTOR_SIZE]
                .copy_from_slice(&buf[(i as usize) * SECTOR_SIZE..][..SECTOR_SIZE]);
        }
        Ok(())
    }
}

/// A block device backed by a file on the host filesystem.
///
/// Useful for histories larger than memory and for inspecting on-disk
/// layouts with external tools.
pub struct FileDisk {
    num_sectors: u64,
    file: Mutex<File>,
}

impl FileDisk {
    /// Creates (or truncates) a backing file of `num_sectors` sectors.
    pub fn create<P: AsRef<Path>>(path: P, num_sectors: u64) -> Result<Self, DiskError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| DiskError::Io(e.to_string()))?;
        file.set_len(num_sectors * SECTOR_SIZE as u64)
            .map_err(|e| DiskError::Io(e.to_string()))?;
        Ok(FileDisk {
            num_sectors,
            file: Mutex::new(file),
        })
    }

    /// Opens an existing backing file, inferring capacity from its length.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, DiskError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| DiskError::Io(e.to_string()))?;
        let len = file
            .metadata()
            .map_err(|e| DiskError::Io(e.to_string()))?
            .len();
        Ok(FileDisk {
            num_sectors: len / SECTOR_SIZE as u64,
            file: Mutex::new(file),
        })
    }
}

impl BlockDev for FileDisk {
    fn num_sectors(&self) -> u64 {
        self.num_sectors
    }

    fn read(&self, sector: u64, buf: &mut [u8]) -> Result<(), DiskError> {
        check_request(self.num_sectors, sector, buf.len())?;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(sector * SECTOR_SIZE as u64))
            .map_err(|e| DiskError::Io(e.to_string()))?;
        file.read_exact(buf)
            .map_err(|e| DiskError::Io(e.to_string()))
    }

    fn write(&self, sector: u64, buf: &[u8]) -> Result<(), DiskError> {
        check_request(self.num_sectors, sector, buf.len())?;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(sector * SECTOR_SIZE as u64))
            .map_err(|e| DiskError::Io(e.to_string()))?;
        file.write_all(buf)
            .map_err(|e| DiskError::Io(e.to_string()))
    }

    fn sync(&self) -> Result<(), DiskError> {
        self.file
            .lock()
            .sync_data()
            .map_err(|e| DiskError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memdisk_roundtrip() {
        let d = MemDisk::new(1024);
        let data = vec![0xABu8; SECTOR_SIZE * 3];
        d.write(10, &data).unwrap();
        let mut out = vec![0u8; SECTOR_SIZE * 3];
        d.read(10, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn memdisk_unwritten_reads_zero() {
        let d = MemDisk::new(1024);
        let mut out = vec![0xFFu8; SECTOR_SIZE];
        d.read(500, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn memdisk_is_sparse() {
        let d = MemDisk::with_capacity_bytes(1 << 30); // 1 GiB logical
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        d.write(1_000_000, &[2u8; SECTOR_SIZE]).unwrap();
        assert!(d.allocated_bytes() <= 2 * 64 * 1024);
    }

    #[test]
    fn memdisk_bounds_checked() {
        let d = MemDisk::new(16);
        let buf = vec![0u8; SECTOR_SIZE * 2];
        assert!(matches!(
            d.write(15, &buf),
            Err(DiskError::OutOfRange { .. })
        ));
        assert!(matches!(
            d.write(0, &buf[..100]),
            Err(DiskError::UnalignedLength(100))
        ));
        // Overflowing sector index must not panic.
        assert!(matches!(
            d.read(u64::MAX, &mut vec![0u8; SECTOR_SIZE]),
            Err(DiskError::OutOfRange { .. })
        ));
    }

    #[test]
    fn memdisk_cross_chunk_write() {
        let d = MemDisk::new(CHUNK_SECTORS * 4);
        let data: Vec<u8> = (0..SECTOR_SIZE * 4).map(|i| (i % 251) as u8).collect();
        // Straddles a chunk boundary.
        d.write(CHUNK_SECTORS - 2, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        d.read(CHUNK_SECTORS - 2, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn memdisk_wipe_clears() {
        let d = MemDisk::new(64);
        d.write(0, &[9u8; SECTOR_SIZE]).unwrap();
        d.wipe();
        let mut out = [1u8; SECTOR_SIZE];
        d.read(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn filedisk_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("s4-filedisk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk.img");
        {
            let d = FileDisk::create(&path, 128).unwrap();
            d.write(5, &[0x5Au8; SECTOR_SIZE]).unwrap();
            d.sync().unwrap();
        }
        let d = FileDisk::open(&path).unwrap();
        assert_eq!(d.num_sectors(), 128);
        let mut out = [0u8; SECTOR_SIZE];
        d.read(5, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x5A));
        std::fs::remove_dir_all(&dir).ok();
    }
}
