//! Request tracing for crash-point enumeration.
//!
//! [`TraceDisk`] wraps any [`BlockDev`] and records every request —
//! class, start sector, and byte length — while mirroring it to the
//! inner device unchanged. The crash-consistency torture harness runs a
//! "golden" (fault-free) workload against a `TraceDisk` to learn how
//! many device requests the workload issues; each recorded request index
//! then becomes one crash point for a subsequent
//! [`FaultyDisk`](crate::FaultyDisk) replay.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::dev::{BlockDev, DiskError};
use crate::fault::RequestClassMask;

/// The class of one traced request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceClass {
    /// A write request.
    Write,
    /// A sync (flush/barrier) request.
    Sync,
    /// A read request.
    Read,
}

impl TraceClass {
    /// The [`RequestClassMask`] bit corresponding to this class.
    pub fn mask(self) -> RequestClassMask {
        match self {
            TraceClass::Write => RequestClassMask::WRITES,
            TraceClass::Sync => RequestClassMask::SYNCS,
            TraceClass::Read => RequestClassMask::READS,
        }
    }
}

/// One traced device request.
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    /// Request class.
    pub class: TraceClass,
    /// Start sector (0 for sync).
    pub sector: u64,
    /// Transfer length in bytes (0 for sync).
    pub len: usize,
}

/// The trace a [`TraceDisk`] accumulates, shareable via
/// [`TraceDisk::handle`]: a handle keeps observing requests after the
/// disk itself has been consumed by a drive (`S4Drive::format` takes the
/// device by value, so the trace must be readable from outside while the
/// drive runs).
#[derive(Clone, Default)]
pub struct TraceHandle {
    records: Arc<Mutex<Vec<TraceRecord>>>,
    writes: Arc<AtomicU64>,
    syncs: Arc<AtomicU64>,
    reads: Arc<AtomicU64>,
}

impl TraceHandle {
    /// Snapshot of every request recorded so far, in arrival order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Total write requests recorded.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// Total sync requests recorded.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::SeqCst)
    }

    /// Total read requests recorded.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
    }

    /// Number of recorded requests whose class is in `mask` — the size of
    /// the crash-point domain a [`FaultPlan`](crate::FaultPlan) with that
    /// `counted` mask would enumerate over this trace.
    pub fn countable(&self, mask: RequestClassMask) -> u64 {
        self.records
            .lock()
            .unwrap()
            .iter()
            .filter(|r| mask.contains(r.class.mask()))
            .count() as u64
    }

    /// Discards the trace collected so far (counts reset too).
    pub fn clear(&self) {
        self.records.lock().unwrap().clear();
        self.writes.store(0, Ordering::SeqCst);
        self.syncs.store(0, Ordering::SeqCst);
        self.reads.store(0, Ordering::SeqCst);
    }

    fn record(&self, class: TraceClass, sector: u64, len: usize) {
        match class {
            TraceClass::Write => self.writes.fetch_add(1, Ordering::SeqCst),
            TraceClass::Sync => self.syncs.fetch_add(1, Ordering::SeqCst),
            TraceClass::Read => self.reads.fetch_add(1, Ordering::SeqCst),
        };
        self.records
            .lock()
            .unwrap()
            .push(TraceRecord { class, sector, len });
    }
}

/// A [`BlockDev`] wrapper that records every request while mirroring it
/// to the inner device.
pub struct TraceDisk<D: BlockDev> {
    inner: D,
    trace: TraceHandle,
}

impl<D: BlockDev> TraceDisk<D> {
    /// Wraps `inner`, starting with an empty trace.
    pub fn new(inner: D) -> Self {
        TraceDisk {
            inner,
            trace: TraceHandle::default(),
        }
    }

    /// A shared handle onto this disk's trace; stays live after the disk
    /// is moved into a drive.
    pub fn handle(&self) -> TraceHandle {
        self.trace.clone()
    }

    /// Snapshot of every request recorded so far, in arrival order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.trace.records()
    }

    /// Total write requests recorded.
    pub fn writes(&self) -> u64 {
        self.trace.writes()
    }

    /// Total sync requests recorded.
    pub fn syncs(&self) -> u64 {
        self.trace.syncs()
    }

    /// Total read requests recorded.
    pub fn reads(&self) -> u64 {
        self.trace.reads()
    }

    /// Number of recorded requests whose class is in `mask` — the size of
    /// the crash-point domain a [`FaultPlan`](crate::FaultPlan) with that
    /// `counted` mask would enumerate over this trace.
    pub fn countable(&self, mask: RequestClassMask) -> u64 {
        self.trace.countable(mask)
    }

    /// Discards the trace collected so far (counts reset too).
    pub fn clear(&self) {
        self.trace.clear();
    }

    /// Consumes the wrapper, returning the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Returns a reference to the inner device.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: BlockDev> BlockDev for TraceDisk<D> {
    fn num_sectors(&self) -> u64 {
        self.inner.num_sectors()
    }

    fn read(&self, sector: u64, buf: &mut [u8]) -> Result<(), DiskError> {
        self.trace.record(TraceClass::Read, sector, buf.len());
        self.inner.read(sector, buf)
    }

    fn write(&self, sector: u64, buf: &[u8]) -> Result<(), DiskError> {
        self.trace.record(TraceClass::Write, sector, buf.len());
        self.inner.write(sector, buf)
    }

    fn sync(&self) -> Result<(), DiskError> {
        self.trace.record(TraceClass::Sync, 0, 0);
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::MemDisk;
    use crate::SECTOR_SIZE;

    #[test]
    fn trace_mirrors_and_records() {
        let d = TraceDisk::new(MemDisk::new(64));
        d.write(4, &[9u8; SECTOR_SIZE * 2]).unwrap();
        d.sync().unwrap();
        let mut out = [0u8; SECTOR_SIZE];
        d.read(5, &mut out).unwrap();
        assert_eq!(out[0], 9, "write mirrored to inner device");

        let recs = d.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].class, TraceClass::Write);
        assert_eq!(recs[0].sector, 4);
        assert_eq!(recs[0].len, SECTOR_SIZE * 2);
        assert_eq!(recs[1].class, TraceClass::Sync);
        assert_eq!(recs[2].class, TraceClass::Read);
        assert_eq!((d.writes(), d.syncs(), d.reads()), (1, 1, 1));
    }

    #[test]
    fn countable_respects_mask() {
        let d = TraceDisk::new(MemDisk::new(64));
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        d.write(1, &[1u8; SECTOR_SIZE]).unwrap();
        d.sync().unwrap();
        d.read(0, &mut [0u8; SECTOR_SIZE]).unwrap();
        assert_eq!(d.countable(RequestClassMask::WRITES), 2);
        assert_eq!(
            d.countable(RequestClassMask::WRITES | RequestClassMask::SYNCS),
            3
        );
        assert_eq!(d.countable(RequestClassMask::ALL), 4);
    }

    #[test]
    fn handle_observes_after_move() {
        let d = TraceDisk::new(MemDisk::new(64));
        let h = d.handle();
        let moved = d; // simulate handing the disk to a drive
        moved.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        moved.sync().unwrap();
        assert_eq!(h.writes(), 1);
        assert_eq!(h.countable(RequestClassMask::WRITES | RequestClassMask::SYNCS), 2);
    }

    #[test]
    fn clear_resets_trace() {
        let d = TraceDisk::new(MemDisk::new(64));
        d.write(0, &[1u8; SECTOR_SIZE]).unwrap();
        d.clear();
        assert!(d.records().is_empty());
        assert_eq!(d.writes(), 0);
    }
}
