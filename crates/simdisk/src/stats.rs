//! I/O statistics collected by [`crate::TimedDisk`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use s4_clock::SimDuration;

/// A point-in-time snapshot of device counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of read requests issued.
    pub reads: u64,
    /// Number of write requests issued.
    pub writes: u64,
    /// Sectors transferred by reads.
    pub sectors_read: u64,
    /// Sectors transferred by writes.
    pub sectors_written: u64,
    /// Total simulated time the device spent servicing requests, in
    /// microseconds.
    pub busy_us: u64,
}

impl DiskStats {
    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.sectors_read * crate::SECTOR_SIZE as u64
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.sectors_written * crate::SECTOR_SIZE as u64
    }

    /// Total busy time as a duration.
    pub fn busy(&self) -> SimDuration {
        SimDuration::from_micros(self.busy_us)
    }

    /// Counter-wise difference `self - earlier`; useful for measuring a
    /// benchmark phase.
    pub fn since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            sectors_read: self.sectors_read - earlier.sectors_read,
            sectors_written: self.sectors_written - earlier.sectors_written,
            busy_us: self.busy_us - earlier.busy_us,
        }
    }
}

/// Shared live counters; cheap to clone, snapshot with
/// [`StatsHandle::snapshot`].
#[derive(Clone, Debug, Default)]
pub struct StatsHandle {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    reads: AtomicU64,
    writes: AtomicU64,
    sectors_read: AtomicU64,
    sectors_written: AtomicU64,
    busy_us: AtomicU64,
}

impl StatsHandle {
    /// Creates a fresh set of zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one read of `sectors` sectors taking `t`.
    pub fn record_read(&self, sectors: u64, t: SimDuration) {
        self.inner.reads.fetch_add(1, Ordering::Relaxed);
        self.inner
            .sectors_read
            .fetch_add(sectors, Ordering::Relaxed);
        self.inner
            .busy_us
            .fetch_add(t.as_micros(), Ordering::Relaxed);
    }

    /// Records one write of `sectors` sectors taking `t`.
    pub fn record_write(&self, sectors: u64, t: SimDuration) {
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        self.inner
            .sectors_written
            .fetch_add(sectors, Ordering::Relaxed);
        self.inner
            .busy_us
            .fetch_add(t.as_micros(), Ordering::Relaxed);
    }

    /// Returns a consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> DiskStats {
        DiskStats {
            reads: self.inner.reads.load(Ordering::Relaxed),
            writes: self.inner.writes.load(Ordering::Relaxed),
            sectors_read: self.inner.sectors_read.load(Ordering::Relaxed),
            sectors_written: self.inner.sectors_written.load(Ordering::Relaxed),
            busy_us: self.inner.busy_us.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let h = StatsHandle::new();
        h.record_read(8, SimDuration::from_micros(100));
        h.record_write(16, SimDuration::from_micros(200));
        h.record_write(16, SimDuration::from_micros(200));
        let s = h.snapshot();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.sectors_read, 8);
        assert_eq!(s.sectors_written, 32);
        assert_eq!(s.busy_us, 500);
        assert_eq!(s.bytes_written(), 32 * 512);
    }

    #[test]
    fn since_subtracts() {
        let h = StatsHandle::new();
        h.record_read(1, SimDuration::from_micros(10));
        let mark = h.snapshot();
        h.record_read(2, SimDuration::from_micros(20));
        let delta = h.snapshot().since(&mark);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.sectors_read, 2);
        assert_eq!(delta.busy_us, 20);
    }
}
