//! Block-device substrate for the S4 self-securing storage reproduction.
//!
//! The paper's S4 prototype stored its log on a 9 GB 10,000 RPM Seagate
//! Cheetah SCSI drive. This crate substitutes a simulated drive: a sector
//! store ([`MemDisk`] or [`FileDisk`]) wrapped by [`TimedDisk`], which
//! charges a mechanical service-time model ([`DiskModel`]) to the shared
//! simulated clock and keeps I/O statistics. A [`FaultyDisk`] wrapper
//! injects failures and torn writes for crash-recovery testing.
//!
//! All storage layers above (the LFS layout, the S4 drive, the baseline
//! servers) speak the [`BlockDev`] trait, so every experiment runs against
//! the identical substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dev;
pub mod fault;
pub mod model;
pub mod stats;
pub mod timed;
pub mod trace;

pub use dev::{BlockDev, DiskError, FileDisk, MemDisk, SECTOR_SIZE};
pub use fault::{FaultMode, FaultPlan, FaultyDisk, RequestClassMask, TornPattern};
pub use trace::{TraceClass, TraceDisk, TraceHandle, TraceRecord};
pub use model::{DiskModel, DiskModelParams};
pub use stats::{DiskStats, StatsHandle};
pub use timed::TimedDisk;
