//! [`TimedDisk`]: glue between a raw sector store, the mechanical model,
//! and the simulated clock.

use s4_clock::sync::Mutex;

use s4_clock::SimClock;

use crate::dev::{BlockDev, DiskError};
use crate::model::{DiskModel, DiskModelParams};
use crate::stats::{DiskStats, StatsHandle};
use crate::SECTOR_SIZE;

/// A block device that charges a [`DiskModel`]'s service time to a
/// [`SimClock`] and records [`DiskStats`] for every request, delegating
/// the actual data movement to an inner [`BlockDev`].
pub struct TimedDisk<D: BlockDev> {
    inner: D,
    model: Mutex<DiskModel>,
    clock: SimClock,
    stats: StatsHandle,
}

impl<D: BlockDev> TimedDisk<D> {
    /// Wraps `inner` with the given model parameters, charging time to
    /// `clock`.
    pub fn new(inner: D, params: DiskModelParams, clock: SimClock) -> Self {
        let model = DiskModel::new(params, inner.num_sectors());
        TimedDisk {
            inner,
            model: Mutex::new(model),
            clock,
            stats: StatsHandle::new(),
        }
    }

    /// Returns a handle to the live statistics counters.
    pub fn stats_handle(&self) -> StatsHandle {
        self.stats.clone()
    }

    /// Returns a snapshot of the statistics counters.
    pub fn stats(&self) -> DiskStats {
        self.stats.snapshot()
    }

    /// Returns the simulated clock this device charges.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Returns a reference to the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: BlockDev> BlockDev for TimedDisk<D> {
    fn num_sectors(&self) -> u64 {
        self.inner.num_sectors()
    }

    fn read(&self, sector: u64, buf: &mut [u8]) -> Result<(), DiskError> {
        self.inner.read(sector, buf)?;
        let count = (buf.len() / SECTOR_SIZE) as u64;
        let t = self.model.lock().service(sector, count);
        self.clock.advance(t);
        s4_obs::span::charge(s4_obs::Layer::Disk, t.as_micros());
        self.stats.record_read(count, t);
        Ok(())
    }

    fn write(&self, sector: u64, buf: &[u8]) -> Result<(), DiskError> {
        self.inner.write(sector, buf)?;
        let count = (buf.len() / SECTOR_SIZE) as u64;
        let t = self.model.lock().service(sector, count);
        self.clock.advance(t);
        s4_obs::span::charge(s4_obs::Layer::Disk, t.as_micros());
        self.stats.record_write(count, t);
        Ok(())
    }

    fn sync(&self) -> Result<(), DiskError> {
        self.inner.sync()
    }

    fn peek(&self, sector: u64, buf: &mut [u8]) -> Result<(), DiskError> {
        // No model charge, no stats: the caller is serving from its own
        // memory; the device is only the byte store.
        self.inner.peek(sector, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::MemDisk;

    #[test]
    fn timed_disk_advances_clock_and_counts() {
        let clock = SimClock::new();
        let d = TimedDisk::new(
            MemDisk::new(100_000),
            DiskModelParams::cheetah_9gb_10k(),
            clock.clone(),
        );
        let buf = vec![7u8; SECTOR_SIZE * 8];
        d.write(0, &buf).unwrap();
        let mut out = vec![0u8; SECTOR_SIZE * 8];
        d.read(0, &mut out).unwrap();
        assert_eq!(out, buf);
        let s = d.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
        assert_eq!(s.sectors_written, 8);
        assert!(clock.now().as_micros() > 0, "mechanical time was charged");
        assert_eq!(clock.now().as_micros(), s.busy_us);
    }

    #[test]
    fn errors_cost_nothing() {
        let clock = SimClock::new();
        let d = TimedDisk::new(
            MemDisk::new(8),
            DiskModelParams::cheetah_9gb_10k(),
            clock.clone(),
        );
        let buf = vec![0u8; SECTOR_SIZE * 16];
        assert!(d.write(0, &buf).is_err());
        assert_eq!(clock.now().as_micros(), 0);
        assert_eq!(d.stats().writes, 0);
    }

    #[test]
    fn sequential_stream_is_cheaper_than_scattered() {
        let params = DiskModelParams::cheetah_9gb_10k();

        let seq_clock = SimClock::new();
        let seq = TimedDisk::new(MemDisk::new(1_000_000), params, seq_clock.clone());
        let buf = vec![1u8; SECTOR_SIZE * 8];
        for i in 0..64 {
            seq.write(i * 8, &buf).unwrap();
        }

        let rnd_clock = SimClock::new();
        let rnd = TimedDisk::new(MemDisk::new(1_000_000), params, rnd_clock.clone());
        for i in 0..64u64 {
            rnd.write((i * 7919 * 101) % 900_000, &buf).unwrap();
        }

        assert!(rnd_clock.now().as_micros() > seq_clock.now().as_micros() * 3);
    }
}
