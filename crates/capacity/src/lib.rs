//! The §5.2 capacity analysis: how many days of complete version history
//! fit in a history pool (Figure 7).
//!
//! The paper's projection is simple division — a history pool of `P`
//! bytes absorbing `W` bytes/day of (worst-case, all-new) write traffic
//! retains `P/W` days — lifted by the space-efficiency factors of
//! cross-version differencing (~3x measured on its CVS history) and
//! differencing + compression (~5x). This crate reproduces both halves:
//!
//! * [`detection_window_days`] / [`figure7_rows`] — the analytical model
//!   with the paper's three workload-study write rates.
//! * [`measure_factors`] — empirical re-measurement of the differencing
//!   and compression factors by running the `s4-delta` machinery over a
//!   synthetic daily-evolving source tree (standing in for the paper's
//!   CVS checkouts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use s4_delta::chain::ChainMode;
use s4_delta::DeltaChain;
use s4_workloads::{SourceTree, WorkloadProfile};

/// Days of history a pool retains at a given write rate and
/// space-efficiency factor.
pub fn detection_window_days(pool_gb: f64, write_mb_per_day: f64, space_factor: f64) -> f64 {
    assert!(write_mb_per_day > 0.0, "write rate must be positive");
    pool_gb * 1024.0 * space_factor / write_mb_per_day
}

/// One bar group of Figure 7.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig7Row {
    /// Workload study.
    pub profile: WorkloadProfile,
    /// Days with raw versions only.
    pub baseline_days: f64,
    /// Days with cross-version differencing.
    pub diff_days: f64,
    /// Days with differencing + compression.
    pub diff_compress_days: f64,
}

/// Computes the Figure 7 projection for a pool of `pool_gb` GB using the
/// given space factors (pass measured factors from [`measure_factors`],
/// or the paper's 3.0/5.0).
pub fn figure7_rows(pool_gb: f64, diff_factor: f64, compress_factor: f64) -> Vec<Fig7Row> {
    s4_workloads::profiles::ALL
        .iter()
        .map(|p| Fig7Row {
            profile: *p,
            baseline_days: detection_window_days(pool_gb, p.write_mb_per_day, 1.0),
            diff_days: detection_window_days(pool_gb, p.write_mb_per_day, diff_factor),
            diff_compress_days: detection_window_days(pool_gb, p.write_mb_per_day, compress_factor),
        })
        .collect()
}

/// Empirically measured space-efficiency factors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeasuredFactors {
    /// Bytes of history with every version whole.
    pub full_bytes: u64,
    /// Bytes after cross-version differencing.
    pub diff_bytes: u64,
    /// Bytes after differencing + compression.
    pub diff_compress_bytes: u64,
}

impl MeasuredFactors {
    /// Space-efficiency factor of differencing alone.
    pub fn diff_factor(&self) -> f64 {
        self.full_bytes as f64 / self.diff_bytes as f64
    }

    /// Space-efficiency factor of differencing + compression.
    pub fn compress_factor(&self) -> f64 {
        self.full_bytes as f64 / self.diff_compress_bytes as f64
    }
}

/// Replays every file history through reverse delta chains (raw and
/// compressed) and totals the space, reproducing the paper's Xdelta
/// experiment on its CVS tree.
pub fn measure_factors(tree: &SourceTree) -> MeasuredFactors {
    let mut full = 0u64;
    let mut diff = 0u64;
    let mut diff_comp = 0u64;
    for f in &tree.files {
        full += f.versions.iter().map(|v| v.len() as u64).sum::<u64>();
        let mut c1 = DeltaChain::new(&f.versions[0], ChainMode::Diff);
        let mut c2 = DeltaChain::new(&f.versions[0], ChainMode::DiffCompress);
        for v in &f.versions[1..] {
            c1.push(v);
            c2.push(v);
        }
        diff += c1.stored_bytes() as u64;
        diff_comp += c2.stored_bytes() as u64;
    }
    MeasuredFactors {
        full_bytes: full,
        diff_bytes: diff,
        diff_compress_bytes: diff_comp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4_workloads::srctree::{self, SourceTreeConfig};
    use s4_workloads::{AFS_SERVER, ELEPHANT_FS, NT_PERSONAL};

    #[test]
    fn paper_headline_numbers() {
        // "using just 20% of a modern 50GB disk would yield over 70 days"
        // (AFS, 143 MB/day, 10 GB pool).
        let afs = detection_window_days(10.0, AFS_SERVER.write_mb_per_day, 1.0);
        assert!(afs > 70.0, "AFS baseline {afs}");
        // "Even if the writes consume 1GB per day ... 10 days worth".
        let nt = detection_window_days(10.0, NT_PERSONAL.write_mb_per_day, 1.0);
        assert!((10.0..11.0).contains(&nt), "NT baseline {nt}");
        // "In this case, over 90 days of data could be kept" (Elephant).
        let ele = detection_window_days(10.0, ELEPHANT_FS.write_mb_per_day, 1.0);
        assert!(ele > 90.0, "Elephant baseline {ele}");
    }

    #[test]
    fn figure7_with_paper_factors_spans_50_to_470_days() {
        // "a 10GB history pool can provide a detection window of between
        // 50 and 470 days" with differencing + compression.
        let rows = figure7_rows(10.0, 3.0, 5.0);
        let min = rows
            .iter()
            .map(|r| r.diff_compress_days)
            .fold(f64::MAX, f64::min);
        let max = rows
            .iter()
            .map(|r| r.diff_compress_days)
            .fold(0.0, f64::max);
        assert!((45.0..60.0).contains(&min), "min {min}");
        assert!((400.0..550.0).contains(&max), "max {max}");
    }

    #[test]
    fn measured_factors_land_in_the_papers_band() {
        let tree = srctree::generate(&SourceTreeConfig {
            files: 30,
            ..SourceTreeConfig::default()
        });
        let m = measure_factors(&tree);
        // Paper: differencing gave ~200% improvement (3x), compression
        // ~another 200% (5x total). Synthetic churn should land at 2.5x+
        // and compression must strictly add.
        assert!(m.diff_factor() > 2.5, "diff factor {}", m.diff_factor());
        assert!(
            m.compress_factor() > m.diff_factor(),
            "compress {} vs diff {}",
            m.compress_factor(),
            m.diff_factor()
        );
    }

    #[test]
    fn window_scales_linearly_with_pool_and_factor() {
        let base = detection_window_days(10.0, 143.0, 1.0);
        assert!((detection_window_days(20.0, 143.0, 1.0) - 2.0 * base).abs() < 1e-9);
        assert!((detection_window_days(10.0, 143.0, 3.0) - 3.0 * base).abs() < 1e-9);
    }
}
