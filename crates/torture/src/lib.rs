//! Crash-consistency torture harness for the S4 drive.
//!
//! The paper's core guarantee is that every version inside the detection
//! window survives anything a client — or a power cut — does. This crate
//! proves the crash half of that claim mechanically, in the CrashMonkey
//! style: enumerate every point at which power can be lost along the
//! write path, crash there, remount, and check the recovered drive
//! against an in-memory oracle.
//!
//! **Phase 1 (golden run).** A deterministic workload (driven by the
//! xoshiro256** PRNG from `s4-workloads`) runs against a
//! [`TraceDisk`]-wrapped device. The trace yields the *crash-point
//! domain*: the index range of countable device requests (writes and
//! syncs — the classes a [`FaultPlan`] can fire on) the workload issues
//! after format. The golden run also validates the oracle and the audit
//! predictor against a fault-free drive, so replay failures can only
//! come from recovery, not from harness bugs.
//!
//! **Phase 2 (replays).** For each crash point `k` and torn-sector
//! pattern `p` (prefix, interleaved, or holed — see
//! [`s4_simdisk::TornPattern`]), the same workload replays against
//! `FaultyDisk::power_loss_with_pattern(k, p, WRITES|SYNCS)`. The
//! drive dies mid-flight; the harness revives the device, remounts, and
//! asserts five invariants:
//!
//! - **(a) durability**: every version the oracle saw durable at the
//!   last *completed* sync is readable at its historical time, with the
//!   exact content, size, and attributes the oracle recorded;
//! - **(b) audit prefix**: the recovered audit log is an exact prefix of
//!   the predicted record stream — no holes, no reordering — and at
//!   least every full block flushed by the last completed sync survived;
//! - **(c) idempotence**: remounting twice yields identical logical
//!   state ([`S4Drive::state_digest`]) and identical
//!   [`RecoveryReport`]s (mount performs no writes);
//! - **(d) post-recovery retention**: a full cleaner pass after recovery
//!   reclaims nothing inside the detection window — invariant (a) still
//!   holds afterwards;
//! - **(e) flight-recorder prefix**: the observability layer's
//!   crash-surviving trace stream (see `s4_obs`) is an exact prefix of
//!   the predicted request stream — trace records are written 1:1 with
//!   audit records and share their identity fields — with the same
//!   full-block durability floor as (b).
//!
//! Two harder campaigns build on the same machinery:
//! [`torture_cleaner_between`] wedges a full maintenance pass (cleaner,
//! history compaction, forced anchor) between recovery and a second
//! power-off, and [`torture_crash_during_recovery`] crashes the drive a
//! *second time inside the recovery replay itself* — legal because
//! recovery is strictly read-only, which the harness proves by counting
//! device writes during an undisturbed mount.
//!
//! Each replay is *self-contained*: it rebuilds its own oracle and
//! predicted audit stream while driving the faulty drive, and records
//! the last sync that returned `Ok` as the durability boundary. The
//! golden run only supplies the crash-point domain. This keeps replays
//! immune to request-count drift between runs (block packing iterates a
//! hash map, so two runs may batch blocks slightly differently): if a
//! replay's request sequence ends before its crash point fires, the
//! harness simply verifies the completed workload like a golden run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod txn;

use std::collections::HashMap;

use s4_clock::{SimClock, SimDuration, SimTime};
use s4_core::{
    AuditRecord, ClientId, DriveConfig, ObjectId, RecoveryReport, Request, RequestContext,
    Response, S4Drive, TraceCtx, TraceRecord, UserId,
};
use s4_lfs::BLOCK_SIZE;
use s4_simdisk::{BlockDev, FaultPlan, FaultyDisk, MemDisk, RequestClassMask, TornPattern, TraceDisk};
use s4_workloads::Rng;

/// Request classes that count as crash points: the write path plus the
/// superblock barrier (`BlockDev::sync`, issued when an anchor commits).
/// Reads are excluded — they cannot affect durability, and counting them
/// would make the domain depend on cache behaviour.
pub const CRASH_MASK: RequestClassMask = RequestClassMask::WRITES.union(RequestClassMask::SYNCS);

/// Whole audit records per 4 KiB audit block.
const RECORDS_PER_BLOCK: usize = BLOCK_SIZE / s4_core::audit::RECORD_BYTES;

/// Every third workload request carries a caller-stamped trace context,
/// so the persisted flight-recorder stream interleaves 68-byte v1 and
/// 78-byte v2 records and the durability floor in invariant (e) has to
/// model real (mixed-size) block packing rather than a uniform count.
const TRACED_EVERY: usize = 3;

/// Encoded size of predicted trace record `i` as it lands in the spill
/// buffer: a 2-byte length prefix plus the version the stamped context
/// selects (untraced dispatches stay v1).
fn trace_blob_len(trace: &TraceCtx) -> usize {
    2 + if trace.trace_id == 0 {
        s4_obs::TRACE_RECORD_BYTES
    } else {
        s4_obs::TRACE_RECORD_V2_BYTES
    }
}

/// Device size for every torture drive (sparse in memory).
const DISK_BYTES: u64 = 96 << 20;

/// Parameters of one torture campaign.
#[derive(Clone, Debug)]
pub struct TortureConfig {
    /// PRNG seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Workload length in operations.
    pub ops: usize,
    /// Torn-write patterns the campaign draws from: which sectors of the
    /// faulting write persist (prefix, interleaved, or holed).
    pub torn_patterns: Vec<TornPattern>,
    /// How many of `torn_patterns` to replay per crash point. `None`
    /// replays every pattern at every point; `Some(m)` cycles through
    /// the pattern set across crash points, m per point, so the full
    /// set is exercised over the campaign without multiplying the replay
    /// budget.
    pub patterns_per_point: Option<usize>,
    /// Cap on crash points (sampled evenly across the domain);
    /// `None` enumerates every countable request.
    pub max_crash_points: Option<usize>,
}

/// The standard torn-pattern mix: whole-write loss, a persisted prefix,
/// alternating sectors of either parity, and a mid-write hole.
fn standard_patterns() -> Vec<TornPattern> {
    vec![
        TornPattern::Prefix(0),
        TornPattern::Prefix(4),
        TornPattern::Interleaved { phase: 0 },
        TornPattern::Holed { start: 1, len: 2 },
        TornPattern::Interleaved { phase: 1 },
    ]
}

impl TortureConfig {
    /// The bounded CI campaign: small workload, ≤ 64 crash points,
    /// 2 patterns per point (cycling through the standard mix, so the
    /// replay budget matches the historical 2-prefix campaign).
    pub fn bounded(seed: u64) -> Self {
        TortureConfig {
            seed,
            ops: 120,
            torn_patterns: standard_patterns(),
            patterns_per_point: Some(2),
            max_crash_points: Some(64),
        }
    }

    /// The exhaustive campaign: 500-op workload, every crash point,
    /// 2 patterns per point cycling through the standard mix.
    pub fn exhaustive(seed: u64) -> Self {
        TortureConfig {
            seed,
            ops: 500,
            torn_patterns: standard_patterns(),
            patterns_per_point: Some(2),
            max_crash_points: None,
        }
    }

    /// Replays performed per crash point.
    pub fn replays_per_point(&self) -> usize {
        match self.patterns_per_point {
            Some(m) => m.min(self.torn_patterns.len()),
            None => self.torn_patterns.len(),
        }
    }

    /// The torn patterns replayed at the `j`-th sampled crash point:
    /// a deterministic rotating window over `torn_patterns`.
    pub fn patterns_at(&self, j: usize) -> Vec<TornPattern> {
        let n = self.torn_patterns.len();
        let m = self.replays_per_point();
        (0..m)
            .map(|i| self.torn_patterns[(j * m + i) % n])
            .collect()
    }
}

/// What the golden (fault-free) run established.
#[derive(Clone, Copy, Debug)]
pub struct GoldenSummary {
    /// Crash-point domain `[start, end)`: countable request indices
    /// issued by the workload (format's requests are excluded — crashing
    /// inside format leaves no anchor to recover from).
    pub domain: (u64, u64),
    /// Audit records the workload produces.
    pub audit_records: usize,
    /// Syncs the workload issued.
    pub syncs: usize,
    /// Device-level sync requests inside the domain (anchor barriers;
    /// the only `BlockDev::sync` call sites are superblock writes, so a
    /// workload shorter than the anchor interval has none).
    pub sync_points: u64,
    /// Objects the workload created.
    pub objects: usize,
    /// Oracle version entries validated.
    pub versions: usize,
}

/// Outcome of one crash-point replay (panics on invariant violation).
#[derive(Clone, Copy, Debug)]
pub struct CrashOutcome {
    /// The countable-request index the fault was armed at.
    pub crash_point: u64,
    /// Torn-sector pattern applied to the faulting write.
    pub torn: TornPattern,
    /// Whether the fault actually fired (false = the replay's request
    /// sequence ended before `crash_point`; the workload completed).
    pub died: bool,
    /// Versions verified readable post-recovery (invariant a, run twice:
    /// after mount and after the cleaner pass).
    pub versions_checked: usize,
    /// Length of the recovered audit prefix (invariant b).
    pub audit_prefix: usize,
    /// The recovery report of the first remount.
    pub report: RecoveryReport,
}

/// Outcome of a whole campaign.
#[derive(Clone, Copy, Debug)]
pub struct TortureSummary {
    /// Crash-point domain the golden run established.
    pub domain: (u64, u64),
    /// Device-level sync (anchor barrier) requests inside the domain.
    pub sync_points: u64,
    /// Distinct crash points replayed.
    pub crash_points: usize,
    /// Total replays (crash points × torn prefixes).
    pub replays: usize,
    /// Replays in which the fault fired.
    pub died: usize,
    /// Versions verified readable across all replays.
    pub versions_checked: usize,
}

// ---------------------------------------------------------------------
// Oracle.
// ---------------------------------------------------------------------

struct OracleEntry {
    t: SimTime,
    data: Vec<u8>,
    attrs: Vec<u8>,
    alive: bool,
}

#[derive(Default)]
struct OracleObject {
    history: Vec<OracleEntry>,
}

impl OracleObject {
    fn at(&self, t: SimTime) -> Option<&OracleEntry> {
        self.history.iter().rev().find(|e| e.t <= t)
    }
}

/// Everything one workload run produced: the oracle, the predicted audit
/// stream, and the durability boundary.
struct RunState {
    oracle: HashMap<u64, OracleObject>,
    /// Creation order of oracle object ids (deterministic iteration).
    order: Vec<u64>,
    predicted: Vec<AuditRecord>,
    /// Trace context stamped on request `i` (default = untraced → v1
    /// record); parallel to `predicted`, it is the trace-stream oracle.
    predicted_trace: Vec<TraceCtx>,
    checkpoints: Vec<SimTime>,
    /// Drive time of the last sync that returned `Ok`.
    last_ok_sync: Option<SimTime>,
    /// Predicted records audited *before* that sync executed (its own
    /// record is appended after the flush and is volatile).
    records_at_sync: usize,
    syncs_ok: usize,
    /// True if a dispatch failed (the injected fault fired).
    stopped_early: bool,
}

fn user_ctx() -> RequestContext {
    RequestContext::user(UserId(1), ClientId(1))
}

fn admin_ctx() -> RequestContext {
    // small_test()'s admin token.
    RequestContext::admin(ClientId(0), 42)
}

// ---------------------------------------------------------------------
// Workload.
// ---------------------------------------------------------------------

/// Drives the deterministic workload against `drive`, maintaining the
/// oracle and the predicted audit stream. Stops at the first failed
/// dispatch (the injected fault; the fault-free golden run never fails).
fn run_workload<D: BlockDev>(
    drive: &S4Drive<D>,
    clock: &SimClock,
    seed: u64,
    ops: usize,
) -> RunState {
    let mut rng = Rng::new(seed);
    let ctx = user_ctx();
    let mut st = RunState {
        oracle: HashMap::new(),
        order: Vec::new(),
        predicted: Vec::new(),
        predicted_trace: Vec::new(),
        checkpoints: Vec::new(),
        last_ok_sync: None,
        records_at_sync: 0,
        syncs_ok: 0,
        stopped_early: false,
    };
    // Alive objects (targets for mutations), plus their oracle state.
    let mut live: Vec<ObjectId> = Vec::new();

    for _ in 0..ops {
        // Distinct mutation instants keep oracle lookups unambiguous.
        clock.advance(SimDuration::from_millis(1));
        let roll = rng.below(100);

        // Build the request; `Tick` advances time without a request.
        enum Planned {
            Req(Request),
            Tick(u64),
        }
        let planned = if roll < 90 && live.is_empty() {
            // Nothing to mutate yet.
            Planned::Req(Request::Create)
        } else if roll < 8 {
            Planned::Req(Request::Create)
        } else if roll < 48 {
            let oid = live[rng.index(live.len())];
            let offset = rng.below(12_000);
            let len = rng.range(1, 6_000) as usize;
            let fill = rng.below(256) as u8;
            Planned::Req(Request::Write {
                oid,
                offset,
                data: vec![fill; len],
            })
        } else if roll < 58 {
            let oid = live[rng.index(live.len())];
            let len = rng.below(12_000);
            Planned::Req(Request::Truncate { oid, len })
        } else if roll < 64 {
            if live.len() > 1 {
                let oid = live[rng.index(live.len())];
                Planned::Req(Request::Delete { oid })
            } else {
                Planned::Req(Request::Sync)
            }
        } else if roll < 72 {
            let oid = live[rng.index(live.len())];
            let attr = rng.below(256) as u8;
            Planned::Req(Request::SetAttr {
                oid,
                attrs: vec![attr],
            })
        } else if roll < 87 {
            Planned::Req(Request::Sync)
        } else {
            Planned::Tick(rng.range(1, 400))
        };

        let req = match planned {
            Planned::Tick(ms) => {
                clock.advance(SimDuration::from_millis(ms));
                st.checkpoints.push(drive.now());
                continue;
            }
            Planned::Req(req) => req,
        };

        // Every TRACED_EVERY-th request opts into tracing (a stamped
        // entry-point context, as the array router or a transport would
        // provide), so replays exercise the mixed v1/v2 trace codec.
        // The id is a deterministic function of the stream position.
        let trace = if st.predicted.len().is_multiple_of(TRACED_EVERY) {
            TraceCtx {
                trace_id: st.predicted.len() as u64 + 1,
                origin: 0,
                phase: 0,
            }
        } else {
            TraceCtx::default()
        };
        let result = drive.dispatch(&ctx.with_trace(trace), &req);

        // Predict the audit record dispatch just appended (same
        // construction as `S4Drive::dispatch`; CPU is free in
        // `small_test`, so `now()` is unchanged by the op itself).
        let object = match &result {
            Ok(Response::Created(oid)) => *oid,
            _ => req.target(),
        };
        let (arg1, arg2) = req.audit_args();
        st.predicted_trace.push(trace);
        st.predicted.push(AuditRecord {
            time: drive.now(),
            user: ctx.user,
            client: ctx.client,
            op: req.op_kind(),
            ok: result.is_ok(),
            object,
            arg1,
            arg2,
        });

        let resp = match result {
            Ok(resp) => resp,
            Err(_) => {
                // The injected fault surfaced; the drive is dying.
                st.stopped_early = true;
                break;
            }
        };

        // Mirror the mutation into the oracle.
        let now = drive.now();
        match (&req, &resp) {
            (Request::Create, Response::Created(oid)) => {
                live.push(*oid);
                st.order.push(oid.0);
                st.oracle.entry(oid.0).or_default().history.push(OracleEntry {
                    t: now,
                    data: Vec::new(),
                    attrs: Vec::new(),
                    alive: true,
                });
            }
            (Request::Write { oid, offset, data }, _) => {
                let o = st.oracle.get_mut(&oid.0).unwrap();
                let cur = o.at(SimTime::MAX).unwrap();
                let mut next = cur.data.clone();
                let attrs = cur.attrs.clone();
                let end = *offset as usize + data.len();
                if next.len() < end {
                    next.resize(end, 0);
                }
                next[*offset as usize..end].copy_from_slice(data);
                o.history.push(OracleEntry {
                    t: now,
                    data: next,
                    attrs,
                    alive: true,
                });
            }
            (Request::Truncate { oid, len }, _) => {
                let o = st.oracle.get_mut(&oid.0).unwrap();
                let cur = o.at(SimTime::MAX).unwrap();
                let mut next = cur.data.clone();
                let attrs = cur.attrs.clone();
                next.resize(*len as usize, 0);
                o.history.push(OracleEntry {
                    t: now,
                    data: next,
                    attrs,
                    alive: true,
                });
            }
            (Request::Delete { oid }, _) => {
                let o = st.oracle.get_mut(&oid.0).unwrap();
                let cur = o.at(SimTime::MAX).unwrap();
                let (data, attrs) = (cur.data.clone(), cur.attrs.clone());
                o.history.push(OracleEntry {
                    t: now,
                    data,
                    attrs,
                    alive: false,
                });
                live.retain(|l| l != oid);
            }
            (Request::SetAttr { oid, attrs }, _) => {
                let o = st.oracle.get_mut(&oid.0).unwrap();
                let cur = o.at(SimTime::MAX).unwrap();
                let data = cur.data.clone();
                o.history.push(OracleEntry {
                    t: now,
                    data,
                    attrs: attrs.clone(),
                    alive: true,
                });
            }
            (Request::Sync, _) => {
                st.last_ok_sync = Some(now);
                // The sync's own record (just pushed) is post-flush.
                st.records_at_sync = st.predicted.len() - 1;
                st.syncs_ok += 1;
            }
            _ => unreachable!("workload issues no other requests"),
        }
        st.checkpoints.push(now);
    }
    st
}

// ---------------------------------------------------------------------
// Verification.
// ---------------------------------------------------------------------

/// Invariant (a): every oracle entry stamped at or before `boundary`
/// must read back exactly at its historical time. Returns the number of
/// version checks performed. `what` labels failures.
fn verify_durable<D: BlockDev>(
    drive: &S4Drive<D>,
    st: &RunState,
    boundary: SimTime,
    what: &str,
) -> usize {
    let admin = admin_ctx();
    let mut checked = 0;
    for &raw in &st.order {
        let oid = ObjectId(raw);
        for e in &st.oracle[&raw].history {
            if e.t > boundary {
                continue;
            }
            checked += 1;
            if !e.alive {
                assert!(
                    drive.op_read(&admin, oid, 0, 1 << 16, Some(e.t)).is_err(),
                    "{what}: {oid} deleted at {} but readable",
                    e.t
                );
                continue;
            }
            let got = drive
                .op_read(&admin, oid, 0, 1 << 16, Some(e.t))
                .unwrap_or_else(|err| {
                    panic!(
                        "{what}: durable version lost — {oid} at {} unreadable: {err:?}",
                        e.t
                    )
                });
            assert_eq!(
                got, e.data,
                "{what}: {oid} content diverged at {} ({} vs {} bytes)",
                e.t,
                got.len(),
                e.data.len()
            );
            let attrs = drive
                .op_getattr(&admin, oid, Some(e.t))
                .unwrap_or_else(|err| panic!("{what}: {oid} attrs at {} lost: {err:?}", e.t));
            assert_eq!(attrs.size, e.data.len() as u64, "{what}: {oid} size at {}", e.t);
            assert_eq!(attrs.opaque, e.attrs, "{what}: {oid} attrs at {}", e.t);
        }
    }
    checked
}

/// Golden-run cross-product verification: every object at every
/// checkpoint instant (the strongest oracle validation; replays use the
/// cheaper per-entry [`verify_durable`]).
fn verify_full<D: BlockDev>(drive: &S4Drive<D>, st: &RunState) -> usize {
    let admin = admin_ctx();
    let mut checked = 0;
    for &raw in &st.order {
        let oid = ObjectId(raw);
        let o = &st.oracle[&raw];
        for &t in &st.checkpoints {
            checked += 1;
            let Some(e) = o.at(t) else {
                assert!(
                    drive.op_getattr(&admin, oid, Some(t)).is_err(),
                    "golden: {oid} should not exist at {t}"
                );
                continue;
            };
            if !e.alive {
                assert!(
                    drive.op_read(&admin, oid, 0, 1 << 16, Some(t)).is_err(),
                    "golden: {oid} deleted at {t} but readable"
                );
                continue;
            }
            let got = drive.op_read(&admin, oid, 0, 1 << 16, Some(t)).unwrap();
            assert_eq!(got, e.data, "golden: {oid} contents at {t}");
            let attrs = drive.op_getattr(&admin, oid, Some(t)).unwrap();
            assert_eq!(attrs.size, e.data.len() as u64, "golden: {oid} size at {t}");
            assert_eq!(attrs.opaque, e.attrs, "golden: {oid} attrs at {t}");
        }
    }
    checked
}

/// Invariant (b): the recovered audit log must be an exact prefix of the
/// predicted stream, and at least every record in a full block flushed
/// by the last completed sync must have survived.
fn verify_audit_prefix(recovered: &[AuditRecord], st: &RunState, what: &str) {
    assert!(
        recovered.len() <= st.predicted.len(),
        "{what}: recovered {} audit records, predicted only {}",
        recovered.len(),
        st.predicted.len()
    );
    for (i, (got, want)) in recovered.iter().zip(&st.predicted).enumerate() {
        assert_eq!(
            got, want,
            "{what}: audit record {i} diverged (hole or reordering)"
        );
    }
    let min_durable = if st.last_ok_sync.is_some() {
        (st.records_at_sync / RECORDS_PER_BLOCK) * RECORDS_PER_BLOCK
    } else {
        0
    };
    assert!(
        recovered.len() >= min_durable,
        "{what}: only {} audit records recovered; {} were in full blocks \
         flushed by the last completed sync",
        recovered.len(),
        min_durable
    );
}

/// Invariant (e): the recovered flight-recorder stream is an exact
/// prefix of the predicted request stream. The drive writes one trace
/// record per dispatched request, in dispatch order, sharing the audit
/// record's identity fields — so the audit predictor doubles as the
/// trace oracle, and the stamped contexts predict each record's trace
/// id, origin, and phase (zeroes for the untraced v1 majority). The
/// durability floor mirrors (b), but the stream mixes 68-byte v1 and
/// 78-byte v2 records, so it re-runs the spill discipline over the
/// predicted sizes: exactly the records in blocks spilled to the log
/// before the last completed sync's flush are guaranteed.
fn verify_trace_prefix(traces: &[TraceRecord], st: &RunState, what: &str) {
    assert!(
        traces.len() <= st.predicted.len(),
        "{what}: recovered {} trace records, predicted only {}",
        traces.len(),
        st.predicted.len()
    );
    for (i, (got, want)) in traces.iter().zip(&st.predicted).enumerate() {
        assert_eq!(got.seq, i as u64, "{what}: trace {i} seq (hole or reordering)");
        let identity = (got.time_us, got.user, got.client, got.op, got.ok, got.object);
        let expect = (
            want.time.as_micros(),
            want.user.0,
            want.client.0,
            want.op as u8,
            want.ok,
            want.object.0,
        );
        assert_eq!(
            identity, expect,
            "{what}: trace {i} diverged from its audit record"
        );
        let want_trace = &st.predicted_trace[i];
        assert_eq!(
            (got.trace_id, got.origin, got.phase),
            (want_trace.trace_id, want_trace.origin, want_trace.phase),
            "{what}: trace {i} carried the wrong trace context"
        );
    }
    let min_durable = if st.last_ok_sync.is_some() {
        // Replay the lazy spill: a record whose length-prefixed blob
        // would overflow the 4 KiB block spills the buffered records
        // first. Only blocks spilled by requests dispatched *before*
        // the sync are covered by its flush; the open tail is volatile
        // until the next anchor.
        let mut durable = 0usize;
        let (mut in_block, mut pending) = (0usize, 0usize);
        for trace in &st.predicted_trace[..st.records_at_sync] {
            let len = trace_blob_len(trace);
            if pending + len > BLOCK_SIZE {
                durable += in_block;
                in_block = 0;
                pending = 0;
            }
            pending += len;
            in_block += 1;
        }
        durable
    } else {
        0
    };
    assert!(
        traces.len() >= min_durable,
        "{what}: only {} trace records recovered; {} were in blocks \
         spilled before the last completed sync",
        traces.len(),
        min_durable
    );
}

// ---------------------------------------------------------------------
// Phase 1: golden run.
// ---------------------------------------------------------------------

/// Runs the workload fault-free on a traced device: validates the oracle
/// and the audit predictor, and measures the crash-point domain.
pub fn golden_run(cfg: &TortureConfig) -> GoldenSummary {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let dev = TraceDisk::new(MemDisk::with_capacity_bytes(DISK_BYTES));
    let trace = dev.handle();
    let drive = S4Drive::format(dev, DriveConfig::small_test(), clock.clone())
        .expect("golden: format failed");
    let format_points = trace.countable(CRASH_MASK);
    let format_syncs = trace.syncs();
    let st = run_workload(&drive, &clock, cfg.seed, cfg.ops);
    assert!(!st.stopped_early, "golden: fault-free run failed a dispatch");
    let end_points = trace.countable(CRASH_MASK);
    let sync_points = trace.syncs() - format_syncs;

    // Validate the oracle and predictor against the live drive.
    drive.op_sync(&user_ctx()).expect("golden: final sync");
    let versions = verify_full(&drive, &st);
    let recovered = drive
        .read_audit_records(&admin_ctx())
        .expect("golden: audit read");
    assert_eq!(
        recovered, st.predicted,
        "golden: predictor diverged from the drive's audit log"
    );
    // On a live drive the flight recorder has lost nothing: the trace
    // stream must cover the predicted stream exactly (validating the
    // 1:1 trace-per-audit-record assumption replays depend on).
    let traces = drive
        .read_traces(&admin_ctx())
        .expect("golden: trace read");
    assert_eq!(
        traces.len(),
        st.predicted.len(),
        "golden: trace stream incomplete on a fault-free run"
    );
    verify_trace_prefix(&traces, &st, "golden");

    GoldenSummary {
        domain: (format_points, end_points),
        audit_records: st.predicted.len(),
        syncs: st.syncs_ok,
        sync_points,
        objects: st.order.len(),
        versions,
    }
}

// ---------------------------------------------------------------------
// Phase 2: one crash-point replay.
// ---------------------------------------------------------------------

/// Replays the workload with power loss armed at countable request `k`
/// (tearing the faulting write per `torn`), then remounts and
/// asserts the five recovery invariants. Panics with a descriptive
/// message on any violation.
pub fn torture_crash_point(cfg: &TortureConfig, k: u64, torn: TornPattern) -> CrashOutcome {
    let what = format!("crash@{k}/{torn:?}");
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let plan = FaultPlan::power_loss_with_pattern(k, torn, CRASH_MASK);
    let dev = FaultyDisk::new(MemDisk::with_capacity_bytes(DISK_BYTES), plan);
    // k is at or past format's request count, so format always succeeds.
    let drive = S4Drive::format(dev, DriveConfig::small_test(), clock.clone())
        .unwrap_or_else(|e| panic!("{what}: format failed (crash point inside format?): {e:?}"));
    let st = run_workload(&drive, &clock, cfg.seed, cfg.ops);

    // Power loss: drop all volatile state, revive the device.
    let faulty = drive.crash();
    let died = faulty.is_dead() || st.stopped_early;
    faulty.revive();
    let mem = faulty.into_inner();

    // Remount; recovery must always succeed — there is always at least
    // the format-time anchor to fall back to.
    let (d1, report) =
        S4Drive::mount_with_report(mem, DriveConfig::small_test(), SimClock::new())
            .unwrap_or_else(|e| panic!("{what}: recovery failed: {e:?}"));

    // Invariant (c): journal replay is idempotent. Mount writes nothing,
    // so remounting the same image must reproduce identical state.
    let digest1 = d1.state_digest();
    let mem = d1.crash();
    let (d2, report2) =
        S4Drive::mount_with_report(mem, DriveConfig::small_test(), SimClock::new())
            .unwrap_or_else(|e| panic!("{what}: second recovery failed: {e:?}"));
    assert_eq!(
        digest1,
        d2.state_digest(),
        "{what}: remount not idempotent — state digests differ"
    );
    assert_eq!(
        report, report2,
        "{what}: remount not idempotent — recovery reports differ"
    );

    // Sanity: recovery must not invent mutations from the future.
    if let Some(&last_t) = st.checkpoints.last() {
        assert!(
            report.max_recovered_stamp.time <= last_t,
            "{what}: recovered stamp {} past the last issued op at {last_t}",
            report.max_recovered_stamp.time
        );
    }

    // Invariants (a) and (b) against the durability boundary: the last
    // sync that completed before the crash. If the fault never fired,
    // the workload completed — hold the replay to the golden bar
    // instead (everything readable, full audit stream present).
    let mut versions_checked = 0;
    let audit_prefix = if died {
        if let Some(boundary) = st.last_ok_sync {
            versions_checked += verify_durable(&d2, &st, boundary, &what);
        }
        let recovered = d2
            .read_audit_records(&admin_ctx())
            .unwrap_or_else(|e| panic!("{what}: audit read failed: {e:?}"));
        verify_audit_prefix(&recovered, &st, &what);
        recovered.len()
    } else {
        // Flush so every version is on disk, then verify everything.
        d2.op_sync(&user_ctx())
            .unwrap_or_else(|e| panic!("{what}: post-replay sync failed: {e:?}"));
        versions_checked += verify_full(&d2, &st);
        let recovered = d2
            .read_audit_records(&admin_ctx())
            .unwrap_or_else(|e| panic!("{what}: audit read failed: {e:?}"));
        verify_audit_prefix(&recovered, &st, &what);
        recovered.len()
    };

    // Invariant (e): the flight recorder's persisted trace stream is an
    // exact prefix of the predicted request stream.
    let traces = d2
        .read_traces(&admin_ctx())
        .unwrap_or_else(|e| panic!("{what}: trace read failed: {e:?}"));
    verify_trace_prefix(&traces, &st, &what);

    // Invariant (d): a cleaner pass must reclaim nothing inside the
    // detection window (the workload spans seconds; the window is an
    // hour) — every durable version must still read back.
    d2.clean()
        .unwrap_or_else(|e| panic!("{what}: post-recovery clean failed: {e:?}"));
    if died {
        if let Some(boundary) = st.last_ok_sync {
            versions_checked += verify_durable(&d2, &st, boundary, &what);
        }
    } else {
        versions_checked += verify_full(&d2, &st);
    }

    CrashOutcome {
        crash_point: k,
        torn,
        died,
        versions_checked,
        audit_prefix,
        report,
    }
}

// ---------------------------------------------------------------------
// Satellite 1: cleaner/compaction between crash and final remount.
// ---------------------------------------------------------------------

/// Like [`torture_crash_point`], but with a full maintenance pass —
/// cleaner, history compaction, and a forced anchor — wedged between
/// the post-crash recovery and a second power-off/remount cycle. The
/// cleaner must reclaim nothing inside the detection window even when
/// it runs on freshly recovered (possibly torn-tail) state, and the
/// compacted, re-anchored image must remount to the identical drive.
pub fn torture_cleaner_between(cfg: &TortureConfig, k: u64, torn: TornPattern) -> CrashOutcome {
    let what = format!("cleaner-crash@{k}/{torn:?}");
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let plan = FaultPlan::power_loss_with_pattern(k, torn, CRASH_MASK);
    let dev = FaultyDisk::new(MemDisk::with_capacity_bytes(DISK_BYTES), plan);
    let drive = S4Drive::format(dev, DriveConfig::small_test(), clock.clone())
        .unwrap_or_else(|e| panic!("{what}: format failed: {e:?}"));
    let st = run_workload(&drive, &clock, cfg.seed, cfg.ops);

    let faulty = drive.crash();
    let died = faulty.is_dead() || st.stopped_early;
    faulty.revive();
    let mem = faulty.into_inner();

    let (d1, report) =
        S4Drive::mount_with_report(mem, DriveConfig::small_test(), SimClock::new())
            .unwrap_or_else(|e| panic!("{what}: recovery failed: {e:?}"));

    // Invariants (a)/(b)/(e) hold right after recovery…
    let mut versions_checked = 0;
    if died {
        if let Some(boundary) = st.last_ok_sync {
            versions_checked += verify_durable(&d1, &st, boundary, &what);
        }
    } else {
        d1.op_sync(&user_ctx())
            .unwrap_or_else(|e| panic!("{what}: post-replay sync failed: {e:?}"));
        versions_checked += verify_full(&d1, &st);
    }
    let recovered = d1
        .read_audit_records(&admin_ctx())
        .unwrap_or_else(|e| panic!("{what}: audit read failed: {e:?}"));
    verify_audit_prefix(&recovered, &st, &what);
    let audit_prefix = recovered.len();

    // …then the maintenance pass runs on the recovered state…
    d1.clean()
        .unwrap_or_else(|e| panic!("{what}: cleaner failed on recovered state: {e:?}"));
    d1.compact_history()
        .unwrap_or_else(|e| panic!("{what}: compaction failed on recovered state: {e:?}"));
    d1.force_anchor()
        .unwrap_or_else(|e| panic!("{what}: anchor failed after maintenance: {e:?}"));

    // …and must not have eaten anything inside the window.
    if died {
        if let Some(boundary) = st.last_ok_sync {
            versions_checked += verify_durable(&d1, &st, boundary, &what);
        }
    } else {
        versions_checked += verify_full(&d1, &st);
    }

    // Second power-off. The anchor committed everything, so the cleaned
    // and compacted image must remount to the identical logical state,
    // idempotently.
    let digest = d1.state_digest();
    let mem = d1.crash();
    let (d2, report2) =
        S4Drive::mount_with_report(mem, DriveConfig::small_test(), SimClock::new())
            .unwrap_or_else(|e| panic!("{what}: remount after maintenance failed: {e:?}"));
    assert_eq!(
        digest,
        d2.state_digest(),
        "{what}: cleaned state diverged across the second crash"
    );
    let digest2 = d2.state_digest();
    let mem = d2.crash();
    let (d3, report3) =
        S4Drive::mount_with_report(mem, DriveConfig::small_test(), SimClock::new())
            .unwrap_or_else(|e| panic!("{what}: third recovery failed: {e:?}"));
    assert_eq!(digest2, d3.state_digest(), "{what}: double-crash remount not idempotent");
    assert_eq!(report2, report3, "{what}: double-crash recovery reports differ");

    // Durability and audit-prefix integrity survive the whole gauntlet.
    if died {
        if let Some(boundary) = st.last_ok_sync {
            versions_checked += verify_durable(&d3, &st, boundary, &what);
        }
    } else {
        versions_checked += verify_full(&d3, &st);
    }
    let recovered = d3
        .read_audit_records(&admin_ctx())
        .unwrap_or_else(|e| panic!("{what}: audit read failed: {e:?}"));
    verify_audit_prefix(&recovered, &st, &what);
    let traces = d3
        .read_traces(&admin_ctx())
        .unwrap_or_else(|e| panic!("{what}: trace read failed: {e:?}"));
    verify_trace_prefix(&traces, &st, &what);

    CrashOutcome {
        crash_point: k,
        torn,
        died,
        versions_checked,
        audit_prefix,
        report,
    }
}

// ---------------------------------------------------------------------
// Satellite 2: a second crash *during recovery replay*.
// ---------------------------------------------------------------------

/// Outcome of one crash-during-recovery probe (panics on violation).
#[derive(Clone, Copy, Debug)]
pub struct RecoveryCrashOutcome {
    /// The first (workload) crash point.
    pub crash_point: u64,
    /// Torn pattern of the first crash.
    pub torn: TornPattern,
    /// Whether the first fault fired.
    pub died: bool,
    /// Device requests the undisturbed recovery issues — the domain the
    /// second crash is sampled from.
    pub recovery_requests: u64,
    /// Device writes issued by recovery (must be zero: recovery is
    /// read-only, which is what makes a crash inside it harmless).
    pub recovery_writes: u64,
    /// Second-crash points replayed.
    pub second_replays: usize,
    /// Replays in which the second fault aborted the mount.
    pub second_died: usize,
    /// Versions verified readable across all double-crash recoveries.
    pub versions_checked: usize,
}

/// Crashes the workload at countable request `k`, then enumerates a
/// second power loss at (sampled) device-request points *inside the
/// recovery replay itself*. After each interrupted recovery the image
/// is remounted again; the result must be byte-identical to the
/// undisturbed recovery (same state digest, same [`RecoveryReport`]),
/// remain idempotent across a further remount, and hold the durability,
/// audit-prefix, trace-prefix, and post-cleaner invariants.
///
/// The probe first proves recovery performs **zero** device writes, so
/// an interrupted recovery leaves the image bit-for-bit unchanged —
/// replaying the second crash is then exactly "remount the same image".
pub fn torture_crash_during_recovery(
    cfg: &TortureConfig,
    k: u64,
    torn: TornPattern,
    max_second_points: Option<usize>,
) -> RecoveryCrashOutcome {
    let what = format!("recovery-crash@{k}/{torn:?}");
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let plan = FaultPlan::power_loss_with_pattern(k, torn, CRASH_MASK);
    let dev = FaultyDisk::new(MemDisk::with_capacity_bytes(DISK_BYTES), plan);
    let drive = S4Drive::format(dev, DriveConfig::small_test(), clock.clone())
        .unwrap_or_else(|e| panic!("{what}: format failed: {e:?}"));
    let st = run_workload(&drive, &clock, cfg.seed, cfg.ops);

    let faulty = drive.crash();
    let died = faulty.is_dead() || st.stopped_early;
    faulty.revive();
    let image = faulty.into_inner();

    // Undisturbed recovery: the baseline every interrupted recovery must
    // reproduce. The counting wrapper also measures the second-crash
    // domain and proves recovery writes nothing.
    let probe = FaultyDisk::new(image.clone(), FaultPlan::count_only(RequestClassMask::ALL));
    let (baseline, base_report) =
        S4Drive::mount_with_report(probe, DriveConfig::small_test(), SimClock::new())
            .unwrap_or_else(|e| panic!("{what}: baseline recovery failed: {e:?}"));
    let base_digest = baseline.state_digest();
    let probe = baseline.crash();
    let recovery_requests = probe.requests_seen();
    let probe = FaultyDisk::new(image.clone(), FaultPlan::count_only(CRASH_MASK));
    let (w, _) = S4Drive::mount_with_report(probe, DriveConfig::small_test(), SimClock::new())
        .unwrap_or_else(|e| panic!("{what}: write-count recovery failed: {e:?}"));
    let recovery_writes = w.crash().requests_seen();
    assert_eq!(
        recovery_writes, 0,
        "{what}: recovery wrote to the device — a crash inside it is no longer harmless"
    );

    let step = match max_second_points {
        Some(cap) if recovery_requests > cap as u64 => recovery_requests.div_ceil(cap as u64),
        _ => 1,
    };
    let mut second_replays = 0;
    let mut second_died = 0;
    let mut versions_checked = 0;
    let mut r = 0u64;
    while r < recovery_requests {
        second_replays += 1;
        let wrapped = FaultyDisk::new(
            image.clone(),
            FaultPlan::power_loss_after_requests(r, 0, RequestClassMask::ALL),
        );
        match S4Drive::mount_with_report(wrapped, DriveConfig::small_test(), SimClock::new()) {
            Err(_) => second_died += 1,
            Ok((d, rep)) => {
                // Tolerable only if the interrupted recovery still
                // reproduced the undisturbed result exactly.
                assert_eq!(
                    d.state_digest(),
                    base_digest,
                    "{what}@r{r}: recovery survived its fault with different state"
                );
                assert_eq!(rep, base_report, "{what}@r{r}: reports diverged");
            }
        }

        // Reboot after the second crash: recovery wrote nothing (proved
        // above), so the pre-crash image *is* the post-crash image.
        let (d2, rep2) =
            S4Drive::mount_with_report(image.clone(), DriveConfig::small_test(), SimClock::new())
                .unwrap_or_else(|e| panic!("{what}@r{r}: double-crash recovery failed: {e:?}"));
        assert_eq!(
            d2.state_digest(),
            base_digest,
            "{what}@r{r}: double-crash recovery diverged from the undisturbed one"
        );
        assert_eq!(rep2, base_report, "{what}@r{r}: double-crash report diverged");

        // Idempotence still holds after the double crash.
        let mem2 = d2.crash();
        let (d3, rep3) =
            S4Drive::mount_with_report(mem2, DriveConfig::small_test(), SimClock::new())
                .unwrap_or_else(|e| panic!("{what}@r{r}: third recovery failed: {e:?}"));
        assert_eq!(d3.state_digest(), base_digest, "{what}@r{r}: remount not idempotent");
        assert_eq!(rep3, base_report, "{what}@r{r}: remount reports differ");

        // Durability, audit-prefix, trace-prefix, and post-cleaner
        // retention — the same bar as a single crash.
        if died {
            if let Some(boundary) = st.last_ok_sync {
                versions_checked += verify_durable(&d3, &st, boundary, &what);
            }
        } else {
            versions_checked += verify_full(&d3, &st);
        }
        let recovered = d3
            .read_audit_records(&admin_ctx())
            .unwrap_or_else(|e| panic!("{what}@r{r}: audit read failed: {e:?}"));
        verify_audit_prefix(&recovered, &st, &what);
        let traces = d3
            .read_traces(&admin_ctx())
            .unwrap_or_else(|e| panic!("{what}@r{r}: trace read failed: {e:?}"));
        verify_trace_prefix(&traces, &st, &what);
        d3.clean()
            .unwrap_or_else(|e| panic!("{what}@r{r}: post-recovery clean failed: {e:?}"));
        if died {
            if let Some(boundary) = st.last_ok_sync {
                versions_checked += verify_durable(&d3, &st, boundary, &what);
            }
        }
        r += step;
    }

    RecoveryCrashOutcome {
        crash_point: k,
        torn,
        died,
        recovery_requests,
        recovery_writes,
        second_replays,
        second_died,
        versions_checked,
    }
}

/// Outcome of a crash-during-recovery campaign.
#[derive(Clone, Copy, Debug)]
pub struct RecoverySummary {
    /// First-crash points probed.
    pub first_points: usize,
    /// Total second-crash replays across all first points.
    pub second_replays: usize,
    /// Second faults that aborted the mount.
    pub second_died: usize,
    /// Total device requests across all undisturbed recoveries.
    pub recovery_requests: u64,
    /// Versions verified readable across all double-crash recoveries.
    pub versions_checked: usize,
}

/// Crash-during-recovery campaign: probes `first_points` workload crash
/// points spread across the golden domain (rotating through the torn
/// patterns), and at each enumerates up to `second_per_point` second
/// crashes inside the recovery replay.
pub fn enumerate_recovery_crashes(
    cfg: &TortureConfig,
    first_points: usize,
    second_per_point: Option<usize>,
) -> RecoverySummary {
    let golden = golden_run(cfg);
    let (start, end) = golden.domain;
    assert!(end > start, "workload issued no countable requests");
    let n = first_points.max(1).min((end - start) as usize);
    let mut summary = RecoverySummary {
        first_points: 0,
        second_replays: 0,
        second_died: 0,
        recovery_requests: 0,
        versions_checked: 0,
    };
    for j in 0..n {
        // Midpoints of n equal slices of the domain.
        let k = start + (end - start) * (2 * j as u64 + 1) / (2 * n as u64);
        let torn = cfg.torn_patterns[j % cfg.torn_patterns.len()];
        let o = torture_crash_during_recovery(cfg, k, torn, second_per_point);
        summary.first_points += 1;
        summary.second_replays += o.second_replays;
        summary.second_died += o.second_died;
        summary.recovery_requests += o.recovery_requests;
        summary.versions_checked += o.versions_checked;
    }
    summary
}

// ---------------------------------------------------------------------
// Campaign driver.
// ---------------------------------------------------------------------

/// Shared campaign loop: golden run, then one `replay` call per sampled
/// crash point with its rotating slice of the torn-pattern set.
fn enumerate_with(
    cfg: &TortureConfig,
    replay: impl Fn(&TortureConfig, u64, TornPattern) -> CrashOutcome,
) -> TortureSummary {
    let golden = golden_run(cfg);
    let (start, end) = golden.domain;
    assert!(end > start, "workload issued no countable requests");
    let domain = end - start;
    let step = match cfg.max_crash_points {
        Some(cap) if domain > cap as u64 => domain.div_ceil(cap as u64),
        _ => 1,
    };
    let mut summary = TortureSummary {
        domain: golden.domain,
        sync_points: golden.sync_points,
        crash_points: 0,
        replays: 0,
        died: 0,
        versions_checked: 0,
    };
    let mut k = start;
    let mut j = 0usize;
    while k < end {
        summary.crash_points += 1;
        for torn in cfg.patterns_at(j) {
            let outcome = replay(cfg, k, torn);
            summary.replays += 1;
            summary.died += outcome.died as usize;
            summary.versions_checked += outcome.versions_checked;
        }
        k += step;
        j += 1;
    }
    summary
}

/// Runs the golden run, then replays every (sampled) crash point with
/// its rotating slice of the torn-pattern set. Panics on the first
/// invariant violation.
pub fn enumerate(cfg: &TortureConfig) -> TortureSummary {
    enumerate_with(cfg, torture_crash_point)
}

/// The cleaner-between-crashes campaign: every (sampled) crash point is
/// replayed through [`torture_cleaner_between`] — recovery, a full
/// maintenance pass, a second power-off, and a final remount all hold
/// the invariants.
pub fn enumerate_cleaner_between(cfg: &TortureConfig) -> TortureSummary {
    enumerate_with(cfg, torture_cleaner_between)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_run_is_self_consistent() {
        let g = golden_run(&TortureConfig::bounded(0xB0A710AD));
        assert!(g.domain.1 > g.domain.0, "workload must hit the disk");
        assert!(g.objects >= 1);
        assert!(g.audit_records >= 100, "every op but ticks is audited");
        assert!(g.syncs >= 1, "workload must sync at least once");
    }

    #[test]
    fn single_crash_point_holds_invariants() {
        let cfg = TortureConfig::bounded(0xB0A710AD);
        let g = golden_run(&cfg);
        // Crash mid-domain: the drive dies with real state at risk.
        let mid = g.domain.0 + (g.domain.1 - g.domain.0) / 2;
        let outcome = torture_crash_point(&cfg, mid, TornPattern::Prefix(0));
        assert!(outcome.died, "mid-domain crash point must fire");
        assert!(outcome.report.recovered_objects >= 1, "partition object");
    }

    #[test]
    fn torn_write_crash_point_holds_invariants() {
        let cfg = TortureConfig::bounded(0x5EED);
        let g = golden_run(&cfg);
        let late = g.domain.0 + (g.domain.1 - g.domain.0) * 3 / 4;
        let outcome = torture_crash_point(&cfg, late, TornPattern::Prefix(4));
        assert!(outcome.died);
    }

    #[test]
    fn interleaved_and_holed_tears_hold_invariants() {
        // One deep probe per new pattern kind: a late crash point where
        // multi-sector segment writes are in flight, torn interleaved
        // and holed.
        let cfg = TortureConfig::bounded(0xB0A710AD);
        let g = golden_run(&cfg);
        let late = g.domain.0 + (g.domain.1 - g.domain.0) * 2 / 3;
        for torn in [
            TornPattern::Interleaved { phase: 0 },
            TornPattern::Holed { start: 2, len: 4 },
        ] {
            let outcome = torture_crash_point(&cfg, late, torn);
            assert!(outcome.died, "{torn:?} crash point must fire");
        }
    }

    #[test]
    fn pattern_rotation_covers_the_whole_set() {
        let cfg = TortureConfig::bounded(1);
        assert_eq!(cfg.replays_per_point(), 2);
        let mut seen = std::collections::HashSet::new();
        for j in 0..cfg.torn_patterns.len() {
            for p in cfg.patterns_at(j) {
                seen.insert(format!("{p:?}"));
            }
        }
        assert_eq!(
            seen.len(),
            cfg.torn_patterns.len(),
            "rotation must exercise every pattern across the campaign"
        );
    }
}
