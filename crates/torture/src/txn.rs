//! Exhaustive crash-point torture for cross-shard two-phase commit
//! (DESIGN §6i).
//!
//! The coordinator's window runs: *prepare* each participant shard
//! (execute + journal-flush the yes-vote), durably install the
//! *decision note* on shard 0 — the commit point — *fan out* the
//! decision, then *retire* the note. This module reproduces that exact
//! on-disk request sequence member-drive by member-drive (the same way
//! `reshard_torture` reproduces the split protocol's states) and kills
//! the power at **every countable device request inside the window, on
//! every device, under every torn-sector pattern**, then remounts and
//! asserts:
//!
//! - **all-or-nothing**: after recovery, every participant object holds
//!   the pre-transaction content or every one holds the
//!   post-transaction content — never a mix, mirrors included;
//! - **decision convergence**: no member is left in doubt, and no
//!   decision note outlives the mount that resolved it;
//! - **audit integrity**: every member's tamper-evident audit log is
//!   still readable and retains the synced pre-transaction prefix;
//! - **remount idempotence**: a second crash/remount pair reaches the
//!   identical decision and byte-identical objects — mount resolution
//!   is convergent.
//!
//! A replay is a pure function of its `(device, crash point, pattern)`
//! coordinates: each one rebuilds the same array from scratch on a
//! fresh simulated clock, so campaigns are reproducible request-for-
//! request.

use std::collections::BTreeMap;

use s4_array::{ArrayConfig, S4Array};
use s4_clock::SimDuration;
use s4_clock::SimClock;
use s4_core::{
    ClientId, DriveConfig, ObjectId, OpKind, Request, RequestContext, Response, S4Error, TraceCtx,
    UserId, PARTITION_OBJECT, PHASE_DECIDE, PHASE_NOTE, PHASE_PREPARE,
};
use s4_simdisk::{FaultPlan, FaultyDisk, MemDisk, TornPattern};
use s4_txn::{note_name, TxId};

use crate::CRASH_MASK;

/// The fixed transaction id every replay uses: ids only need to be
/// unique per array lifetime, and pinning it keeps replays
/// byte-identical.
const TXN_ID: u64 = 0x7777;

/// Device capacity for every member (sparse in memory).
const DISK_BYTES: u64 = 64 << 20;

/// Parameters of one 2PC torture campaign.
#[derive(Clone, Debug)]
pub struct TxnTortureConfig {
    /// Participant shards (every one joins the transaction).
    pub shards: usize,
    /// Members per shard (1 = unmirrored).
    pub mirrors: usize,
    /// Torn-sector patterns the campaign draws from.
    pub torn_patterns: Vec<TornPattern>,
    /// Patterns replayed per crash point: `None` replays all of them,
    /// `Some(m)` cycles the set across points, m per point.
    pub patterns_per_point: Option<usize>,
    /// Cap on crash points (sampled evenly across every device's
    /// window); `None` enumerates all of them.
    pub max_crash_points: Option<usize>,
}

impl TxnTortureConfig {
    /// The bounded CI campaign: two unmirrored shards, ≤ 24 sampled
    /// crash points, one pattern per point cycling the standard mix.
    pub fn bounded() -> Self {
        TxnTortureConfig {
            shards: 2,
            mirrors: 1,
            torn_patterns: standard_patterns(),
            patterns_per_point: Some(1),
            max_crash_points: Some(24),
        }
    }

    /// The exhaustive campaign: three shards × two mirrors, every
    /// countable request on every device, two patterns per point.
    pub fn exhaustive() -> Self {
        TxnTortureConfig {
            shards: 3,
            mirrors: 2,
            torn_patterns: standard_patterns(),
            patterns_per_point: Some(2),
            max_crash_points: None,
        }
    }

    /// Replays performed per crash point.
    pub fn replays_per_point(&self) -> usize {
        match self.patterns_per_point {
            Some(m) => m.min(self.torn_patterns.len()),
            None => self.torn_patterns.len(),
        }
    }

    /// The torn patterns replayed at the `j`-th sampled crash point.
    pub fn patterns_at(&self, j: usize) -> Vec<TornPattern> {
        let n = self.torn_patterns.len();
        let m = self.replays_per_point();
        (0..m).map(|i| self.torn_patterns[(j * m + i) % n]).collect()
    }

    fn devices(&self) -> usize {
        self.shards * self.mirrors
    }
}

/// The same torn mix the single-drive harness uses.
fn standard_patterns() -> Vec<TornPattern> {
    vec![
        TornPattern::Prefix(0),
        TornPattern::Prefix(4),
        TornPattern::Interleaved { phase: 0 },
        TornPattern::Holed { start: 1, len: 2 },
        TornPattern::Interleaved { phase: 1 },
    ]
}

/// What the golden (fault-free) protocol run established.
#[derive(Clone, Debug)]
pub struct TxnGoldenSummary {
    /// Per-device crash-point window `[start, end)`: countable request
    /// indices the 2PC window issues on that device (indices below
    /// `start` belong to the remount that precedes the protocol).
    pub windows: Vec<(u64, u64)>,
    /// Countable requests in the whole window, summed over devices —
    /// the size of one pattern's crash-point domain.
    pub points: u64,
}

/// Outcome of one crash-point replay (panics on invariant violation).
#[derive(Clone, Copy, Debug)]
pub struct TxnCrashOutcome {
    /// Device the power-loss fault was armed on.
    pub device: usize,
    /// The countable-request index the fault was armed at.
    pub crash_point: u64,
    /// Torn-sector pattern applied to the faulting write.
    pub torn: TornPattern,
    /// Whether the fault actually fired.
    pub died: bool,
    /// The decision recovery converged on: `true` = every object holds
    /// the post-transaction content, `false` = every object was rolled
    /// back.
    pub committed: bool,
}

/// Outcome of a whole campaign.
#[derive(Clone, Copy, Debug)]
pub struct TxnTortureSummary {
    /// Crash points in the full domain (all devices).
    pub domain: u64,
    /// Distinct crash points replayed.
    pub crash_points: usize,
    /// Total replays (crash points × patterns per point).
    pub replays: usize,
    /// Replays in which the fault fired mid-protocol.
    pub died: usize,
    /// Replays that recovered to the committed state.
    pub committed: usize,
    /// Replays that recovered to the rolled-back state.
    pub aborted: usize,
}

type Disk = FaultyDisk<MemDisk>;

struct Rig {
    array: S4Array<Disk>,
    /// Participant object of shard `s`, in shard order.
    oids: Vec<ObjectId>,
}

fn user() -> RequestContext {
    RequestContext::user(UserId(1), ClientId(1))
}

fn admin() -> RequestContext {
    RequestContext::admin(ClientId(0), 42)
}

fn array_cfg(mirrors: usize) -> ArrayConfig {
    ArrayConfig {
        mirrors,
        ..ArrayConfig::default()
    }
}

fn old_content(shard: usize) -> Vec<u8> {
    format!("old-{shard:04}").into_bytes()
}

fn new_content(shard: usize) -> Vec<u8> {
    format!("NEW-{shard:04}").into_bytes()
}

/// Formats a fresh array, seeds one synced object per shard, then
/// remounts it with `plans[i]` armed on device `i` — faults never fire
/// during the seeding phase, and each `FaultyDisk` counter restarts at
/// zero on the remount wrapper, so crash points index the remount +
/// protocol requests only. The whole build is a pure function of
/// `cfg` and `plans`.
fn build(cfg: &TxnTortureConfig, plans: Vec<FaultPlan>) -> Rig {
    assert_eq!(plans.len(), cfg.devices());
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let devices = (0..cfg.devices())
        .map(|_| FaultyDisk::new(MemDisk::with_capacity_bytes(DISK_BYTES), FaultPlan::none()))
        .collect();
    let a = S4Array::format(
        devices,
        DriveConfig::small_test(),
        array_cfg(cfg.mirrors),
        clock.clone(),
    )
    .unwrap();

    // One participant object per shard, with synced pre-transaction
    // content.
    let ctx = user();
    let mut oids: Vec<Option<ObjectId>> = vec![None; cfg.shards];
    while oids.iter().any(Option::is_none) {
        let oid = match a.dispatch(&ctx, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("unexpected response {other:?}"),
        };
        oids[a.shard_index_of(oid)].get_or_insert(oid);
    }
    let oids: Vec<ObjectId> = oids.into_iter().map(Option::unwrap).collect();
    for (s, &oid) in oids.iter().enumerate() {
        a.dispatch(
            &ctx,
            &Request::Write {
                oid,
                offset: 0,
                data: old_content(s),
            },
        )
        .unwrap();
    }
    a.dispatch(&ctx, &Request::Sync).unwrap();

    let devices = a.unmount().unwrap();
    let devices = devices
        .into_iter()
        .zip(plans)
        .map(|(d, plan)| FaultyDisk::new(d.into_inner(), plan))
        .collect();
    let (array, _) = S4Array::mount(
        devices,
        DriveConfig::small_test(),
        array_cfg(cfg.mirrors),
        clock,
    )
    .unwrap();
    Rig { array, oids }
}

/// Replays the coordinator's exact on-device request sequence against
/// the member drives: prepare every shard (one pinned `t0` per shard,
/// every member), install + sync the decision note on every shard-0
/// member, fan the commit out, retire the note. Stops at the first
/// error — once the armed device dies, the power is off and nothing
/// later in the window runs.
///
/// The whole window runs traced (trace id = the pinned transaction id),
/// mirroring the array workers span for span: prepare sub-requests
/// dispatch under a `PHASE_PREPARE` context, and synthetic `PHASE_NOTE`
/// / `PHASE_DECIDE` records land after the note install and the
/// decision fan-out — so every replay also tortures the v2 trace
/// records' crash survival alongside the data they annotate.
fn run_protocol(rig: &Rig, cfg: &TxnTortureConfig) -> Result<(), S4Error> {
    let trace = |phase| TraceCtx {
        trace_id: TXN_ID,
        origin: 0,
        phase,
    };
    let ctx = user().with_trace(trace(PHASE_PREPARE));
    let adm = admin();
    let note = note_name(TxId(TXN_ID));
    let clock = rig.array.member_drive(0, 0).clock().clone();
    for (s, &oid) in rig.oids.iter().enumerate() {
        let reqs = vec![Request::Write {
            oid,
            offset: 0,
            data: new_content(s),
        }];
        let t0 = clock.now();
        clock.advance(SimDuration::from_micros(1));
        for m in 0..cfg.mirrors {
            rig.array
                .member_drive(s, m)
                .txn_prepare_at(&ctx, TXN_ID, t0, &reqs)?;
        }
    }
    for m in 0..cfg.mirrors {
        let d = rig.array.member_drive(0, m);
        d.op_pcreate(&adm, &note, PARTITION_OBJECT)?;
        d.op_sync(&adm)?;
        d.record_phase_trace(
            &adm.with_trace(trace(PHASE_NOTE)),
            OpKind::PCreate,
            PARTITION_OBJECT,
            true,
            0,
        );
    }
    for s in 0..cfg.shards {
        for m in 0..cfg.mirrors {
            let d = rig.array.member_drive(s, m);
            d.txn_decide(TXN_ID, true)?;
            d.record_phase_trace(
                &adm.with_trace(trace(PHASE_DECIDE)),
                OpKind::Sync,
                ObjectId(TXN_ID),
                true,
                0,
            );
        }
    }
    for m in 0..cfg.mirrors {
        let d = rig.array.member_drive(0, m);
        d.op_pdelete(&adm, &note)?;
        d.op_sync(&adm)?;
    }
    Ok(())
}

/// Post-recovery invariant check. Returns `true` if the array holds
/// the committed state, `false` if the rolled-back state; panics on a
/// mix or any other violation. Also returns the per-object digests so
/// the caller can assert remount idempotence.
fn verify(a: &S4Array<Disk>, oids: &[ObjectId], what: &str) -> (bool, Vec<u64>) {
    let ctx = user();
    let adm = admin();
    let mut states = Vec::new();
    for (s, &oid) in oids.iter().enumerate() {
        let data = match a
            .dispatch(
                &ctx,
                &Request::Read {
                    oid,
                    offset: 0,
                    len: 64,
                    time: None,
                },
            )
            .unwrap_or_else(|e| panic!("{what}: object {oid} unreadable after crash: {e}"))
        {
            Response::Data(d) => d,
            other => panic!("unexpected response {other:?}"),
        };
        if data == new_content(s) {
            states.push(true);
        } else if data == old_content(s) {
            states.push(false);
        } else {
            panic!("{what}: object {oid} holds neither old nor new content: {data:?}");
        }
    }
    let committed = states[0];
    assert!(
        states.iter().all(|&c| c == committed),
        "{what}: atomicity violated — per-shard states {states:?}"
    );

    let mut digests = Vec::new();
    for (s, &oid) in oids.iter().enumerate() {
        for m in 0..a.mirror_count() {
            let d = a.member_drive(s, m);
            assert!(
                d.txn_in_doubt().is_empty(),
                "{what}: shard {s} member {m} still in doubt after mount"
            );
            let records = d
                .read_audit_records(&adm)
                .unwrap_or_else(|e| panic!("{what}: shard {s} member {m} audit unreadable: {e}"));
            assert!(
                records.len() >= 2,
                "{what}: shard {s} member {m} lost its synced audit prefix"
            );
            let notes = d
                .op_plist(&adm, None)
                .unwrap()
                .into_iter()
                .filter(|(n, _)| s4_txn::parse_note(n).is_some())
                .count();
            assert_eq!(
                notes, 0,
                "{what}: shard {s} member {m} kept a decision note past resolution"
            );
            // The persisted trace stream (mixed v1/v2 after the traced
            // window) must still decode whole, and every span the
            // transaction's id vouches for must carry a protocol phase.
            // Presence is not asserted: trace durability is bounded by
            // the last flush, and the crash may predate it.
            let traces = d.read_traces(&adm).unwrap_or_else(|e| {
                panic!("{what}: shard {s} member {m} trace stream unreadable: {e}")
            });
            for t in traces.iter().filter(|t| t.trace_id == TXN_ID) {
                assert_eq!(
                    t.origin, 0,
                    "{what}: shard {s} member {m} trace span with foreign origin"
                );
                assert!(
                    [PHASE_PREPARE, PHASE_NOTE, PHASE_DECIDE].contains(&t.phase),
                    "{what}: shard {s} member {m} trace span with phase {} outside the 2PC window",
                    t.phase
                );
            }
        }
        digests.push(a.shard_drive(s).object_digest(&adm, oid).unwrap());
    }
    (committed, digests)
}

/// Runs the protocol fault-free under counting plans and returns the
/// per-device crash-point windows.
pub fn txn_golden(cfg: &TxnTortureConfig) -> TxnGoldenSummary {
    let rig = build(cfg, vec![FaultPlan::count_only(CRASH_MASK); cfg.devices()]);
    // Requests below the post-mount watermark belong to the remount,
    // not the window — the same remount replays see before their fault
    // arms, so it is excluded from the crash-point domain.
    let devices_at_mount: Vec<u64> = {
        // Mount already happened inside build(); a second golden build
        // that skips the protocol measures its cost per device.
        let idle = build(cfg, vec![FaultPlan::count_only(CRASH_MASK); cfg.devices()]);
        idle.array
            .crash()
            .unwrap()
            .iter()
            .map(|d| d.requests_seen())
            .collect()
    };
    run_protocol(&rig, cfg).expect("golden protocol run must not fail");
    let (committed, _) = verify(&rig.array, &rig.oids, "golden");
    assert!(committed, "golden run must commit");
    // Fault-free, the array is still live and no pending tail was lost:
    // the transaction's *complete* causal span set must be present —
    // every member vouches for its own PREPARE and DECIDE, and exactly
    // the shard-0 (coordinator) members for the NOTE commit point.
    for s in 0..cfg.shards {
        for m in 0..cfg.mirrors {
            let traces = rig.array.member_drive(s, m).read_traces(&admin()).unwrap();
            let phases: Vec<u8> = traces
                .iter()
                .filter(|t| t.trace_id == TXN_ID)
                .map(|t| t.phase)
                .collect();
            assert!(
                phases.contains(&PHASE_PREPARE),
                "golden: shard {s} member {m} missing its prepare span"
            );
            assert!(
                phases.contains(&PHASE_DECIDE),
                "golden: shard {s} member {m} missing its decide span"
            );
            assert_eq!(
                phases.contains(&PHASE_NOTE),
                s == 0,
                "golden: shard {s} member {m} note span on the wrong shard"
            );
        }
    }
    let totals: Vec<u64> = rig
        .array
        .crash()
        .unwrap()
        .iter()
        .map(|d| d.requests_seen())
        .collect();
    let windows: Vec<(u64, u64)> = devices_at_mount.into_iter().zip(totals).collect();
    let points = windows.iter().map(|(s, e)| e - s).sum();
    assert!(points > 0, "2PC window issued no countable requests");
    TxnGoldenSummary { windows, points }
}

/// One replay: arm a power-loss fault at countable request `k` of
/// device `victim`, run the protocol until the power dies, then crash
/// every device, revive, remount, and verify all-or-nothing recovery —
/// twice, to prove mount resolution is idempotent.
pub fn txn_torture_point(
    cfg: &TxnTortureConfig,
    victim: usize,
    k: u64,
    torn: TornPattern,
) -> TxnCrashOutcome {
    let mut plans = vec![FaultPlan::none(); cfg.devices()];
    plans[victim] = FaultPlan::power_loss_with_pattern(k, torn, CRASH_MASK);
    let rig = build(cfg, plans);
    let result = run_protocol(&rig, cfg);

    let devices = rig.array.crash().unwrap();
    let died = devices[victim].is_dead();
    if result.is_err() {
        assert!(
            died,
            "protocol failed at point {k} on device {victim} without the fault firing: {result:?}"
        );
    }
    for d in &devices {
        d.revive();
    }
    let (a2, _) = S4Array::mount(
        devices,
        DriveConfig::small_test(),
        array_cfg(cfg.mirrors),
        SimClock::new(),
    )
    .unwrap();
    let (committed, digests) = verify(&a2, &rig.oids, "first remount");
    if result.is_ok() {
        assert!(committed, "a completed protocol must stay committed");
    }

    // Idempotence: crash the recovered array and mount again — same
    // decision, byte-identical objects, still nothing in doubt.
    let devices = a2.crash().unwrap();
    for d in &devices {
        d.revive();
    }
    let (a3, _) = S4Array::mount(
        devices,
        DriveConfig::small_test(),
        array_cfg(cfg.mirrors),
        SimClock::new(),
    )
    .unwrap();
    let (committed2, digests2) = verify(&a3, &rig.oids, "second remount");
    assert_eq!(committed, committed2, "remount flipped the decision");
    assert_eq!(digests, digests2, "remount changed recovered objects");

    TxnCrashOutcome {
        device: victim,
        crash_point: k,
        torn,
        died,
        committed,
    }
}

/// A full campaign: enumerate (or evenly sample) every `(device,
/// crash point)` pair in the golden windows and replay each with the
/// configured torn patterns. Panics on any invariant violation.
pub fn txn_campaign(cfg: &TxnTortureConfig) -> TxnTortureSummary {
    let golden = txn_golden(cfg);
    // Flatten the per-device windows into one domain of (device, k)
    // coordinates, then sample it evenly if capped.
    let mut all: Vec<(usize, u64)> = Vec::new();
    for (v, &(start, end)) in golden.windows.iter().enumerate() {
        for k in start..end {
            all.push((v, k));
        }
    }
    let picked: Vec<(usize, u64)> = match cfg.max_crash_points {
        Some(cap) if cap < all.len() => {
            let step = all.len() as f64 / cap as f64;
            (0..cap).map(|i| all[(i as f64 * step) as usize]).collect()
        }
        _ => all,
    };

    let mut summary = TxnTortureSummary {
        domain: golden.points,
        crash_points: picked.len(),
        replays: 0,
        died: 0,
        committed: 0,
        aborted: 0,
    };
    let mut by_outcome: BTreeMap<bool, u64> = BTreeMap::new();
    for (j, &(v, k)) in picked.iter().enumerate() {
        for torn in cfg.patterns_at(j) {
            let out = txn_torture_point(cfg, v, k, torn);
            summary.replays += 1;
            summary.died += usize::from(out.died);
            *by_outcome.entry(out.committed).or_insert(0) += 1;
        }
    }
    summary.committed = by_outcome.get(&true).copied().unwrap_or(0) as usize;
    summary.aborted = by_outcome.get(&false).copied().unwrap_or(0) as usize;
    summary
}
