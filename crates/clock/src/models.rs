//! Network and CPU service-time models.
//!
//! The paper's testbed connected a 550 MHz PIII client to a 600 MHz PIII
//! server over switched 100 Mb Ethernet, speaking NFSv2 (4 KB transfers) or
//! S4 RPC. These models charge the simulated clock for each RPC and for
//! server/client CPU work, so end-to-end benchmark numbers include the same
//! components as the paper's wall-clock measurements.

use crate::time::SimDuration;

/// Cost model for a request/response RPC over a local-area network.
///
/// Service time is `2 * per_message_latency + bytes / bandwidth` — one
/// latency each way plus serialization of both payloads onto the wire.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// One-way per-message latency (interrupt handling, protocol stack,
    /// switch forwarding).
    pub per_message_latency: SimDuration,
    /// Usable wire bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl NetworkModel {
    /// Switched 100 Mb Ethernet as in the paper's testbed: ~100 us of
    /// per-message overhead (typical for late-1990s NICs and kernel UDP
    /// stacks) and ~11.5 MB/s of usable bandwidth.
    pub fn lan_100mbit() -> Self {
        NetworkModel {
            per_message_latency: SimDuration::from_micros(100),
            bandwidth_bytes_per_sec: 11_500_000,
        }
    }

    /// A zero-cost network, for isolating storage costs in unit tests.
    pub fn free() -> Self {
        NetworkModel {
            per_message_latency: SimDuration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX,
        }
    }

    /// Service time for one RPC carrying `request_bytes` out and
    /// `response_bytes` back.
    pub fn rpc_cost(&self, request_bytes: usize, response_bytes: usize) -> SimDuration {
        let wire = request_bytes as u64 + response_bytes as u64;
        let transfer_us = if self.bandwidth_bytes_per_sec == u64::MAX {
            0
        } else {
            wire * 1_000_000 / self.bandwidth_bytes_per_sec
        };
        self.per_message_latency
            .mul(2)
            .saturating_add(SimDuration::from_micros(transfer_us))
    }
}

/// Cost model for CPU work, expressed as time per operation plus time per
/// byte touched.
///
/// Used for server-side request processing and for client think time such
/// as the compile phase of the SSH-build benchmark (which the paper notes
/// is "the most CPU intensive" phase).
#[derive(Clone, Copy, Debug)]
pub struct CpuModel {
    /// Fixed cost per operation (syscall + dispatch).
    pub per_op: SimDuration,
    /// Marginal cost per byte processed (copying, checksumming).
    pub per_byte_ns: u64,
}

impl CpuModel {
    /// A late-1990s server-class CPU (~600 MHz PIII): ~10 us fixed dispatch
    /// cost and ~2 ns/byte of copy cost.
    pub fn pentium3_600() -> Self {
        CpuModel {
            per_op: SimDuration::from_micros(10),
            per_byte_ns: 2,
        }
    }

    /// A zero-cost CPU, for isolating storage costs in unit tests.
    pub fn free() -> Self {
        CpuModel {
            per_op: SimDuration::ZERO,
            per_byte_ns: 0,
        }
    }

    /// Service time for one operation touching `bytes` bytes.
    pub fn op_cost(&self, bytes: usize) -> SimDuration {
        self.per_op.saturating_add(SimDuration::from_micros(
            (bytes as u64 * self.per_byte_ns) / 1000,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_network_is_free() {
        let n = NetworkModel::free();
        assert_eq!(n.rpc_cost(1 << 20, 1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn lan_rpc_cost_includes_both_directions() {
        let n = NetworkModel::lan_100mbit();
        let small = n.rpc_cost(128, 128);
        // Two 100us latencies dominate for small messages.
        assert!(small.as_micros() >= 200);
        let big = n.rpc_cost(128, 4096);
        assert!(big > small, "payload bytes must add transfer time");
    }

    #[test]
    fn lan_bulk_transfer_rate_is_plausible() {
        let n = NetworkModel::lan_100mbit();
        // 1 MB transfer should take on the order of 90ms at 11.5 MB/s.
        let t = n.rpc_cost(1 << 20, 0);
        let ms = t.as_millis_f64();
        assert!((80.0..120.0).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn cpu_cost_scales_with_bytes() {
        let c = CpuModel::pentium3_600();
        assert!(c.op_cost(65536) > c.op_cost(0));
        assert_eq!(CpuModel::free().op_cost(1 << 20), SimDuration::ZERO);
    }
}
