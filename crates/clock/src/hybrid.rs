//! Hybrid timestamps: totally ordered version stamps.
//!
//! Comprehensive versioning ("a separate version for every modification",
//! §3.3 of the paper) needs a total order over mutations even when many land
//! within the same simulated microsecond. A [`HybridTimestamp`] pairs the
//! simulated instant with a per-drive sequence number; the sequence breaks
//! ties, and time-based reads ("the version most current at time T") compare
//! on the time component only.

use core::fmt;

use crate::time::{SimClock, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A totally ordered version stamp: simulated time plus a tie-breaking
/// sequence number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HybridTimestamp {
    /// Simulated instant at which the mutation was applied.
    pub time: SimTime,
    /// Drive-assigned sequence number; strictly increasing across all
    /// mutations the drive applies, so two stamps are never equal.
    pub seq: u64,
}

impl HybridTimestamp {
    /// The earliest possible stamp.
    pub const ZERO: HybridTimestamp = HybridTimestamp {
        time: SimTime::ZERO,
        seq: 0,
    };

    /// The latest possible stamp; used as an "end of time" sentinel.
    pub const MAX: HybridTimestamp = HybridTimestamp {
        time: SimTime::MAX,
        seq: u64::MAX,
    };

    /// Builds a stamp from raw parts.
    pub const fn new(time: SimTime, seq: u64) -> Self {
        HybridTimestamp { time, seq }
    }

    /// A stamp that compares after every mutation applied at or before `t`
    /// and before every mutation applied after `t`. Time-based reads use
    /// this to select "the version that was most current at time `t`".
    pub const fn upper_bound_at(t: SimTime) -> Self {
        HybridTimestamp {
            time: t,
            seq: u64::MAX,
        }
    }
}

impl fmt::Debug for HybridTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}#{}", self.time, self.seq)
    }
}

impl fmt::Display for HybridTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.time, self.seq)
    }
}

/// Issues strictly increasing [`HybridTimestamp`]s from a [`SimClock`].
///
/// Cloning yields a handle onto the same sequence counter, so all handles
/// together issue a single strictly increasing stream.
#[derive(Clone, Debug)]
pub struct HybridClock {
    clock: SimClock,
    seq: Arc<AtomicU64>,
}

impl HybridClock {
    /// Creates a stamp issuer over `clock`, starting the sequence at 1
    /// (sequence 0 is reserved for [`HybridTimestamp::ZERO`]).
    pub fn new(clock: SimClock) -> Self {
        HybridClock {
            clock,
            seq: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Creates a stamp issuer whose next sequence number is `next_seq`;
    /// used when remounting a drive so stamps keep increasing across
    /// restarts.
    pub fn resuming_from(clock: SimClock, next_seq: u64) -> Self {
        HybridClock {
            clock,
            seq: Arc::new(AtomicU64::new(next_seq)),
        }
    }

    /// Issues the next stamp.
    pub fn next(&self) -> HybridTimestamp {
        HybridTimestamp {
            time: self.clock.now(),
            seq: self.seq.fetch_add(1, Ordering::SeqCst),
        }
    }

    /// Issues just the next sequence number, letting the caller pair it
    /// with a time of their choosing. Used when replaying state onto a
    /// replacement drive: the rebuilt stamps must carry the *original*
    /// mutation times (so time-based reads agree across replicas) while
    /// the sequence stream stays strictly increasing on this drive.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Returns the sequence number the next call to [`HybridClock::next`]
    /// would use (persisted at sync so restarts can resume).
    pub fn peek_seq(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Returns the underlying simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn stamps_strictly_increase_even_at_same_instant() {
        let hc = HybridClock::new(SimClock::new());
        let a = hc.next();
        let b = hc.next();
        assert_eq!(a.time, b.time);
        assert!(a < b);
    }

    #[test]
    fn time_dominates_sequence() {
        let clock = SimClock::new();
        let hc = HybridClock::new(clock.clone());
        let early = hc.next();
        clock.advance(SimDuration::from_micros(1));
        let late = HybridTimestamp::new(clock.now(), 0);
        assert!(early < late, "a later time wins regardless of sequence");
    }

    #[test]
    fn upper_bound_selects_versions_at_or_before_t() {
        let clock = SimClock::new();
        let hc = HybridClock::new(clock.clone());
        clock.advance(SimDuration::from_micros(10));
        let v1 = hc.next();
        let v2 = hc.next();
        clock.advance(SimDuration::from_micros(10));
        let v3 = hc.next();

        let bound = HybridTimestamp::upper_bound_at(SimTime::from_micros(10));
        assert!(v1 <= bound && v2 <= bound);
        assert!(v3 > bound);
    }

    #[test]
    fn resuming_continues_sequence() {
        let clock = SimClock::new();
        let hc = HybridClock::new(clock.clone());
        hc.next();
        hc.next();
        let saved = hc.peek_seq();
        let resumed = HybridClock::resuming_from(clock, saved);
        assert_eq!(resumed.next().seq, saved);
    }

    #[test]
    fn sentinels_bracket_everything() {
        let hc = HybridClock::new(SimClock::new());
        let s = hc.next();
        assert!(HybridTimestamp::ZERO < s);
        assert!(s < HybridTimestamp::MAX);
    }
}
