//! Thin synchronization wrappers over [`std::sync`].
//!
//! The reproduction originally pulled in `parking_lot` for its
//! non-poisoning mutexes. To keep the tier-1 gate hermetic (no registry
//! access at build time) the workspace uses this shim instead: the same
//! two-method surface (`new` + panic-free `lock`) backed by
//! [`std::sync::Mutex`]. Poisoning is deliberately ignored — every lock
//! in this codebase guards state that remains structurally valid if a
//! panic unwinds mid-critical-section (caches, counters, simulated
//! clocks), matching the parking_lot semantics the code was written
//! against.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with `parking_lot`-style ergonomics:
/// [`Mutex::lock`] never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. A poisoned
    /// mutex (a previous holder panicked) is recovered, not propagated.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without
    /// locking (possible because `&mut self` proves unique access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with the same non-poisoning ergonomics as
/// [`Mutex`]: neither [`RwLock::read`] nor [`RwLock::write`] returns a
/// poison error. Used by the array layer's per-shard quiesce gates,
/// where many dispatchers hold read guards concurrently and a reshard
/// flip briefly takes the write side.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access; a poisoned lock is recovered.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access; a poisoned lock is recovered.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10, "shared readers coexist");
        }
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn poisoned_rwlock_recovers() {
        let l = Arc::new(RwLock::new(7u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        // parking_lot semantics: the next lock succeeds and sees the
        // last consistent state.
        assert_eq!(m.lock().len(), 3);
    }
}
