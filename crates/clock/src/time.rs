//! Simulated instants, durations, and the shared monotonic clock.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An instant on the simulated timeline, in microseconds since simulation
/// start.
///
/// `SimTime` is the unit in which every version timestamp, audit record, and
/// benchmark result is expressed. It is a plain `u64` wrapper so it can be
/// stored directly in on-disk structures.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// The greatest representable instant; used as an "end of time" sentinel
    /// (e.g. the upper bound of the version that is currently live).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the instant as microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as (truncated) whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference between two instants.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating subtraction of a duration (clamps at the origin).
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from whole days (used for detection windows).
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400 * 1_000_000)
    }

    /// Builds a span from fractional seconds, rounding to microseconds.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e6).round().max(0.0) as u64)
    }

    /// Returns the span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Multiplies the span by an integer factor.
    #[allow(clippy::should_implement_trait)] // `Mul<u64>` fits poorly in const fns
    pub fn mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// A shared, thread-safe, monotonic simulated clock.
///
/// Components *advance* the clock by the service time they model; nothing in
/// the system reads real wall-clock time. Cloning a `SimClock` yields a
/// handle onto the same underlying timeline.
///
/// # Examples
///
/// ```
/// use s4_clock::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// clock.advance(SimDuration::from_millis(5));
/// assert_eq!(clock.now().as_micros(), 5_000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now_us: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock positioned at the origin of the simulated timeline.
    pub fn new() -> Self {
        SimClock {
            now_us: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates a clock positioned at `start` (useful for resuming long-lived
    /// simulated histories, e.g. multi-day capacity studies).
    pub fn starting_at(start: SimTime) -> Self {
        SimClock {
            now_us: Arc::new(AtomicU64::new(start.0)),
        }
    }

    /// Returns the current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime(self.now_us.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        SimTime(self.now_us.fetch_add(d.0, Ordering::SeqCst) + d.0)
    }

    /// Moves the clock forward to `t` if `t` is in the future; the clock
    /// never moves backward.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let mut cur = self.now_us.load(Ordering::SeqCst);
        while cur < t.0 {
            match self
                .now_us
                .compare_exchange(cur, t.0, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimTime(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - SimTime::from_secs(1)).as_micros(), 500_000);
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn simtime_saturating_sub_clamps_at_origin() {
        let t = SimTime::from_millis(1);
        assert_eq!(t.saturating_sub(SimDuration::from_secs(1)), SimTime::ZERO);
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(-1.0).as_micros(), 0);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
    }

    #[test]
    fn clock_is_monotonic_under_advance_to() {
        let c = SimClock::new();
        c.advance(SimDuration::from_secs(10));
        // Moving "back" is a no-op.
        c.advance_to(SimTime::from_secs(5));
        assert_eq!(c.now(), SimTime::from_secs(10));
        c.advance_to(SimTime::from_secs(15));
        assert_eq!(c.now(), SimTime::from_secs(15));
    }

    #[test]
    fn clock_clones_share_the_timeline() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_micros(7));
        assert_eq!(b.now().as_micros(), 7);
    }

    #[test]
    fn clock_concurrent_advances_all_land() {
        let c = SimClock::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(SimDuration::from_micros(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now().as_micros(), 8_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{:?}", SimDuration::from_micros(3)), "3us");
    }
}
