//! Simulated-time substrate for the S4 self-securing storage reproduction.
//!
//! The original S4 evaluation ran on physical hardware (Pentium III servers,
//! a 9 GB 10,000 RPM SCSI disk, switched 100 Mb Ethernet). This reproduction
//! replaces wall-clock measurement with a *simulated clock*: every component
//! (disk model, network model, CPU think time) charges its service time to a
//! shared [`SimClock`], and benchmarks report simulated seconds. This keeps
//! the evaluation deterministic and laptop-runnable while preserving the
//! relative shapes the paper reports.
//!
//! The crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution instants and
//!   durations on the simulated timeline.
//! * [`SimClock`] — a shared, thread-safe monotonic clock.
//! * [`HybridTimestamp`] — a totally ordered version stamp (simulated time
//!   plus a sequence number) used to order object versions even when many
//!   mutations land within the same microsecond.
//! * [`NetworkModel`] — RPC cost model (per-message latency + bandwidth).
//! * [`CpuModel`] — per-operation CPU cost model for server-side work and
//!   client think time (e.g. the compile phase of SSH-build).
//!
//! # Examples
//!
//! ```
//! use s4_clock::{NetworkModel, SimClock, SimDuration};
//!
//! let clock = SimClock::new();
//! let net = NetworkModel::lan_100mbit();
//! // Charge one 4 KB NFS transfer to the shared timeline.
//! clock.advance(net.rpc_cost(4096, 32));
//! assert!(clock.now().as_micros() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hybrid;
pub mod models;
pub mod sync;
pub mod time;

pub use hybrid::{HybridClock, HybridTimestamp};
pub use models::{CpuModel, NetworkModel};
pub use time::{SimClock, SimDuration, SimTime};
