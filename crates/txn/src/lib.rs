//! Cross-shard atomic batches: the two-phase-commit vocabulary shared by
//! the S4 array coordinator and its tools.
//!
//! A multi-shard batch must be all-or-nothing even though each shard is
//! an independent self-securing drive with its own journal. The protocol
//! (classic presumed-abort 2PC, adapted to S4's append-only history
//! discipline):
//!
//! 1. **Prepare** — the coordinator sends each participant shard its
//!    sub-batch. The shard executes it, force-flushes `Prepared`/
//!    `Touched` records to its journaled transaction log, and the
//!    successful reply is its yes-vote: the effects are durable and
//!    their scope is recorded.
//! 2. **Decide** — once every vote is in, the coordinator durably writes
//!    a **decision note** (a `__s4/txn/<txid>` partition entry on shard
//!    0, journal-flushed). That single write is the commit point: a
//!    crash before it aborts the transaction everywhere (presumed
//!    abort), a crash after it commits everywhere.
//! 3. **Fan-out** — Commit/Abort is sent to each participant; abort
//!    rolls the sub-batch back through forward compensation. The note is
//!    retired only after every participant acknowledged, so recovery can
//!    always re-derive the decision.
//!
//! Mount-time recovery resolves in-doubt participants by looking for the
//! note: present ⇒ redo (effects are already durable — commit is pure
//! bookkeeping), absent ⇒ abort via compensation.
//!
//! This crate is dependency-free: it owns transaction-id generation, the
//! decision-note naming scheme, and the generic coordinator driver
//! ([`run`]) over an abstract [`TwoPhaseOps`] port, so the state-machine
//! logic is unit-testable without spinning up an array.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A transaction identifier, unique per array lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Allocates [`TxId`]s: the caller's clock supplies the high bits (so
/// ids are roughly time-ordered and survive restarts without
/// coordination) and a process-local counter disambiguates ids minted in
/// the same microsecond.
#[derive(Debug, Default)]
pub struct TxIdGen {
    counter: AtomicU64,
}

impl TxIdGen {
    /// A fresh generator.
    pub fn new() -> Self {
        TxIdGen::default()
    }

    /// Mints the next id for a transaction starting at `now_micros`.
    pub fn next(&self, now_micros: u64) -> TxId {
        let c = self.counter.fetch_add(1, Ordering::Relaxed);
        TxId((now_micros << 16) | (c & 0xFFFF))
    }
}

/// Namespace prefix of coordinator decision notes: they live in the
/// partition table of shard 0 under the array's reserved name prefix, so
/// clients can never collide with (or forge) them.
pub const TXN_NOTE_PREFIX: &str = "__s4/txn/";

/// The decision-note partition name for `txid`.
pub fn note_name(txid: TxId) -> String {
    format!("{TXN_NOTE_PREFIX}{txid}")
}

/// Parses a partition name back into the transaction it commits.
pub fn parse_note(name: &str) -> Option<TxId> {
    let hex = name.strip_prefix(TXN_NOTE_PREFIX)?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok().map(TxId)
}

/// The side effects the coordinator driver needs, abstracted so the
/// state machine is testable without an array. Implementations decide
/// what "shard" indexes mean and how messages travel.
pub trait TwoPhaseOps {
    /// Transport/participant error type.
    type Err;

    /// Sends participant `shard` its sub-batch; `Ok` is the yes-vote
    /// (effects executed AND durable). A failing participant must have
    /// rolled its partial effects back before returning.
    fn prepare(&mut self, shard: usize, txid: TxId) -> Result<(), Self::Err>;

    /// Durably records the commit decision (the commit point). Only ever
    /// called with every vote in hand.
    fn record_decision(&mut self, txid: TxId) -> Result<(), Self::Err>;

    /// Tells participant `shard` the outcome; on `commit = false` it
    /// compensates. Must be idempotent — recovery may repeat it.
    fn decide(&mut self, shard: usize, txid: TxId, commit: bool) -> Result<(), Self::Err>;

    /// Removes the decision note once every participant acknowledged the
    /// commit. Failure is harmless (recovery cleans orphaned notes).
    fn retire_decision(&mut self, txid: TxId) -> Result<(), Self::Err>;
}

/// How a coordinated transaction ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnOutcome<E> {
    /// The decision note was written: the transaction is durable on
    /// every shard. `lagging` lists participants whose commit fan-out
    /// failed — their mount-time recovery will redo from the note.
    Committed {
        /// Shards that did not acknowledge the commit.
        lagging: Vec<usize>,
    },
    /// The transaction rolled back everywhere reachable.
    Aborted {
        /// The participant whose prepare failed, if that was the cause
        /// (`None`: the decision write itself failed).
        failed_shard: Option<usize>,
        /// The underlying error.
        error: E,
    },
}

/// Drives one transaction to its outcome. The invariants this encodes:
///
/// * `record_decision` happens only after **every** prepare succeeded;
/// * an abort never follows a recorded decision;
/// * the note is retired only when **every** participant acknowledged.
pub fn run<O: TwoPhaseOps>(ops: &mut O, txid: TxId, shards: &[usize]) -> TxnOutcome<O::Err> {
    let mut prepared: Vec<usize> = Vec::with_capacity(shards.len());
    for &s in shards {
        match ops.prepare(s, txid) {
            Ok(()) => prepared.push(s),
            Err(error) => {
                // The failing shard rolled itself back; release the
                // others. A shard that misses this abort resolves it at
                // mount: prepared, no note ⇒ presumed abort.
                for &p in &prepared {
                    let _ = ops.decide(p, txid, false);
                }
                return TxnOutcome::Aborted {
                    failed_shard: Some(s),
                    error,
                };
            }
        }
    }
    if let Err(error) = ops.record_decision(txid) {
        for &p in &prepared {
            let _ = ops.decide(p, txid, false);
        }
        return TxnOutcome::Aborted {
            failed_shard: None,
            error,
        };
    }
    let mut lagging = Vec::new();
    for &s in shards {
        if ops.decide(s, txid, true).is_err() {
            lagging.push(s);
        }
    }
    if lagging.is_empty() {
        // Best-effort: an orphaned note is cleaned at the next mount.
        let _ = ops.retire_decision(txid);
    }
    TxnOutcome::Committed { lagging }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txids_are_unique_and_time_ordered() {
        let g = TxIdGen::new();
        let a = g.next(1_000);
        let b = g.next(1_000);
        let c = g.next(2_000);
        assert_ne!(a, b);
        assert!(b < c, "later micros dominate the counter");
    }

    #[test]
    fn note_names_round_trip_and_reject_garbage() {
        let txid = TxId(0xdead_beef_0042_0007);
        let name = note_name(txid);
        assert!(name.starts_with(TXN_NOTE_PREFIX));
        assert_eq!(parse_note(&name), Some(txid));
        assert_eq!(parse_note("__s4/txn/xyz"), None);
        assert_eq!(parse_note("__s4/txn/123"), None, "short hex rejected");
        assert_eq!(parse_note("home"), None);
        assert_eq!(parse_note("__s4/epoch/4"), None);
    }

    /// Scripted mock: records the event order and fails exactly the
    /// steps it is told to.
    #[derive(Default)]
    struct Mock {
        events: Vec<String>,
        fail_prepare: Option<usize>,
        fail_decision: bool,
        fail_commit_on: Vec<usize>,
    }

    impl TwoPhaseOps for Mock {
        type Err = String;
        fn prepare(&mut self, shard: usize, _txid: TxId) -> Result<(), String> {
            self.events.push(format!("prepare:{shard}"));
            if self.fail_prepare == Some(shard) {
                return Err(format!("prepare {shard} refused"));
            }
            Ok(())
        }
        fn record_decision(&mut self, _txid: TxId) -> Result<(), String> {
            self.events.push("note".into());
            if self.fail_decision {
                return Err("note write failed".into());
            }
            Ok(())
        }
        fn decide(&mut self, shard: usize, _txid: TxId, commit: bool) -> Result<(), String> {
            self.events
                .push(format!("{}:{shard}", if commit { "commit" } else { "abort" }));
            if commit && self.fail_commit_on.contains(&shard) {
                return Err(format!("shard {shard} unreachable"));
            }
            Ok(())
        }
        fn retire_decision(&mut self, _txid: TxId) -> Result<(), String> {
            self.events.push("retire".into());
            Ok(())
        }
    }

    #[test]
    fn clean_commit_orders_note_between_votes_and_fanout() {
        let mut m = Mock::default();
        let out = run(&mut m, TxId(1), &[0, 2, 3]);
        assert_eq!(out, TxnOutcome::Committed { lagging: vec![] });
        assert_eq!(
            m.events,
            vec![
                "prepare:0", "prepare:2", "prepare:3", "note", "commit:0", "commit:2",
                "commit:3", "retire"
            ]
        );
    }

    #[test]
    fn prepare_failure_aborts_the_prepared_prefix_only() {
        let mut m = Mock {
            fail_prepare: Some(2),
            ..Mock::default()
        };
        let out = run(&mut m, TxId(2), &[0, 2, 3]);
        assert!(matches!(
            out,
            TxnOutcome::Aborted {
                failed_shard: Some(2),
                ..
            }
        ));
        // Shard 3 was never prepared, so it gets no abort; no note ever.
        assert_eq!(m.events, vec!["prepare:0", "prepare:2", "abort:0"]);
    }

    #[test]
    fn decision_write_failure_aborts_everything_prepared() {
        let mut m = Mock {
            fail_decision: true,
            ..Mock::default()
        };
        let out = run(&mut m, TxId(3), &[1, 4]);
        assert!(matches!(
            out,
            TxnOutcome::Aborted {
                failed_shard: None,
                ..
            }
        ));
        assert_eq!(
            m.events,
            vec!["prepare:1", "prepare:4", "note", "abort:1", "abort:4"]
        );
    }

    #[test]
    fn lagging_commit_keeps_the_note_for_recovery() {
        let mut m = Mock {
            fail_commit_on: vec![4],
            ..Mock::default()
        };
        let out = run(&mut m, TxId(4), &[1, 4, 5]);
        assert_eq!(out, TxnOutcome::Committed { lagging: vec![4] });
        // No retire: shard 4's mount recovery still needs the note.
        assert_eq!(
            m.events,
            vec!["prepare:1", "prepare:4", "prepare:5", "note", "commit:1", "commit:4", "commit:5"]
        );
    }
}
