//! Aggregated observability over the member drives' registries.
//!
//! Each shard keeps its own [`s4_obs::Registry`]; the array renders one
//! exposition with a per-shard breakdown plus array totals. Counters
//! and gauges sum across shards (both are per-drive magnitudes: request
//! counts, occupancy blocks, queue depths); histograms stay per shard —
//! summing quantiles would be meaningless, so the JSON exposition keeps
//! them inside the per-shard documents.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use s4_simdisk::BlockDev;

use crate::array::S4Array;

impl<D: BlockDev + 'static> S4Array<D> {
    /// Prometheus-style text exposition: one `name{shard="i"}` sample
    /// per member drive plus an unlabeled array total per name.
    pub fn metrics_text(&self) -> String {
        let n = self.shard_count();
        let mut counters: BTreeMap<String, Vec<(usize, u64)>> = BTreeMap::new();
        let mut gauges: BTreeMap<String, Vec<(usize, f64)>> = BTreeMap::new();
        for s in 0..n {
            let drive = self.shard_drive(s);
            drive.metrics_text(); // refresh operational gauges
            for (name, v) in drive.registry().counter_values() {
                counters.entry(name).or_default().push((s, v));
            }
            for (name, v) in drive.registry().gauge_values() {
                gauges.entry(name).or_default().push((s, v));
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# HELP s4_array_shards mirror groups in the array");
        let _ = writeln!(out, "# TYPE s4_array_shards gauge");
        let _ = writeln!(out, "s4_array_shards {n}");
        let _ = writeln!(out, "# HELP s4_array_mirrors member drives per shard");
        let _ = writeln!(out, "# TYPE s4_array_mirrors gauge");
        let _ = writeln!(out, "s4_array_mirrors {}", self.mirror_count());
        let _ = writeln!(
            out,
            "# HELP s4_array_degraded shard running with reduced redundancy (dead or read-only member)"
        );
        let _ = writeln!(out, "# TYPE s4_array_degraded gauge");
        let mut degraded_total = 0u64;
        for s in 0..n {
            let d = u64::from(self.shard_degraded(s));
            degraded_total += d;
            let _ = writeln!(out, "s4_array_degraded{{shard=\"{s}\"}} {d}");
        }
        let _ = writeln!(out, "s4_array_degraded {degraded_total}");
        for (name, samples) in &counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let mut total = 0u64;
            for (s, v) in samples {
                total += v;
                let _ = writeln!(out, "{name}{{shard=\"{s}\"}} {v}");
            }
            let _ = writeln!(out, "{name} {total}");
        }
        for (name, samples) in &gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let mut total = 0.0f64;
            for (s, v) in samples {
                total += v;
                let _ = writeln!(out, "{name}{{shard=\"{s}\"}} {v}");
            }
            let _ = writeln!(out, "{name} {total}");
        }
        out
    }

    /// JSON exposition:
    /// `{"shards":N,"shard_metrics":[…],"aggregate":{"counters":…,"gauges":…}}`
    /// where `shard_metrics[i]` is shard `i`'s full single-drive
    /// document (histograms included) and `aggregate` sums counters and
    /// gauges across shards.
    pub fn metrics_json(&self) -> String {
        let n = self.shard_count();
        let mut per_shard = Vec::with_capacity(n);
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
        for s in 0..n {
            let drive = self.shard_drive(s);
            per_shard.push(drive.metrics_json()); // refreshes gauges too
            for (name, v) in drive.registry().counter_values() {
                *counters.entry(name).or_insert(0) += v;
            }
            for (name, v) in drive.registry().gauge_values() {
                *gauges.entry(name).or_insert(0.0) += v;
            }
        }
        let counters = counters
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        let gauges = gauges
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        let degraded = (0..n)
            .map(|s| if self.shard_degraded(s) { "1" } else { "0" })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"shards\":{n},\"mirrors\":{},\"degraded\":[{degraded}],\"shard_metrics\":[{}],\"aggregate\":{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}}}}}}",
            self.mirror_count(),
            per_shard.join(",")
        )
    }
}
