//! Aggregated observability over the member drives' registries.
//!
//! Each shard keeps its own [`s4_obs::Registry`]; the array renders one
//! exposition with a per-shard breakdown plus array totals. Counters
//! and gauges sum across shards (both are per-drive magnitudes: request
//! counts, occupancy blocks, queue depths); histograms never sum —
//! quantiles of quantiles are meaningless — so both expositions carry
//! them shard-labeled (percentile summaries per shard, no synthesized
//! total).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use s4_simdisk::BlockDev;

use crate::array::S4Array;

impl<D: BlockDev + 'static> S4Array<D> {
    /// Prometheus-style text exposition: one `name{shard="i"}` sample
    /// per member drive plus an unlabeled array total per name.
    pub fn metrics_text(&self) -> String {
        let n = self.shard_count();
        let mut counters: BTreeMap<String, Vec<(usize, u64)>> = BTreeMap::new();
        let mut gauges: BTreeMap<String, Vec<(usize, f64)>> = BTreeMap::new();
        let mut hists: BTreeMap<String, Vec<(usize, s4_obs::HistogramSnapshot)>> = BTreeMap::new();
        for s in 0..n {
            let drive = self.shard_drive(s);
            let slot = self.shard_slot(s);
            drive.metrics_text(); // refresh operational gauges
            for (name, v) in drive.registry().counter_values() {
                counters.entry(name).or_default().push((slot, v));
            }
            for (name, v) in drive.registry().gauge_values() {
                gauges.entry(name).or_default().push((slot, v));
            }
            for (name, v) in drive.registry().histogram_values() {
                hists.entry(name).or_default().push((slot, v));
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# HELP s4_array_shards mirror groups in the array");
        let _ = writeln!(out, "# TYPE s4_array_shards gauge");
        let _ = writeln!(out, "s4_array_shards {n}");
        let _ = writeln!(out, "# HELP s4_array_mirrors member drives per shard");
        let _ = writeln!(out, "# TYPE s4_array_mirrors gauge");
        let _ = writeln!(out, "s4_array_mirrors {}", self.mirror_count());
        let _ = writeln!(
            out,
            "# HELP s4_array_degraded shard running with reduced redundancy (dead or read-only member)"
        );
        let _ = writeln!(out, "# TYPE s4_array_degraded gauge");
        let mut degraded_total = 0u64;
        for s in 0..n {
            let d = u64::from(self.shard_degraded(s));
            let slot = self.shard_slot(s);
            degraded_total += d;
            let _ = writeln!(out, "s4_array_degraded{{shard=\"{slot}\"}} {d}");
        }
        let _ = writeln!(out, "s4_array_degraded {degraded_total}");
        for (name, samples) in &counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let mut total = 0u64;
            for (s, v) in samples {
                total += v;
                let _ = writeln!(out, "{name}{{shard=\"{s}\"}} {v}");
            }
            let _ = writeln!(out, "{name} {total}");
        }
        for (name, samples) in &gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let mut total = 0.0f64;
            for (s, v) in samples {
                total += v;
                let _ = writeln!(out, "{name}{{shard=\"{s}\"}} {v}");
            }
            let _ = writeln!(out, "{name} {total}");
        }
        // Histograms stay per shard: quantiles do not sum, so each
        // shard's summary is exported under its own label and no
        // unlabeled total is synthesized.
        for (name, samples) in &hists {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (s, h) in samples {
                for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                    let _ = writeln!(out, "{name}{{shard=\"{s}\",quantile=\"{q}\"}} {v}");
                }
                let _ = writeln!(out, "{name}_count{{shard=\"{s}\"}} {}", h.count);
                let _ = writeln!(out, "{name}_max{{shard=\"{s}\"}} {}", h.max);
            }
        }
        // Reshard progress (migration gauges, lag, flip pauses) and
        // cross-shard transaction outcomes live in array-level
        // registries, not on any member drive.
        out.push_str(&self.reshard_registry().render_prometheus());
        out.push_str(&self.txn_registry().render_prometheus());
        out
    }

    /// One-line cross-shard transaction status: coordinator outcome
    /// counters plus mount-time recovery counts (served on the TCP txn
    /// frame).
    pub fn txn_status_text(&self) -> String {
        let get = |name: &str| {
            self.txn_registry()
                .counter_values()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .unwrap_or(0)
        };
        format!(
            "committed={} aborted={} lagging={} recovered_commit={} recovered_abort={}",
            get("s4_txn_committed_total"),
            get("s4_txn_aborted_total"),
            get("s4_txn_lagging_total"),
            get("s4_txn_recovered_commit_total"),
            get("s4_txn_recovered_abort_total"),
        )
    }

    /// One-line reshard status: the routing epoch plus the progress
    /// gauges of any in-flight split (served on the TCP reshard frame).
    pub fn reshard_status_text(&self) -> String {
        let get = |name: &str| {
            self.reshard_registry()
                .gauge_values()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .unwrap_or(0.0)
        };
        let e = self.epoch();
        format!(
            "epoch seq={} base={} bits={:#b} active={} source_slot={} snapshot={} catchup={} lag={} rounds={}",
            e.seq,
            e.base,
            e.bits,
            get("s4_reshard_active") as u64,
            get("s4_reshard_source_slot") as u64,
            get("s4_reshard_snapshot_objects") as u64,
            get("s4_reshard_catchup_objects") as u64,
            get("s4_reshard_lag") as u64,
            get("s4_reshard_rounds") as u64,
        )
    }

    /// JSON exposition:
    /// `{"shards":N,"shard_metrics":[…],"aggregate":{"counters":…,"gauges":…,"histograms":…}}`
    /// where `shard_metrics[i]` is shard `i`'s full single-drive
    /// document, `aggregate` sums counters and gauges across shards,
    /// and `aggregate.histograms` carries each histogram's percentile
    /// snapshot per shard label (quantiles do not sum).
    pub fn metrics_json(&self) -> String {
        let n = self.shard_count();
        let mut per_shard = Vec::with_capacity(n);
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
        let mut hists: BTreeMap<String, Vec<(usize, s4_obs::HistogramSnapshot)>> = BTreeMap::new();
        for s in 0..n {
            let drive = self.shard_drive(s);
            let slot = self.shard_slot(s);
            per_shard.push(drive.metrics_json()); // refreshes gauges too
            for (name, v) in drive.registry().counter_values() {
                *counters.entry(name).or_insert(0) += v;
            }
            for (name, v) in drive.registry().gauge_values() {
                *gauges.entry(name).or_insert(0.0) += v;
            }
            for (name, v) in drive.registry().histogram_values() {
                hists.entry(name).or_default().push((slot, v));
            }
        }
        // Quantiles do not sum, so the aggregate keeps histograms
        // shard-labeled: {"name":{"<slot>":{count,p50,p90,p99,max}}}.
        let histograms = hists
            .iter()
            .map(|(name, samples)| {
                let per = samples
                    .iter()
                    .map(|(s, h)| {
                        format!(
                            "\"{s}\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                            h.count, h.p50, h.p90, h.p99, h.max
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                format!("\"{name}\":{{{per}}}")
            })
            .collect::<Vec<_>>()
            .join(",");
        let counters = counters
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        let gauges = gauges
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        let degraded = (0..n)
            .map(|s| if self.shard_degraded(s) { "1" } else { "0" })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"shards\":{n},\"mirrors\":{},\"degraded\":[{degraded}],\"reshard\":{},\"txn\":{},\"shard_metrics\":[{}],\"aggregate\":{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}}}",
            self.mirror_count(),
            self.reshard_registry().render_json(),
            self.txn_registry().render_json(),
            per_shard.join(",")
        )
    }
}
