//! In-process [`Transport`] over an array, so [`s4_fs::S4FileServer`]
//! runs array-backed without code changes: directory operations resolve
//! on the root object's home shard, file payload operations route
//! independently to each file's own shard.

use std::sync::Arc;

use s4_clock::{NetworkModel, SimClock};
use s4_core::{Request, RequestContext, Response};
use s4_fs::server::{FsError, FsResult};
use s4_fs::Transport;
use s4_simdisk::BlockDev;

use crate::array::S4Array;

/// Loopback transport over a sharded array, charging the network cost
/// model to the array clock (mirrors [`s4_fs::LoopbackTransport`]).
pub struct ArrayTransport<D: BlockDev> {
    array: Arc<S4Array<D>>,
    net: NetworkModel,
    clock: SimClock,
}

impl<D: BlockDev + 'static> ArrayTransport<D> {
    /// Creates a transport over `array` with the given network model.
    pub fn new(array: Arc<S4Array<D>>, net: NetworkModel) -> Self {
        let clock = array.clock().clone();
        ArrayTransport { array, net, clock }
    }

    /// The wrapped array.
    pub fn array(&self) -> &Arc<S4Array<D>> {
        &self.array
    }
}

impl<D: BlockDev + 'static> Transport for ArrayTransport<D> {
    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn call(&self, ctx: &RequestContext, req: &Request) -> FsResult<Response> {
        let resp = self.array.dispatch(ctx, req);
        // Charge the wire: request out, response (or small error) back.
        let resp_size = resp.as_ref().map(|r| r.wire_size()).unwrap_or(16);
        self.clock
            .advance(self.net.rpc_cost(req.wire_size(), resp_size));
        resp.map_err(|e| match e {
            s4_core::S4Error::AccessDenied => FsError::Denied,
            s4_core::S4Error::NoSuchObject | s4_core::S4Error::NoSuchPartition => FsError::NotFound,
            other => FsError::Storage(other.to_string()),
        })
    }
}
