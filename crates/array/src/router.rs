//! Deterministic request routing for the sharded array.
//!
//! The flat object namespace is partitioned by residue class: shard `i`
//! of an `n`-shard array owns every dynamic ObjectID `oid ≡ i (mod n)`.
//! Because each member drive allocates only inside its own class (see
//! [`s4_core::DriveConfig::with_oid_class`]), the ID a drive assigns at
//! `Create` time already routes home — the array never needs a mapping
//! table, and any client holding an ObjectID can compute its shard.
//!
//! Reserved drive-local objects (audit log, partition table, alert
//! stream, flight recorder) exist *per shard* — each member drive keeps
//! its own security perimeter — so a request explicitly addressed to a
//! reserved ID routes to shard 0 by convention, while the admin plane
//! reads every shard's copy and merges (see `forensics`).

use s4_core::rpc::LAST_CREATED;
use s4_core::{ObjectId, Request, S4Error, TRACE_OBJECT, TXN_OBJECT};

use crate::epoch::EpochInfo;

/// How the scatter-gather layer combines per-shard responses of a
/// broadcast request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Merge {
    /// Every shard must answer `Ok` (Sync, Flush, SetWindow).
    AllOk,
    /// Sum the per-shard `NewSize` counts (FlushAlerts, FlushTraces).
    SumNewSize,
    /// Concatenate partition listings, sorted by name (PList).
    Partitions,
    /// First shard that resolves the name wins (PMount).
    FirstMounted,
    /// Succeeds if any shard succeeded (PDelete — the association
    /// lives only on the root object's home shard).
    AnyOk,
}

/// Where a single (non-batch) request goes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Round-robin shard choice; the drive assigns an ID in its class.
    Create,
    /// One specific shard.
    Shard(usize),
    /// Every shard, responses combined per [`Merge`].
    Broadcast(Merge),
    /// `Request::Batch`: split into per-shard sub-batches.
    SplitBatch,
}

/// Whether `oid` is one of the drive-local reserved objects that every
/// shard keeps its own copy of (plus the 0 "not object-directed"
/// placeholder).
pub fn is_reserved(oid: ObjectId) -> bool {
    oid.0 < 4 || oid == TRACE_OBJECT || oid == TXN_OBJECT
}

/// Home shard of `oid` in an `n`-shard array with no split in flight.
pub fn shard_of(oid: ObjectId, n: usize) -> usize {
    slot_of(oid, &EpochInfo::initial(n))
}

/// Home *slot* of `oid` under epoch `e`: the doubled-class residue if
/// that class's source has split, its pre-split owner otherwise.
/// Degenerates to `oid % base` when no split is in flight.
pub fn slot_of(oid: ObjectId, e: &EpochInfo) -> usize {
    if is_reserved(oid) {
        return 0;
    }
    let c2 = (oid.0 % (2 * e.base as u64)) as usize;
    if c2 >= e.base && e.bits & (1u64 << (c2 - e.base)) != 0 {
        c2
    } else {
        c2 % e.base
    }
}

/// Dense index of `oid`'s home shard under epoch `e` (the index into
/// the array's live-shard vector).
pub fn dense_of(oid: ObjectId, e: &EpochInfo) -> usize {
    e.dense_of_slot(slot_of(oid, e))
        .expect("slot_of only routes to live slots")
}

/// Computes the route of one request under epoch `e`. `Route::Shard`
/// carries a *dense* index.
pub fn route(req: &Request, e: &EpochInfo) -> Route {
    match req {
        Request::Create => Route::Create,
        Request::Batch(_) => Route::SplitBatch,
        // Namespace ops: the association lives on the root object's
        // home shard (PCreate validates the object exists), so lookups
        // and deletions scatter.
        Request::PCreate { oid, .. } => Route::Shard(dense_of(*oid, e)),
        Request::PDelete { .. } => Route::Broadcast(Merge::AnyOk),
        Request::PList { .. } => Route::Broadcast(Merge::Partitions),
        Request::PMount { .. } => Route::Broadcast(Merge::FirstMounted),
        // Whole-drive admin/durability ops apply everywhere.
        Request::Sync => Route::Broadcast(Merge::AllOk),
        Request::Flush { .. } => Route::Broadcast(Merge::AllOk),
        Request::SetWindow { .. } => Route::Broadcast(Merge::AllOk),
        Request::FlushAlerts | Request::FlushTraces => Route::Broadcast(Merge::SumNewSize),
        // Everything else is object-directed.
        _ => Route::Shard(dense_of(req.target(), e)),
    }
}

/// A batch split into per-shard sub-batches.
///
/// `slots[s][p]` is the original batch index answered by position `p`
/// of shard `s`'s sub-batch. A `Sync` sub-request fans out to every
/// shard (one slot per shard, all mapping to the same original index),
/// so one original index may own several slots.
pub struct BatchPlan {
    /// Per-shard sub-batch (empty = shard not involved).
    pub subs: Vec<Vec<Request>>,
    /// Per-shard slot → original-index map.
    pub slots: Vec<Vec<usize>>,
    /// Number of sub-requests in the original batch.
    pub total: usize,
}

/// Splits a batch into per-shard sub-batches, preserving each shard's
/// relative order. `next_create_shard` supplies the round-robin shard
/// for each `Create`; [`LAST_CREATED`] targets follow the most recent
/// `Create`'s shard (its placeholder is substituted drive-side, inside
/// that shard's sub-batch).
///
/// Semantics deviation, documented: a lone drive aborts a batch at the
/// first failing sub-request. Split across shards, only the failing
/// *shard's* remainder is aborted — other shards' sub-batches may have
/// completed. This matches the paper's per-drive perimeter (a drive
/// can only vouch for its own operations) and the existing "earlier
/// effects remain" batch contract.
pub fn split_batch(
    reqs: &[Request],
    e: &EpochInfo,
    mut next_create_shard: impl FnMut() -> usize,
) -> Result<BatchPlan, S4Error> {
    let n = e.live_shards();
    let mut plan = BatchPlan {
        subs: vec![Vec::new(); n],
        slots: vec![Vec::new(); n],
        total: reqs.len(),
    };
    let mut last_created: Option<usize> = None;
    for (idx, sub) in reqs.iter().enumerate() {
        let shard = match sub {
            Request::Batch(_) => return Err(S4Error::BadRequest("nested batch")),
            Request::Create => {
                let s = next_create_shard();
                last_created = Some(s);
                s
            }
            Request::Sync => {
                // Durability barrier: every shard syncs, the single
                // original index collapses to Ok iff all succeeded.
                for s in 0..n {
                    plan.subs[s].push(Request::Sync);
                    plan.slots[s].push(idx);
                }
                continue;
            }
            Request::PDelete { .. }
            | Request::PList { .. }
            | Request::PMount { .. }
            | Request::Flush { .. }
            | Request::SetWindow { .. }
            | Request::FlushAlerts
            | Request::FlushTraces => {
                return Err(S4Error::BadRequest("array: broadcast op inside batch"))
            }
            other if other.target() == LAST_CREATED => last_created
                .ok_or(S4Error::BadRequest("LAST_CREATED before any batch Create"))?,
            other => dense_of(other.target(), e),
        };
        plan.subs[shard].push(sub.clone());
        plan.slots[shard].push(idx);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_objects_pin_to_shard_zero() {
        for oid in [0u64, 1, 2, 3, u64::MAX - 3] {
            assert_eq!(shard_of(ObjectId(oid), 4), 0, "oid {oid}");
        }
        assert_eq!(shard_of(ObjectId(7), 4), 3);
        assert_eq!(shard_of(ObjectId(8), 4), 0);
    }

    #[test]
    fn routes_cover_table_one() {
        let e = EpochInfo::initial(4);
        assert_eq!(route(&Request::Create, &e), Route::Create);
        assert_eq!(
            route(
                &Request::Read {
                    oid: ObjectId(6),
                    offset: 0,
                    len: 1,
                    time: None
                },
                &e
            ),
            Route::Shard(2)
        );
        assert_eq!(route(&Request::Sync, &e), Route::Broadcast(Merge::AllOk));
        assert_eq!(
            route(&Request::FlushAlerts, &e),
            Route::Broadcast(Merge::SumNewSize)
        );
        assert_eq!(
            route(&Request::PList { time: None }, &e),
            Route::Broadcast(Merge::Partitions)
        );
        assert_eq!(
            route(
                &Request::PCreate {
                    name: "p".into(),
                    oid: ObjectId(5)
                },
                &e
            ),
            Route::Shard(1)
        );
        assert_eq!(route(&Request::Batch(Vec::new()), &e), Route::SplitBatch);
    }

    #[test]
    fn split_epoch_routes_moved_class_to_target() {
        // 4 shards, slot 1 split: oids ≡ 5 (mod 8) moved to slot 5.
        let e = EpochInfo {
            seq: 2,
            base: 4,
            bits: 0b0010,
        };
        assert_eq!(slot_of(ObjectId(5), &e), 5, "moved residue");
        assert_eq!(slot_of(ObjectId(13), &e), 5);
        assert_eq!(slot_of(ObjectId(9), &e), 1, "kept residue stays home");
        assert_eq!(slot_of(ObjectId(6), &e), 2, "unsplit classes unchanged");
        assert_eq!(slot_of(ObjectId(7), &e), 3, "sibling unsplit class whole");
        // Dense mapping: slot 5 is the first (only) target.
        assert_eq!(dense_of(ObjectId(5), &e), 4);
        assert_eq!(dense_of(ObjectId(9), &e), 1);
        // Reserved objects pin to slot 0 in every epoch.
        assert_eq!(slot_of(ObjectId(2), &e), 0);
        assert_eq!(slot_of(TRACE_OBJECT, &e), 0);
    }

    #[test]
    fn batch_split_follows_creates_and_fans_out_sync() {
        let reqs = vec![
            Request::Create,
            Request::SetAttr {
                oid: LAST_CREATED,
                attrs: vec![1],
            },
            Request::Write {
                oid: ObjectId(6),
                offset: 0,
                data: vec![2],
            },
            Request::Sync,
        ];
        let mut rr = 1;
        let plan = split_batch(&reqs, &EpochInfo::initial(2), || {
            rr += 1;
            (rr - 1) % 2
        })
        .unwrap();
        // Create + its LAST_CREATED SetAttr land on the rr shard (1);
        // the write on oid 6's home shard (0); Sync on both.
        assert_eq!(plan.slots[1], vec![0, 1, 3]);
        assert_eq!(plan.slots[0], vec![2, 3]);
        assert_eq!(plan.subs[0][1], Request::Sync);
        assert_eq!(plan.total, 4);
    }

    #[test]
    fn batch_split_rejects_broadcast_admin_ops_and_orphan_last_created() {
        let e = EpochInfo::initial(2);
        assert!(split_batch(&[Request::FlushAlerts], &e, || 0).is_err());
        let orphan = [Request::Delete { oid: LAST_CREATED }];
        assert!(split_batch(&orphan, &e, || 0).is_err());
        assert!(split_batch(&[Request::Batch(Vec::new())], &e, || 0).is_err());
    }
}
