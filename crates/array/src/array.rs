//! The array itself: per-shard worker threads, bounded request queues,
//! mirrored members with degraded mode, and scatter-gather dispatch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use s4_clock::sync::Mutex;
use s4_clock::{SimClock, SimDuration};
use s4_core::{
    ClientId, DiskFaultKind, DriveConfig, RecoveryReport, Request, RequestContext, Response,
    S4Drive, S4Error,
};
use s4_fs::RpcHandler;
use s4_simdisk::BlockDev;

use crate::router::{route, split_batch, Merge, Route};

/// Returned when a shard's worker thread is gone (array shutting down
/// or worker panicked).
const WORKER_GONE: S4Error = S4Error::BadRequest("array shard worker unavailable");

/// Returned for mutations when every member of the shard has fallen
/// back to read-only (a lone member that exhausted its write retries).
const SHARD_READ_ONLY: S4Error = S4Error::BadRequest("array shard is read-only (degraded)");

/// Returned when every member of a shard is dead.
const SHARD_DEAD: S4Error = S4Error::BadRequest("array shard has no live members");

/// Array-level tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ArrayConfig {
    /// Bound of each shard's request queue. A full queue blocks the
    /// submitting client thread (backpressure) instead of growing
    /// without limit — the array runs one worker per shard, not one
    /// thread per connection.
    pub queue_depth: usize,
    /// Member drives per shard (1 = no redundancy). With `m` mirrors,
    /// `devices.len()` must be a multiple of `m`; shard `s` owns
    /// devices `s*m .. (s+1)*m`, all formatted in the same ObjectID
    /// residue class. Mutations apply to every in-sync member; reads
    /// are served by the first live member, failing over on disk
    /// faults.
    pub mirrors: usize,
    /// How many times a transient disk fault (an I/O error, as opposed
    /// to whole-device failure) is retried before the member is
    /// declared dead.
    pub retries: u32,
    /// Base backoff between retries, charged to the simulated clock and
    /// doubled on each attempt.
    pub retry_backoff_us: u64,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig {
            queue_depth: 64,
            mirrors: 1,
            retries: 3,
            retry_backoff_us: 100,
        }
    }
}

/// Health of one mirrored member drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberState {
    /// Healthy: serves reads and applies every mutation.
    InSync,
    /// Last member standing after exhausting write retries: still
    /// serves reads, rejects mutations ([`S4Error::BadRequest`] with
    /// "read-only"). Only reachable when no in-sync sibling remains.
    ReadOnly,
    /// Removed from service after a fatal fault (or exhausted retries
    /// with a surviving sibling). Awaits [`S4Array::resync_member`].
    Dead,
}

const STATE_IN_SYNC: usize = 0;
const STATE_READ_ONLY: usize = 1;
const STATE_DEAD: usize = 2;

/// One member drive slot, shared between the shard worker (which owns
/// state transitions and the drive swap at resync) and the admin plane
/// (which reads state and live members' logs).
struct MemberSlot<D: BlockDev> {
    drive: Mutex<Arc<S4Drive<D>>>,
    state: AtomicUsize,
}

impl<D: BlockDev> MemberSlot<D> {
    fn new(drive: S4Drive<D>) -> Self {
        MemberSlot {
            drive: Mutex::new(Arc::new(drive)),
            state: AtomicUsize::new(STATE_IN_SYNC),
        }
    }

    fn drive(&self) -> Arc<S4Drive<D>> {
        self.drive.lock().clone()
    }

    fn state(&self) -> MemberState {
        match self.state.load(Ordering::SeqCst) {
            STATE_IN_SYNC => MemberState::InSync,
            STATE_READ_ONLY => MemberState::ReadOnly,
            _ => MemberState::Dead,
        }
    }

    fn set_state(&self, s: MemberState) {
        let v = match s {
            MemberState::InSync => STATE_IN_SYNC,
            MemberState::ReadOnly => STATE_READ_ONLY,
            MemberState::Dead => STATE_DEAD,
        };
        self.state.store(v, Ordering::SeqCst);
    }
}

/// One queued job for a shard worker.
enum Job<D: BlockDev> {
    /// A client request plus the channel its response goes back on.
    Rpc {
        ctx: RequestContext,
        req: Request,
        reply: SyncSender<s4_core::Result<Response>>,
    },
    /// Rebuild member `member` onto `dev` from a surviving sibling.
    /// Runs on the worker thread, so the shard is quiesced for the
    /// duration — no mutation can interleave with the copy.
    Resync {
        member: usize,
        dev: Box<D>,
        reply: SyncSender<s4_core::Result<()>>,
    },
}

/// One shard: its mirrored member slots, worker thread, and queue.
struct ShardHandle<D: BlockDev> {
    members: Vec<Arc<MemberSlot<D>>>,
    tx: Option<SyncSender<Job<D>>>,
    thread: Option<JoinHandle<()>>,
}

impl<D: BlockDev> Drop for ShardHandle<D> {
    fn drop(&mut self) {
        // Closing the queue ends the worker's recv loop; join so no
        // thread outlives the array.
        drop(self.tx.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Per-shard sub-result of a split batch that failed on that shard:
/// how far the shard's sub-batch got before aborting, and why. The
/// indices are in the *original* batch's coordinates, so a client can
/// tell exactly which prefix of its batch took effect on which shard
/// (DESIGN §6f).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// The shard whose sub-batch aborted.
    pub shard: usize,
    /// Sub-requests of that shard's sub-batch that completed before the
    /// failure.
    pub completed: u32,
    /// Index *in the original batch* of the failing sub-request.
    pub failed_at: u32,
    /// The failing sub-request's error.
    pub error: S4Error,
}

/// A sharded array of [`S4Drive`]s presenting the single-drive RPC
/// surface (it implements [`RpcHandler`], so the TCP server and the
/// file-system layer run over it unchanged).
///
/// Object placement is `oid % n` with reserved objects pinned (see
/// [`crate::router`]); each member drive allocates ObjectIDs only in
/// its own residue class so drive-assigned IDs route home. With
/// [`ArrayConfig::mirrors`] > 1 every residue class is served by a
/// mirror group: mutations apply to all in-sync members, reads come
/// from the first live member with failover, and a member that fails
/// fatally (or exhausts its transient-fault retries) is declared dead
/// — the shard keeps serving from the survivor in *degraded mode*,
/// surfaced through a `s4_array_degraded` gauge and an
/// `array-degraded` alert on each survivor's tamper-evident alert
/// stream. Every member keeps its own audit log, alert stream, and
/// flight recorder — the security perimeter stays per-drive, exactly
/// as §3.2 argues: a compromised client (or even a compromised sibling
/// drive) cannot forge or truncate another drive's history.
pub struct S4Array<D: BlockDev> {
    shards: Vec<ShardHandle<D>>,
    rr: AtomicUsize,
    clock: SimClock,
    cfg: ArrayConfig,
}

impl<D: BlockDev + 'static> S4Array<D> {
    /// Formats `devices` as a fresh array sharing `clock`. With
    /// `array.mirrors = m`, `devices.len()` must be a positive multiple
    /// of `m`: shard `s` of `n = devices.len()/m` owns devices
    /// `s*m..(s+1)*m`, every member formatted with ObjectID class
    /// `s (mod n)`.
    pub fn format(
        devices: Vec<D>,
        config: DriveConfig,
        array: ArrayConfig,
        clock: SimClock,
    ) -> s4_core::Result<S4Array<D>> {
        let n = shard_count_of(devices.len(), array.mirrors)?;
        let mut groups: Vec<Vec<S4Drive<D>>> = Vec::with_capacity(n);
        for (i, dev) in devices.into_iter().enumerate() {
            let s = i / array.mirrors.max(1);
            let drive = S4Drive::format(dev, config.with_oid_class(n as u64, s as u64), clock.clone())?;
            if i % array.mirrors.max(1) == 0 {
                groups.push(Vec::with_capacity(array.mirrors));
            }
            groups[s].push(drive);
        }
        Ok(Self::spawn(groups, array, clock))
    }

    /// Remounts an array previously formatted (or unmounted) with the
    /// same device order, running per-member crash recovery. Returns
    /// the per-member [`RecoveryReport`]s in device order — recovery is
    /// strictly per drive.
    pub fn mount(
        devices: Vec<D>,
        config: DriveConfig,
        array: ArrayConfig,
        clock: SimClock,
    ) -> s4_core::Result<(S4Array<D>, Vec<RecoveryReport>)> {
        let n = shard_count_of(devices.len(), array.mirrors)?;
        let mut groups: Vec<Vec<S4Drive<D>>> = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(devices.len());
        for (i, dev) in devices.into_iter().enumerate() {
            let s = i / array.mirrors.max(1);
            let (drive, report) = S4Drive::mount_with_report(
                dev,
                config.with_oid_class(n as u64, s as u64),
                clock.clone(),
            )?;
            if i % array.mirrors.max(1) == 0 {
                groups.push(Vec::with_capacity(array.mirrors));
            }
            groups[s].push(drive);
            reports.push(report);
        }
        Ok((Self::spawn(groups, array, clock), reports))
    }

    /// Builds an array over already-constructed drives (benchmarks use
    /// this to give each shard an independent clock). Drive `i` belongs
    /// to shard `i / mirrors` and must already allocate in that shard's
    /// residue class.
    pub fn from_drives(
        drives: Vec<S4Drive<D>>,
        array: ArrayConfig,
    ) -> s4_core::Result<S4Array<D>> {
        let n = shard_count_of(drives.len(), array.mirrors)?;
        for (i, d) in drives.iter().enumerate() {
            let s = i / array.mirrors.max(1);
            if d.config().oid_stride != n as u64 || d.config().oid_offset != s as u64 {
                return Err(S4Error::BadRequest("array member oid class mismatch"));
            }
        }
        let clock = drives[0].clock().clone();
        let mut groups: Vec<Vec<S4Drive<D>>> = Vec::with_capacity(n);
        for (i, d) in drives.into_iter().enumerate() {
            if i % array.mirrors.max(1) == 0 {
                groups.push(Vec::with_capacity(array.mirrors));
            }
            let s = groups.len() - 1;
            groups[s].push(d);
        }
        Ok(Self::spawn(groups, array, clock))
    }

    fn spawn(groups: Vec<Vec<S4Drive<D>>>, array: ArrayConfig, clock: SimClock) -> S4Array<D> {
        let shards = groups
            .into_iter()
            .enumerate()
            .map(|(shard, drives)| {
                let members: Vec<Arc<MemberSlot<D>>> = drives
                    .into_iter()
                    .map(|d| Arc::new(MemberSlot::new(d)))
                    .collect();
                let (tx, rx): (SyncSender<Job<D>>, Receiver<Job<D>>) =
                    mpsc::sync_channel(array.queue_depth.max(1));
                let worker_members = members.clone();
                let worker_clock = clock.clone();
                let thread = std::thread::spawn(move || {
                    // The queue closing (all senders dropped) ends the loop.
                    while let Ok(job) = rx.recv() {
                        match job {
                            Job::Rpc { ctx, req, reply } => {
                                let result = worker_process(
                                    shard,
                                    &worker_members,
                                    &array,
                                    &worker_clock,
                                    &ctx,
                                    &req,
                                );
                                // A client that gave up is not an error.
                                let _ = reply.send(result);
                            }
                            Job::Resync { member, dev, reply } => {
                                let result =
                                    worker_resync(shard, &worker_members, member, *dev);
                                let _ = reply.send(result);
                            }
                        }
                    }
                });
                ShardHandle {
                    members,
                    tx: Some(tx),
                    thread: Some(thread),
                }
            })
            .collect();
        S4Array {
            shards,
            rr: AtomicUsize::new(0),
            clock,
            cfg: array,
        }
    }

    /// Number of shards (mirror groups).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Members per shard.
    pub fn mirror_count(&self) -> usize {
        self.cfg.mirrors.max(1)
    }

    /// Handle to the first live member of shard `i` — the admin plane
    /// (forensics, detector installation, metrics) reads member drives
    /// in place, and a dead member's logs are unreachable anyway. Falls
    /// back to member 0 when the whole shard is dead.
    pub fn shard_drive(&self, i: usize) -> Arc<S4Drive<D>> {
        let members = &self.shards[i].members;
        members
            .iter()
            .find(|m| m.state() != MemberState::Dead)
            .unwrap_or(&members[0])
            .drive()
    }

    /// Handle to member `k` of shard `i`, regardless of its state.
    pub fn member_drive(&self, i: usize, k: usize) -> Arc<S4Drive<D>> {
        self.shards[i].members[k].drive()
    }

    /// Health of every member: `states()[shard][member]`.
    pub fn member_states(&self) -> Vec<Vec<MemberState>> {
        self.shards
            .iter()
            .map(|s| s.members.iter().map(|m| m.state()).collect())
            .collect()
    }

    /// True if shard `i` has lost at least one member (or fallen back
    /// to read-only) — i.e. redundancy is reduced and an operator
    /// should resync a replacement.
    pub fn shard_degraded(&self, i: usize) -> bool {
        self.shards[i]
            .members
            .iter()
            .any(|m| m.state() != MemberState::InSync)
    }

    /// The simulated clock requests are timed on (shard 0's).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Rebuilds member `member` of shard `shard` onto the fresh device
    /// `dev`: the shard worker (so the shard is quiesced) exports the
    /// surviving sibling's logical state, replays it onto `dev`,
    /// verifies every live object's digest and all three reserved
    /// streams match, and only then promotes the rebuilt drive to
    /// `InSync`. Works for any member state — including replacing the
    /// sole, read-only member of an unmirrored shard.
    pub fn resync_member(&self, shard: usize, member: usize, dev: D) -> s4_core::Result<()> {
        if shard >= self.shards.len() {
            return Err(S4Error::BadRequest("array: no such shard"));
        }
        if member >= self.shards[shard].members.len() {
            return Err(S4Error::BadRequest("array: no such member"));
        }
        let (reply, rx) = mpsc::sync_channel(1);
        let sent = match &self.shards[shard].tx {
            Some(tx) => tx
                .send(Job::Resync {
                    member,
                    dev: Box::new(dev),
                    reply,
                })
                .is_ok(),
            None => false,
        };
        if !sent {
            return Err(WORKER_GONE);
        }
        rx.recv().unwrap_or(Err(WORKER_GONE))
    }

    /// Shuts down the workers and unmounts every member, returning the
    /// block devices in device order (shard-major, mirrors within a
    /// shard adjacent). Fails if any member is dead — resync it first,
    /// or drop the array instead.
    pub fn unmount(mut self) -> s4_core::Result<Vec<D>> {
        let mut devices = Vec::new();
        for handle in self.shards.drain(..) {
            let members: Vec<Arc<MemberSlot<D>>> = handle.members.clone();
            drop(handle); // closes the queue and joins the worker
            for m in members {
                let slot = Arc::try_unwrap(m)
                    .map_err(|_| S4Error::BadRequest("array member still referenced"))?;
                let drive = Arc::try_unwrap(slot.drive.into_inner())
                    .map_err(|_| S4Error::BadRequest("array drive still referenced"))?;
                devices.push(drive.unmount()?);
            }
        }
        Ok(devices)
    }

    /// Verifies, executes, and audits one request against the array —
    /// the sharded equivalent of [`S4Drive::dispatch`]. Single-object
    /// requests go to the owning shard's queue; broadcast requests
    /// scatter to every shard and gather one merged response; batches
    /// are split per shard (see [`crate::router::split_batch`]).
    pub fn dispatch(&self, ctx: &RequestContext, req: &Request) -> s4_core::Result<Response> {
        let n = self.shards.len();
        match route(req, n) {
            Route::Create => {
                let s = self.rr.fetch_add(1, Ordering::Relaxed) % n;
                self.submit(s, ctx, req.clone())
            }
            Route::Shard(s) => self.submit(s, ctx, req.clone()),
            Route::Broadcast(merge) => {
                let results = self.scatter(ctx, (0..n).map(|s| (s, req.clone())));
                merge_broadcast(merge, results)
            }
            Route::SplitBatch => {
                let Request::Batch(reqs) = req else { unreachable!() };
                self.dispatch_split(ctx, reqs)
            }
        }
    }

    /// Queues one request on shard `s` and waits for the response.
    /// Blocks while the shard's queue is full — that is the
    /// backpressure contract.
    fn submit(&self, s: usize, ctx: &RequestContext, req: Request) -> s4_core::Result<Response> {
        let mut rx = self.scatter(ctx, std::iter::once((s, req)));
        rx.pop().expect("one submission, one result")
    }

    /// Sends every `(shard, request)` job, then gathers responses in
    /// submission order. Jobs on distinct shards execute concurrently.
    fn scatter(
        &self,
        ctx: &RequestContext,
        jobs: impl Iterator<Item = (usize, Request)>,
    ) -> Vec<s4_core::Result<Response>> {
        let mut pending = Vec::new();
        for (s, req) in jobs {
            let (reply, rx) = mpsc::sync_channel(1);
            let sent = match &self.shards[s].tx {
                Some(tx) => tx.send(Job::Rpc { ctx: *ctx, req, reply }).is_ok(),
                None => false,
            };
            pending.push((sent, rx));
        }
        pending
            .into_iter()
            .map(|(sent, rx)| {
                if !sent {
                    return Err(WORKER_GONE);
                }
                rx.recv().unwrap_or(Err(WORKER_GONE))
            })
            .collect()
    }

    /// Splits a batch across shards, runs the sub-batches concurrently,
    /// and returns the per-slot responses plus one [`BatchOutcome`] per
    /// shard whose sub-batch aborted (empty = full success). Slots of a
    /// failed shard's unreached suffix are `None`. The outer error is
    /// reserved for planning failures (nested batch, broadcast op
    /// inside a batch, orphan `LAST_CREATED`).
    pub fn dispatch_batch_outcomes(
        &self,
        ctx: &RequestContext,
        reqs: &[Request],
    ) -> s4_core::Result<(Vec<Option<Response>>, Vec<BatchOutcome>)> {
        let n = self.shards.len();
        let plan = split_batch(reqs, n, || self.rr.fetch_add(1, Ordering::Relaxed) % n)?;
        let touched: Vec<usize> = (0..n).filter(|&s| !plan.subs[s].is_empty()).collect();
        let subs = plan.subs;
        let results = self.scatter(
            ctx,
            touched
                .iter()
                .map(|&s| (s, Request::Batch(subs[s].clone()))),
        );

        let mut out: Vec<Option<Response>> = vec![None; plan.total];
        let mut outcomes = Vec::new();
        for (&s, result) in touched.iter().zip(results) {
            match result {
                Ok(Response::Batch(rs)) => {
                    for (pos, resp) in rs.into_iter().enumerate() {
                        out[plan.slots[s][pos]] = Some(resp);
                    }
                }
                Ok(_) => {
                    return Err(S4Error::BadRequest(
                        "array: shard returned non-batch response",
                    ))
                }
                Err(S4Error::BatchFailed {
                    completed,
                    failed_at,
                    error,
                }) => {
                    // The drive reports sub-batch coordinates; map the
                    // failing index back to the original batch.
                    let orig = plan.slots[s]
                        .get(failed_at as usize)
                        .copied()
                        .unwrap_or(usize::MAX);
                    outcomes.push(BatchOutcome {
                        shard: s,
                        completed,
                        failed_at: orig as u32,
                        error: *error,
                    });
                }
                Err(e) => {
                    // Whole-sub-batch failure without partial-progress
                    // info (worker gone, shard dead): nothing completed.
                    let orig = plan.slots[s].first().copied().unwrap_or(usize::MAX);
                    outcomes.push(BatchOutcome {
                        shard: s,
                        completed: 0,
                        failed_at: orig as u32,
                        error: e,
                    });
                }
            }
        }
        outcomes.sort_by_key(|o| o.failed_at);
        Ok((out, outcomes))
    }

    /// Splits a batch across shards and reassembles one response,
    /// aborting with an aggregate [`S4Error::BatchFailed`] (earliest
    /// failing original index; `completed` counts sub-requests that
    /// finished across all shards) when any shard's sub-batch failed.
    fn dispatch_split(
        &self,
        ctx: &RequestContext,
        reqs: &[Request],
    ) -> s4_core::Result<Response> {
        let (out, outcomes) = self.dispatch_batch_outcomes(ctx, reqs)?;
        if let Some(first) = outcomes.first() {
            let completed = out.iter().filter(|r| r.is_some()).count() as u32
                + outcomes.iter().map(|o| o.completed).sum::<u32>();
            return Err(S4Error::BatchFailed {
                completed,
                failed_at: first.failed_at,
                error: Box::new(first.error.clone()),
            });
        }
        Ok(Response::Batch(
            out.into_iter()
                .map(|r| r.expect("every batch slot answered"))
                .collect(),
        ))
    }
}

/// `devices / mirrors`, validating the shape.
fn shard_count_of(devices: usize, mirrors: usize) -> s4_core::Result<usize> {
    let m = mirrors.max(1);
    if devices == 0 {
        return Err(S4Error::BadRequest("array needs at least one drive"));
    }
    if !devices.is_multiple_of(m) {
        return Err(S4Error::BadRequest(
            "array: device count not a multiple of the mirror count",
        ));
    }
    Ok(devices / m)
}

/// Outcome of applying one request to one member.
enum Applied {
    /// The member answered (possibly a logical error — denial, missing
    /// object — which is a property of the request, not the member).
    Done(s4_core::Result<Response>),
    /// The member faulted at the disk level (retries exhausted, device
    /// failed, or its dispatch panicked) and must leave service.
    MemberFailed(S4Error),
}

/// Applies `req` to one member with bounded retry on transient disk
/// faults and panic containment: a panicking dispatch is contained to
/// this member (the drive's locks are non-poisoning and every guarded
/// structure stays valid), converted into a member failure.
fn apply_with_retry<D: BlockDev>(
    drive: &S4Drive<D>,
    cfg: &ArrayConfig,
    clock: &SimClock,
    ctx: &RequestContext,
    req: &Request,
) -> Applied {
    let mut backoff = cfg.retry_backoff_us.max(1);
    let mut attempt = 0u32;
    loop {
        let result = match catch_unwind(AssertUnwindSafe(|| drive.dispatch(ctx, req))) {
            Ok(r) => r,
            Err(_) => {
                return Applied::MemberFailed(S4Error::BadRequest(
                    "array member panicked during dispatch",
                ))
            }
        };
        match result {
            Ok(resp) => return Applied::Done(Ok(resp)),
            Err(e) => match e.disk_fault() {
                None => return Applied::Done(Err(e)),
                Some(DiskFaultKind::Transient) if attempt < cfg.retries => {
                    attempt += 1;
                    clock.advance(SimDuration::from_micros(backoff));
                    backoff = backoff.saturating_mul(2);
                }
                Some(_) => return Applied::MemberFailed(e),
            },
        }
    }
}

/// Takes member `k` out of service after `error`: the last non-dead
/// member of the shard degrades to read-only (reads may still work),
/// anyone else goes dead. Raises an `array-degraded` alert on every
/// surviving member's tamper-evident alert stream — the same channel
/// the operator already polls for intrusion alerts.
fn fail_member<D: BlockDev>(
    shard: usize,
    members: &[Arc<MemberSlot<D>>],
    k: usize,
    error: &S4Error,
) {
    let others_alive = members
        .iter()
        .enumerate()
        .any(|(i, m)| i != k && m.state() != MemberState::Dead);
    let new_state = if others_alive {
        MemberState::Dead
    } else {
        MemberState::ReadOnly
    };
    members[k].set_state(new_state);
    let what = match new_state {
        MemberState::Dead => "dead",
        _ => "read-only",
    };
    let msg = format!("member {k} of shard {shard} marked {what}: {error}");
    for (i, m) in members.iter().enumerate() {
        if i != k && m.state() != MemberState::Dead {
            m.drive().system_alert("array-degraded", &msg);
        }
    }
    // A member degraded to read-only alerts through its own stream
    // too — it may be the only reachable log.
    if new_state == MemberState::ReadOnly {
        members[k].drive().system_alert("array-degraded", &msg);
    }
}

/// Processes one request on the shard worker: mutations apply to every
/// in-sync member (first member's answer is canonical — replicas are
/// deterministic, so they agree), reads go to the first live member
/// and fail over on member faults.
fn worker_process<D: BlockDev>(
    shard: usize,
    members: &[Arc<MemberSlot<D>>],
    cfg: &ArrayConfig,
    clock: &SimClock,
    ctx: &RequestContext,
    req: &Request,
) -> s4_core::Result<Response> {
    if req.mutates() {
        let writable: Vec<usize> = (0..members.len())
            .filter(|&k| members[k].state() == MemberState::InSync)
            .collect();
        if writable.is_empty() {
            let any_alive = members.iter().any(|m| m.state() != MemberState::Dead);
            return Err(if any_alive { SHARD_READ_ONLY } else { SHARD_DEAD });
        }
        let mut canonical: Option<s4_core::Result<Response>> = None;
        let mut last_fault: Option<S4Error> = None;
        for k in writable {
            let drive = members[k].drive();
            match apply_with_retry(&drive, cfg, clock, ctx, req) {
                Applied::Done(r) => {
                    if canonical.is_none() {
                        canonical = Some(r);
                    }
                }
                Applied::MemberFailed(e) => {
                    fail_member(shard, members, k, &e);
                    last_fault = Some(e);
                }
            }
        }
        canonical.unwrap_or_else(|| Err(last_fault.unwrap_or(SHARD_DEAD)))
    } else {
        let mut last_err: Option<S4Error> = None;
        for k in 0..members.len() {
            if members[k].state() == MemberState::Dead {
                continue;
            }
            let drive = members[k].drive();
            match apply_with_retry(&drive, cfg, clock, ctx, req) {
                Applied::Done(r) => return r,
                Applied::MemberFailed(e) => {
                    fail_member(shard, members, k, &e);
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or(SHARD_DEAD))
    }
}

/// Rebuilds member `member` from the first surviving sibling: export
/// the survivor's logical image, replay it onto `dev`, verify object
/// digests and all three reserved streams, then promote to `InSync`.
/// Runs on the shard worker thread, so no request interleaves.
fn worker_resync<D: BlockDev>(
    shard: usize,
    members: &[Arc<MemberSlot<D>>],
    member: usize,
    dev: D,
) -> s4_core::Result<()> {
    // Copy source: the first surviving sibling, or — when replacing
    // the sole (read-only) member of an unmirrored shard — the member
    // being replaced itself, which is still readable.
    let survivor_idx = members
        .iter()
        .enumerate()
        .position(|(i, m)| i != member && m.state() != MemberState::Dead)
        .or_else(|| {
            (members[member].state() != MemberState::Dead).then_some(member)
        })
        .ok_or(SHARD_DEAD)?;
    let survivor = members[survivor_idx].drive();
    let config = *survivor.config();
    let admin = RequestContext::admin(ClientId(0), config.admin_token);

    let image = survivor.resync_image(&admin)?;
    let rebuilt = S4Drive::format_from_image(dev, config, survivor.clock().clone(), &image)?;

    // Verify the replica object by object and stream by stream before
    // trusting it with client reads.
    let survivor_ids = survivor.live_object_ids(&admin)?;
    if survivor_ids != rebuilt.live_object_ids(&admin)? {
        return Err(S4Error::BadRequest("array resync: object set mismatch"));
    }
    for &oid in &survivor_ids {
        let a = survivor.object_digest(&admin, s4_core::ObjectId(oid))?;
        let b = rebuilt.object_digest(&admin, s4_core::ObjectId(oid))?;
        if a != b {
            return Err(S4Error::BadRequest("array resync: object digest mismatch"));
        }
    }
    if survivor.read_audit_records(&admin)? != rebuilt.read_audit_records(&admin)?
        || survivor.read_alerts(&admin)? != rebuilt.read_alerts(&admin)?
        || survivor.read_traces(&admin)? != rebuilt.read_traces(&admin)?
    {
        return Err(S4Error::BadRequest("array resync: stream mismatch"));
    }

    // Promote: swap the rebuilt drive in and mark the pair healthy.
    *members[member].drive.lock() = Arc::new(rebuilt);
    members[member].set_state(MemberState::InSync);
    if survivor_idx != member && members[survivor_idx].state() == MemberState::ReadOnly {
        members[survivor_idx].set_state(MemberState::InSync);
    }
    let msg = format!("member {member} of shard {shard} resynced and back in sync");
    for m in members.iter() {
        if m.state() == MemberState::InSync {
            m.drive().system_alert("array-resync", &msg);
        }
    }
    Ok(())
}

/// Combines per-shard responses of a broadcast request.
fn merge_broadcast(
    merge: Merge,
    results: Vec<s4_core::Result<Response>>,
) -> s4_core::Result<Response> {
    match merge {
        Merge::AllOk => {
            for r in results {
                r?;
            }
            Ok(Response::Ok)
        }
        Merge::SumNewSize => {
            let mut total = 0u64;
            for r in results {
                match r? {
                    Response::NewSize(k) => total += k,
                    other => {
                        return Err(bad_shape(&other));
                    }
                }
            }
            Ok(Response::NewSize(total))
        }
        Merge::Partitions => {
            let mut all = Vec::new();
            for r in results {
                match r? {
                    Response::Partitions(p) => all.extend(p),
                    other => return Err(bad_shape(&other)),
                }
            }
            all.sort();
            Ok(Response::Partitions(all))
        }
        Merge::FirstMounted => pick_first_success(results),
        Merge::AnyOk => pick_first_success(results),
    }
}

/// First successful response in shard order; otherwise the most
/// specific error (any non-`NoSuchPartition` error beats the generic
/// "no shard knows that name").
fn pick_first_success(results: Vec<s4_core::Result<Response>>) -> s4_core::Result<Response> {
    let mut err = None;
    for r in results {
        match r {
            Ok(resp) => return Ok(resp),
            Err(S4Error::NoSuchPartition) => {
                err.get_or_insert(S4Error::NoSuchPartition);
            }
            Err(e) => return Err(e),
        }
    }
    Err(err.unwrap_or(S4Error::NoSuchPartition))
}

fn bad_shape(_resp: &Response) -> S4Error {
    S4Error::BadRequest("array: unexpected per-shard response shape")
}

impl<D: BlockDev + 'static> RpcHandler for S4Array<D> {
    fn handle(&self, ctx: &RequestContext, req: &Request) -> s4_core::Result<Response> {
        self.dispatch(ctx, req)
    }

    fn stats_text(&self) -> String {
        self.metrics_text()
    }
}
