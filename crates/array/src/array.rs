//! The array itself: per-shard worker threads, bounded request queues,
//! and scatter-gather dispatch.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use s4_clock::SimClock;
use s4_core::{
    DriveConfig, RecoveryReport, Request, RequestContext, Response, S4Drive, S4Error,
};
use s4_fs::RpcHandler;
use s4_simdisk::BlockDev;

use crate::router::{route, split_batch, Merge, Route};

/// Returned when a shard's worker thread is gone (array shutting down
/// or worker panicked).
const WORKER_GONE: S4Error = S4Error::BadRequest("array shard worker unavailable");

/// Array-level tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ArrayConfig {
    /// Bound of each shard's request queue. A full queue blocks the
    /// submitting client thread (backpressure) instead of growing
    /// without limit — the array runs one worker per shard, not one
    /// thread per connection.
    pub queue_depth: usize,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig { queue_depth: 64 }
    }
}

/// One queued request plus the channel its response goes back on.
struct Job {
    ctx: RequestContext,
    req: Request,
    reply: SyncSender<s4_core::Result<Response>>,
}

/// One member drive with its worker thread and bounded queue.
struct ShardHandle<D: BlockDev> {
    drive: Arc<S4Drive<D>>,
    tx: Option<SyncSender<Job>>,
    thread: Option<JoinHandle<()>>,
}

impl<D: BlockDev> Drop for ShardHandle<D> {
    fn drop(&mut self) {
        // Closing the queue ends the worker's recv loop; join so no
        // thread outlives the array.
        drop(self.tx.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A sharded array of [`S4Drive`]s presenting the single-drive RPC
/// surface (it implements [`RpcHandler`], so the TCP server and the
/// file-system layer run over it unchanged).
///
/// Object placement is `oid % n` with reserved objects pinned (see
/// [`crate::router`]); each member drive allocates ObjectIDs only in
/// its own residue class so drive-assigned IDs route home. Every shard
/// keeps its own audit log, alert stream, and flight recorder — the
/// security perimeter stays per-drive, exactly as §3.2 argues: a
/// compromised client (or even a compromised sibling drive) cannot
/// forge or truncate another shard's history.
pub struct S4Array<D: BlockDev> {
    shards: Vec<ShardHandle<D>>,
    rr: AtomicUsize,
    clock: SimClock,
}

impl<D: BlockDev + 'static> S4Array<D> {
    /// Formats `devices` as a fresh `n`-shard array sharing `clock`.
    /// Shard `i` gets `config` with ObjectID class `i (mod n)`.
    pub fn format(
        devices: Vec<D>,
        config: DriveConfig,
        array: ArrayConfig,
        clock: SimClock,
    ) -> s4_core::Result<S4Array<D>> {
        let n = devices.len();
        if n == 0 {
            return Err(S4Error::BadRequest("array needs at least one drive"));
        }
        let drives = devices
            .into_iter()
            .enumerate()
            .map(|(i, dev)| {
                S4Drive::format(
                    dev,
                    config.with_oid_class(n as u64, i as u64),
                    clock.clone(),
                )
            })
            .collect::<s4_core::Result<Vec<_>>>()?;
        Ok(Self::spawn(drives, array, clock))
    }

    /// Remounts an array previously formatted (or unmounted) with the
    /// same shard order, running per-shard crash recovery. Returns the
    /// per-shard [`RecoveryReport`]s — recovery is strictly per drive.
    pub fn mount(
        devices: Vec<D>,
        config: DriveConfig,
        array: ArrayConfig,
        clock: SimClock,
    ) -> s4_core::Result<(S4Array<D>, Vec<RecoveryReport>)> {
        let n = devices.len();
        if n == 0 {
            return Err(S4Error::BadRequest("array needs at least one drive"));
        }
        let mut drives = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(n);
        for (i, dev) in devices.into_iter().enumerate() {
            let (drive, report) = S4Drive::mount_with_report(
                dev,
                config.with_oid_class(n as u64, i as u64),
                clock.clone(),
            )?;
            drives.push(drive);
            reports.push(report);
        }
        Ok((Self::spawn(drives, array, clock), reports))
    }

    /// Builds an array over already-constructed drives (benchmarks use
    /// this to give each shard an independent clock). Each drive must
    /// already allocate in its residue class: drive `i` of `n` with
    /// stride `n`, offset `i`.
    pub fn from_drives(
        drives: Vec<S4Drive<D>>,
        array: ArrayConfig,
    ) -> s4_core::Result<S4Array<D>> {
        let n = drives.len();
        if n == 0 {
            return Err(S4Error::BadRequest("array needs at least one drive"));
        }
        for (i, d) in drives.iter().enumerate() {
            if d.config().oid_stride != n as u64 || d.config().oid_offset != i as u64 {
                return Err(S4Error::BadRequest("array member oid class mismatch"));
            }
        }
        let clock = drives[0].clock().clone();
        Ok(Self::spawn(drives, array, clock))
    }

    fn spawn(drives: Vec<S4Drive<D>>, array: ArrayConfig, clock: SimClock) -> S4Array<D> {
        let shards = drives
            .into_iter()
            .map(|drive| {
                let drive = Arc::new(drive);
                let (tx, rx): (SyncSender<Job>, Receiver<Job>) =
                    mpsc::sync_channel(array.queue_depth.max(1));
                let worker_drive = drive.clone();
                let thread = std::thread::spawn(move || {
                    // The queue closing (all senders dropped) ends the loop.
                    while let Ok(job) = rx.recv() {
                        let result = worker_drive.dispatch(&job.ctx, &job.req);
                        // A client that gave up is not an error.
                        let _ = job.reply.send(result);
                    }
                });
                ShardHandle {
                    drive,
                    tx: Some(tx),
                    thread: Some(thread),
                }
            })
            .collect();
        S4Array {
            shards,
            rr: AtomicUsize::new(0),
            clock,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct handle to shard `i`'s drive — the admin plane (forensics,
    /// detector installation, metrics) reads member drives in place.
    pub fn shard_drive(&self, i: usize) -> &Arc<S4Drive<D>> {
        &self.shards[i].drive
    }

    /// The simulated clock requests are timed on (shard 0's).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Shuts down the workers and unmounts every shard, returning the
    /// block devices in shard order.
    pub fn unmount(mut self) -> s4_core::Result<Vec<D>> {
        let mut devices = Vec::with_capacity(self.shards.len());
        for handle in self.shards.drain(..) {
            let drive = handle.drive.clone();
            drop(handle); // closes the queue and joins the worker
            let drive = Arc::try_unwrap(drive)
                .map_err(|_| S4Error::BadRequest("array drive still referenced"))?;
            devices.push(drive.unmount()?);
        }
        Ok(devices)
    }

    /// Verifies, executes, and audits one request against the array —
    /// the sharded equivalent of [`S4Drive::dispatch`]. Single-object
    /// requests go to the owning shard's queue; broadcast requests
    /// scatter to every shard and gather one merged response; batches
    /// are split per shard (see [`crate::router::split_batch`]).
    pub fn dispatch(&self, ctx: &RequestContext, req: &Request) -> s4_core::Result<Response> {
        let n = self.shards.len();
        match route(req, n) {
            Route::Create => {
                let s = self.rr.fetch_add(1, Ordering::Relaxed) % n;
                self.submit(s, ctx, req.clone())
            }
            Route::Shard(s) => self.submit(s, ctx, req.clone()),
            Route::Broadcast(merge) => {
                let results = self.scatter(ctx, (0..n).map(|s| (s, req.clone())));
                merge_broadcast(merge, results)
            }
            Route::SplitBatch => {
                let Request::Batch(reqs) = req else { unreachable!() };
                self.dispatch_split(ctx, reqs)
            }
        }
    }

    /// Queues one request on shard `s` and waits for the response.
    /// Blocks while the shard's queue is full — that is the
    /// backpressure contract.
    fn submit(&self, s: usize, ctx: &RequestContext, req: Request) -> s4_core::Result<Response> {
        let mut rx = self.scatter(ctx, std::iter::once((s, req)));
        rx.pop().expect("one submission, one result")
    }

    /// Sends every `(shard, request)` job, then gathers responses in
    /// submission order. Jobs on distinct shards execute concurrently.
    fn scatter(
        &self,
        ctx: &RequestContext,
        jobs: impl Iterator<Item = (usize, Request)>,
    ) -> Vec<s4_core::Result<Response>> {
        let mut pending = Vec::new();
        for (s, req) in jobs {
            let (reply, rx) = mpsc::sync_channel(1);
            let sent = match &self.shards[s].tx {
                Some(tx) => tx.send(Job { ctx: *ctx, req, reply }).is_ok(),
                None => false,
            };
            pending.push((sent, rx));
        }
        pending
            .into_iter()
            .map(|(sent, rx)| {
                if !sent {
                    return Err(WORKER_GONE);
                }
                rx.recv().unwrap_or(Err(WORKER_GONE))
            })
            .collect()
    }

    /// Splits a batch across shards, runs the sub-batches concurrently,
    /// and reassembles the responses in original order.
    fn dispatch_split(
        &self,
        ctx: &RequestContext,
        reqs: &[Request],
    ) -> s4_core::Result<Response> {
        let n = self.shards.len();
        let plan = split_batch(reqs, n, || self.rr.fetch_add(1, Ordering::Relaxed) % n)?;
        let touched: Vec<usize> = (0..n).filter(|&s| !plan.subs[s].is_empty()).collect();
        let subs = plan.subs;
        let results = self.scatter(
            ctx,
            touched
                .iter()
                .map(|&s| (s, Request::Batch(subs[s].clone()))),
        );

        let mut out: Vec<Option<Response>> = vec![None; plan.total];
        let mut first_err: Option<(usize, S4Error)> = None;
        for (&s, result) in touched.iter().zip(results) {
            match result {
                Ok(Response::Batch(rs)) => {
                    for (pos, resp) in rs.into_iter().enumerate() {
                        out[plan.slots[s][pos]] = Some(resp);
                    }
                }
                Ok(_) => {
                    return Err(S4Error::BadRequest(
                        "array: shard returned non-batch response",
                    ))
                }
                Err(e) => {
                    // Report the failing shard whose sub-batch starts
                    // earliest in the original order (deterministic).
                    let start = plan.slots[s].first().copied().unwrap_or(usize::MAX);
                    match &first_err {
                        Some((fs, _)) if start >= *fs => {}
                        _ => first_err = Some((start, e)),
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        Ok(Response::Batch(
            out.into_iter()
                .map(|r| r.expect("every batch slot answered"))
                .collect(),
        ))
    }
}

/// Combines per-shard responses of a broadcast request.
fn merge_broadcast(
    merge: Merge,
    results: Vec<s4_core::Result<Response>>,
) -> s4_core::Result<Response> {
    match merge {
        Merge::AllOk => {
            for r in results {
                r?;
            }
            Ok(Response::Ok)
        }
        Merge::SumNewSize => {
            let mut total = 0u64;
            for r in results {
                match r? {
                    Response::NewSize(k) => total += k,
                    other => {
                        return Err(bad_shape(&other));
                    }
                }
            }
            Ok(Response::NewSize(total))
        }
        Merge::Partitions => {
            let mut all = Vec::new();
            for r in results {
                match r? {
                    Response::Partitions(p) => all.extend(p),
                    other => return Err(bad_shape(&other)),
                }
            }
            all.sort();
            Ok(Response::Partitions(all))
        }
        Merge::FirstMounted => pick_first_success(results),
        Merge::AnyOk => pick_first_success(results),
    }
}

/// First successful response in shard order; otherwise the most
/// specific error (any non-`NoSuchPartition` error beats the generic
/// "no shard knows that name").
fn pick_first_success(results: Vec<s4_core::Result<Response>>) -> s4_core::Result<Response> {
    let mut err = None;
    for r in results {
        match r {
            Ok(resp) => return Ok(resp),
            Err(S4Error::NoSuchPartition) => {
                err.get_or_insert(S4Error::NoSuchPartition);
            }
            Err(e) => return Err(e),
        }
    }
    Err(err.unwrap_or(S4Error::NoSuchPartition))
}

fn bad_shape(_resp: &Response) -> S4Error {
    S4Error::BadRequest("array: unexpected per-shard response shape")
}

impl<D: BlockDev + 'static> RpcHandler for S4Array<D> {
    fn handle(&self, ctx: &RequestContext, req: &Request) -> s4_core::Result<Response> {
        self.dispatch(ctx, req)
    }

    fn stats_text(&self) -> String {
        self.metrics_text()
    }
}
