//! The array itself: per-shard worker threads, bounded request queues,
//! mirrored members with degraded mode, and scatter-gather dispatch.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use s4_clock::sync::{Mutex, RwLock};
use s4_clock::{SimClock, SimDuration};
use s4_core::{
    ClientId, DiskFaultKind, DriveConfig, ObjectId, OpKind, RecoveryReport, Request,
    RequestContext, Response, S4Drive, S4Error, TraceCtx, TraceIdGen, PARTITION_OBJECT,
    PHASE_APPLY, PHASE_DECIDE, PHASE_NOTE, PHASE_PREPARE,
};
use s4_fs::RpcHandler;
use s4_obs::Registry;
use s4_simdisk::BlockDev;
use s4_txn::{note_name, parse_note, TwoPhaseOps, TxId, TxIdGen, TxnOutcome};

use crate::epoch::{EpochInfo, FlipReport, EPOCH_NOTE_PREFIX, RESERVED_NAME_PREFIX};
use crate::router::{dense_of, route, split_batch, BatchPlan, Merge, Route};

/// Returned when a shard's worker thread is gone (array shutting down
/// or worker panicked).
const WORKER_GONE: S4Error = S4Error::BadRequest("array shard worker unavailable");

/// Returned for mutations when every member of the shard has fallen
/// back to read-only (a lone member that exhausted its write retries).
const SHARD_READ_ONLY: S4Error = S4Error::BadRequest("array shard is read-only (degraded)");

/// Returned when every member of a shard is dead.
const SHARD_DEAD: S4Error = S4Error::BadRequest("array shard has no live members");

/// Array-level tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ArrayConfig {
    /// Bound of each shard's request queue. A full queue blocks the
    /// submitting client thread (backpressure) instead of growing
    /// without limit — the array runs one worker per shard, not one
    /// thread per connection.
    pub queue_depth: usize,
    /// Member drives per shard (1 = no redundancy). With `m` mirrors,
    /// `devices.len()` must be a multiple of `m`; shard `s` owns
    /// devices `s*m .. (s+1)*m`, all formatted in the same ObjectID
    /// residue class. Mutations apply to every in-sync member; reads
    /// are served by the first live member, failing over on disk
    /// faults.
    pub mirrors: usize,
    /// How many times a transient disk fault (an I/O error, as opposed
    /// to whole-device failure) is retried before the member is
    /// declared dead.
    pub retries: u32,
    /// Base backoff between retries, charged to the simulated clock and
    /// doubled on each attempt.
    pub retry_backoff_us: u64,
    /// Assign a causal trace id to every request entering the array
    /// whose context carries none, so member drives persist v2 trace
    /// records joinable across shards (DESIGN §6j). Off, requests the
    /// caller left untraced stay untraced and records encode as v1 —
    /// the `fig_trace` benchmark's baseline.
    pub trace: bool,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig {
            queue_depth: 64,
            mirrors: 1,
            retries: 3,
            retry_backoff_us: 100,
            trace: true,
        }
    }
}

impl ArrayConfig {
    /// Validates the knobs that workers would otherwise trip over at
    /// runtime: a zero mirror count (shards with no members), and a
    /// zero queue depth (a rendezvous channel every send deadlocks on).
    pub fn validate(&self) -> s4_core::Result<()> {
        if self.mirrors == 0 {
            return Err(S4Error::BadRequest("array: mirrors must be at least 1"));
        }
        if self.queue_depth == 0 {
            return Err(S4Error::BadRequest("array: queue depth must be at least 1"));
        }
        Ok(())
    }
}

/// Health of one mirrored member drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberState {
    /// Healthy: serves reads and applies every mutation.
    InSync,
    /// Last member standing after exhausting write retries: still
    /// serves reads, rejects mutations ([`S4Error::BadRequest`] with
    /// "read-only"). Only reachable when no in-sync sibling remains.
    ReadOnly,
    /// Removed from service after a fatal fault (or exhausted retries
    /// with a surviving sibling). Awaits [`S4Array::resync_member`].
    Dead,
}

const STATE_IN_SYNC: usize = 0;
const STATE_READ_ONLY: usize = 1;
const STATE_DEAD: usize = 2;

/// One member drive slot, shared between the shard worker (which owns
/// state transitions and the drive swap at resync) and the admin plane
/// (which reads state and live members' logs).
struct MemberSlot<D: BlockDev> {
    drive: Mutex<Arc<S4Drive<D>>>,
    state: AtomicUsize,
}

impl<D: BlockDev> MemberSlot<D> {
    fn new(drive: S4Drive<D>) -> Self {
        MemberSlot {
            drive: Mutex::new(Arc::new(drive)),
            state: AtomicUsize::new(STATE_IN_SYNC),
        }
    }

    fn drive(&self) -> Arc<S4Drive<D>> {
        self.drive.lock().clone()
    }

    fn state(&self) -> MemberState {
        match self.state.load(Ordering::SeqCst) {
            STATE_IN_SYNC => MemberState::InSync,
            STATE_READ_ONLY => MemberState::ReadOnly,
            _ => MemberState::Dead,
        }
    }

    fn set_state(&self, s: MemberState) {
        let v = match s {
            MemberState::InSync => STATE_IN_SYNC,
            MemberState::ReadOnly => STATE_READ_ONLY,
            MemberState::Dead => STATE_DEAD,
        };
        self.state.store(v, Ordering::SeqCst);
    }
}

/// One queued job for a shard worker.
enum Job<D: BlockDev> {
    /// A client request plus the channel its response goes back on.
    Rpc {
        ctx: RequestContext,
        req: Request,
        reply: SyncSender<s4_core::Result<Response>>,
    },
    /// Rebuild member `member` onto `dev` from a surviving sibling.
    /// Runs on the worker thread, so the shard is quiesced for the
    /// duration — no mutation can interleave with the copy.
    Resync {
        member: usize,
        dev: Box<D>,
        reply: SyncSender<s4_core::Result<()>>,
    },
    /// Install and/or retire an array-internal note in the shard's
    /// partition table (slot 0 only): create `create`, remove `remove`,
    /// and journal-flush each live member. Routed through the worker
    /// queue so the partition object's bytes stay identical across
    /// mirrors with respect to interleaved client `PCreate`s. Reshard
    /// epoch notes and transaction decision notes both ride this job —
    /// the flush after the create *is* their durability commit point.
    Note {
        create: Option<String>,
        remove: Option<String>,
        /// Trace context of the transaction whose decision note this
        /// is (default = untraced: reshard epoch notes, lazy retires).
        trace: TraceCtx,
        reply: SyncSender<s4_core::Result<()>>,
    },
    /// Phase 1 of a cross-shard transaction on this shard: execute the
    /// sub-batch on every in-sync member via
    /// [`S4Drive::txn_prepare_at`] (same pinned `t0`, so mirrors stamp
    /// identically) and reply with the canonical responses — the
    /// yes-vote. A member that faults at the disk level leaves service
    /// exactly as it would under a plain mutation.
    Prepare {
        ctx: RequestContext,
        txid: u64,
        reqs: Vec<Request>,
        reply: SyncSender<s4_core::Result<Vec<Response>>>,
    },
    /// Phase 2: commit or abort `txid` on every in-sync member.
    Decide {
        ctx: RequestContext,
        txid: u64,
        commit: bool,
        reply: SyncSender<s4_core::Result<()>>,
    },
}

/// One shard: its mirrored member slots, worker thread, queue, and
/// quiesce gate. `slot` is the shard's stable residue-class id (see
/// [`crate::epoch`]); the gate is held shared by every dispatcher for
/// the duration of its sends and exclusively by a reshard flip, so the
/// flip observes a moment with no dispatcher mid-send on this shard.
struct ShardHandle<D: BlockDev> {
    slot: usize,
    gate: RwLock<()>,
    members: Vec<Arc<MemberSlot<D>>>,
    tx: Option<SyncSender<Job<D>>>,
    thread: Option<JoinHandle<()>>,
}

impl<D: BlockDev> Drop for ShardHandle<D> {
    fn drop(&mut self) {
        // Closing the queue ends the worker's recv loop; join so no
        // thread outlives the array.
        drop(self.tx.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Per-shard sub-result of a split batch that failed on that shard:
/// how far the shard's sub-batch got before aborting, and why. The
/// indices are in the *original* batch's coordinates, so a client can
/// tell exactly which prefix of its batch took effect on which shard
/// (DESIGN §6f).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// The shard whose sub-batch aborted.
    pub shard: usize,
    /// Sub-requests of that shard's sub-batch that completed before the
    /// failure.
    pub completed: u32,
    /// Index *in the original batch* of the failing sub-request.
    pub failed_at: u32,
    /// The failing sub-request's error.
    pub error: S4Error,
    /// `true` when the array cannot know how much of the sub-batch
    /// executed before the failure — the shard worker panicked mid-batch
    /// or vanished after the sub-batch was handed over, so `completed`
    /// is a floor, not a fact. Clients must treat the shard's state as
    /// unknown until they re-read (or the array remounts). `false`
    /// covers both precise partial failures (the drive reported exactly
    /// how far it got) and pre-execution refusals (read-only/dead
    /// shard), where `completed` is exact.
    pub in_doubt: bool,
}

/// A sharded array of [`S4Drive`]s presenting the single-drive RPC
/// surface (it implements [`RpcHandler`], so the TCP server and the
/// file-system layer run over it unchanged).
///
/// Object placement is `oid % n` with reserved objects pinned (see
/// [`crate::router`]); each member drive allocates ObjectIDs only in
/// its own residue class so drive-assigned IDs route home. With
/// [`ArrayConfig::mirrors`] > 1 every residue class is served by a
/// mirror group: mutations apply to all in-sync members, reads come
/// from the first live member with failover, and a member that fails
/// fatally (or exhausts its transient-fault retries) is declared dead
/// — the shard keeps serving from the survivor in *degraded mode*,
/// surfaced through a `s4_array_degraded` gauge and an
/// `array-degraded` alert on each survivor's tamper-evident alert
/// stream. Every member keeps its own audit log, alert stream, and
/// flight recorder — the security perimeter stays per-drive, exactly
/// as §3.2 argues: a compromised client (or even a compromised sibling
/// drive) cannot forge or truncate another drive's history.
pub struct S4Array<D: BlockDev> {
    routing: Mutex<Arc<Routing<D>>>,
    rr: AtomicUsize,
    clock: SimClock,
    cfg: ArrayConfig,
    reshard_reg: Registry,
    txn_ids: TxIdGen,
    txn_reg: Registry,
    trace_ids: TraceIdGen,
}

/// One routing epoch's view of the array: the epoch itself plus the
/// live shards in dense order (sources first, then in-flight split
/// targets in slot order). Dispatchers snapshot the current `Arc`,
/// plan against it, and recheck `epoch.seq` after taking their gates —
/// a flip swaps in a new `Routing` atomically.
struct Routing<D: BlockDev> {
    epoch: EpochInfo,
    shards: Vec<Arc<ShardHandle<D>>>,
}

impl<D: BlockDev + 'static> S4Array<D> {
    /// Formats `devices` as a fresh array sharing `clock`. With
    /// `array.mirrors = m`, `devices.len()` must be a positive multiple
    /// of `m`: shard `s` of `n = devices.len()/m` owns devices
    /// `s*m..(s+1)*m`, every member formatted with ObjectID class
    /// `s (mod n)`. The initial routing epoch is persisted in shard 0's
    /// partition table.
    pub fn format(
        devices: Vec<D>,
        config: DriveConfig,
        array: ArrayConfig,
        clock: SimClock,
    ) -> s4_core::Result<S4Array<D>> {
        array.validate()?;
        let n = shard_count_of(devices.len(), array.mirrors)?;
        let epoch = EpochInfo::initial(n);
        let mut groups: Vec<Vec<S4Drive<D>>> = Vec::with_capacity(n);
        for (i, dev) in devices.into_iter().enumerate() {
            let s = i / array.mirrors;
            let drive =
                S4Drive::format(dev, config.with_oid_class(n as u64, s as u64), clock.clone())?;
            if i % array.mirrors == 0 {
                groups.push(Vec::with_capacity(array.mirrors));
            }
            groups[s].push(drive);
        }
        // Persist the initial epoch on every shard-0 member before the
        // array serves anything.
        let ctx = RequestContext::admin(ClientId(0), config.admin_token);
        for member in &groups[0] {
            member.op_pcreate(&ctx, &epoch.note_name(), PARTITION_OBJECT)?;
            member.force_anchor()?;
        }
        Ok(Self::spawn(groups, epoch, array, clock))
    }

    /// Remounts an array previously formatted (or unmounted) with the
    /// same device order (dense: sources first, split targets after,
    /// mirrors adjacent), running per-member crash recovery. The
    /// routing epoch is read back from shard 0's partition table —
    /// highest sequence across its members wins, and members a crash
    /// left behind are repaired to the winner — so a crash anywhere in
    /// a reshard remounts wholly old-epoch or wholly new-epoch. Returns
    /// the per-member [`RecoveryReport`]s in device order.
    pub fn mount(
        devices: Vec<D>,
        config: DriveConfig,
        array: ArrayConfig,
        clock: SimClock,
    ) -> s4_core::Result<(S4Array<D>, Vec<RecoveryReport>)> {
        array.validate()?;
        let total = devices.len();
        let m = array.mirrors;
        if total == 0 {
            return Err(S4Error::BadRequest("array needs at least one drive"));
        }
        if !total.is_multiple_of(m) {
            return Err(S4Error::BadRequest(
                "array: device count not a multiple of the mirror count",
            ));
        }
        // Peek shard 0's members for the newest persisted epoch note.
        // Mounting is read-only and `crash` hands the device back
        // unwritten, so the peek leaves no trace.
        let admin = RequestContext::admin(ClientId(0), config.admin_token);
        let mut devices = devices;
        let rest = devices.split_off(m);
        let mut notes: Vec<Option<EpochInfo>> = Vec::with_capacity(m);
        let mut head = Vec::with_capacity(m);
        for dev in devices {
            let drive = S4Drive::mount(dev, config, clock.clone())?;
            let best = drive
                .op_plist(&admin, None)?
                .into_iter()
                .filter_map(|(name, _)| EpochInfo::parse_note(&name))
                .max_by_key(|e| e.seq);
            notes.push(best);
            head.push(drive.crash());
        }
        let epoch = notes
            .iter()
            .flatten()
            .copied()
            .max_by_key(|e| e.seq)
            // Legacy image without a note: a plain n-shard array.
            .unwrap_or_else(|| EpochInfo::initial(total / m));
        if epoch.live_shards() * m != total {
            return Err(S4Error::BadRequest(
                "array: device count does not match the persisted epoch",
            ));
        }
        if epoch.base > 64 {
            return Err(S4Error::BadRequest(
                "array: more than 64 shards (epoch bitmap limit)",
            ));
        }
        let repair = notes.iter().any(|n| *n != Some(epoch));

        let mut groups: Vec<Vec<S4Drive<D>>> = Vec::with_capacity(epoch.live_shards());
        let mut reports = Vec::with_capacity(total);
        for (i, dev) in head.into_iter().chain(rest).enumerate() {
            let p = i / m;
            let (stride, offset) = epoch.class_of_dense(p);
            let (drive, report) =
                S4Drive::mount_with_report(dev, config.with_oid_class(stride, offset), clock.clone())?;
            if i % m == 0 {
                groups.push(Vec::with_capacity(m));
            }
            groups[p].push(drive);
            reports.push(report);
        }
        // Repair divergent shard-0 members (a crash can land between a
        // flip's per-member note installs): everyone gets the winning
        // note, stale notes are dropped. Skipped entirely when the
        // members agree, so a healthy remount performs no writes here.
        if repair {
            let winner = epoch.note_name();
            for member in &groups[0] {
                let mut dirty = false;
                let listed = member.op_plist(&admin, None)?;
                for (name, _) in &listed {
                    if name.starts_with(EPOCH_NOTE_PREFIX) && *name != winner {
                        member.op_pdelete(&admin, name)?;
                        dirty = true;
                    }
                }
                if !listed.iter().any(|(n, _)| *n == winner) {
                    member.op_pcreate(&admin, &winner, PARTITION_OBJECT)?;
                    dirty = true;
                }
                if dirty {
                    member.force_anchor()?;
                }
            }
        }

        // Resolve in-doubt cross-shard transactions (presumed abort): a
        // decision note on any shard-0 member means the coordinator
        // passed its commit point, so the transaction commits on every
        // participant; no note means it never did, so it aborts.
        // Aborts run newest-`t0` first — prepares were serial per
        // worker, so an older transaction's effects are stamped before
        // a newer one's `t0` and blanket compensation of the newer
        // transaction can never disturb the older one. Deciding a
        // transaction a member never saw is an idempotent no-op, so the
        // fan-out goes to everyone.
        let committed: BTreeSet<u64> = groups[0]
            .iter()
            .map(|m| m.op_plist(&admin, None))
            .collect::<s4_core::Result<Vec<_>>>()?
            .into_iter()
            .flatten()
            .filter_map(|(name, _)| parse_note(&name))
            .map(|t| t.0)
            .collect();
        let mut open: BTreeMap<u64, u64> = BTreeMap::new();
        for g in &groups {
            for m in g {
                for (txid, t0) in m.txn_in_doubt() {
                    let e = open.entry(txid).or_insert(t0);
                    *e = (*e).max(t0);
                }
            }
        }
        let mut order: Vec<(u64, u64)> = open.into_iter().collect();
        order.sort_by_key(|&(txid, t0)| (t0, txid));
        let mut redone = 0u64;
        let mut undone = 0u64;
        for &(txid, _) in order.iter().rev() {
            let commit = committed.contains(&txid);
            if commit {
                redone += 1;
            } else {
                undone += 1;
            }
            for g in &groups {
                for m in g {
                    m.txn_decide(txid, commit)?;
                }
            }
        }
        // Every transaction with a note is now resolved everywhere (a
        // note without any in-doubt participant was already resolved —
        // only its lazy retire was lost), so the notes can go.
        for member in &groups[0] {
            let mut dirty = false;
            for (name, _) in member.op_plist(&admin, None)? {
                if parse_note(&name).is_some() {
                    member.op_pdelete(&admin, &name)?;
                    dirty = true;
                }
            }
            if dirty {
                member.op_sync(&admin)?;
            }
        }

        let arr = Self::spawn(groups, epoch, array, clock);
        if redone + undone > 0 {
            arr.txn_reg
                .counter(
                    "s4_txn_recovered_commit_total",
                    "in-doubt transactions redone from a decision note at mount",
                )
                .add(redone);
            arr.txn_reg
                .counter(
                    "s4_txn_recovered_abort_total",
                    "in-doubt transactions rolled back by presumed abort at mount",
                )
                .add(undone);
        }
        Ok((arr, reports))
    }

    /// Builds an array over already-constructed drives (benchmarks use
    /// this to give each shard an independent clock). Drive `i` belongs
    /// to shard `i / mirrors` and must already allocate in that shard's
    /// residue class. The routing epoch starts fresh (no split in
    /// flight) and nothing is persisted until a flip.
    pub fn from_drives(
        drives: Vec<S4Drive<D>>,
        array: ArrayConfig,
    ) -> s4_core::Result<S4Array<D>> {
        array.validate()?;
        let n = shard_count_of(drives.len(), array.mirrors)?;
        for (i, d) in drives.iter().enumerate() {
            let s = i / array.mirrors;
            if d.oid_class() != (n as u64, s as u64) {
                return Err(S4Error::BadRequest("array member oid class mismatch"));
            }
        }
        let clock = drives[0].clock().clone();
        let mut groups: Vec<Vec<S4Drive<D>>> = Vec::with_capacity(n);
        for (i, d) in drives.into_iter().enumerate() {
            if i % array.mirrors == 0 {
                groups.push(Vec::with_capacity(array.mirrors));
            }
            let s = groups.len() - 1;
            groups[s].push(d);
        }
        Ok(Self::spawn(groups, EpochInfo::initial(n), array, clock))
    }

    fn spawn(
        groups: Vec<Vec<S4Drive<D>>>,
        epoch: EpochInfo,
        array: ArrayConfig,
        clock: SimClock,
    ) -> S4Array<D> {
        let shards = groups
            .into_iter()
            .enumerate()
            .map(|(p, drives)| {
                Arc::new(spawn_shard(epoch.slot_of_dense(p), drives, array, clock.clone()))
            })
            .collect();
        S4Array {
            routing: Mutex::new(Arc::new(Routing { epoch, shards })),
            rr: AtomicUsize::new(0),
            clock,
            cfg: array,
            reshard_reg: Registry::new(),
            txn_ids: TxIdGen::new(),
            txn_reg: Registry::new(),
            trace_ids: TraceIdGen::new(),
        }
    }

    /// The array's causal trace context for `ctx`: when tracing is on
    /// and the caller supplied no trace id, a fresh one is minted —
    /// every record the request leaves on any member drive then joins
    /// into one cross-shard trace (DESIGN §6j).
    fn traced(&self, ctx: &RequestContext) -> RequestContext {
        let mut ctx = *ctx;
        if self.cfg.trace && ctx.trace.trace_id == 0 {
            ctx.trace.trace_id = self.trace_ids.next(self.clock.now().as_micros());
        }
        ctx
    }

    /// Snapshot of the current routing (cheap: one lock, one `Arc`
    /// clone).
    fn routing(&self) -> Arc<Routing<D>> {
        self.routing.lock().clone()
    }

    /// Number of live shards (mirror groups), split targets included.
    pub fn shard_count(&self) -> usize {
        self.routing().shards.len()
    }

    /// The current routing epoch.
    pub fn epoch(&self) -> EpochInfo {
        self.routing().epoch
    }

    /// Stable residue-class slot id of the shard at dense index `i`
    /// (metric labels use this; it survives epoch changes).
    pub fn shard_slot(&self, i: usize) -> usize {
        self.routing().shards[i].slot
    }

    /// Dense index of `oid`'s home shard under the current epoch — the
    /// index to hand to [`S4Array::shard_drive`].
    pub fn shard_index_of(&self, oid: ObjectId) -> usize {
        let r = self.routing();
        dense_of(oid, &r.epoch)
    }

    /// Registry of reshard progress metrics (objects copied, catch-up
    /// lag, flip pauses), rendered into the array's expositions.
    pub fn reshard_registry(&self) -> &Registry {
        &self.reshard_reg
    }

    /// Registry of cross-shard transaction metrics (commits, aborts,
    /// lagging participants, mount-time resolutions), rendered into the
    /// array's expositions.
    pub fn txn_registry(&self) -> &Registry {
        &self.txn_reg
    }

    /// Members per shard.
    pub fn mirror_count(&self) -> usize {
        self.cfg.mirrors.max(1)
    }

    /// Handle to the first live member of shard `i` — the admin plane
    /// (forensics, detector installation, metrics) reads member drives
    /// in place, and a dead member's logs are unreachable anyway. Falls
    /// back to member 0 when the whole shard is dead.
    pub fn shard_drive(&self, i: usize) -> Arc<S4Drive<D>> {
        let r = self.routing();
        let members = &r.shards[i].members;
        members
            .iter()
            .find(|m| m.state() != MemberState::Dead)
            .unwrap_or(&members[0])
            .drive()
    }

    /// Handle to member `k` of shard `i`, regardless of its state.
    pub fn member_drive(&self, i: usize, k: usize) -> Arc<S4Drive<D>> {
        self.routing().shards[i].members[k].drive()
    }

    /// Health of every member: `states()[shard][member]`.
    pub fn member_states(&self) -> Vec<Vec<MemberState>> {
        self.routing()
            .shards
            .iter()
            .map(|s| s.members.iter().map(|m| m.state()).collect())
            .collect()
    }

    /// True if shard `i` has lost at least one member (or fallen back
    /// to read-only) — i.e. redundancy is reduced and an operator
    /// should resync a replacement.
    pub fn shard_degraded(&self, i: usize) -> bool {
        self.routing().shards[i]
            .members
            .iter()
            .any(|m| m.state() != MemberState::InSync)
    }

    /// The simulated clock requests are timed on (shard 0's).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Rebuilds member `member` of shard `shard` onto the fresh device
    /// `dev`: the shard worker (so the shard is quiesced) exports the
    /// surviving sibling's logical state, replays it onto `dev`,
    /// verifies every live object's digest and all three reserved
    /// streams match, and only then promotes the rebuilt drive to
    /// `InSync`. Works for any member state — including replacing the
    /// sole, read-only member of an unmirrored shard.
    pub fn resync_member(&self, shard: usize, member: usize, dev: D) -> s4_core::Result<()> {
        let r = self.routing();
        if shard >= r.shards.len() {
            return Err(S4Error::BadRequest("array: no such shard"));
        }
        if member >= r.shards[shard].members.len() {
            return Err(S4Error::BadRequest("array: no such member"));
        }
        shard_call(&r.shards[shard].tx, |reply| Job::Resync {
            member,
            dev: Box::new(dev),
            reply,
        })
    }

    /// Tears the array down member by member, handing each drive to
    /// `finish` in dense device order.
    fn into_devices(
        self,
        finish: impl Fn(S4Drive<D>) -> s4_core::Result<D>,
    ) -> s4_core::Result<Vec<D>> {
        let routing = Arc::try_unwrap(self.routing.into_inner())
            .map_err(|_| S4Error::BadRequest("array routing still referenced"))?;
        let mut devices = Vec::new();
        for handle in routing.shards {
            let handle = Arc::try_unwrap(handle)
                .map_err(|_| S4Error::BadRequest("array shard still referenced"))?;
            let members: Vec<Arc<MemberSlot<D>>> = handle.members.clone();
            drop(handle); // closes the queue and joins the worker
            for m in members {
                let slot = Arc::try_unwrap(m)
                    .map_err(|_| S4Error::BadRequest("array member still referenced"))?;
                let drive = Arc::try_unwrap(slot.drive.into_inner())
                    .map_err(|_| S4Error::BadRequest("array drive still referenced"))?;
                devices.push(finish(drive)?);
            }
        }
        Ok(devices)
    }

    /// Shuts down the workers and unmounts every member, returning the
    /// block devices in device order (dense shard order, mirrors within
    /// a shard adjacent — the order [`S4Array::mount`] expects back).
    /// Fails if any member is dead — resync it first, or drop the array
    /// instead.
    pub fn unmount(self) -> s4_core::Result<Vec<D>> {
        self.into_devices(|drive| drive.unmount())
    }

    /// Drops every member *without* syncing or anchoring and returns
    /// the devices in dense device order — simulated array-wide power
    /// loss for the reshard crash-point campaigns. Volatile state on
    /// every member is lost, exactly as [`S4Drive::crash`].
    pub fn crash(self) -> s4_core::Result<Vec<D>> {
        self.into_devices(|drive| Ok(drive.crash()))
    }

    /// Verifies, executes, and audits one request against the array —
    /// the sharded equivalent of [`S4Drive::dispatch`]. Single-object
    /// requests go to the owning shard's queue; broadcast requests
    /// scatter to every shard and gather one merged response; batches
    /// are split per shard (see [`crate::router::split_batch`]).
    pub fn dispatch(&self, ctx: &RequestContext, req: &Request) -> s4_core::Result<Response> {
        // The `__s4/` partition namespace carries array-internal state
        // (epoch notes); clients cannot create, delete, or resolve it.
        if let Request::PCreate { name, .. } | Request::PDelete { name } = req {
            if name.starts_with(RESERVED_NAME_PREFIX) {
                return Err(S4Error::BadRequest("array: reserved partition namespace"));
            }
        }
        if let Request::PMount { name, .. } = req {
            if name.starts_with(RESERVED_NAME_PREFIX) {
                return Err(S4Error::NoSuchPartition);
            }
        }
        let mut ctx = self.traced(ctx);
        loop {
            let r = self.routing();
            let n = r.shards.len();
            let jobs: Vec<(usize, Request)> = match route(req, &r.epoch) {
                Route::Create => {
                    let s = self.rr.fetch_add(1, Ordering::Relaxed) % n;
                    vec![(s, req.clone())]
                }
                Route::Shard(s) => vec![(s, req.clone())],
                Route::Broadcast(_) => (0..n).map(|s| (s, req.clone())).collect(),
                Route::SplitBatch => {
                    let Request::Batch(reqs) = req else { unreachable!() };
                    return self.dispatch_split(&ctx, reqs);
                }
            };
            // The entry shard annotates every record of the trace, so
            // the assembler can tell where the request came in.
            ctx.trace.origin = jobs.first().map_or(0, |&(s, _)| s as u8);
            let Some(mut results) = self.try_scatter(&r, &ctx, jobs) else {
                continue; // epoch moved between snapshot and gates: replan
            };
            return match route(req, &r.epoch) {
                Route::Broadcast(merge) => merge_broadcast(merge, results),
                _ => results.pop().expect("one submission, one result"),
            };
        }
    }

    /// Sends every `(dense shard, request)` job under the routing
    /// snapshot `r`, then gathers responses in submission order — all
    /// sends complete before the first reply is awaited, so jobs on
    /// distinct shards execute concurrently. Blocks while a shard's
    /// queue is full — that is the backpressure contract.
    ///
    /// Returns `None` without sending anything if the epoch moved
    /// between the snapshot and gate acquisition (the caller replans
    /// against the new routing); the seq check runs *after* every
    /// involved shard's gate is held, so a plan can never be applied
    /// half-old-epoch, half-new-epoch.
    fn try_scatter(
        &self,
        r: &Routing<D>,
        ctx: &RequestContext,
        jobs: Vec<(usize, Request)>,
    ) -> Option<Vec<s4_core::Result<Response>>> {
        let mut involved: Vec<usize> = jobs.iter().map(|&(s, _)| s).collect();
        involved.sort_unstable();
        involved.dedup();
        let gates: Vec<_> = involved.iter().map(|&s| r.shards[s].gate.read()).collect();
        if self.routing.lock().epoch.seq != r.epoch.seq {
            return None;
        }
        let mut pending = Vec::with_capacity(jobs.len());
        for (s, req) in jobs {
            let (reply, rx) = mpsc::sync_channel(1);
            let sent = match &r.shards[s].tx {
                Some(tx) => tx.send(Job::Rpc { ctx: *ctx, req, reply }).is_ok(),
                None => false,
            };
            pending.push((sent, rx));
        }
        drop(gates);
        Some(
            pending
                .into_iter()
                .map(|(sent, rx)| {
                    if !sent {
                        return Err(WORKER_GONE);
                    }
                    rx.recv().unwrap_or(Err(WORKER_GONE))
                })
                .collect(),
        )
    }

    /// Splits a batch across shards, runs the sub-batches concurrently,
    /// and returns the per-slot responses plus one [`BatchOutcome`] per
    /// shard whose sub-batch aborted (empty = full success). Slots of a
    /// failed shard's unreached suffix are `None`. The outer error is
    /// reserved for planning failures (nested batch, broadcast op
    /// inside a batch, orphan `LAST_CREATED`).
    ///
    /// A batch that *mutates* more than one shard is not scattered
    /// independently — it runs as one two-phase-commit transaction
    /// (DESIGN §6i), so it takes effect on every shard or on none:
    /// success looks identical to the scatter path, and failure is a
    /// single [`BatchOutcome`] with `completed = 0` (the rollback undid
    /// everything everywhere). Single-shard and read-only batches keep
    /// the plain scatter path — they are trivially atomic already.
    pub fn dispatch_batch_outcomes(
        &self,
        ctx: &RequestContext,
        reqs: &[Request],
    ) -> s4_core::Result<(Vec<Option<Response>>, Vec<BatchOutcome>)> {
        let mut ctx = self.traced(ctx);
        let (plan, touched, results) = loop {
            let r = self.routing();
            let n = r.shards.len();
            let plan =
                split_batch(reqs, &r.epoch, || self.rr.fetch_add(1, Ordering::Relaxed) % n)?;
            let touched: Vec<usize> = (0..n).filter(|&s| !plan.subs[s].is_empty()).collect();
            ctx.trace.origin = touched.first().map_or(0, |&s| s as u8);
            if touched.len() > 1 && reqs.iter().any(Request::mutates) {
                match self.dispatch_batch_txn(&r, &ctx, &plan, &touched) {
                    Some(out) => return Ok(out),
                    None => continue, // epoch moved: replan the split
                }
            }
            let jobs: Vec<(usize, Request)> = touched
                .iter()
                .map(|&s| (s, Request::Batch(plan.subs[s].clone())))
                .collect();
            match self.try_scatter(&r, &ctx, jobs) {
                Some(results) => break (plan, touched, results),
                None => continue, // epoch moved: replan the split
            }
        };

        let mut out: Vec<Option<Response>> = vec![None; plan.total];
        let mut outcomes = Vec::new();
        for (&s, result) in touched.iter().zip(results) {
            match result {
                Ok(Response::Batch(rs)) => {
                    for (pos, resp) in rs.into_iter().enumerate() {
                        out[plan.slots[s][pos]] = Some(resp);
                    }
                }
                Ok(_) => {
                    return Err(S4Error::BadRequest(
                        "array: shard returned non-batch response",
                    ))
                }
                Err(S4Error::BatchFailed {
                    completed,
                    failed_at,
                    error,
                }) => {
                    // The drive reports sub-batch coordinates; map the
                    // failing index back to the original batch.
                    let orig = plan.slots[s]
                        .get(failed_at as usize)
                        .copied()
                        .unwrap_or(usize::MAX);
                    outcomes.push(BatchOutcome {
                        shard: s,
                        completed,
                        failed_at: orig as u32,
                        error: *error,
                        in_doubt: false,
                    });
                }
                Err(e) => {
                    // Whole-sub-batch failure without partial-progress
                    // info. A pre-execution refusal (read-only or dead
                    // shard) provably executed nothing; anything else —
                    // a worker that panicked mid-batch or vanished —
                    // may have executed a prefix whose extent was lost
                    // with the worker, so the outcome is in doubt
                    // rather than falsely precise.
                    let in_doubt = e != SHARD_READ_ONLY && e != SHARD_DEAD;
                    let orig = plan.slots[s].first().copied().unwrap_or(usize::MAX);
                    outcomes.push(BatchOutcome {
                        shard: s,
                        completed: 0,
                        failed_at: orig as u32,
                        error: e,
                        in_doubt,
                    });
                }
            }
        }
        outcomes.sort_by_key(|o| o.failed_at);
        Ok((out, outcomes))
    }

    /// Runs a multi-shard mutating batch as one two-phase-commit
    /// transaction under the routing snapshot `r`: prepare every
    /// participant (execute + journal-flush the sub-batch), durably
    /// write the decision note on shard 0 — the commit point — then fan
    /// the decision out. Participant gates are held (in dense order,
    /// like [`S4Array::try_scatter`]) for the whole window, so a
    /// reshard flip of a participant cannot interleave with the
    /// transaction. Returns `None` if the epoch moved before the gates
    /// were held (the caller replans against the new routing).
    fn dispatch_batch_txn(
        &self,
        r: &Routing<D>,
        ctx: &RequestContext,
        plan: &BatchPlan,
        touched: &[usize],
    ) -> Option<(Vec<Option<Response>>, Vec<BatchOutcome>)> {
        let gates: Vec<_> = touched.iter().map(|&s| r.shards[s].gate.read()).collect();
        if self.routing.lock().epoch.seq != r.epoch.seq {
            return None;
        }
        let txid = self.txn_ids.next(self.clock.now().as_micros());
        let mut ops = ArrayTxn {
            r,
            ctx,
            subs: &plan.subs,
            responses: BTreeMap::new(),
            clock: &self.clock,
            reg: &self.txn_reg,
        };
        let outcome = s4_txn::run(&mut ops, txid, touched);
        let responses = ops.responses;
        drop(gates);

        let mut out: Vec<Option<Response>> = vec![None; plan.total];
        match outcome {
            TxnOutcome::Committed { lagging } => {
                self.txn_reg
                    .counter(
                        "s4_txn_committed_total",
                        "cross-shard transactions committed",
                    )
                    .inc();
                if !lagging.is_empty() {
                    // A lagging participant missed the commit fan-out
                    // (its members failed after voting); its effects
                    // are durable and the decision note survives for
                    // its next mount, so the batch still succeeded.
                    self.txn_reg
                        .counter(
                            "s4_txn_lagging_total",
                            "participants that missed a commit fan-out (note kept for mount recovery)",
                        )
                        .add(lagging.len() as u64);
                }
                for (s, resps) in responses {
                    for (pos, resp) in resps.into_iter().enumerate() {
                        out[plan.slots[s][pos]] = Some(resp);
                    }
                }
                Some((out, Vec::new()))
            }
            TxnOutcome::Aborted {
                failed_shard,
                error,
            } => {
                self.txn_reg
                    .counter(
                        "s4_txn_aborted_total",
                        "cross-shard transactions rolled back",
                    )
                    .inc();
                // The rollback undid every participant, so the whole
                // batch reports as never-executed: `completed = 0` on
                // the shard that refused (or shard 0's decision write),
                // every response slot empty, nothing in doubt.
                let s = failed_shard.unwrap_or(touched[0]);
                let orig = plan.slots[s].first().copied().unwrap_or(usize::MAX);
                Some((
                    out,
                    vec![BatchOutcome {
                        shard: s,
                        completed: 0,
                        failed_at: orig as u32,
                        error,
                        in_doubt: false,
                    }],
                ))
            }
        }
    }

    /// Splits a batch across shards and reassembles one response,
    /// aborting with an aggregate [`S4Error::BatchFailed`] (earliest
    /// failing original index; `completed` counts sub-requests that
    /// finished across all shards) when any shard's sub-batch failed.
    fn dispatch_split(
        &self,
        ctx: &RequestContext,
        reqs: &[Request],
    ) -> s4_core::Result<Response> {
        let (out, outcomes) = self.dispatch_batch_outcomes(ctx, reqs)?;
        if let Some(first) = outcomes.first() {
            let completed = out.iter().filter(|r| r.is_some()).count() as u32
                + outcomes.iter().map(|o| o.completed).sum::<u32>();
            return Err(S4Error::BatchFailed {
                completed,
                failed_at: first.failed_at,
                error: Box::new(first.error.clone()),
            });
        }
        Ok(Response::Batch(
            out.into_iter()
                .map(|r| r.expect("every batch slot answered"))
                .collect(),
        ))
    }

    /// The flip of a live split (DESIGN §6h): atomically installs the
    /// epoch in which source `source_slot`'s residue class has split,
    /// bringing the target shard (slot `base + source_slot`) online.
    ///
    /// The caller (the reshard engine) has already bulk-copied the
    /// moving class and caught up to a small lag. This method performs
    /// only the brief quiesced window:
    ///
    /// 1. takes the source shard's write gate — no dispatcher can be
    ///    mid-send on it — and re-verifies the epoch hasn't moved;
    /// 2. drains the source's queue with a `Sync` barrier (the queue is
    ///    FIFO, so the reply implies every earlier job finished, and
    ///    every member is durable);
    /// 3. hands the quiesced source members to `finish`, which replays
    ///    the final delta onto the prepared target member drives and
    ///    returns them (one per mirror, formatted in class
    ///    `base + source_slot (mod 2·base)`);
    /// 4. raises each target's ObjectID allocator above the source's
    ///    (moved-then-deleted oids must never be re-issued) and anchors
    ///    it, persists the new epoch note on shard 0 *through its worker
    ///    queue*, narrows the source's allocator class, and swaps in the
    ///    new routing.
    ///
    /// An error anywhere before the note install leaves the routing
    /// untouched — the array keeps running wholly in the old epoch and
    /// the flip can be retried. The returned [`FlipReport`] carries the
    /// pause duration (on the source's member clock) that
    /// `fig_reshard` asserts against.
    pub fn install_split<F>(&self, source_slot: usize, finish: F) -> s4_core::Result<FlipReport>
    where
        F: FnOnce(&[Arc<S4Drive<D>>]) -> s4_core::Result<Vec<S4Drive<D>>>,
    {
        let r = self.routing();
        let e = r.epoch;
        if source_slot >= e.base || source_slot >= 64 {
            return Err(S4Error::BadRequest("array: no such source slot"));
        }
        if e.bits & (1u64 << source_slot) != 0 {
            return Err(S4Error::BadRequest("array: slot already split"));
        }
        let src = &r.shards[source_slot]; // dense == slot for sources
        let _gate = src.gate.write();
        if self.routing.lock().epoch.seq != e.seq {
            return Err(S4Error::BadRequest("array: epoch moved during flip"));
        }
        let live: Vec<Arc<S4Drive<D>>> = src
            .members
            .iter()
            .filter(|m| m.state() == MemberState::InSync)
            .map(|m| m.drive())
            .collect();
        if live.is_empty() {
            return Err(SHARD_READ_ONLY);
        }
        let clock = live[0].clock().clone();
        let started = clock.now();
        let admin = RequestContext::admin(ClientId(0), live[0].config().admin_token);

        // Drain: a Sync through the FIFO queue completes every queued
        // job and makes every member durable.
        shard_call(&src.tx, |reply| Job::Rpc {
            ctx: admin,
            req: Request::Sync,
            reply,
        })?;

        // Final delta onto the prepared targets, under quiescence.
        let targets = finish(&live)?;
        let target_slot = e.base + source_slot;
        let class = (2 * e.base as u64, target_slot as u64);
        if targets.len() != self.cfg.mirrors {
            return Err(S4Error::BadRequest("array: wrong target mirror count"));
        }
        if targets.iter().any(|t| t.oid_class() != class) {
            return Err(S4Error::BadRequest("array: target oid class mismatch"));
        }
        // The target must never re-issue an ObjectID the source already
        // allocated (a moved-then-deleted oid would resurrect). The
        // reshard engine pre-raises and anchors outside the gate, so
        // this usually finds the floor already durable and skips the
        // anchor write.
        let floor = live[0].next_oid(&admin)?;
        for t in &targets {
            if t.next_oid(&admin)? < floor {
                t.raise_next_oid(&admin, floor)?;
                t.force_anchor()?;
            }
        }

        // Persist the new epoch through shard 0's worker queue so the
        // partition object stays bit-identical across its mirrors. Only
        // the new note's creation is the commit point; the stale note is
        // retired after the gate drops (mount elects the highest seq and
        // repairs leftovers, so the overlap is harmless).
        let ne = e.after_split(source_slot);
        shard_call(&r.shards[0].tx, |reply| Job::Note {
            create: Some(ne.note_name()),
            remove: None,
            trace: TraceCtx::default(),
            reply,
        })?;

        // Commit point passed: narrow the source's allocator and swap
        // in the new routing.
        for m in &src.members {
            if m.state() != MemberState::Dead {
                m.drive().set_oid_class(2 * e.base as u64, source_slot as u64);
            }
        }
        let target_clock = targets[0].clock().clone();
        let handle = Arc::new(spawn_shard(target_slot, targets, self.cfg, target_clock));
        let mut shards = r.shards.clone();
        let dense = ne
            .dense_of_slot(target_slot)
            .expect("freshly split slot is live");
        shards.insert(dense, handle);
        *self.routing.lock() = Arc::new(Routing { epoch: ne, shards });

        let pause = clock.now() - started;
        self.reshard_reg
            .histogram(
                "s4_reshard_flip_pause_us",
                "time the source shard spent quiesced per flip",
            )
            .record(pause.as_micros());

        // Quiesce over: release the gate, then retire the old epoch
        // note outside the client-visible window. The job is idempotent
        // (pcreate tolerates an existing note), so a crash in between
        // just leaves both notes for mount's repair pass.
        drop(_gate);
        if let Err(err) = shard_call(&r.shards[0].tx, |reply| Job::Note {
            create: Some(ne.note_name()),
            remove: Some(e.note_name()),
            trace: TraceCtx::default(),
            reply,
        }) {
            // A vanished worker (shutdown race) is tolerable — mount's
            // repair pass drops the stale note — but a real fault is not.
            if err != WORKER_GONE {
                return Err(err);
            }
        }
        Ok(FlipReport { pause, epoch: ne })
    }
}

/// Builds one shard: wraps `drives` in member slots and starts the
/// worker thread that owns them. `slot` is the shard's stable
/// residue-class id (used in alerts and metric labels).
fn spawn_shard<D: BlockDev + 'static>(
    slot: usize,
    drives: Vec<S4Drive<D>>,
    cfg: ArrayConfig,
    clock: SimClock,
) -> ShardHandle<D> {
    let members: Vec<Arc<MemberSlot<D>>> = drives
        .into_iter()
        .map(|d| Arc::new(MemberSlot::new(d)))
        .collect();
    let (tx, rx): (SyncSender<Job<D>>, Receiver<Job<D>>) = mpsc::sync_channel(cfg.queue_depth);
    let worker_members = members.clone();
    let thread = std::thread::Builder::new()
        .name(format!("s4-shard-{slot}"))
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                match job {
                    Job::Rpc { ctx, req, reply } => {
                        let _ = reply.send(worker_process(
                            slot,
                            &worker_members,
                            &cfg,
                            &clock,
                            &ctx,
                            &req,
                        ));
                    }
                    Job::Resync { member, dev, reply } => {
                        let _ = reply.send(worker_resync(slot, &worker_members, member, *dev));
                    }
                    Job::Note {
                        create,
                        remove,
                        trace,
                        reply,
                    } => {
                        let _ = reply.send(worker_note(
                            &worker_members,
                            create.as_deref(),
                            remove.as_deref(),
                            trace,
                        ));
                    }
                    Job::Prepare {
                        ctx,
                        txid,
                        reqs,
                        reply,
                    } => {
                        let _ = reply.send(worker_prepare(
                            slot,
                            &worker_members,
                            &clock,
                            &ctx,
                            txid,
                            &reqs,
                        ));
                    }
                    Job::Decide {
                        ctx,
                        txid,
                        commit,
                        reply,
                    } => {
                        let _ = reply
                            .send(worker_decide(slot, &worker_members, &ctx, txid, commit));
                    }
                }
            }
        })
        .expect("spawn shard worker thread");
    ShardHandle {
        slot,
        gate: RwLock::new(()),
        members,
        tx: Some(tx),
        thread: Some(thread),
    }
}

/// Installs and/or retires an array-internal note on every live member
/// of the shard. Both steps are idempotent — a crash between members
/// leaves a divergence that [`S4Array::mount`] repairs (epoch notes:
/// highest sequence wins; transaction notes: any member's note commits
/// the transaction).
fn worker_note<D: BlockDev>(
    members: &[Arc<MemberSlot<D>>],
    create: Option<&str>,
    remove: Option<&str>,
    trace: TraceCtx,
) -> s4_core::Result<()> {
    for m in members {
        if m.state() == MemberState::Dead {
            continue;
        }
        let drive = m.drive();
        let admin = RequestContext::admin(ClientId(0), drive.config().admin_token);
        if let Some(new) = create {
            match drive.op_pcreate(&admin, new, PARTITION_OBJECT) {
                Ok(_) | Err(S4Error::PartitionExists) => {}
                Err(e) => return Err(e),
            }
        }
        if let Some(old) = remove {
            match drive.op_pdelete(&admin, old) {
                Ok(_) | Err(S4Error::NoSuchPartition) => {}
                Err(e) => return Err(e),
            }
        }
        // A journal flush is the durability barrier — recovery replays
        // the journal, so the note survives a crash without paying for
        // a full anchor (checkpoint promotion) in the caller's window.
        drive.op_sync(&admin)?;
        // A traced note (a 2PC decision install) leaves a span on the
        // member's trace stream *after* its durability barrier — the
        // record's presence means the commit point really passed here.
        if create.is_some() {
            let nctx = admin.with_trace(TraceCtx {
                phase: PHASE_NOTE,
                ..trace
            });
            drive.record_phase_trace(&nctx, OpKind::PCreate, PARTITION_OBJECT, true, 0);
        }
    }
    Ok(())
}

/// Runs one transaction step (prepare or decide) on every in-sync
/// member — the transactional sibling of [`worker_process`]'s mutation
/// path: first member's answer is canonical, a panicking or faulting
/// member leaves service via [`fail_member`]. Disk faults are *not*
/// retried here: a prepare is not idempotent under partial re-execution
/// (the transaction id is already open on the member), so the faulting
/// member is simply failed and the survivors carry the shard.
fn worker_txn_step<D: BlockDev, T>(
    shard: usize,
    members: &[Arc<MemberSlot<D>>],
    step: impl Fn(&S4Drive<D>) -> s4_core::Result<T>,
) -> s4_core::Result<T> {
    let writable: Vec<usize> = (0..members.len())
        .filter(|&k| members[k].state() == MemberState::InSync)
        .collect();
    if writable.is_empty() {
        let any_alive = members.iter().any(|m| m.state() != MemberState::Dead);
        return Err(if any_alive { SHARD_READ_ONLY } else { SHARD_DEAD });
    }
    let mut canonical: Option<s4_core::Result<T>> = None;
    let mut last_fault: Option<S4Error> = None;
    for k in writable {
        let drive = members[k].drive();
        let applied = match catch_unwind(AssertUnwindSafe(|| step(&drive))) {
            Ok(Ok(v)) => Applied::Done(Ok(v)),
            Ok(Err(e)) => match e.disk_fault() {
                None => Applied::Done(Err(e)),
                Some(_) => Applied::MemberFailed(e),
            },
            Err(_) => Applied::MemberFailed(S4Error::BadRequest(
                "array member panicked during dispatch",
            )),
        };
        match applied {
            Applied::Done(r) => {
                if canonical.is_none() {
                    canonical = Some(r);
                }
            }
            Applied::MemberFailed(e) => {
                fail_member(shard, members, k, &e);
                last_fault = Some(e);
            }
        }
    }
    canonical.unwrap_or_else(|| Err(last_fault.unwrap_or(SHARD_DEAD)))
}

/// Phase 1 on this shard: execute the sub-batch transactionally on
/// every in-sync member. One pinned `t0` for all members — the shared
/// clock is advanced past it exactly once — so mirrors re-execute the
/// sub-batch with identical version stamps and stay byte-identical.
fn worker_prepare<D: BlockDev>(
    shard: usize,
    members: &[Arc<MemberSlot<D>>],
    clock: &SimClock,
    ctx: &RequestContext,
    txid: u64,
    reqs: &[Request],
) -> s4_core::Result<Vec<Response>> {
    let t0 = clock.now();
    clock.advance(SimDuration::from_micros(1));
    // The sub-requests run through the member's regular dispatch, so a
    // traced transaction's prepare leaves ordinary trace records —
    // stamped with the 2PC phase so the assembler can tell them from
    // plain applies.
    let pctx = match ctx.trace.trace_id {
        0 => *ctx,
        _ => ctx.with_trace(TraceCtx {
            phase: PHASE_PREPARE,
            ..ctx.trace
        }),
    };
    worker_txn_step(shard, members, |drive| {
        drive.txn_prepare_at(&pctx, txid, t0, reqs)
    })
}

/// Phase 2 on this shard: commit or abort on every in-sync member. A
/// traced decide leaves a synthetic span on each member's trace stream
/// (`txn_decide` is a direct call, not a dispatched request, so no
/// record would exist otherwise); `ok` carries the decision.
fn worker_decide<D: BlockDev>(
    shard: usize,
    members: &[Arc<MemberSlot<D>>],
    ctx: &RequestContext,
    txid: u64,
    commit: bool,
) -> s4_core::Result<()> {
    let dctx = ctx.with_trace(TraceCtx {
        phase: PHASE_DECIDE,
        ..ctx.trace
    });
    worker_txn_step(shard, members, |drive| {
        drive.txn_decide(txid, commit)?;
        drive.record_phase_trace(&dctx, OpKind::Sync, ObjectId(txid), commit, 0);
        Ok(())
    })
}

/// `devices / mirrors`, validating the shape.
fn shard_count_of(devices: usize, mirrors: usize) -> s4_core::Result<usize> {
    let m = mirrors.max(1);
    if devices == 0 {
        return Err(S4Error::BadRequest("array needs at least one drive"));
    }
    if !devices.is_multiple_of(m) {
        return Err(S4Error::BadRequest(
            "array: device count not a multiple of the mirror count",
        ));
    }
    // The routing epoch tracks in-flight splits in a 64-bit mask, so a
    // generation's base caps at 64 source slots.
    if devices / m > 64 {
        return Err(S4Error::BadRequest(
            "array: more than 64 shards (epoch bitmap limit)",
        ));
    }
    Ok(devices / m)
}

/// Outcome of applying one operation to one member.
enum Applied<T> {
    /// The member answered (possibly a logical error — denial, missing
    /// object — which is a property of the request, not the member).
    Done(s4_core::Result<T>),
    /// The member faulted at the disk level (retries exhausted, device
    /// failed, or its dispatch panicked) and must leave service.
    MemberFailed(S4Error),
}

/// Applies `req` to one member with bounded retry on transient disk
/// faults and panic containment: a panicking dispatch is contained to
/// this member (the drive's locks are non-poisoning and every guarded
/// structure stays valid), converted into a member failure.
fn apply_with_retry<D: BlockDev>(
    drive: &S4Drive<D>,
    cfg: &ArrayConfig,
    clock: &SimClock,
    ctx: &RequestContext,
    req: &Request,
) -> Applied<Response> {
    let mut backoff = cfg.retry_backoff_us.max(1);
    let mut attempt = 0u32;
    loop {
        let result = match catch_unwind(AssertUnwindSafe(|| drive.dispatch(ctx, req))) {
            Ok(r) => r,
            Err(_) => {
                return Applied::MemberFailed(S4Error::BadRequest(
                    "array member panicked during dispatch",
                ))
            }
        };
        match result {
            Ok(resp) => return Applied::Done(Ok(resp)),
            Err(e) => match e.disk_fault() {
                None => return Applied::Done(Err(e)),
                Some(DiskFaultKind::Transient) if attempt < cfg.retries => {
                    attempt += 1;
                    clock.advance(SimDuration::from_micros(backoff));
                    backoff = backoff.saturating_mul(2);
                }
                Some(_) => return Applied::MemberFailed(e),
            },
        }
    }
}

/// Takes member `k` out of service after `error`: the last non-dead
/// member of the shard degrades to read-only (reads may still work),
/// anyone else goes dead. Raises an `array-degraded` alert on every
/// surviving member's tamper-evident alert stream — the same channel
/// the operator already polls for intrusion alerts.
fn fail_member<D: BlockDev>(
    shard: usize,
    members: &[Arc<MemberSlot<D>>],
    k: usize,
    error: &S4Error,
) {
    let others_alive = members
        .iter()
        .enumerate()
        .any(|(i, m)| i != k && m.state() != MemberState::Dead);
    let new_state = if others_alive {
        MemberState::Dead
    } else {
        MemberState::ReadOnly
    };
    members[k].set_state(new_state);
    let what = match new_state {
        MemberState::Dead => "dead",
        _ => "read-only",
    };
    let msg = format!("member {k} of shard {shard} marked {what}: {error}");
    for (i, m) in members.iter().enumerate() {
        if i != k && m.state() != MemberState::Dead {
            m.drive().system_alert("array-degraded", &msg);
        }
    }
    // A member degraded to read-only alerts through its own stream
    // too — it may be the only reachable log.
    if new_state == MemberState::ReadOnly {
        members[k].drive().system_alert("array-degraded", &msg);
    }
}

/// Processes one request on the shard worker: mutations apply to every
/// in-sync member (first member's answer is canonical — replicas are
/// deterministic, so they agree), reads go to the first live member
/// and fail over on member faults.
fn worker_process<D: BlockDev>(
    shard: usize,
    members: &[Arc<MemberSlot<D>>],
    cfg: &ArrayConfig,
    clock: &SimClock,
    ctx: &RequestContext,
    req: &Request,
) -> s4_core::Result<Response> {
    // Records written by member drives during ordinary worker execution
    // carry the apply phase (the entry phase stays on whatever record
    // the frontend wrote, if any).
    let stamped;
    let ctx = if ctx.trace.trace_id != 0 {
        stamped = ctx.with_trace(TraceCtx {
            phase: PHASE_APPLY,
            ..ctx.trace
        });
        &stamped
    } else {
        ctx
    };
    if req.mutates() {
        let writable: Vec<usize> = (0..members.len())
            .filter(|&k| members[k].state() == MemberState::InSync)
            .collect();
        if writable.is_empty() {
            let any_alive = members.iter().any(|m| m.state() != MemberState::Dead);
            return Err(if any_alive { SHARD_READ_ONLY } else { SHARD_DEAD });
        }
        let mut canonical: Option<s4_core::Result<Response>> = None;
        let mut last_fault: Option<S4Error> = None;
        for k in writable {
            let drive = members[k].drive();
            match apply_with_retry(&drive, cfg, clock, ctx, req) {
                Applied::Done(r) => {
                    if canonical.is_none() {
                        canonical = Some(r);
                    }
                }
                Applied::MemberFailed(e) => {
                    fail_member(shard, members, k, &e);
                    last_fault = Some(e);
                }
            }
        }
        canonical.unwrap_or_else(|| Err(last_fault.unwrap_or(SHARD_DEAD)))
    } else {
        let mut last_err: Option<S4Error> = None;
        for k in 0..members.len() {
            if members[k].state() == MemberState::Dead {
                continue;
            }
            let drive = members[k].drive();
            match apply_with_retry(&drive, cfg, clock, ctx, req) {
                Applied::Done(r) => return r,
                Applied::MemberFailed(e) => {
                    fail_member(shard, members, k, &e);
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or(SHARD_DEAD))
    }
}

/// Rebuilds member `member` from the first surviving sibling: export
/// the survivor's logical image, replay it onto `dev`, verify object
/// digests and all three reserved streams, then promote to `InSync`.
/// Runs on the shard worker thread, so no request interleaves.
fn worker_resync<D: BlockDev>(
    shard: usize,
    members: &[Arc<MemberSlot<D>>],
    member: usize,
    dev: D,
) -> s4_core::Result<()> {
    // Copy source: the first surviving sibling, or — when replacing
    // the sole (read-only) member of an unmirrored shard — the member
    // being replaced itself, which is still readable.
    let survivor_idx = members
        .iter()
        .enumerate()
        .position(|(i, m)| i != member && m.state() != MemberState::Dead)
        .or_else(|| {
            (members[member].state() != MemberState::Dead).then_some(member)
        })
        .ok_or(SHARD_DEAD)?;
    let survivor = members[survivor_idx].drive();
    let config = *survivor.config();
    let admin = RequestContext::admin(ClientId(0), config.admin_token);

    let image = survivor.resync_image(&admin)?;
    let rebuilt = S4Drive::format_from_image(dev, config, survivor.clock().clone(), &image)?;
    // The survivor's allocator class may have been narrowed by a flip
    // since it was formatted; the replica must allocate identically.
    let (stride, offset) = survivor.oid_class();
    rebuilt.set_oid_class(stride, offset);

    // Verify the replica object by object and stream by stream before
    // trusting it with client reads.
    let survivor_ids = survivor.live_object_ids(&admin)?;
    if survivor_ids != rebuilt.live_object_ids(&admin)? {
        return Err(S4Error::BadRequest("array resync: object set mismatch"));
    }
    for &oid in &survivor_ids {
        let a = survivor.object_digest(&admin, s4_core::ObjectId(oid))?;
        let b = rebuilt.object_digest(&admin, s4_core::ObjectId(oid))?;
        if a != b {
            return Err(S4Error::BadRequest("array resync: object digest mismatch"));
        }
    }
    if survivor.read_audit_records(&admin)? != rebuilt.read_audit_records(&admin)?
        || survivor.read_alerts(&admin)? != rebuilt.read_alerts(&admin)?
        || survivor.read_traces(&admin)? != rebuilt.read_traces(&admin)?
    {
        return Err(S4Error::BadRequest("array resync: stream mismatch"));
    }

    // Promote: swap the rebuilt drive in and mark the pair healthy.
    *members[member].drive.lock() = Arc::new(rebuilt);
    members[member].set_state(MemberState::InSync);
    if survivor_idx != member && members[survivor_idx].state() == MemberState::ReadOnly {
        members[survivor_idx].set_state(MemberState::InSync);
    }
    let msg = format!("member {member} of shard {shard} resynced and back in sync");
    for m in members.iter() {
        if m.state() == MemberState::InSync {
            m.drive().system_alert("array-resync", &msg);
        }
    }
    Ok(())
}

/// Combines per-shard responses of a broadcast request.
fn merge_broadcast(
    merge: Merge,
    results: Vec<s4_core::Result<Response>>,
) -> s4_core::Result<Response> {
    match merge {
        Merge::AllOk => {
            for r in results {
                r?;
            }
            Ok(Response::Ok)
        }
        Merge::SumNewSize => {
            let mut total = 0u64;
            for r in results {
                match r? {
                    Response::NewSize(k) => total += k,
                    other => {
                        return Err(bad_shape(&other));
                    }
                }
            }
            Ok(Response::NewSize(total))
        }
        Merge::Partitions => {
            let mut all = Vec::new();
            for r in results {
                match r? {
                    Response::Partitions(p) => all.extend(p),
                    other => return Err(bad_shape(&other)),
                }
            }
            // Array-internal names (epoch notes) never reach clients.
            all.retain(|(name, _)| !name.starts_with(RESERVED_NAME_PREFIX));
            all.sort();
            Ok(Response::Partitions(all))
        }
        Merge::FirstMounted => pick_first_success(results),
        Merge::AnyOk => pick_first_success(results),
    }
}

/// First successful response in shard order; otherwise the most
/// specific error (any non-`NoSuchPartition` error beats the generic
/// "no shard knows that name").
fn pick_first_success(results: Vec<s4_core::Result<Response>>) -> s4_core::Result<Response> {
    let mut err = None;
    for r in results {
        match r {
            Ok(resp) => return Ok(resp),
            Err(S4Error::NoSuchPartition) => {
                err.get_or_insert(S4Error::NoSuchPartition);
            }
            Err(e) => return Err(e),
        }
    }
    Err(err.unwrap_or(S4Error::NoSuchPartition))
}

fn bad_shape(_resp: &Response) -> S4Error {
    S4Error::BadRequest("array: unexpected per-shard response shape")
}

/// Sends one job to a shard worker and waits for its typed reply.
/// [`WORKER_GONE`] covers both a closed queue and a worker that died
/// before answering.
fn shard_call<D: BlockDev, T>(
    tx: &Option<SyncSender<Job<D>>>,
    build: impl FnOnce(SyncSender<s4_core::Result<T>>) -> Job<D>,
) -> s4_core::Result<T> {
    let (reply, rx) = mpsc::sync_channel(1);
    let sent = match tx {
        Some(tx) => tx.send(build(reply)).is_ok(),
        None => false,
    };
    if !sent {
        return Err(WORKER_GONE);
    }
    rx.recv().unwrap_or(Err(WORKER_GONE))
}

/// The array-side port of the two-phase-commit driver: protocol
/// messages become shard-worker jobs against a held routing snapshot,
/// and the decision note lives in shard 0's partition table with the
/// same flush-is-durability discipline as the reshard epoch note.
struct ArrayTxn<'a, D: BlockDev> {
    r: &'a Routing<D>,
    ctx: &'a RequestContext,
    subs: &'a [Vec<Request>],
    responses: BTreeMap<usize, Vec<Response>>,
    clock: &'a SimClock,
    reg: &'a Registry,
}

impl<D: BlockDev> TwoPhaseOps for ArrayTxn<'_, D> {
    type Err = S4Error;

    fn prepare(&mut self, shard: usize, txid: TxId) -> Result<(), S4Error> {
        let started = self.clock.now();
        let resps = shard_call(&self.r.shards[shard].tx, |reply| Job::Prepare {
            ctx: *self.ctx,
            txid: txid.0,
            reqs: self.subs[shard].clone(),
            reply,
        })?;
        self.reg
            .histogram(
                "s4_txn_prepare_us",
                "per-participant 2PC prepare latency (execute + journal flush)",
            )
            .record((self.clock.now() - started).as_micros());
        self.responses.insert(shard, resps);
        Ok(())
    }

    fn record_decision(&mut self, txid: TxId) -> Result<(), S4Error> {
        let r = shard_call(&self.r.shards[0].tx, |reply| Job::Note {
            create: Some(note_name(txid)),
            remove: None,
            trace: self.ctx.trace,
            reply,
        });
        if r.is_err() {
            // Best-effort scrub of a possibly half-installed note, so
            // that absence — presumed abort, the decision the driver is
            // about to fan out — is what recovery reads back. (A fault
            // model where the note lands durably and this scrub *also*
            // fails is outside the power-loss discipline the campaigns
            // exercise; see DESIGN §6i.)
            let _ = shard_call(&self.r.shards[0].tx, |reply| Job::Note {
                create: None,
                remove: Some(note_name(txid)),
                trace: TraceCtx::default(),
                reply,
            });
        }
        r
    }

    fn decide(&mut self, shard: usize, txid: TxId, commit: bool) -> Result<(), S4Error> {
        let started = self.clock.now();
        let r = shard_call(&self.r.shards[shard].tx, |reply| Job::Decide {
            ctx: *self.ctx,
            txid: txid.0,
            commit,
            reply,
        });
        self.reg
            .histogram(
                "s4_txn_decide_us",
                "per-participant 2PC decide latency (commit/abort fan-out)",
            )
            .record((self.clock.now() - started).as_micros());
        r
    }

    fn retire_decision(&mut self, txid: TxId) -> Result<(), S4Error> {
        // Lazy cleanup after the client already has its answer — not
        // part of the request's causal story, so it stays untraced.
        shard_call(&self.r.shards[0].tx, |reply| Job::Note {
            create: None,
            remove: Some(note_name(txid)),
            trace: TraceCtx::default(),
            reply,
        })
    }
}

impl<D: BlockDev + 'static> RpcHandler for S4Array<D> {
    fn handle(&self, ctx: &RequestContext, req: &Request) -> s4_core::Result<Response> {
        self.dispatch(ctx, req)
    }

    fn stats_text(&self) -> String {
        self.metrics_text()
    }

    fn reshard_text(&self) -> String {
        self.reshard_status_text()
    }

    fn txn_text(&self) -> String {
        self.txn_status_text()
    }
}
