//! Merged admin plane: audit, alerts, detection, and forensics across
//! shards.
//!
//! Every member drive keeps its own tamper-resistant audit log, alert
//! stream, and flight recorder — the array merely *reads* them all and
//! merges, tagging each record with its shard so an analyst can always
//! trace a finding back to the drive that vouches for it. Merging is a
//! view, not a copy: no cross-shard object ever holds security state,
//! so compromising one shard (or the array frontend itself) cannot
//! rewrite another shard's history.

use s4_core::{AuditRecord, ObjectId, RequestContext, S4Error};
use s4_detect::{
    assemble_traces, flight_log, install_standard_monitor, object_timeline, FlightEntry,
    TimelineEvent, TraceTree,
};
use s4_simdisk::BlockDev;

use crate::array::{MemberState, S4Array};

/// A record tagged with the shard whose log it came from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sharded<T> {
    /// Shard index the record was read from.
    pub shard: usize,
    /// The record itself.
    pub record: T,
}

impl<D: BlockDev + 'static> S4Array<D> {
    /// Installs the standard online monitor on every member drive
    /// (mirrors included, so replicas raise the same alerts and stay
    /// comparable); each drive detects independently over its own
    /// audit stream.
    pub fn install_standard_monitors(&self) {
        for s in 0..self.shard_count() {
            for k in 0..self.mirror_count() {
                install_standard_monitor(&self.member_drive(s, k));
            }
        }
    }

    /// Every shard's audit log merged into one stream, sorted by
    /// record time (ties keep shard order — the merge is stable).
    pub fn read_audit_merged(
        &self,
        admin: &RequestContext,
    ) -> Result<Vec<Sharded<AuditRecord>>, S4Error> {
        let mut all = Vec::new();
        for s in 0..self.shard_count() {
            all.extend(
                self.shard_drive(s)
                    .read_audit_records(admin)?
                    .into_iter()
                    .map(|record| Sharded { shard: s, record }),
            );
        }
        all.sort_by_key(|r| r.record.time);
        Ok(all)
    }

    /// Every shard's alert stream merged, sorted by raise time (the
    /// alert wire format dates each blob at bytes `[1..9]`).
    pub fn read_alerts_merged(
        &self,
        admin: &RequestContext,
    ) -> Result<Vec<Sharded<Vec<u8>>>, S4Error> {
        let mut all = Vec::new();
        for s in 0..self.shard_count() {
            all.extend(
                self.shard_drive(s)
                    .read_alerts(admin)?
                    .into_iter()
                    .map(|record| Sharded { shard: s, record }),
            );
        }
        all.sort_by_key(|r| alert_time(&r.record));
        Ok(all)
    }

    /// Every shard's flight recorder merged, sorted by completion time.
    pub fn flight_log_merged(
        &self,
        admin: &RequestContext,
    ) -> Result<Vec<Sharded<FlightEntry>>, S4Error> {
        let mut all = Vec::new();
        for s in 0..self.shard_count() {
            all.extend(
                flight_log(&self.shard_drive(s), admin)?
                    .into_iter()
                    .map(|record| Sharded { shard: s, record }),
            );
        }
        all.sort_by_key(|r| r.record.time);
        Ok(all)
    }

    /// Every *member* drive's flight log, labeled `(shard, member,
    /// entries)` — the input to cross-shard trace assembly, where
    /// provenance is which stream vouches for a span, so mirrors are
    /// read individually rather than collapsed to the shard's first
    /// live member. Dead members are skipped (their logs are
    /// unreachable); a member whose stream fails to decode fails the
    /// whole read.
    pub fn member_flight_logs(
        &self,
        admin: &RequestContext,
    ) -> Result<Vec<(usize, usize, Vec<FlightEntry>)>, S4Error> {
        let mut all = Vec::new();
        for (s, shard_states) in self.member_states().iter().enumerate() {
            for (k, state) in shard_states.iter().enumerate() {
                if *state == MemberState::Dead {
                    continue;
                }
                all.push((s, k, flight_log(&self.member_drive(s, k), admin)?));
            }
        }
        Ok(all)
    }

    /// Assembles every causal trace recorded anywhere in the array:
    /// reads all member flight logs and joins them on trace id (DESIGN
    /// §6j). Entirely computed from the crash-surviving per-drive
    /// streams, so it works identically on a freshly mounted array.
    pub fn assemble_all_traces(
        &self,
        admin: &RequestContext,
    ) -> Result<Vec<TraceTree>, S4Error> {
        Ok(assemble_traces(&self.member_flight_logs(admin)?))
    }

    /// Forensic timeline of one object, served by its home shard
    /// (object history never crosses shards).
    pub fn object_timeline(
        &self,
        admin: &RequestContext,
        oid: ObjectId,
    ) -> Result<Vec<TimelineEvent>, S4Error> {
        let s = self.shard_index_of(oid);
        object_timeline(&self.shard_drive(s), admin, oid)
    }
}

/// Raise time of an alert blob (µs), per the wire format's dating
/// convention: severity byte, then the time at bytes `[1..9]`.
fn alert_time(blob: &[u8]) -> u64 {
    if blob.len() >= 9 {
        u64::from_le_bytes(blob[1..9].try_into().unwrap())
    } else {
        0
    }
}
