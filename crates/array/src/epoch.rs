//! Routing epochs: the bookkeeping that lets an array split live from
//! `N` to `2N` shards (DESIGN §6h).
//!
//! An epoch is `(seq, base, bits)`: `base` pre-split shards plus one
//! in-flight split target per set bit of `bits` — bit `i` set means
//! source slot `i`'s residue class `i (mod base)` has split into
//! `i (mod 2·base)` (kept by slot `i`) and `base+i (mod 2·base)`
//! (owned by the new slot `base+i`). When every source slot has split,
//! the generation completes: `base` doubles and `bits` clears.
//!
//! **Slot vs dense index.** A *slot id* names a shard's residue class
//! and is stable for the shard's lifetime (a split target created for
//! slot `base+i` keeps that id when the generation completes and it
//! becomes a source of the next one). A *dense index* is the shard's
//! position in the array's live-shard vector: sources `0..base` first,
//! then targets in slot order. All public `S4Array` indexing is dense —
//! existing callers that iterate `0..shard_count()` keep working across
//! splits — and slot ids surface only in metric labels and oid classes.
//!
//! The current epoch is persisted in the *distributed partition table*:
//! a reserved entry named `__s4/epoch/<seq>/<base>/<bits>` targeting the
//! partition object itself, written to every member of slot 0 (reserved
//! names are filtered from client listings and rejected on the client
//! write path). Highest `seq` wins at mount; divergent members — a
//! crash can land mid-flip — are repaired to the winner.

use s4_clock::SimDuration;

/// Prefix of partition names reserved for array-internal state. The
/// dispatcher rejects client `PCreate`/`PDelete`/`PMount` under this
/// prefix and filters it from merged `PList` responses.
pub const RESERVED_NAME_PREFIX: &str = "__s4/";

/// Prefix of the epoch note's partition name.
pub const EPOCH_NOTE_PREFIX: &str = "__s4/epoch/";

/// One routing epoch (see the module docs for the model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochInfo {
    /// Monotonic install sequence; the highest persisted `seq` wins at
    /// mount.
    pub seq: u64,
    /// Shards of the pre-split generation (each owning `slot mod base`
    /// unless its bit is set).
    pub base: usize,
    /// Bit `i` set: source slot `i` has split and slot `base+i` is live.
    pub bits: u64,
}

impl EpochInfo {
    /// The initial epoch of a freshly formatted `base`-shard array.
    pub fn initial(base: usize) -> EpochInfo {
        EpochInfo {
            seq: 1,
            base,
            bits: 0,
        }
    }

    /// Number of live shards (sources plus in-flight split targets).
    pub fn live_shards(&self) -> usize {
        self.base + self.bits.count_ones() as usize
    }

    /// Slot id of the shard at dense position `p` (sources first, then
    /// targets in slot order).
    pub fn slot_of_dense(&self, p: usize) -> usize {
        if p < self.base {
            return p;
        }
        let mut remaining = p - self.base;
        for i in 0..self.base {
            if self.bits & (1u64 << i) != 0 {
                if remaining == 0 {
                    return self.base + i;
                }
                remaining -= 1;
            }
        }
        panic!("dense index {p} out of range for epoch {self:?}");
    }

    /// Dense position of `slot`, or `None` if that slot is not live in
    /// this epoch.
    pub fn dense_of_slot(&self, slot: usize) -> Option<usize> {
        if slot < self.base {
            return Some(slot);
        }
        let i = slot - self.base;
        if i >= self.base || self.bits & (1u64 << i) == 0 {
            return None;
        }
        let below = self.bits & ((1u64 << i) - 1);
        Some(self.base + below.count_ones() as usize)
    }

    /// ObjectID residue class `(stride, offset)` of the shard at dense
    /// position `p`: a split source or a target allocates in the
    /// doubled class; an unsplit source still owns its whole class.
    pub fn class_of_dense(&self, p: usize) -> (u64, u64) {
        let slot = self.slot_of_dense(p);
        if slot < self.base && self.bits & (1u64 << slot) == 0 {
            (self.base as u64, slot as u64)
        } else {
            (2 * self.base as u64, slot as u64)
        }
    }

    /// The epoch after source `slot` finishes its split: the bit is
    /// set, and a complete generation collapses into the doubled base.
    pub fn after_split(&self, slot: usize) -> EpochInfo {
        let bits = self.bits | (1u64 << slot);
        let full = if self.base == 64 {
            u64::MAX
        } else {
            (1u64 << self.base) - 1
        };
        if bits == full {
            EpochInfo {
                seq: self.seq + 1,
                base: 2 * self.base,
                bits: 0,
            }
        } else {
            EpochInfo {
                seq: self.seq + 1,
                base: self.base,
                bits,
            }
        }
    }

    /// The partition-table entry name this epoch persists under.
    pub fn note_name(&self) -> String {
        format!("{EPOCH_NOTE_PREFIX}{}/{}/{}", self.seq, self.base, self.bits)
    }

    /// Parses an epoch note name; `None` for anything else (including
    /// other reserved names).
    pub fn parse_note(name: &str) -> Option<EpochInfo> {
        let rest = name.strip_prefix(EPOCH_NOTE_PREFIX)?;
        let mut it = rest.split('/');
        let seq = it.next()?.parse().ok()?;
        let base: usize = it.next()?.parse().ok()?;
        let bits = it.next()?.parse().ok()?;
        if it.next().is_some() || base == 0 || base > 64 {
            return None;
        }
        Some(EpochInfo { seq, base, bits })
    }
}

/// Progress and outcome of one flip, returned by
/// [`crate::S4Array::install_split`]: how long the split shard was
/// quiesced, on its own member clock.
#[derive(Clone, Copy, Debug)]
pub struct FlipReport {
    /// Simulated time the source shard spent quiesced (write gate held):
    /// final queue drain, last-delta replay, and epoch install.
    pub pause: SimDuration,
    /// The epoch installed by the flip.
    pub epoch: EpochInfo,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_slot_maps_invert() {
        let e = EpochInfo {
            seq: 3,
            base: 4,
            bits: 0b1010,
        };
        assert_eq!(e.live_shards(), 6);
        // Dense: sources 0..4, then targets for slots 5 (bit 1) and 7
        // (bit 3), in slot order.
        let slots: Vec<usize> = (0..e.live_shards()).map(|p| e.slot_of_dense(p)).collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 5, 7]);
        for (p, &slot) in slots.iter().enumerate() {
            assert_eq!(e.dense_of_slot(slot), Some(p));
        }
        assert_eq!(e.dense_of_slot(4), None, "slot 4's source has not split");
        assert_eq!(e.dense_of_slot(6), None);
    }

    #[test]
    fn classes_narrow_only_after_split() {
        let e = EpochInfo {
            seq: 2,
            base: 4,
            bits: 0b0010,
        };
        assert_eq!(e.class_of_dense(0), (4, 0), "unsplit source keeps class");
        assert_eq!(e.class_of_dense(1), (8, 1), "split source narrowed");
        assert_eq!(e.class_of_dense(4), (8, 5), "target owns the moved class");
    }

    #[test]
    fn generation_completes_when_all_bits_set() {
        let mut e = EpochInfo::initial(2);
        e = e.after_split(0);
        assert_eq!((e.base, e.bits), (2, 0b01));
        e = e.after_split(1);
        assert_eq!((e.base, e.bits), (4, 0), "complete generation collapses");
        assert_eq!(e.seq, 3);
    }

    #[test]
    fn note_names_round_trip() {
        let e = EpochInfo {
            seq: 7,
            base: 8,
            bits: 0b101,
        };
        assert_eq!(EpochInfo::parse_note(&e.note_name()), Some(e));
        assert_eq!(EpochInfo::parse_note("__s4/epoch/1/0/0"), None);
        assert_eq!(EpochInfo::parse_note("__s4/epoch/1/65/0"), None);
        assert_eq!(EpochInfo::parse_note("__s4/other"), None);
        assert_eq!(EpochInfo::parse_note("user-data"), None);
    }
}
