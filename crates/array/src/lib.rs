//! Sharded multi-drive S4 array (scale-out, §5 "costs and scalability").
//!
//! One self-securing drive bounds its throughput by a single log and a
//! single security perimeter. The array scales out by running `n`
//! independent [`s4_core::S4Drive`]s and partitioning the flat object
//! namespace across them by residue class (`oid % n`), with each member
//! drive allocating ObjectIDs only inside its own class so that
//! drive-assigned IDs route home with no mapping table.
//!
//! Design points:
//!
//! * **Per-shard workers with bounded queues.** Each shard owns one
//!   worker thread fed by a bounded channel; a full queue blocks the
//!   submitter (backpressure) rather than spawning threads or buffering
//!   without limit.
//! * **Scatter-gather.** Whole-array operations (`Sync`, `Flush`,
//!   `SetWindow`, retention flushes, partition lookups) broadcast to
//!   every shard concurrently and merge the responses; batches split
//!   into per-shard sub-batches that run in parallel.
//! * **Security perimeter stays per drive.** Audit logs, alert streams,
//!   and flight recorders are shard-local and tamper-resistant exactly
//!   as on a lone drive; the array only ever *reads* and merges them
//!   ([`Sharded`] tags each record with the vouching shard). Recovery
//!   and mount are strictly per shard.
//! * **Mirrored shards, degraded mode, online resync.** With
//!   [`ArrayConfig::mirrors`] > 1 each residue class is served by a
//!   replica group: mutations re-execute on every in-sync member, reads
//!   fail over, transient device faults are retried with backoff while
//!   hard faults / torn writes / panics mark the member
//!   [`MemberState::Dead`] — invisibly to clients. Degraded shards are
//!   surfaced via a persisted `array-degraded` alert, the
//!   `s4_array_degraded` gauge, and `s4 stats`;
//!   [`S4Array::resync_member`] rebuilds a dead replica onto a fresh
//!   device online with per-object digest verification. A lone
//!   surviving replica whose device fails falls back to read-only.
//! * **Drop-in surface.** The array implements [`s4_fs::RpcHandler`],
//!   so the TCP server and the NFS-style file system layer run over it
//!   unchanged ([`ArrayTransport`] is the in-process variant).
//! * **Online resharding.** Routing is epoch-aware ([`EpochInfo`]):
//!   a live array splits from `N` to `2N` shards one residue class at a
//!   time, with the history pool serving as the migration mechanism and
//!   only a brief per-shard quiesce at the flip
//!   ([`S4Array::install_split`]; the full protocol lives in
//!   `s4-reshard`, DESIGN §6h).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
pub mod epoch;
mod forensics;
mod metrics;
pub mod router;
mod transport;

pub use array::{ArrayConfig, BatchOutcome, MemberState, S4Array};
pub use epoch::{EpochInfo, FlipReport, EPOCH_NOTE_PREFIX, RESERVED_NAME_PREFIX};
pub use forensics::Sharded;
pub use router::{dense_of, is_reserved, shard_of, slot_of};
pub use transport::ArrayTransport;
