//! Cross-shard atomic batches (two-phase commit, DESIGN §6i): live
//! commit across shards and mirrors, live abort rollback on a
//! participant failure, outcome metrics, and the in-doubt reporting
//! contract when a shard worker panics mid-batch and the extent of its
//! progress is lost.

use s4_array::{ArrayConfig, BatchOutcome, S4Array};
use s4_clock::{SimClock, SimDuration};
use s4_core::rpc::LAST_CREATED;
use s4_core::{
    AuditObserver, AuditRecord, ClientId, DriveConfig, ObjectId, Request, RequestContext, Response,
    S4Error, UserId,
};
use s4_simdisk::MemDisk;

fn user() -> RequestContext {
    RequestContext::user(UserId(1), ClientId(1))
}

fn admin() -> RequestContext {
    RequestContext::admin(ClientId(0), 42)
}

fn array(shards: usize, mirrors: usize) -> (S4Array<MemDisk>, SimClock) {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let devices = (0..shards * mirrors)
        .map(|_| MemDisk::with_capacity_bytes(64 << 20))
        .collect();
    let a = S4Array::format(
        devices,
        DriveConfig::small_test(),
        ArrayConfig {
            mirrors,
            ..ArrayConfig::default()
        },
        clock.clone(),
    )
    .unwrap();
    (a, clock)
}

fn create(a: &S4Array<MemDisk>, ctx: &RequestContext) -> ObjectId {
    match a.dispatch(ctx, &Request::Create).unwrap() {
        Response::Created(oid) => oid,
        other => panic!("unexpected response {other:?}"),
    }
}

/// Creates until one object lands in each residue class of a 2-shard
/// array.
fn one_per_shard(a: &S4Array<MemDisk>, ctx: &RequestContext) -> (ObjectId, ObjectId) {
    let (mut even, mut odd) = (None, None);
    while even.is_none() || odd.is_none() {
        let oid = create(a, ctx);
        if oid.0.is_multiple_of(2) {
            even.get_or_insert(oid);
        } else {
            odd.get_or_insert(oid);
        }
    }
    (even.unwrap(), odd.unwrap())
}

fn read(a: &S4Array<MemDisk>, ctx: &RequestContext, oid: ObjectId, len: u64) -> Vec<u8> {
    match a
        .dispatch(
            ctx,
            &Request::Read {
                oid,
                offset: 0,
                len,
                time: None,
            },
        )
        .unwrap()
    {
        Response::Data(d) => d,
        other => panic!("unexpected response {other:?}"),
    }
}

fn write_req(oid: ObjectId, data: &[u8]) -> Request {
    Request::Write {
        oid,
        offset: 0,
        data: data.to_vec(),
    }
}

/// All-InSync digests must agree member-to-member within every shard.
fn assert_mirrors_converged(a: &S4Array<MemDisk>) {
    let adm = admin();
    for s in 0..a.shard_count() {
        let first = a.member_drive(s, 0);
        let ids = first.live_object_ids(&adm).unwrap();
        for k in 1..a.mirror_count() {
            let other = a.member_drive(s, k);
            assert_eq!(
                ids,
                other.live_object_ids(&adm).unwrap(),
                "shard {s} object sets"
            );
            for &oid in &ids {
                assert_eq!(
                    first.object_digest(&adm, ObjectId(oid)).unwrap(),
                    other.object_digest(&adm, ObjectId(oid)).unwrap(),
                    "shard {s} object {oid} diverged between mirrors"
                );
            }
            assert_eq!(
                first.read_audit_records(&adm).unwrap(),
                other.read_audit_records(&adm).unwrap(),
                "shard {s} audit streams diverged"
            );
        }
    }
}

#[test]
fn cross_shard_commit_lands_every_sub_request_and_mirrors_agree() {
    let (a, _clock) = array(2, 2);
    let ctx = user();
    let (even, odd) = one_per_shard(&a, &ctx);

    // Spans both shards and exercises the LAST_CREATED placeholder
    // inside a transactional sub-batch.
    let reqs = vec![
        write_req(even, b"left"),
        write_req(odd, b"right"),
        Request::Create,
        Request::Write {
            oid: LAST_CREATED,
            offset: 0,
            data: b"fresh".to_vec(),
        },
        Request::Sync,
    ];
    let resp = a.dispatch(&ctx, &Request::Batch(reqs)).unwrap();
    let rs = match resp {
        Response::Batch(rs) => rs,
        other => panic!("unexpected response {other:?}"),
    };
    assert_eq!(rs.len(), 5, "every slot answered");
    let fresh = match &rs[2] {
        Response::Created(oid) => *oid,
        other => panic!("unexpected response {other:?}"),
    };

    // Before any read-path traffic (reads audit only on the first
    // member): the transactional mutations left every mirror
    // byte-identical, audit records included — one pinned t0 per shard.
    assert_mirrors_converged(&a);

    assert_eq!(read(&a, &ctx, even, 4), b"left");
    assert_eq!(read(&a, &ctx, odd, 5), b"right");
    assert_eq!(read(&a, &ctx, fresh, 5), b"fresh");
    assert!(
        a.txn_status_text().starts_with("committed=1 aborted=0"),
        "status: {}",
        a.txn_status_text()
    );
    // The decision note was retired after the full fan-out: the
    // reserved transaction namespace is empty again.
    let notes = match a
        .dispatch(&admin(), &Request::PList { time: None })
        .unwrap()
    {
        Response::Partitions(ps) => ps
            .into_iter()
            .filter(|(n, _)| n.starts_with("__s4/txn/"))
            .count(),
        other => panic!("unexpected response {other:?}"),
    };
    assert_eq!(notes, 0, "retired decision notes");
}

/// An audit observer that panics on every record — stands in for a
/// buggy detection rule wedging one member's dispatch path.
struct PanickingObserver;

impl AuditObserver for PanickingObserver {
    fn on_record(&mut self, _rec: &AuditRecord) -> Vec<Vec<u8>> {
        panic!("detector bug");
    }
}

#[test]
fn participant_panic_mid_prepare_aborts_and_rolls_back_the_other_shard() {
    let (a, _clock) = array(2, 1);
    let ctx = user();
    let (even, odd) = one_per_shard(&a, &ctx);

    // Shard 1's only member wedges on its next audited mutation, i.e.
    // during its prepare.
    a.member_drive(1, 0)
        .register_audit_observer(Box::new(PanickingObserver));

    let reqs = vec![write_req(even, b"left"), write_req(odd, b"right")];
    let (slots, outcomes) = a.dispatch_batch_outcomes(&ctx, &reqs).unwrap();
    assert!(slots.iter().all(Option::is_none), "no partial responses");
    assert_eq!(outcomes.len(), 1);
    let o = &outcomes[0];
    assert_eq!(o.shard, 1);
    assert_eq!(o.completed, 0);
    assert!(
        !o.in_doubt,
        "a refused prepare was rolled back everywhere, not in doubt"
    );

    // Shard 0 prepared first and was compensated on abort.
    assert_eq!(read(&a, &ctx, even, 4), b"", "shard 0 write rolled back");
    assert!(
        a.txn_status_text().starts_with("committed=0 aborted=1"),
        "status: {}",
        a.txn_status_text()
    );
    // Nothing left in doubt on the survivor.
    assert!(a.member_drive(0, 0).txn_in_doubt().is_empty());
}

#[test]
fn worker_panic_mid_single_shard_batch_reports_in_doubt() {
    let (a, _clock) = array(2, 1);
    let ctx = user();
    let (even, _odd) = one_per_shard(&a, &ctx);
    let even2 = loop {
        let oid = create(&a, &ctx);
        if oid.0.is_multiple_of(2) {
            break oid;
        }
    };

    a.member_drive(0, 0)
        .register_audit_observer(Box::new(PanickingObserver));

    // Single-shard mutating batch: no two-phase commit, the worker
    // panics mid-sub-batch and its progress extent dies with it.
    let reqs = vec![write_req(even, b"one"), write_req(even2, b"two")];
    let (slots, outcomes) = a.dispatch_batch_outcomes(&ctx, &reqs).unwrap();
    assert!(slots.iter().all(Option::is_none));
    assert_eq!(
        outcomes,
        vec![BatchOutcome {
            shard: 0,
            completed: 0,
            failed_at: 0,
            error: S4Error::BadRequest("array member panicked during dispatch"),
            in_doubt: true,
        }]
    );
}

#[test]
fn ordinary_batch_failure_is_not_in_doubt() {
    let (a, _clock) = array(2, 1);
    let ctx = user();
    let (even, _odd) = one_per_shard(&a, &ctx);
    // A missing even id: same shard as `even`, fails mid-sub-batch with
    // full partial-progress information from the drive.
    let missing = ObjectId(even.0 + 1000);
    let reqs = vec![write_req(even, b"ok"), write_req(missing, b"ghost")];
    let (_slots, outcomes) = a.dispatch_batch_outcomes(&ctx, &reqs).unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].error, S4Error::NoSuchObject);
    assert!(
        !outcomes[0].in_doubt,
        "a drive-reported batch failure carries exact progress"
    );
}
