//! End-to-end behavior of the sharded array: routing, residue-class
//! allocation, scatter-gather, batch splitting, the distributed
//! partition table, aggregated metrics, merged forensics, and the
//! array-backed file system.

use std::sync::Arc;

use s4_array::{shard_of, ArrayConfig, ArrayTransport, S4Array};
use s4_clock::{NetworkModel, SimClock, SimDuration};
use s4_core::rpc::LAST_CREATED;
use s4_core::{
    ClientId, DriveConfig, ObjectId, OpKind, Request, RequestContext, Response, S4Error, UserId,
};
use s4_fs::{FileServer, S4FileServer, S4FsConfig};
use s4_simdisk::MemDisk;

fn disks(n: usize) -> Vec<MemDisk> {
    (0..n).map(|_| MemDisk::with_capacity_bytes(64 << 20)).collect()
}

fn array(n: usize) -> S4Array<MemDisk> {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    S4Array::format(
        disks(n),
        DriveConfig::small_test(),
        ArrayConfig::default(),
        clock,
    )
    .unwrap()
}

fn user() -> RequestContext {
    RequestContext::user(UserId(1), ClientId(1))
}

fn admin() -> RequestContext {
    RequestContext::admin(ClientId(0), 42)
}

fn create(a: &S4Array<MemDisk>, ctx: &RequestContext) -> ObjectId {
    match a.dispatch(ctx, &Request::Create).unwrap() {
        Response::Created(oid) => oid,
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn creates_allocate_in_residue_classes_and_route_home() {
    let a = array(4);
    let ctx = user();
    let mut oids = Vec::new();
    for _ in 0..12 {
        oids.push(create(&a, &ctx));
    }
    // Each drive-assigned id lives in its allocating shard's class, so
    // `oid % 4` routes home; round-robin spreads creates evenly.
    let mut per_shard = [0u32; 4];
    for oid in &oids {
        per_shard[shard_of(*oid, 4)] += 1;
    }
    assert_eq!(per_shard, [3, 3, 3, 3]);

    // Writes and reads land on the owning shard and round-trip.
    for (i, oid) in oids.iter().enumerate() {
        let data = vec![i as u8; 100];
        a.dispatch(
            &ctx,
            &Request::Write {
                oid: *oid,
                offset: 0,
                data: data.clone(),
            },
        )
        .unwrap();
        match a
            .dispatch(
                &ctx,
                &Request::Read {
                    oid: *oid,
                    offset: 0,
                    len: 100,
                    time: None,
                },
            )
            .unwrap()
        {
            Response::Data(d) => assert_eq!(d, data),
            other => panic!("unexpected response {other:?}"),
        }
    }

    // Only the home shard audited the object's operations.
    for oid in &oids {
        let home = shard_of(*oid, 4);
        for s in 0..4 {
            let touched = a
                .shard_drive(s)
                .read_audit_records(&admin())
                .unwrap()
                .iter()
                .any(|r| r.object == *oid);
            assert_eq!(touched, s == home, "oid {oid} on shard {s}");
        }
    }
}

#[test]
fn broadcast_ops_scatter_and_merge() {
    let a = array(3);
    let ctx = user();
    let adm = admin();
    for _ in 0..6 {
        create(&a, &ctx);
    }
    // Sync fans out to every shard and collapses to one Ok.
    assert_eq!(a.dispatch(&ctx, &Request::Sync).unwrap(), Response::Ok);
    for s in 0..3 {
        assert!(a
            .shard_drive(s)
            .read_audit_records(&adm)
            .unwrap()
            .iter()
            .any(|r| r.op == OpKind::Sync));
    }

    // SetWindow applies everywhere; the denied broadcast is denied
    // (and audited) on every shard.
    let w = Request::SetWindow {
        window: SimDuration::from_secs(1800),
    };
    assert!(a.dispatch(&ctx, &w).is_err());
    assert_eq!(a.dispatch(&adm, &w).unwrap(), Response::Ok);

    // Retention flushes sum their per-shard released-block counts
    // (nothing is expired here, so the sum is zero — the shape is
    // what's under test).
    assert_eq!(
        a.dispatch(&adm, &Request::FlushAlerts).unwrap(),
        Response::NewSize(0)
    );
}

#[test]
fn partition_table_is_distributed_across_home_shards() {
    let a = array(4);
    let ctx = user();
    // Roots on different shards, each named on its home shard.
    let roots: Vec<ObjectId> = (0..4).map(|_| create(&a, &ctx)).collect();
    for (i, oid) in roots.iter().enumerate() {
        a.dispatch(
            &ctx,
            &Request::PCreate {
                name: format!("vol{i}"),
                oid: *oid,
            },
        )
        .unwrap();
    }
    // PMount scatters and finds each name wherever it lives.
    for (i, oid) in roots.iter().enumerate() {
        match a
            .dispatch(
                &ctx,
                &Request::PMount {
                    name: format!("vol{i}"),
                    time: None,
                },
            )
            .unwrap()
        {
            Response::Mounted(m) => assert_eq!(m, *oid),
            other => panic!("unexpected response {other:?}"),
        }
    }
    // PList merges every shard's associations, name-sorted.
    match a.dispatch(&ctx, &Request::PList { time: None }).unwrap() {
        Response::Partitions(p) => {
            let names: Vec<&str> = p.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, ["vol0", "vol1", "vol2", "vol3"]);
        }
        other => panic!("unexpected response {other:?}"),
    }
    // PDelete succeeds via whichever shard holds the name, and an
    // unknown name is NoSuchPartition from every shard.
    assert_eq!(
        a.dispatch(&ctx, &Request::PDelete { name: "vol2".into() })
            .unwrap(),
        Response::Ok
    );
    assert!(matches!(
        a.dispatch(&ctx, &Request::PDelete { name: "vol2".into() }),
        Err(S4Error::NoSuchPartition)
    ));
    assert!(matches!(
        a.dispatch(
            &ctx,
            &Request::PMount {
                name: "vol2".into(),
                time: None
            }
        ),
        Err(S4Error::NoSuchPartition)
    ));
}

#[test]
fn batches_split_per_shard_and_follow_last_created() {
    let a = array(2);
    let ctx = user();
    let existing = create(&a, &ctx); // lands on shard 0 (rr)
    let batch = Request::Batch(vec![
        Request::Create, // rr → shard 1
        Request::SetAttr {
            oid: LAST_CREATED,
            attrs: vec![9, 9],
        },
        Request::Write {
            oid: existing,
            offset: 0,
            data: b"cross-shard".to_vec(),
        },
        Request::Append {
            oid: LAST_CREATED,
            data: b"tail".to_vec(),
        },
        Request::Sync,
    ]);
    let rs = match a.dispatch(&ctx, &batch).unwrap() {
        Response::Batch(rs) => rs,
        other => panic!("unexpected response {other:?}"),
    };
    assert_eq!(rs.len(), 5);
    let new_oid = match rs[0] {
        Response::Created(oid) => oid,
        ref other => panic!("unexpected response {other:?}"),
    };
    assert_ne!(
        shard_of(new_oid, 2),
        shard_of(existing, 2),
        "batch spanned both shards"
    );
    assert_eq!(rs[1], Response::Ok);
    assert_eq!(rs[2], Response::Ok);
    assert_eq!(rs[3], Response::NewSize(4));
    assert_eq!(rs[4], Response::Ok, "sync collapses to one response");

    // The batch's effects are visible on both shards.
    match a
        .dispatch(
            &ctx,
            &Request::Read {
                oid: new_oid,
                offset: 0,
                len: 4,
                time: None,
            },
        )
        .unwrap()
    {
        Response::Data(d) => assert_eq!(d, b"tail"),
        other => panic!("unexpected response {other:?}"),
    }

    // Broadcast admin ops are not batchable in an array.
    assert!(a
        .dispatch(&ctx, &Request::Batch(vec![Request::FlushAlerts]))
        .is_err());
}

#[test]
fn metrics_aggregate_across_shards() {
    let a = array(2);
    let ctx = user();
    let oids: Vec<ObjectId> = (0..4).map(|_| create(&a, &ctx)).collect();
    for oid in &oids {
        a.dispatch(
            &ctx,
            &Request::Write {
                oid: *oid,
                offset: 0,
                data: vec![1; 64],
            },
        )
        .unwrap();
    }
    let per_shard: u64 = (0..2)
        .map(|s| {
            a.shard_drive(s)
                .registry()
                .counter_values()
                .iter()
                .find(|(n, _)| n == "s4_requests_total")
                .map(|(_, v)| *v)
                .unwrap_or(0)
        })
        .sum();
    assert!(per_shard >= 8, "both shards served requests: {per_shard}");

    let json = a.metrics_json();
    assert!(json.starts_with("{\"shards\":2,"));
    assert!(json.contains("\"shard_metrics\":["));
    assert!(json.contains("\"aggregate\":"));
    assert!(
        json.contains(&format!("\"s4_requests_total\":{per_shard}")),
        "aggregate sums shard counters"
    );
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    let text = a.metrics_text();
    assert!(text.contains("s4_array_shards 2"));
    assert!(text.contains("s4_requests_total{shard=\"0\"}"));
    assert!(text.contains("s4_requests_total{shard=\"1\"}"));
    assert!(text.contains(&format!("\ns4_requests_total {per_shard}\n")));
}

#[test]
fn merged_audit_is_time_sorted_and_shard_tagged() {
    let a = array(2);
    let ctx = user();
    let adm = admin();
    let oids: Vec<ObjectId> = (0..4).map(|_| create(&a, &ctx)).collect();
    for oid in &oids {
        a.dispatch(
            &ctx,
            &Request::Write {
                oid: *oid,
                offset: 0,
                data: vec![2; 16],
            },
        )
        .unwrap();
    }
    a.dispatch(&ctx, &Request::Sync).unwrap();

    let merged = a.read_audit_merged(&adm).unwrap();
    assert!(merged.iter().any(|r| r.shard == 0));
    assert!(merged.iter().any(|r| r.shard == 1));
    for w in merged.windows(2) {
        assert!(w[0].record.time <= w[1].record.time, "merge is time-sorted");
    }
    // The merged stream contains exactly the per-shard streams.
    for s in 0..2 {
        let own: Vec<_> = merged
            .iter()
            .filter(|r| r.shard == s)
            .map(|r| r.record)
            .collect();
        assert_eq!(own, a.shard_drive(s).read_audit_records(&adm).unwrap());
    }
    // Object timelines resolve on the object's home shard.
    let events = a.object_timeline(&adm, oids[0]).unwrap();
    assert!(!events.is_empty());
}

#[test]
fn array_survives_unmount_and_remount() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let a = S4Array::format(
        disks(3),
        DriveConfig::small_test(),
        ArrayConfig::default(),
        clock.clone(),
    )
    .unwrap();
    let ctx = user();
    let mut written = Vec::new();
    for i in 0..9u8 {
        let oid = create(&a, &ctx);
        a.dispatch(
            &ctx,
            &Request::Write {
                oid,
                offset: 0,
                data: vec![i; 32],
            },
        )
        .unwrap();
        written.push((oid, vec![i; 32]));
    }
    a.dispatch(&ctx, &Request::Sync).unwrap();
    let devices = a.unmount().unwrap();

    let (a2, reports) = S4Array::mount(
        devices,
        DriveConfig::small_test(),
        ArrayConfig::default(),
        SimClock::new(),
    )
    .unwrap();
    assert_eq!(reports.len(), 3, "recovery is per shard");
    for (oid, data) in &written {
        match a2
            .dispatch(
                &ctx,
                &Request::Read {
                    oid: *oid,
                    offset: 0,
                    len: 32,
                    time: None,
                },
            )
            .unwrap()
        {
            Response::Data(d) => assert_eq!(&d, data),
            other => panic!("unexpected response {other:?}"),
        }
    }
}

#[test]
fn file_system_runs_array_backed() {
    let a = Arc::new(array(4));
    let transport = ArrayTransport::new(a.clone(), NetworkModel::lan_100mbit());
    let fs = S4FileServer::mount(transport, user(), "vol", S4FsConfig::default()).unwrap();
    let root = fs.root();
    let dir = fs.mkdir(root, "docs").unwrap();
    let mut handles = Vec::new();
    for i in 0..8 {
        let f = fs.create(dir, &format!("file{i}")).unwrap();
        fs.write(f, 0, format!("payload {i}").as_bytes()).unwrap();
        handles.push(f);
    }
    // Directory entries resolve while payloads live on many shards.
    let spread: std::collections::BTreeSet<usize> = handles
        .iter()
        .map(|h| shard_of(ObjectId(*h), 4))
        .collect();
    assert!(spread.len() >= 2, "files spread across shards: {spread:?}");
    for (i, f) in handles.iter().enumerate() {
        assert_eq!(
            fs.read(*f, 0, 100).unwrap(),
            format!("payload {i}").into_bytes()
        );
        assert_eq!(fs.lookup(dir, &format!("file{i}")).unwrap(), *f);
    }
    let listing = fs.readdir(dir).unwrap();
    assert_eq!(listing.len(), 8);
}

#[test]
fn config_validation_rejects_degenerate_shapes() {
    let clock = SimClock::new();
    let zero_mirrors = ArrayConfig {
        mirrors: 0,
        ..ArrayConfig::default()
    };
    assert!(matches!(
        S4Array::format(disks(4), DriveConfig::small_test(), zero_mirrors, clock.clone()),
        Err(S4Error::BadRequest(m)) if m.contains("mirrors")
    ));
    let zero_queue = ArrayConfig {
        queue_depth: 0,
        ..ArrayConfig::default()
    };
    assert!(matches!(
        S4Array::format(disks(4), DriveConfig::small_test(), zero_queue, clock.clone()),
        Err(S4Error::BadRequest(m)) if m.contains("queue depth")
    ));
    assert!(matches!(
        S4Array::mount(disks(4), DriveConfig::small_test(), zero_mirrors, clock.clone()),
        Err(S4Error::BadRequest(m)) if m.contains("mirrors")
    ));
    // The epoch bitmap tracks at most 64 source slots per generation,
    // so shard counts beyond 64 are rejected up front instead of
    // becoming unsplittable arrays (or worker panics).
    assert!(matches!(
        S4Array::format(disks(65), DriveConfig::small_test(), ArrayConfig::default(), clock),
        Err(S4Error::BadRequest(m)) if m.contains("64 shards")
    ));
}

#[test]
fn reserved_partition_namespace_is_invisible_to_clients() {
    let a = array(2);
    let ctx = user();
    let oid = create(&a, &ctx);
    // Clients cannot create, delete, or resolve `__s4/…` names…
    assert!(matches!(
        a.dispatch(&ctx, &Request::PCreate { name: "__s4/x".into(), oid }),
        Err(S4Error::BadRequest(_))
    ));
    assert!(matches!(
        a.dispatch(&ctx, &Request::PDelete { name: "__s4/x".into() }),
        Err(S4Error::BadRequest(_))
    ));
    assert!(matches!(
        a.dispatch(&admin(), &Request::PMount { name: "__s4/epoch/1/2/0".into(), time: None }),
        Err(S4Error::NoSuchPartition)
    ));
    // …and the epoch note the array persists for itself never shows up
    // in a merged listing, while real partitions do.
    a.dispatch(&ctx, &Request::PCreate { name: "vol".into(), oid }).unwrap();
    match a.dispatch(&ctx, &Request::PList { time: None }).unwrap() {
        Response::Partitions(list) => {
            assert_eq!(list.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(), vec!["vol"]);
        }
        other => panic!("unexpected response {other:?}"),
    }
}
