//! Mirrored-shard fault tolerance: member death mid-workload with zero
//! client-visible errors, degraded-mode surfacing (gauge + alert),
//! online resync of a replacement member, the read-only fallback for
//! unmirrored shards, transient-fault retry, worker panic containment,
//! and per-shard partial batch outcomes (DESIGN §6f/§6g).

use s4_array::{ArrayConfig, BatchOutcome, MemberState, S4Array};
use s4_clock::{SimClock, SimDuration};
use s4_core::{
    AuditObserver, AuditRecord, ClientId, DriveConfig, ObjectId, Request, RequestContext, Response,
    S4Error, UserId,
};
use s4_simdisk::{FaultPlan, FaultyDisk, MemDisk, RequestClassMask};

type Disk = FaultyDisk<MemDisk>;

fn clean_disk() -> Disk {
    FaultyDisk::new(MemDisk::with_capacity_bytes(64 << 20), FaultPlan::none())
}

fn user() -> RequestContext {
    RequestContext::user(UserId(1), ClientId(1))
}

fn admin() -> RequestContext {
    RequestContext::admin(ClientId(0), 42)
}

fn mirrored(mirrors: usize) -> ArrayConfig {
    ArrayConfig {
        mirrors,
        ..ArrayConfig::default()
    }
}

fn create(a: &S4Array<Disk>, ctx: &RequestContext) -> ObjectId {
    match a.dispatch(ctx, &Request::Create).unwrap() {
        Response::Created(oid) => oid,
        other => panic!("unexpected response {other:?}"),
    }
}

fn write(a: &S4Array<Disk>, ctx: &RequestContext, oid: ObjectId, data: &[u8]) {
    a.dispatch(
        ctx,
        &Request::Write {
            oid,
            offset: 0,
            data: data.to_vec(),
        },
    )
    .unwrap();
}

fn read(a: &S4Array<Disk>, ctx: &RequestContext, oid: ObjectId, len: u64) -> Vec<u8> {
    match a
        .dispatch(
            ctx,
            &Request::Read {
                oid,
                offset: 0,
                len,
                time: None,
            },
        )
        .unwrap()
    {
        Response::Data(d) => d,
        other => panic!("unexpected response {other:?}"),
    }
}

/// True if any alert blob on any shard carries the given rule name.
fn has_alert(a: &S4Array<Disk>, rule: &[u8]) -> bool {
    a.read_alerts_merged(&admin())
        .unwrap()
        .iter()
        .any(|s| s.record.windows(rule.len()).any(|w| w == rule))
}

/// Formats a mirrored array on clean devices, then remounts it with
/// `plans[i]` armed on device `i` — faults must not fire during format,
/// and `FaultyDisk` counters restart at zero on the remount wrapper, so
/// the plans' thresholds count post-mount disk requests only.
fn array_with_plans(
    shards: usize,
    mirrors: usize,
    clock: &SimClock,
    plans: Vec<FaultPlan>,
) -> S4Array<Disk> {
    assert_eq!(plans.len(), shards * mirrors);
    let devices = (0..shards * mirrors).map(|_| clean_disk()).collect();
    let a = S4Array::format(
        devices,
        DriveConfig::small_test(),
        mirrored(mirrors),
        clock.clone(),
    )
    .unwrap();
    let devices = a.unmount().unwrap();
    let devices = devices
        .into_iter()
        .zip(plans)
        .map(|(d, plan)| FaultyDisk::new(d.into_inner(), plan))
        .collect();
    let (a, _) = S4Array::mount(
        devices,
        DriveConfig::small_test(),
        mirrored(mirrors),
        clock.clone(),
    )
    .unwrap();
    a
}

/// All-InSync digests must agree member-to-member within every shard.
fn assert_mirrors_converged(a: &S4Array<Disk>) {
    let adm = admin();
    for s in 0..a.shard_count() {
        let first = a.member_drive(s, 0);
        let ids = first.live_object_ids(&adm).unwrap();
        for k in 1..a.mirror_count() {
            let other = a.member_drive(s, k);
            assert_eq!(ids, other.live_object_ids(&adm).unwrap(), "shard {s} object sets");
            for &oid in &ids {
                assert_eq!(
                    first.object_digest(&adm, ObjectId(oid)).unwrap(),
                    other.object_digest(&adm, ObjectId(oid)).unwrap(),
                    "shard {s} object {oid} diverged between mirrors"
                );
            }
            assert_eq!(
                first.read_audit_records(&adm).unwrap(),
                other.read_audit_records(&adm).unwrap(),
                "shard {s} audit streams diverged"
            );
        }
    }
}

#[test]
fn member_death_mid_workload_is_invisible_to_clients() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    // Shard 0, member 0 dies after a handful of post-mount disk writes;
    // everyone else stays healthy.
    let mut plans = vec![FaultPlan::none(); 4];
    plans[0] = FaultPlan::member_death_after_requests(5, RequestClassMask::WRITES);
    let a = array_with_plans(2, 2, &clock, plans);
    let ctx = user();

    // Mixed workload: every operation must succeed from the client's
    // point of view even as the member dies mid-stream.
    let mut oids = Vec::new();
    for i in 0..8u8 {
        let oid = create(&a, &ctx);
        write(&a, &ctx, oid, &[i; 64]);
        oids.push(oid);
        a.dispatch(&ctx, &Request::Sync).unwrap();
    }
    for (i, &oid) in oids.iter().enumerate() {
        assert_eq!(read(&a, &ctx, oid, 64), vec![i as u8; 64]);
    }

    // The victim is dead, the shard degraded, and the survivor serves.
    assert_eq!(a.member_states()[0][0], MemberState::Dead);
    assert_eq!(a.member_states()[0][1], MemberState::InSync);
    assert!(a.shard_degraded(0));
    assert!(!a.shard_degraded(1));

    // Degraded mode is surfaced: gauge in the metrics exposition and an
    // alert on the survivor's tamper-evident stream.
    let metrics = a.metrics_text();
    assert!(metrics.contains("s4_array_degraded{shard=\"0\"} 1"), "{metrics}");
    assert!(metrics.contains("s4_array_degraded{shard=\"1\"} 0"), "{metrics}");
    assert!(metrics.contains("s4_array_mirrors 2"), "{metrics}");
    assert!(has_alert(&a, b"array-degraded"));
    let json = a.metrics_json();
    assert!(json.contains("\"degraded\":[1,0]"), "{json}");
}

#[test]
fn resync_restores_redundancy_and_mirrors_reconverge() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let mut plans = vec![FaultPlan::none(); 4];
    plans[2] = FaultPlan::member_death_after_requests(5, RequestClassMask::WRITES);
    let a = array_with_plans(2, 2, &clock, plans);
    let ctx = user();

    let mut oids = Vec::new();
    for i in 0..8u8 {
        let oid = create(&a, &ctx);
        write(&a, &ctx, oid, &[i; 32]);
        oids.push(oid);
        a.dispatch(&ctx, &Request::Sync).unwrap();
    }
    assert_eq!(a.member_states()[1][0], MemberState::Dead);

    // Replace the dead member with a fresh device; resync verifies the
    // replica object-by-object before promoting it.
    a.resync_member(1, 0, clean_disk()).unwrap();
    assert_eq!(
        a.member_states(),
        vec![
            vec![MemberState::InSync, MemberState::InSync],
            vec![MemberState::InSync, MemberState::InSync],
        ]
    );
    assert!(!a.shard_degraded(1));
    assert!(a.metrics_text().contains("s4_array_degraded{shard=\"1\"} 0"));
    assert!(has_alert(&a, b"array-resync"));
    assert_mirrors_converged(&a);

    // The rebuilt member tracks new mutations like any other mirror.
    for &oid in &oids {
        write(&a, &ctx, oid, b"post-resync contents");
    }
    a.dispatch(&ctx, &Request::Sync).unwrap();
    assert_mirrors_converged(&a);
    for &oid in &oids {
        assert_eq!(read(&a, &ctx, oid, 20), b"post-resync contents");
    }
}

#[test]
fn lone_member_falls_back_to_read_only_and_resyncs_in_place() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    // Unmirrored shard whose every post-mount disk write fails: the
    // worker exhausts its retries and the sole member degrades to
    // read-only instead of dying.
    let plans = vec![FaultPlan::intermittent_io(0, 1, RequestClassMask::WRITES)];
    let a = array_with_plans(1, 1, &clock, plans);
    let ctx = user();

    // Mutations buffer in memory; forcing them to disk exhausts the
    // retries and trips the fallback.
    let err = match a.dispatch(&ctx, &Request::Create) {
        Ok(_) => a
            .dispatch(&ctx, &Request::Sync)
            .expect_err("sync cannot persist"),
        Err(e) => e,
    };
    assert!(err.disk_fault().is_some(), "unexpected error {err:?}");
    assert_eq!(a.member_states()[0][0], MemberState::ReadOnly);
    assert!(a.shard_degraded(0));
    assert!(has_alert(&a, b"array-degraded"));

    // Further mutations are refused up front; reads still succeed.
    assert_eq!(
        a.dispatch(&ctx, &Request::Create),
        Err(S4Error::BadRequest("array shard is read-only (degraded)"))
    );
    assert_eq!(
        a.dispatch(&ctx, &Request::PList { time: None }).unwrap(),
        Response::Partitions(vec![])
    );

    // In-place replacement: the read-only member is its own resync
    // source; the rebuilt drive lands on a healthy device and the shard
    // becomes writable again.
    a.resync_member(0, 0, clean_disk()).unwrap();
    assert_eq!(a.member_states()[0][0], MemberState::InSync);
    assert!(!a.shard_degraded(0));
    let oid = create(&a, &ctx);
    write(&a, &ctx, oid, b"healthy again");
    assert_eq!(read(&a, &ctx, oid, 13), b"healthy again");
}

#[test]
fn transient_faults_are_retried_without_client_errors() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    // One early transient I/O error (period far beyond the workload's
    // write count, so it fires exactly once per long stretch): bounded
    // retry absorbs it and the member stays in sync.
    let plans = vec![FaultPlan::intermittent_io(0, 100_000, RequestClassMask::WRITES)];
    let a = array_with_plans(1, 1, &clock, plans);
    let ctx = user();

    let before = clock.now();
    let oid = create(&a, &ctx);
    write(&a, &ctx, oid, b"retried write");
    a.dispatch(&ctx, &Request::Sync).unwrap();
    assert_eq!(read(&a, &ctx, oid, 13), b"retried write");
    assert_eq!(a.member_states()[0][0], MemberState::InSync);
    assert!(!a.shard_degraded(0));
    // The retry charged its backoff to the simulated clock.
    assert!(clock.now() > before);
}

/// An audit observer that panics on every record — stands in for a
/// buggy detection rule wedging one member's dispatch path.
struct PanickingObserver;

impl AuditObserver for PanickingObserver {
    fn on_record(&mut self, _rec: &AuditRecord) -> Vec<Vec<u8>> {
        panic!("detector bug");
    }
}

#[test]
fn member_panic_is_contained_and_marked_dead() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let a = array_with_plans(1, 2, &clock, vec![FaultPlan::none(); 2]);
    let ctx = user();

    a.member_drive(0, 0)
        .register_audit_observer(Box::new(PanickingObserver));

    // The panic is contained to the faulty member: the client's request
    // succeeds via the healthy mirror and nothing deadlocks.
    let oid = create(&a, &ctx);
    write(&a, &ctx, oid, b"after panic");
    assert_eq!(read(&a, &ctx, oid, 11), b"after panic");
    assert_eq!(a.member_states()[0][0], MemberState::Dead);
    assert_eq!(a.member_states()[0][1], MemberState::InSync);
    assert!(a.shard_degraded(0));
    assert!(has_alert(&a, b"array-degraded"));

    // A fresh replacement brings the shard back to full redundancy.
    a.resync_member(0, 0, clean_disk()).unwrap();
    assert_eq!(a.member_states()[0][0], MemberState::InSync);
    assert_mirrors_converged(&a);
}

#[test]
fn batch_outcomes_map_failures_to_original_indices() {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let a = array_with_plans(2, 1, &clock, vec![FaultPlan::none(); 2]);
    let ctx = user();

    // One object per shard so the batch genuinely splits.
    let (mut even, mut odd) = (None, None);
    while even.is_none() || odd.is_none() {
        let oid = create(&a, &ctx);
        if oid.0.is_multiple_of(2) {
            even.get_or_insert(oid);
        } else {
            odd.get_or_insert(oid);
        }
    }
    let (even, odd) = (even.unwrap(), odd.unwrap());
    // An odd id that was never allocated: routes to shard 1, fails there.
    let missing = ObjectId(odd.0 + 1000);

    let reqs = vec![
        Request::Write {
            oid: even,
            offset: 0,
            data: b"even".to_vec(),
        },
        Request::Write {
            oid: missing,
            offset: 0,
            data: b"ghost".to_vec(),
        },
        Request::Write {
            oid: odd,
            offset: 0,
            data: b"odd".to_vec(),
        },
    ];

    // The fine-grained surface: a multi-shard mutating batch runs as
    // one two-phase-commit transaction, so the failure on shard 1
    // rolls shard 0 back too — every slot empty, one outcome in the
    // original batch's coordinates, nothing in doubt.
    let (slots, outcomes) = a.dispatch_batch_outcomes(&ctx, &reqs).unwrap();
    assert_eq!(slots.len(), 3);
    assert!(slots.iter().all(Option::is_none), "aborted batch leaves no responses");
    assert_eq!(
        outcomes,
        vec![BatchOutcome {
            shard: 1,
            completed: 0,
            failed_at: 1,
            error: S4Error::NoSuchObject,
            in_doubt: false,
        }]
    );

    // The coarse surface aggregates the same information into one
    // BatchFailed error with the earliest failing original index.
    match a.dispatch(&ctx, &Request::Batch(reqs)).unwrap_err() {
        S4Error::BatchFailed {
            completed,
            failed_at,
            error,
        } => {
            assert_eq!(failed_at, 1);
            assert_eq!(*error, S4Error::NoSuchObject);
            assert_eq!(completed, 0, "the rollback undid every shard");
        }
        other => panic!("unexpected error {other:?}"),
    }

    // All-or-nothing: the even write was rolled back with the batch.
    assert_eq!(read(&a, &ctx, even, 4), b"");
    assert_mirrors_converged(&a);
}
