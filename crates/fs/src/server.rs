//! The [`FileServer`] trait: the NFSv2-style operation set every
//! benchmarked system implements.
//!
//! The paper compares four servers (two S4 configurations, FreeBSD NFS,
//! Linux NFS-sync) under identical workloads. Expressing the NFS op set
//! as a trait lets the workload replayer drive any of them through the
//! same code path.

use core::fmt;

use s4_clock::SimTime;

/// An NFS-style file handle. For the S4 backend this is the ObjectID
/// (§4.1.2: "the NFS file handle can be directly hashed into the
/// ObjectID").
pub type Handle = u64;

/// File type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
    /// Symbolic link.
    Symlink,
}

/// Attributes returned by `getattr`-style operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileAttr {
    /// File type.
    pub kind: FileKind,
    /// Size in bytes.
    pub size: u64,
    /// Last modification (simulated time).
    pub mtime: SimTime,
    /// Unix-style mode bits (informational).
    pub mode: u16,
}

/// Errors surfaced by file servers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// Name not found in directory.
    NotFound,
    /// Name already exists.
    Exists,
    /// Operation applied to the wrong file type.
    NotADirectory,
    /// Directory not empty on rmdir.
    NotEmpty,
    /// Permission denied by the storage layer.
    Denied,
    /// The server's storage failed.
    Storage(String),
    /// Bad argument (name too long, bad handle).
    Invalid(&'static str),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::Exists => write!(f, "file exists"),
            FsError::NotADirectory => write!(f, "not a directory"),
            FsError::NotEmpty => write!(f, "directory not empty"),
            FsError::Denied => write!(f, "permission denied"),
            FsError::Storage(e) => write!(f, "storage failure: {e}"),
            FsError::Invalid(why) => write!(f, "invalid argument: {why}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Result alias for file-server operations.
pub type FsResult<T> = std::result::Result<T, FsError>;

/// The NFSv2-style operation set.
pub trait FileServer {
    /// Handle of the exported root directory.
    fn root(&self) -> Handle;

    /// Resolves `name` within directory `dir`.
    fn lookup(&self, dir: Handle, name: &str) -> FsResult<Handle>;

    /// Creates a regular file.
    fn create(&self, dir: Handle, name: &str) -> FsResult<Handle>;

    /// Creates a directory.
    fn mkdir(&self, dir: Handle, name: &str) -> FsResult<Handle>;

    /// Creates a symbolic link holding `target`.
    fn symlink(&self, dir: Handle, name: &str, target: &str) -> FsResult<Handle>;

    /// Reads a symlink's target.
    fn readlink(&self, file: Handle) -> FsResult<String>;

    /// Reads up to `len` bytes at `offset`.
    fn read(&self, file: Handle, offset: u64, len: u64) -> FsResult<Vec<u8>>;

    /// Writes `data` at `offset` (durable on return, per NFSv2).
    fn write(&self, file: Handle, offset: u64, data: &[u8]) -> FsResult<()>;

    /// Returns attributes.
    fn getattr(&self, file: Handle) -> FsResult<FileAttr>;

    /// Truncates the file to `size` (the `setattr(size)` NFS path).
    fn truncate(&self, file: Handle, size: u64) -> FsResult<()>;

    /// Removes a regular file or symlink.
    fn remove(&self, dir: Handle, name: &str) -> FsResult<()>;

    /// Removes an empty directory.
    fn rmdir(&self, dir: Handle, name: &str) -> FsResult<()>;

    /// Renames within/between directories.
    fn rename(
        &self,
        from_dir: Handle,
        from_name: &str,
        to_dir: Handle,
        to_name: &str,
    ) -> FsResult<()>;

    /// Lists a directory.
    fn readdir(&self, dir: Handle) -> FsResult<Vec<(String, Handle, FileKind)>>;

    /// Current simulated time at the server (benchmarks measure in this
    /// timeline).
    fn now(&self) -> SimTime;

    /// Resolves a `/`-separated path from the root. Provided for tools
    /// and tests.
    fn resolve_path(&self, path: &str) -> FsResult<Handle> {
        let mut h = self.root();
        for part in path.split('/').filter(|p| !p.is_empty()) {
            h = self.lookup(h, part)?;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
        assert_eq!(
            FsError::Storage("disk died".into()).to_string(),
            "storage failure: disk died"
        );
    }
}
