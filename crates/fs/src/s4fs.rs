//! [`S4FileServer`]: the S4 client, translating NFS-style operations
//! into S4 RPCs (§4.1.2).
//!
//! * Files, directories, and symlinks are overlaid on objects; a
//!   directory object's data is its entry table, a symlink object's data
//!   is its target.
//! * The NFS file handle *is* the ObjectID.
//! * The file type and mode live in the object's opaque attribute space.
//! * After every state-modifying operation the client sends a `Sync` RPC
//!   ("since this RPC does not return until the synchronization is
//!   complete, NFSv2 semantics are supported even though the drive
//!   normally caches writes").
//! * Read-only attribute and directory caches absorb repeat lookups.
//!
//! Time-travel variants (`*_at`) expose the drive's time-based access for
//! the recovery tools; they bypass the caches.

use std::collections::HashMap;

use s4_clock::sync::Mutex;

use s4_clock::SimTime;
use s4_core::{ObjectId, Request, RequestContext, Response};

use crate::server::{FileAttr, FileKind, FileServer, FsError, FsResult, Handle};
use crate::transport::Transport;

/// Translator configuration.
#[derive(Clone, Copy, Debug)]
pub struct S4FsConfig {
    /// Send `Sync` after every mutating operation (NFSv2 semantics).
    pub sync_per_op: bool,
    /// Serve repeated `getattr` calls from a read-only cache.
    pub attr_cache: bool,
    /// Serve repeated directory reads from a read-only cache.
    pub dir_cache: bool,
    /// Combine the drive operations of one file-system operation into a
    /// single batched RPC (§4.1.2: "the drive also supports batching of
    /// setattr, getattr, and sync operations with create, read, write,
    /// and append operations ... to minimize the number of RPC calls").
    pub batch_rpcs: bool,
}

impl Default for S4FsConfig {
    fn default() -> Self {
        S4FsConfig {
            sync_per_op: true,
            attr_cache: true,
            dir_cache: true,
            batch_rpcs: true,
        }
    }
}

#[derive(Default)]
struct Caches {
    attr: HashMap<Handle, FileAttr>,
    dir: HashMap<Handle, Vec<(String, Handle, FileKind)>>,
}

/// The S4 client / NFS translator.
pub struct S4FileServer<T: Transport> {
    transport: T,
    ctx: RequestContext,
    root: Handle,
    config: S4FsConfig,
    caches: Mutex<Caches>,
}

const DIR_ENTRY_OVERHEAD: usize = 11;

fn encode_dir(entries: &[(String, Handle, FileKind)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + entries.len() * 24);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, h, kind) in entries {
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&h.to_le_bytes());
        out.push(match kind {
            FileKind::File => 1,
            FileKind::Dir => 2,
            FileKind::Symlink => 3,
        });
    }
    out
}

fn decode_dir(data: &[u8]) -> FsResult<Vec<(String, Handle, FileKind)>> {
    if data.is_empty() {
        return Ok(Vec::new());
    }
    if data.len() < 4 {
        return Err(FsError::Storage("directory blob truncated".into()));
    }
    let n = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
    let mut pos = 4;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if pos + 2 > data.len() {
            return Err(FsError::Storage("directory entry truncated".into()));
        }
        let nl = u16::from_le_bytes(data[pos..pos + 2].try_into().unwrap()) as usize;
        pos += 2;
        if pos + nl + 9 > data.len() {
            return Err(FsError::Storage("directory name truncated".into()));
        }
        let name = String::from_utf8(data[pos..pos + nl].to_vec())
            .map_err(|_| FsError::Storage("directory name utf8".into()))?;
        pos += nl;
        let h = u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap());
        pos += 8;
        let kind = match data[pos] {
            1 => FileKind::File,
            2 => FileKind::Dir,
            3 => FileKind::Symlink,
            _ => return Err(FsError::Storage("directory entry kind".into())),
        };
        pos += 1;
        out.push((name, h, kind));
    }
    let _ = DIR_ENTRY_OVERHEAD;
    Ok(out)
}

fn encode_fattr(kind: FileKind, mode: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(3);
    out.push(match kind {
        FileKind::File => 1,
        FileKind::Dir => 2,
        FileKind::Symlink => 3,
    });
    out.extend_from_slice(&mode.to_le_bytes());
    out
}

fn decode_fattr(blob: &[u8]) -> (FileKind, u16) {
    if blob.len() < 3 {
        return (FileKind::File, 0o644);
    }
    let kind = match blob[0] {
        2 => FileKind::Dir,
        3 => FileKind::Symlink,
        _ => FileKind::File,
    };
    (kind, u16::from_le_bytes(blob[1..3].try_into().unwrap()))
}

impl<T: Transport> S4FileServer<T> {
    /// Mounts the file system exported under `partition`, creating it (an
    /// empty root directory) if the partition does not exist yet.
    pub fn mount(
        transport: T,
        ctx: RequestContext,
        partition: &str,
        config: S4FsConfig,
    ) -> FsResult<Self> {
        let root = match transport.call(
            &ctx,
            &Request::PMount {
                name: partition.into(),
                time: None,
            },
        ) {
            Ok(Response::Mounted(oid)) => oid.0,
            Ok(other) => return Err(FsError::Storage(format!("bad PMount response {other:?}"))),
            Err(FsError::NotFound) => {
                // First mount: create the root directory object.
                let oid = match transport.call(&ctx, &Request::Create)? {
                    Response::Created(oid) => oid,
                    other => {
                        return Err(FsError::Storage(format!("bad Create response {other:?}")))
                    }
                };
                transport.call(
                    &ctx,
                    &Request::SetAttr {
                        oid,
                        attrs: encode_fattr(FileKind::Dir, 0o755),
                    },
                )?;
                transport.call(
                    &ctx,
                    &Request::PCreate {
                        name: partition.into(),
                        oid,
                    },
                )?;
                transport.call(&ctx, &Request::Sync)?;
                oid.0
            }
            Err(e) => return Err(e),
        };
        Ok(S4FileServer {
            transport,
            ctx,
            root,
            config,
            caches: Mutex::new(Caches::default()),
        })
    }

    /// The transport (and through it, the drive for loopback setups).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Consumes the file server, returning its transport (used to unmount
    /// the underlying drive cleanly).
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// The request context this client stamps on RPCs.
    pub fn context(&self) -> &RequestContext {
        &self.ctx
    }

    fn call(&self, req: &Request) -> FsResult<Response> {
        self.transport.call(&self.ctx, req)
    }

    fn sync_if_configured(&self) -> FsResult<()> {
        if self.config.sync_per_op {
            self.call(&Request::Sync)?;
        }
        Ok(())
    }

    /// Runs a mutating operation's drive requests, appending the NFSv2
    /// per-op Sync, as one batched RPC when configured (one network round
    /// trip) or as individual calls otherwise. Returns the sub-responses
    /// (exclusive of the Sync).
    fn run_mutation(&self, reqs: Vec<Request>) -> FsResult<Vec<Response>> {
        self.run_requests(reqs, true)
    }

    /// Like [`Self::run_mutation`] but lets multi-step operations defer
    /// the Sync to their final batch (one durable point per NFS op).
    fn run_requests(&self, mut reqs: Vec<Request>, sync: bool) -> FsResult<Vec<Response>> {
        let n = reqs.len();
        if sync && self.config.sync_per_op {
            reqs.push(Request::Sync);
        }
        if self.config.batch_rpcs && reqs.len() > 1 {
            match self.call(&Request::Batch(reqs))? {
                Response::Batch(mut rs) => {
                    rs.truncate(n);
                    Ok(rs)
                }
                other => Err(FsError::Storage(format!("bad Batch response {other:?}"))),
            }
        } else {
            let mut out = Vec::with_capacity(n);
            for r in &reqs {
                out.push(self.call(r)?);
            }
            out.truncate(n);
            Ok(out)
        }
    }

    /// Builds the Write/Truncate requests that update a directory's entry
    /// table from `old_entries` to `entries`, touching only the changed
    /// 4 KiB blocks. The caller refreshes the caches once the requests
    /// succeed.
    fn dir_update_requests(
        dir: Handle,
        old_entries: &[(String, Handle, FileKind)],
        entries: &[(String, Handle, FileKind)],
    ) -> Vec<Request> {
        const BS: usize = 4096;
        let old_blob = encode_dir(old_entries);
        let blob = encode_dir(entries);
        let blocks = blob.len().div_ceil(BS).max(old_blob.len().div_ceil(BS));
        let mut reqs = Vec::new();
        for b in 0..blocks {
            let lo = b * BS;
            if lo >= blob.len() {
                break; // covered by the truncate below
            }
            let hi = (lo + BS).min(blob.len());
            let old_hi = (lo + BS).min(old_blob.len());
            let unchanged = lo < old_blob.len()
                && old_hi - lo == hi - lo
                && old_blob[lo..old_hi] == blob[lo..hi];
            if unchanged {
                continue;
            }
            reqs.push(Request::Write {
                oid: ObjectId(dir),
                offset: lo as u64,
                data: blob[lo..hi].to_vec(),
            });
        }
        if old_blob.len() > blob.len() {
            reqs.push(Request::Truncate {
                oid: ObjectId(dir),
                len: blob.len() as u64,
            });
        }
        reqs
    }

    fn refresh_dir_caches(&self, dir: Handle, entries: &[(String, Handle, FileKind)]) {
        let mut caches = self.caches.lock();
        caches.attr.remove(&dir);
        if self.config.dir_cache {
            caches.dir.insert(dir, entries.to_vec());
        }
    }

    fn read_object(
        &self,
        h: Handle,
        offset: u64,
        len: u64,
        time: Option<SimTime>,
    ) -> FsResult<Vec<u8>> {
        match self.call(&Request::Read {
            oid: ObjectId(h),
            offset,
            len,
            time,
        })? {
            Response::Data(d) => Ok(d),
            other => Err(FsError::Storage(format!("bad Read response {other:?}"))),
        }
    }

    fn getattr_raw(&self, h: Handle, time: Option<SimTime>) -> FsResult<FileAttr> {
        match self.call(&Request::GetAttr {
            oid: ObjectId(h),
            time,
        })? {
            Response::Attrs(a) => {
                let (kind, mode) = decode_fattr(&a.opaque);
                Ok(FileAttr {
                    kind,
                    size: a.size,
                    mtime: a.modified,
                    mode,
                })
            }
            other => Err(FsError::Storage(format!("bad GetAttr response {other:?}"))),
        }
    }

    fn load_dir(&self, dir: Handle) -> FsResult<Vec<(String, Handle, FileKind)>> {
        if self.config.dir_cache {
            if let Some(hit) = self.caches.lock().dir.get(&dir) {
                return Ok(hit.clone());
            }
        }
        let attr = self.getattr_cached(dir)?;
        if attr.kind != FileKind::Dir {
            return Err(FsError::NotADirectory);
        }
        let blob = self.read_object(dir, 0, attr.size, None)?;
        let entries = decode_dir(&blob)?;
        if self.config.dir_cache {
            self.caches.lock().dir.insert(dir, entries.clone());
        }
        Ok(entries)
    }

    /// Writes a directory's entry table back, touching only the 4 KiB
    /// blocks that actually changed (as a real file system updates only
    /// the affected directory blocks; rewriting the whole table would
    /// generate artificial version churn on the drive).
    fn store_dir(
        &self,
        dir: Handle,
        old_entries: &[(String, Handle, FileKind)],
        entries: &[(String, Handle, FileKind)],
    ) -> FsResult<()> {
        for req in Self::dir_update_requests(dir, old_entries, entries) {
            self.call(&req)?;
        }
        self.refresh_dir_caches(dir, entries);
        Ok(())
    }

    fn getattr_cached(&self, h: Handle) -> FsResult<FileAttr> {
        if self.config.attr_cache {
            if let Some(hit) = self.caches.lock().attr.get(&h) {
                return Ok(hit.clone());
            }
        }
        let attr = self.getattr_raw(h, None)?;
        if self.config.attr_cache {
            self.caches.lock().attr.insert(h, attr.clone());
        }
        Ok(attr)
    }

    fn create_node(&self, dir: Handle, name: &str, kind: FileKind, mode: u16) -> FsResult<Handle> {
        if name.is_empty() || name.len() > 255 || name.contains('/') {
            return Err(FsError::Invalid("file name"));
        }
        let old_entries = self.load_dir(dir)?;
        if old_entries.iter().any(|(n, _, _)| n == name) {
            return Err(FsError::Exists);
        }
        // Two round trips: Create (the directory entry must embed the
        // drive-assigned id), then SetAttr + directory-block updates +
        // the single per-op Sync as one batch.
        let rs = self.run_requests(vec![Request::Create], false)?;
        let oid = match rs.first() {
            Some(Response::Created(oid)) => *oid,
            other => return Err(FsError::Storage(format!("bad Create response {other:?}"))),
        };
        let mut entries = old_entries.clone();
        entries.push((name.to_string(), oid.0, kind));
        let mut reqs = vec![Request::SetAttr {
            oid,
            attrs: encode_fattr(kind, mode),
        }];
        reqs.extend(Self::dir_update_requests(dir, &old_entries, &entries));
        self.run_mutation(reqs)?;
        self.refresh_dir_caches(dir, &entries);
        Ok(oid.0)
    }

    fn invalidate(&self, h: Handle) {
        let mut caches = self.caches.lock();
        caches.attr.remove(&h);
        caches.dir.remove(&h);
    }

    // ------------------------------------------------------------------
    // Time-travel extensions (§3.6 "time-enhanced" interfaces).
    // ------------------------------------------------------------------

    /// Lists `dir` as it was at `time`.
    pub fn readdir_at(
        &self,
        dir: Handle,
        time: SimTime,
    ) -> FsResult<Vec<(String, Handle, FileKind)>> {
        let attr = self.getattr_raw(dir, Some(time))?;
        let blob = self.read_object(dir, 0, attr.size, Some(time))?;
        decode_dir(&blob)
    }

    /// Resolves `name` in `dir` as of `time`.
    pub fn lookup_at(&self, dir: Handle, name: &str, time: SimTime) -> FsResult<Handle> {
        self.readdir_at(dir, time)?
            .into_iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, h, _)| h)
            .ok_or(FsError::NotFound)
    }

    /// Reads a file's contents as of `time`.
    pub fn read_at(&self, file: Handle, offset: u64, len: u64, time: SimTime) -> FsResult<Vec<u8>> {
        self.read_object(file, offset, len, Some(time))
    }

    /// Attributes as of `time`.
    pub fn getattr_at(&self, file: Handle, time: SimTime) -> FsResult<FileAttr> {
        self.getattr_raw(file, Some(time))
    }

    /// Resolves a path as of `time`.
    pub fn resolve_path_at(&self, path: &str, time: SimTime) -> FsResult<Handle> {
        let mut h = self.root;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            h = self.lookup_at(h, part, time)?;
        }
        Ok(h)
    }
}

impl<T: Transport> FileServer for S4FileServer<T> {
    fn root(&self) -> Handle {
        self.root
    }

    fn lookup(&self, dir: Handle, name: &str) -> FsResult<Handle> {
        self.load_dir(dir)?
            .into_iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, h, _)| h)
            .ok_or(FsError::NotFound)
    }

    fn create(&self, dir: Handle, name: &str) -> FsResult<Handle> {
        self.create_node(dir, name, FileKind::File, 0o644)
    }

    fn mkdir(&self, dir: Handle, name: &str) -> FsResult<Handle> {
        self.create_node(dir, name, FileKind::Dir, 0o755)
    }

    fn symlink(&self, dir: Handle, name: &str, target: &str) -> FsResult<Handle> {
        let h = self.create_node(dir, name, FileKind::Symlink, 0o777)?;
        self.run_mutation(vec![Request::Write {
            oid: ObjectId(h),
            offset: 0,
            data: target.as_bytes().to_vec(),
        }])?;
        self.invalidate(h);
        Ok(h)
    }

    fn readlink(&self, file: Handle) -> FsResult<String> {
        let attr = self.getattr_cached(file)?;
        if attr.kind != FileKind::Symlink {
            return Err(FsError::Invalid("not a symlink"));
        }
        let data = self.read_object(file, 0, attr.size, None)?;
        String::from_utf8(data).map_err(|_| FsError::Storage("symlink target utf8".into()))
    }

    fn read(&self, file: Handle, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        self.read_object(file, offset, len, None)
    }

    fn write(&self, file: Handle, offset: u64, data: &[u8]) -> FsResult<()> {
        self.run_mutation(vec![Request::Write {
            oid: ObjectId(file),
            offset,
            data: data.to_vec(),
        }])?;
        self.invalidate(file);
        Ok(())
    }

    fn getattr(&self, file: Handle) -> FsResult<FileAttr> {
        self.getattr_cached(file)
    }

    fn truncate(&self, file: Handle, size: u64) -> FsResult<()> {
        self.run_mutation(vec![Request::Truncate {
            oid: ObjectId(file),
            len: size,
        }])?;
        self.invalidate(file);
        Ok(())
    }

    fn remove(&self, dir: Handle, name: &str) -> FsResult<()> {
        let old_entries = self.load_dir(dir)?;
        let idx = old_entries
            .iter()
            .position(|(n, _, _)| n == name)
            .ok_or(FsError::NotFound)?;
        if old_entries[idx].2 == FileKind::Dir {
            return Err(FsError::Invalid("is a directory"));
        }
        let mut entries = old_entries.clone();
        // Swap-remove: the vacated slot is refilled from the end, so only
        // the affected directory blocks change (FFS-style slot reuse).
        let (_, h, _) = entries.swap_remove(idx);
        let mut reqs = vec![Request::Delete { oid: ObjectId(h) }];
        reqs.extend(Self::dir_update_requests(dir, &old_entries, &entries));
        self.run_mutation(reqs)?;
        self.invalidate(h);
        self.refresh_dir_caches(dir, &entries);
        Ok(())
    }

    fn rmdir(&self, dir: Handle, name: &str) -> FsResult<()> {
        let old_entries = self.load_dir(dir)?;
        let idx = old_entries
            .iter()
            .position(|(n, _, _)| n == name)
            .ok_or(FsError::NotFound)?;
        if old_entries[idx].2 != FileKind::Dir {
            return Err(FsError::NotADirectory);
        }
        let h = old_entries[idx].1;
        if !self.load_dir(h)?.is_empty() {
            return Err(FsError::NotEmpty);
        }
        let mut entries = old_entries.clone();
        entries.swap_remove(idx);
        let mut reqs = vec![Request::Delete { oid: ObjectId(h) }];
        reqs.extend(Self::dir_update_requests(dir, &old_entries, &entries));
        self.run_mutation(reqs)?;
        self.invalidate(h);
        self.refresh_dir_caches(dir, &entries);
        Ok(())
    }

    fn rename(
        &self,
        from_dir: Handle,
        from_name: &str,
        to_dir: Handle,
        to_name: &str,
    ) -> FsResult<()> {
        if from_dir == to_dir {
            let old_entries = self.load_dir(from_dir)?;
            let mut entries = old_entries.clone();
            let idx = entries
                .iter()
                .position(|(n, _, _)| n == from_name)
                .ok_or(FsError::NotFound)?;
            // NFS rename overwrites an existing target.
            if let Some(tidx) = entries.iter().position(|(n, _, _)| n == to_name) {
                if tidx != idx {
                    let (_, th, _) = entries.swap_remove(tidx);
                    self.call(&Request::Delete { oid: ObjectId(th) })?;
                    self.invalidate(th);
                }
            }
            let idx = entries
                .iter()
                .position(|(n, _, _)| n == from_name)
                .ok_or(FsError::NotFound)?;
            entries[idx].0 = to_name.to_string();
            self.store_dir(from_dir, &old_entries, &entries)?;
        } else {
            let old_from = self.load_dir(from_dir)?;
            let mut from_entries = old_from.clone();
            let idx = from_entries
                .iter()
                .position(|(n, _, _)| n == from_name)
                .ok_or(FsError::NotFound)?;
            let (_, h, kind) = from_entries.swap_remove(idx);
            let old_to = self.load_dir(to_dir)?;
            let mut to_entries = old_to.clone();
            if let Some(tidx) = to_entries.iter().position(|(n, _, _)| n == to_name) {
                let (_, th, _) = to_entries.swap_remove(tidx);
                self.call(&Request::Delete { oid: ObjectId(th) })?;
                self.invalidate(th);
            }
            to_entries.push((to_name.to_string(), h, kind));
            self.store_dir(from_dir, &old_from, &from_entries)?;
            self.store_dir(to_dir, &old_to, &to_entries)?;
        }
        self.sync_if_configured()
    }

    fn readdir(&self, dir: Handle) -> FsResult<Vec<(String, Handle, FileKind)>> {
        self.load_dir(dir)
    }

    fn now(&self) -> SimTime {
        self.transport.clock().now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_codec_round_trip() {
        let entries = vec![
            ("a.txt".to_string(), 10, FileKind::File),
            ("subdir".to_string(), 11, FileKind::Dir),
            ("link".to_string(), 12, FileKind::Symlink),
        ];
        assert_eq!(decode_dir(&encode_dir(&entries)).unwrap(), entries);
        assert!(decode_dir(&[]).unwrap().is_empty());
        assert!(decode_dir(&[1, 2]).is_err());
    }

    #[test]
    fn fattr_codec() {
        let blob = encode_fattr(FileKind::Dir, 0o755);
        assert_eq!(decode_fattr(&blob), (FileKind::Dir, 0o755));
        // Unknown blobs default sanely.
        assert_eq!(decode_fattr(&[]), (FileKind::File, 0o644));
    }
}
