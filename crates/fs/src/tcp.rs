//! A real framed-TCP transport and server for the S4 RPC protocol.
//!
//! The paper's S4 drive is network-attached; benchmarks in this
//! reproduction use the in-process loopback transport (so time stays
//! simulated and deterministic), but the protocol also runs over real
//! sockets for deployments and the `nfs_server` example.
//!
//! Frame format, both directions: `u32-le length || payload`.
//! Request payload: `user:u32 || client:u32 || has_token:u8 ||
//! token:u64 || trace_id:u64 || origin:u8 || phase:u8 ||
//! Request::encode()`. Response payload: `0u8 || Response::encode()`
//! on success, `1u8 || utf8 error` on failure. The trace triple
//! propagates the client's causal [`s4_core::TraceCtx`]; the client
//! transport mints a fresh trace id when the caller left it 0, so every
//! request entering over the wire is traceable end to end.
//!
//! One out-of-band frame: a request payload equal to
//! [`STATS_FRAME_MARKER`] (too short to be a valid RPC frame, so it
//! cannot collide) returns `0u8 || <Prometheus text exposition>`. It is
//! unauthenticated by design: the exposition carries aggregate
//! operational metrics only — no object contents, names, or
//! per-principal data — mirroring how real fleets scrape `/metrics`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use s4_clock::sync::Mutex;

use s4_clock::SimClock;
use s4_core::{Request, RequestContext, Response, S4Drive};
use s4_simdisk::BlockDev;

use crate::server::{FsError, FsResult};
use crate::transport::Transport;

/// Request payload that asks the server for its metrics exposition
/// instead of dispatching an RPC (9 bytes, shorter than the 27-byte
/// minimum RPC frame).
pub const STATS_FRAME_MARKER: &[u8] = b"__stats__";

/// Request payload that asks the server for its reshard status line
/// (progress of any live split) instead of dispatching an RPC. Like
/// the stats frame: too short to be a valid RPC frame, and carries no
/// object contents or per-principal data.
pub const RESHARD_FRAME_MARKER: &[u8] = b"__reshard__";

/// Request payload that asks the server for its cross-shard transaction
/// status line (commit/abort/recovery counters) instead of dispatching
/// an RPC. Same discipline as the other markers: shorter than any valid
/// RPC frame, no object contents or per-principal data.
pub const TXN_FRAME_MARKER: &[u8] = b"__txn__";

/// Anything that can sit behind the TCP server and execute S4 RPCs: a
/// single [`S4Drive`] or a sharded drive array (`s4-array`). The server
/// is generic over this trait so both deployments share the framing,
/// connection handling, and out-of-band stats plumbing.
pub trait RpcHandler: Send + Sync {
    /// Verifies, executes, and audits one request.
    fn handle(&self, ctx: &RequestContext, req: &Request) -> s4_core::Result<Response>;

    /// Prometheus text exposition served on the out-of-band stats frame.
    fn stats_text(&self) -> String;

    /// One-line reshard status served on the out-of-band reshard frame.
    /// Meaningful only for handlers that can split (the array); a lone
    /// drive reports that it has no shards to split.
    fn reshard_text(&self) -> String {
        "reshard unsupported".to_string()
    }

    /// One-line cross-shard transaction status served on the
    /// out-of-band txn frame. Meaningful only for handlers that
    /// coordinate multi-shard batches (the array); a lone drive has no
    /// shards to coordinate across.
    fn txn_text(&self) -> String {
        "txn unsupported".to_string()
    }
}

impl<D: BlockDev> RpcHandler for S4Drive<D> {
    fn handle(&self, ctx: &RequestContext, req: &Request) -> s4_core::Result<Response> {
        self.dispatch(ctx, req)
    }

    fn stats_text(&self) -> String {
        self.metrics_text()
    }
}

fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > 64 << 20 {
        return Err(std::io::Error::other("oversized frame"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn encode_request_frame(ctx: &RequestContext, req: &Request) -> Vec<u8> {
    let body = req.encode();
    let mut out = Vec::with_capacity(27 + body.len());
    out.extend_from_slice(&ctx.user.0.to_le_bytes());
    out.extend_from_slice(&ctx.client.0.to_le_bytes());
    match ctx.admin_token {
        Some(t) => {
            out.push(1);
            out.extend_from_slice(&t.to_le_bytes());
        }
        None => {
            out.push(0);
            out.extend_from_slice(&[0u8; 8]);
        }
    }
    out.extend_from_slice(&ctx.trace.trace_id.to_le_bytes());
    out.push(ctx.trace.origin);
    out.push(ctx.trace.phase);
    out.extend_from_slice(&body);
    out
}

fn decode_request_frame(buf: &[u8]) -> Option<(RequestContext, Request)> {
    if buf.len() < 27 {
        return None;
    }
    let user = s4_core::UserId(u32::from_le_bytes(buf[0..4].try_into().ok()?));
    let client = s4_core::ClientId(u32::from_le_bytes(buf[4..8].try_into().ok()?));
    let token = (buf[8] == 1).then(|| u64::from_le_bytes(buf[9..17].try_into().unwrap()));
    let trace = s4_core::TraceCtx {
        trace_id: u64::from_le_bytes(buf[17..25].try_into().ok()?),
        origin: buf[25],
        phase: buf[26],
    };
    let req = Request::decode(&buf[27..]).ok()?;
    Some((
        RequestContext {
            user,
            client,
            admin_token: token,
            trace,
        },
        req,
    ))
}

/// A running TCP server exporting one S4 drive (or drive array).
pub struct TcpServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServerHandle {
    /// Starts serving `handler` — an [`S4Drive`] or any other
    /// [`RpcHandler`] — on `bind` (use port 0 for an ephemeral port).
    /// Each connection is handled on its own thread.
    pub fn serve<H: RpcHandler + 'static>(
        handler: Arc<H>,
        bind: &str,
    ) -> std::io::Result<TcpServerHandle> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                let handler = handler.clone();
                let stop3 = stop2.clone();
                std::thread::spawn(move || {
                    while !stop3.load(Ordering::SeqCst) {
                        let Ok(frame) = read_frame(&mut stream) else {
                            break;
                        };
                        if frame == STATS_FRAME_MARKER {
                            let mut out = vec![0u8];
                            out.extend_from_slice(handler.stats_text().as_bytes());
                            if write_frame(&mut stream, &out).is_err() {
                                break;
                            }
                            continue;
                        }
                        if frame == RESHARD_FRAME_MARKER {
                            let mut out = vec![0u8];
                            out.extend_from_slice(handler.reshard_text().as_bytes());
                            if write_frame(&mut stream, &out).is_err() {
                                break;
                            }
                            continue;
                        }
                        if frame == TXN_FRAME_MARKER {
                            let mut out = vec![0u8];
                            out.extend_from_slice(handler.txn_text().as_bytes());
                            if write_frame(&mut stream, &out).is_err() {
                                break;
                            }
                            continue;
                        }
                        let reply = match decode_request_frame(&frame) {
                            Some((ctx, req)) => match handler.handle(&ctx, &req) {
                                Ok(resp) => {
                                    let mut out = vec![0u8];
                                    out.extend_from_slice(&resp.encode());
                                    out
                                }
                                Err(e) => {
                                    let mut out = vec![1u8];
                                    out.extend_from_slice(e.to_string().as_bytes());
                                    out
                                }
                            },
                            None => {
                                let mut out = vec![1u8];
                                out.extend_from_slice(b"malformed request frame");
                                out
                            }
                        };
                        if write_frame(&mut stream, &reply).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        Ok(TcpServerHandle {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (for clients to connect to).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// A client-side TCP transport: one connection, one in-flight request at
/// a time (callers serialize through an internal lock, matching NFSv2's
/// synchronous client behavior).
pub struct TcpTransport {
    stream: Mutex<TcpStream>,
    /// Wall-clock deployments have no shared simulated clock; this one is
    /// local and only advanced by explicit callers.
    clock: SimClock,
    /// Mints trace ids for requests the caller left untraced, so every
    /// RPC that crosses the wire carries a joinable causal trace id.
    trace_ids: s4_core::TraceIdGen,
}

impl TcpTransport {
    /// Connects to a [`TcpServerHandle`].
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream: Mutex::new(stream),
            clock: SimClock::new(),
            trace_ids: s4_core::TraceIdGen::new(),
        })
    }
}

impl TcpTransport {
    /// Fetches the server's Prometheus text exposition over this
    /// connection (the out-of-band stats frame).
    pub fn fetch_stats(&self) -> FsResult<String> {
        let mut stream = self.stream.lock();
        write_frame(&mut *stream, STATS_FRAME_MARKER)
            .map_err(|e| FsError::Storage(format!("tcp write: {e}")))?;
        let reply =
            read_frame(&mut *stream).map_err(|e| FsError::Storage(format!("tcp read: {e}")))?;
        match reply.first() {
            Some(0) => String::from_utf8(reply[1..].to_vec())
                .map_err(|_| FsError::Storage("non-utf8 stats exposition".into())),
            _ => Err(FsError::Storage("stats frame rejected".into())),
        }
    }

    /// Fetches the server's one-line reshard status over this
    /// connection (the out-of-band reshard frame).
    pub fn fetch_reshard_status(&self) -> FsResult<String> {
        let mut stream = self.stream.lock();
        write_frame(&mut *stream, RESHARD_FRAME_MARKER)
            .map_err(|e| FsError::Storage(format!("tcp write: {e}")))?;
        let reply =
            read_frame(&mut *stream).map_err(|e| FsError::Storage(format!("tcp read: {e}")))?;
        match reply.first() {
            Some(0) => String::from_utf8(reply[1..].to_vec())
                .map_err(|_| FsError::Storage("non-utf8 reshard status".into())),
            _ => Err(FsError::Storage("reshard frame rejected".into())),
        }
    }

    /// Fetches the server's one-line cross-shard transaction status
    /// over this connection (the out-of-band txn frame).
    pub fn fetch_txn_status(&self) -> FsResult<String> {
        let mut stream = self.stream.lock();
        write_frame(&mut *stream, TXN_FRAME_MARKER)
            .map_err(|e| FsError::Storage(format!("tcp write: {e}")))?;
        let reply =
            read_frame(&mut *stream).map_err(|e| FsError::Storage(format!("tcp read: {e}")))?;
        match reply.first() {
            Some(0) => String::from_utf8(reply[1..].to_vec())
                .map_err(|_| FsError::Storage("non-utf8 txn status".into())),
            _ => Err(FsError::Storage("txn frame rejected".into())),
        }
    }
}

impl Transport for TcpTransport {
    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn call(&self, ctx: &RequestContext, req: &Request) -> FsResult<Response> {
        let mut ctx = *ctx;
        if ctx.trace.trace_id == 0 {
            ctx.trace.trace_id = self.trace_ids.next(self.clock.now().as_micros());
        }
        let mut stream = self.stream.lock();
        let frame = encode_request_frame(&ctx, req);
        write_frame(&mut *stream, &frame)
            .map_err(|e| FsError::Storage(format!("tcp write: {e}")))?;
        let reply =
            read_frame(&mut *stream).map_err(|e| FsError::Storage(format!("tcp read: {e}")))?;
        if reply.is_empty() {
            return Err(FsError::Storage("empty reply frame".into()));
        }
        match reply[0] {
            0 => Response::decode(&reply[1..])
                .map_err(|e| FsError::Storage(format!("bad response: {e}"))),
            _ => {
                let msg = String::from_utf8_lossy(&reply[1..]).to_string();
                if msg.contains("no such object") || msg.contains("no such partition") {
                    Err(FsError::NotFound)
                } else if msg.contains("access denied") {
                    Err(FsError::Denied)
                } else {
                    Err(FsError::Storage(msg))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4_core::{ClientId, DriveConfig, UserId};
    use s4_simdisk::MemDisk;

    #[test]
    fn frame_codec_round_trip() {
        let ctx = RequestContext::admin(ClientId(3), 99);
        let req = Request::Write {
            oid: s4_core::ObjectId(5),
            offset: 16,
            data: vec![1, 2, 3],
        };
        let frame = encode_request_frame(&ctx, &req);
        let (dctx, dreq) = decode_request_frame(&frame).unwrap();
        assert_eq!(dctx, ctx);
        assert_eq!(dreq, req);
        assert!(decode_request_frame(&frame[..10]).is_none());
        assert!(decode_request_frame(&frame[..26]).is_none());

        // The trace triple crosses the wire intact.
        let traced = RequestContext::user(UserId(4), ClientId(8)).with_trace(s4_core::TraceCtx {
            trace_id: 0xFEED_BEEF_u64,
            origin: 3,
            phase: s4_core::PHASE_PREPARE,
        });
        let frame = encode_request_frame(&traced, &req);
        let (dctx, dreq) = decode_request_frame(&frame).unwrap();
        assert_eq!(dctx, traced);
        assert_eq!(dctx.trace.trace_id, 0xFEED_BEEF);
        assert_eq!(dreq, req);
    }

    #[test]
    fn end_to_end_over_real_sockets() {
        let clock = SimClock::new();
        let drive = Arc::new(
            S4Drive::format(MemDisk::new(200_000), DriveConfig::small_test(), clock).unwrap(),
        );
        let server = TcpServerHandle::serve(drive, "127.0.0.1:0").unwrap();
        let t = TcpTransport::connect(server.addr()).unwrap();
        let ctx = RequestContext::user(UserId(7), ClientId(1));

        let oid = match t.call(&ctx, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("{other:?}"),
        };
        t.call(
            &ctx,
            &Request::Write {
                oid,
                offset: 0,
                data: b"over the wire".to_vec(),
            },
        )
        .unwrap();
        match t
            .call(
                &ctx,
                &Request::Read {
                    oid,
                    offset: 5,
                    len: 100,
                    time: None,
                },
            )
            .unwrap()
        {
            Response::Data(d) => assert_eq!(d, b"the wire"),
            other => panic!("{other:?}"),
        }
        // Errors travel too.
        let err = t
            .call(
                &RequestContext::user(UserId(99), ClientId(2)),
                &Request::Read {
                    oid,
                    offset: 0,
                    len: 1,
                    time: None,
                },
            )
            .unwrap_err();
        assert_eq!(err, FsError::Denied);

        // Batched RPCs cross the wire as one exchange.
        use s4_core::rpc::LAST_CREATED;
        match t
            .call(
                &ctx,
                &Request::Batch(vec![
                    Request::Create,
                    Request::Write {
                        oid: LAST_CREATED,
                        offset: 0,
                        data: b"batched over tcp".to_vec(),
                    },
                    Request::Read {
                        oid: LAST_CREATED,
                        offset: 0,
                        len: 64,
                        time: None,
                    },
                ]),
            )
            .unwrap()
        {
            Response::Batch(rs) => {
                assert_eq!(rs.len(), 3);
                assert!(matches!(rs[2], Response::Data(ref d) if d == b"batched over tcp"));
            }
            other => panic!("{other:?}"),
        }

        // The out-of-band stats frame returns the Prometheus
        // exposition, and RPC dispatch keeps working afterwards.
        let text = t.fetch_stats().unwrap();
        assert!(text.contains("s4_requests_total"), "{text}");
        assert!(text.contains("s4_rpc_latency_us{quantile=\"0.99\"}"));
        assert!(text.contains("s4_history_pool_occupancy"));
        assert!(text.contains("s4_detection_window_headroom_days"));
        assert!(matches!(
            t.call(
                &ctx,
                &Request::Read {
                    oid,
                    offset: 0,
                    len: 4,
                    time: None,
                },
            ),
            Ok(Response::Data(_))
        ));
        server.shutdown();
    }
}
