//! Version and administration tools (§3.6).
//!
//! "Tools for traversing the history must assist by bridging the gap
//! between standard file interfaces and the raw versions that are stored
//! by the device ... utilities can present interfaces similar to that of
//! Elephant, with time-enhanced versions of standard utilities such as
//! `ls` and `cp`."
//!
//! * [`ls_at`] / [`read_file_at`] — time-enhanced `ls` and `cat`.
//! * [`restore_file`] — `cp` from the history pool forward: "the old
//!   version of the object can be completely restored by requesting that
//!   the drive copy forward the old version, thus making a new version"
//!   (§3.3).
//! * [`damage_report`] — intrusion diagnosis over the audit log: every
//!   object a given client (or user) touched in a time interval, split
//!   into reads and modifications, with crude taint propagation (objects
//!   written shortly after a tainted read).

use s4_clock::{SimDuration, SimTime};
use s4_core::{ClientId, RequestContext, S4Drive};
use s4_simdisk::BlockDev;

use crate::s4fs::S4FileServer;
use crate::server::{FileKind, FsResult, Handle};
use crate::transport::Transport;

/// Time-enhanced `ls`: lists `path` as it was at `time`.
///
/// Note: this is the *file-server-side* view (it resolves `path`
/// through a mounted [`S4FileServer`]). For drive-side forensics
/// without a file-server mount — historical namespace walks and tree
/// diffs by object id — use [`s4_detect::forensics::tree_at`] and
/// [`s4_detect::forensics::tree_diff`] instead.
pub fn ls_at<T: Transport>(
    fs: &S4FileServer<T>,
    path: &str,
    time: SimTime,
) -> FsResult<Vec<(String, FileKind, u64)>> {
    let dir = fs.resolve_path_at(path, time)?;
    let entries = fs.readdir_at(dir, time)?;
    let mut out = Vec::with_capacity(entries.len());
    for (name, h, kind) in entries {
        let size = fs.getattr_at(h, time).map(|a| a.size).unwrap_or(0);
        out.push((name, kind, size));
    }
    Ok(out)
}

/// Time-enhanced `cat`: reads the whole contents of `path` as of `time`.
pub fn read_file_at<T: Transport>(
    fs: &S4FileServer<T>,
    path: &str,
    time: SimTime,
) -> FsResult<Vec<u8>> {
    let h = fs.resolve_path_at(path, time)?;
    let attr = fs.getattr_at(h, time)?;
    fs.read_at(h, 0, attr.size, time)
}

/// Restores `path` to its contents as of `time` by copying the old
/// version forward (creating a new version — history is never rewritten).
/// If the file no longer exists at `path`, it is recreated there. Returns
/// the handle of the restored file.
pub fn restore_file<T: Transport>(
    fs: &S4FileServer<T>,
    path: &str,
    time: SimTime,
) -> FsResult<Handle> {
    use crate::server::FileServer;
    let data = read_file_at(fs, path, time)?;
    let (dir_path, name) = match path.rfind('/') {
        Some(idx) => (&path[..idx], &path[idx + 1..]),
        None => ("", path),
    };
    let dir = fs.resolve_path(dir_path)?;
    let h = match fs.lookup(dir, name) {
        Ok(h) => h,
        Err(crate::server::FsError::NotFound) => fs.create(dir, name)?,
        Err(e) => return Err(e),
    };
    fs.truncate(h, 0)?;
    if !data.is_empty() {
        fs.write(h, 0, &data)?;
    }
    Ok(h)
}

/// The outcome of an audit-log damage analysis.
///
/// Re-exported from [`s4_detect`], where the analysis now lives.
pub use s4_detect::DamageReport;

/// Builds a [`DamageReport`] for `suspect` over `[from, to]` from the
/// drive's audit log (requires the admin context).
#[deprecated(
    since = "0.1.0",
    note = "moved to `s4_detect::forensics::damage_report` (diagnosis is drive-level work and \
            does not need a file-server mount); this wrapper delegates"
)]
pub fn damage_report<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    suspect: ClientId,
    from: SimTime,
    to: SimTime,
    taint_window: SimDuration,
) -> Result<DamageReport, s4_core::S4Error> {
    s4_detect::damage_report(drive, admin, suspect, from, to, taint_window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s4fs::S4FsConfig;
    use crate::server::FileServer;
    use crate::transport::LoopbackTransport;
    use s4_clock::{NetworkModel, SimClock};
    use s4_core::{DriveConfig, UserId};
    use s4_simdisk::MemDisk;
    use std::sync::Arc;

    fn setup() -> (
        S4FileServer<LoopbackTransport<MemDisk>>,
        Arc<S4Drive<MemDisk>>,
        RequestContext,
    ) {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(1));
        let drive = Arc::new(
            S4Drive::format(MemDisk::new(400_000), DriveConfig::small_test(), clock).unwrap(),
        );
        let t = LoopbackTransport::new(drive.clone(), NetworkModel::free());
        let ctx = RequestContext::user(UserId(1), ClientId(1));
        let fs = S4FileServer::mount(t, ctx, "export", S4FsConfig::default()).unwrap();
        let admin = RequestContext::admin(ClientId(9), 42);
        (fs, drive, admin)
    }

    fn tick<D: BlockDev>(d: &S4Drive<D>) {
        d.clock().advance(SimDuration::from_millis(50));
    }

    #[test]
    fn ls_and_cat_travel_in_time() {
        let (fs, drive, _) = setup();
        let root = fs.root();
        let f = fs.create(root, "notes.txt").unwrap();
        fs.write(f, 0, b"first draft").unwrap();
        let t1 = fs.now();
        tick(&drive);
        fs.write(f, 0, b"final copy!").unwrap();
        fs.create(root, "later.txt").unwrap();

        let old_listing = ls_at(&fs, "", t1).unwrap();
        assert_eq!(old_listing.len(), 1);
        assert_eq!(old_listing[0].0, "notes.txt");
        assert_eq!(read_file_at(&fs, "notes.txt", t1).unwrap(), b"first draft");
        let now_listing = ls_at(&fs, "", fs.now()).unwrap();
        assert_eq!(now_listing.len(), 2);
    }

    #[test]
    fn restore_recovers_deleted_file() {
        let (fs, drive, _) = setup();
        let root = fs.root();
        let f = fs.create(root, "precious.dat").unwrap();
        fs.write(f, 0, b"do not lose me").unwrap();
        let before = fs.now();
        tick(&drive);
        fs.remove(root, "precious.dat").unwrap();
        assert!(fs.lookup(root, "precious.dat").is_err());

        let restored = restore_file(&fs, "precious.dat", before).unwrap();
        let attr = fs.getattr(restored).unwrap();
        assert_eq!(fs.read(restored, 0, attr.size).unwrap(), b"do not lose me");
    }

    #[test]
    #[allow(deprecated)] // exercises the compatibility wrapper on purpose
    fn damage_report_finds_intruder_activity() {
        let (fs, drive, admin) = setup();
        let root = fs.root();
        let secret = fs.create(root, "secret.key").unwrap();
        fs.write(secret, 0, b"hunter2").unwrap();

        // The "intruder" (client 66) reads the secret and plants a file.
        let evil_ctx = RequestContext::user(UserId(66), ClientId(66));
        let t = LoopbackTransport::new(drive.clone(), NetworkModel::free());
        // Give the intruder its own tree so ACLs allow it.
        let evil_fs = S4FileServer::mount(t, evil_ctx, "evil", S4FsConfig::default()).unwrap();
        let eroot = evil_fs.root();
        let from = drive.now();
        let backdoor = evil_fs.create(eroot, "backdoor.sh").unwrap();
        evil_fs
            .write(backdoor, 0, b"#!/bin/sh\nnc -l 31337")
            .unwrap();
        let _peek = evil_fs.read(backdoor, 0, 10).unwrap();
        let to = drive.now();

        let report = damage_report(
            &drive,
            &admin,
            ClientId(66),
            from,
            to,
            SimDuration::from_secs(60),
        )
        .unwrap();
        assert!(report.modified.contains(&backdoor));
        assert!(report.read.contains(&backdoor));
        assert!(report.request_count >= 3);
        // The honest client's earlier write is not in the interval.
        assert!(!report.modified.contains(&secret));
    }
}
