//! Transports carrying S4 RPCs from the client translator to the drive.

use std::sync::Arc;

use s4_clock::{NetworkModel, SimClock};
use s4_core::{Request, RequestContext, Response, S4Drive};
use s4_simdisk::BlockDev;

use crate::server::{FsError, FsResult};

/// A channel able to deliver one S4 RPC and return its response.
pub trait Transport: Send + Sync {
    /// Performs one request/response exchange.
    fn call(&self, ctx: &RequestContext, req: &Request) -> FsResult<Response>;

    /// The simulated clock measurements should be taken on.
    fn clock(&self) -> &SimClock;
}

/// In-process transport: invokes the drive directly, charging the network
/// cost model to the shared simulated clock. This models the paper's
/// switched 100 Mb Ethernet between client and server without real
/// sockets, keeping benchmarks deterministic.
pub struct LoopbackTransport<D: BlockDev> {
    drive: Arc<S4Drive<D>>,
    net: NetworkModel,
    clock: SimClock,
    /// Mints trace ids for requests the caller left untraced, so
    /// in-process clients get the same causal traceability as wire
    /// clients.
    trace_ids: s4_core::TraceIdGen,
}

impl<D: BlockDev> LoopbackTransport<D> {
    /// Creates a loopback transport over `drive` with the given network
    /// model.
    pub fn new(drive: Arc<S4Drive<D>>, net: NetworkModel) -> Self {
        let clock = drive.clock().clone();
        LoopbackTransport {
            drive,
            net,
            clock,
            trace_ids: s4_core::TraceIdGen::new(),
        }
    }

    /// The wrapped drive.
    pub fn drive(&self) -> &Arc<S4Drive<D>> {
        &self.drive
    }

    /// Consumes the transport, returning the drive handle.
    pub fn into_drive(self) -> Arc<S4Drive<D>> {
        self.drive
    }
}

impl<D: BlockDev> Transport for LoopbackTransport<D> {
    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn call(&self, ctx: &RequestContext, req: &Request) -> FsResult<Response> {
        let mut ctx = *ctx;
        if ctx.trace.trace_id == 0 {
            ctx.trace.trace_id = self.trace_ids.next(self.clock.now().as_micros());
        }
        let resp = self.drive.dispatch(&ctx, req);
        // Charge the wire: request out, response (or small error) back.
        let resp_size = resp.as_ref().map(|r| r.wire_size()).unwrap_or(16);
        self.clock
            .advance(self.net.rpc_cost(req.wire_size(), resp_size));
        resp.map_err(|e| match e {
            s4_core::S4Error::AccessDenied => FsError::Denied,
            s4_core::S4Error::NoSuchObject | s4_core::S4Error::NoSuchPartition => FsError::NotFound,
            other => FsError::Storage(other.to_string()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4_clock::SimDuration;
    use s4_core::{ClientId, DriveConfig, UserId};
    use s4_simdisk::MemDisk;

    #[test]
    fn loopback_charges_network_time() {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(1));
        let drive = Arc::new(
            S4Drive::format(
                MemDisk::new(200_000),
                DriveConfig::small_test(),
                clock.clone(),
            )
            .unwrap(),
        );
        let t = LoopbackTransport::new(drive, NetworkModel::lan_100mbit());
        let ctx = RequestContext::user(UserId(1), ClientId(1));
        let before = clock.now();
        let resp = t.call(&ctx, &Request::Create).unwrap();
        assert!(matches!(resp, Response::Created(_)));
        assert!(clock.now() > before, "RPC must cost simulated time");
    }

    #[test]
    fn loopback_maps_errors() {
        let clock = SimClock::new();
        let drive = Arc::new(
            S4Drive::format(MemDisk::new(200_000), DriveConfig::small_test(), clock).unwrap(),
        );
        let t = LoopbackTransport::new(drive, NetworkModel::free());
        let ctx = RequestContext::user(UserId(1), ClientId(1));
        let err = t
            .call(
                &ctx,
                &Request::Read {
                    oid: s4_core::ObjectId(999),
                    offset: 0,
                    len: 1,
                    time: None,
                },
            )
            .unwrap_err();
        assert_eq!(err, FsError::NotFound);
    }
}
