//! NFS-style file system overlay on the S4 object store (§4.1.2).
//!
//! The paper's "S4 client" is a user-level translator that appears to the
//! workstation as an NFSv2 server and turns file-system requests into
//! S4-specific RPCs: directories and files are overlaid on objects, NFS
//! file handles hash directly to ObjectIDs, attribute and directory
//! caches serve reads, and every mutating operation is followed by a Sync
//! RPC to honor NFSv2's commit-before-reply semantics.
//!
//! This crate provides:
//!
//! * [`server`] — the transport-agnostic [`FileServer`] trait all
//!   benchmarked systems implement (S4 and the baselines), mirroring the
//!   NFSv2 operation set.
//! * [`s4fs`] — [`S4FileServer`], the S4 client translator, including
//!   time-travel variants of the read operations.
//! * [`transport`] — the [`Transport`] abstraction plus the in-process
//!   [`LoopbackTransport`] that charges the network cost model.
//! * [`tcp`] — a real framed-TCP transport and server for the S4 RPC
//!   protocol.
//! * [`tools`] — §3.6's "time-enhanced" administrative utilities
//!   (`ls`/`cat` at a point in time, file restoration from the history
//!   pool, and audit-log-driven damage reports).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod s4fs;
pub mod server;
pub mod tcp;
pub mod tools;
pub mod transport;

pub use s4fs::{S4FileServer, S4FsConfig};
pub use server::{FileAttr, FileKind, FileServer, FsError, FsResult, Handle};
pub use tcp::{
    RpcHandler, TcpServerHandle, TcpTransport, RESHARD_FRAME_MARKER, STATS_FRAME_MARKER,
    TXN_FRAME_MARKER,
};
#[allow(deprecated)]
pub use tools::{damage_report, ls_at, read_file_at, restore_file, DamageReport};
pub use transport::{LoopbackTransport, Transport};
