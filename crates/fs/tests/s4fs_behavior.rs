//! Behavioral tests for the S4 client translator: NFS semantics,
//! caching, time travel at the file-system level.

use std::sync::Arc;

use s4_clock::{NetworkModel, SimClock, SimDuration};
use s4_core::{ClientId, DriveConfig, RequestContext, S4Drive, UserId};
use s4_fs::{FileKind, FileServer, FsError, LoopbackTransport, S4FileServer, S4FsConfig};
use s4_simdisk::MemDisk;

type Fs = S4FileServer<LoopbackTransport<MemDisk>>;

fn setup() -> (Fs, Arc<S4Drive<MemDisk>>, SimClock) {
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let drive = Arc::new(
        S4Drive::format(
            MemDisk::with_capacity_bytes(64 << 20),
            DriveConfig::small_test(),
            clock.clone(),
        )
        .unwrap(),
    );
    let fs = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::free()),
        RequestContext::user(UserId(1), ClientId(1)),
        "t",
        S4FsConfig::default(),
    )
    .unwrap();
    (fs, drive, clock)
}

#[test]
fn nested_directories_and_path_resolution() {
    let (fs, _d, _c) = setup();
    let root = fs.root();
    let a = fs.mkdir(root, "a").unwrap();
    let b = fs.mkdir(a, "b").unwrap();
    let f = fs.create(b, "deep.txt").unwrap();
    fs.write(f, 0, b"found me").unwrap();
    assert_eq!(fs.resolve_path("a/b/deep.txt").unwrap(), f);
    assert_eq!(fs.read(f, 0, 64).unwrap(), b"found me");
    assert_eq!(
        fs.resolve_path("a/nope/deep.txt").unwrap_err(),
        FsError::NotFound
    );
}

#[test]
fn create_rejects_duplicates_and_bad_names() {
    let (fs, _d, _c) = setup();
    let root = fs.root();
    fs.create(root, "x").unwrap();
    assert_eq!(fs.create(root, "x").unwrap_err(), FsError::Exists);
    assert_eq!(fs.mkdir(root, "x").unwrap_err(), FsError::Exists);
    assert!(matches!(fs.create(root, "a/b"), Err(FsError::Invalid(_))));
    assert!(matches!(fs.create(root, ""), Err(FsError::Invalid(_))));
}

#[test]
fn symlinks_round_trip() {
    let (fs, _d, _c) = setup();
    let root = fs.root();
    let l = fs.symlink(root, "link", "target/path").unwrap();
    assert_eq!(fs.readlink(l).unwrap(), "target/path");
    let attr = fs.getattr(l).unwrap();
    assert_eq!(attr.kind, FileKind::Symlink);
    // readlink on a file fails.
    let f = fs.create(root, "plain").unwrap();
    assert!(matches!(fs.readlink(f), Err(FsError::Invalid(_))));
}

#[test]
fn rename_within_and_across_directories() {
    let (fs, _d, _c) = setup();
    let root = fs.root();
    let d1 = fs.mkdir(root, "d1").unwrap();
    let d2 = fs.mkdir(root, "d2").unwrap();
    let f = fs.create(d1, "file").unwrap();
    fs.write(f, 0, b"payload").unwrap();

    // Same-directory rename.
    fs.rename(d1, "file", d1, "renamed").unwrap();
    assert!(fs.lookup(d1, "file").is_err());
    assert_eq!(fs.lookup(d1, "renamed").unwrap(), f);

    // Cross-directory rename with overwrite.
    let victim = fs.create(d2, "dest").unwrap();
    fs.write(victim, 0, b"doomed").unwrap();
    fs.rename(d1, "renamed", d2, "dest").unwrap();
    assert_eq!(fs.lookup(d2, "dest").unwrap(), f);
    assert_eq!(fs.read(f, 0, 64).unwrap(), b"payload");
    assert!(fs.readdir(d1).unwrap().is_empty());
}

#[test]
fn attr_and_dir_caches_are_coherent_after_mutations() {
    let (fs, _d, _c) = setup();
    let root = fs.root();
    let f = fs.create(root, "grow.txt").unwrap();
    // Warm the caches.
    assert_eq!(fs.getattr(f).unwrap().size, 0);
    assert_eq!(fs.readdir(root).unwrap().len(), 1);
    // Mutate and observe coherent results.
    fs.write(f, 0, b"0123456789").unwrap();
    assert_eq!(fs.getattr(f).unwrap().size, 10);
    fs.truncate(f, 4).unwrap();
    assert_eq!(fs.getattr(f).unwrap().size, 4);
    fs.remove(root, "grow.txt").unwrap();
    assert!(fs.readdir(root).unwrap().is_empty());
    assert!(fs.lookup(root, "grow.txt").is_err());
}

#[test]
fn directory_time_travel_shows_old_entries_and_sizes() {
    let (fs, _d, clock) = setup();
    let root = fs.root();
    let f1 = fs.create(root, "one").unwrap();
    fs.write(f1, 0, b"aaaa").unwrap();
    let t1 = fs.now();
    clock.advance(SimDuration::from_secs(10));
    fs.remove(root, "one").unwrap();
    let f2 = fs.create(root, "two").unwrap();
    fs.write(f2, 0, b"bbbbbbbb").unwrap();

    // Now: only "two".
    let names_now: Vec<String> = fs
        .readdir(root)
        .unwrap()
        .into_iter()
        .map(|(n, _, _)| n)
        .collect();
    assert_eq!(names_now, vec!["two"]);
    // Then: only "one", with its old size.
    let then = fs.readdir_at(root, t1).unwrap();
    assert_eq!(then.len(), 1);
    assert_eq!(then[0].0, "one");
    let old_attr = fs.getattr_at(then[0].1, t1).unwrap();
    assert_eq!(old_attr.size, 4);
    assert_eq!(fs.read_at(then[0].1, 0, 16, t1).unwrap(), b"aaaa");
}

#[test]
fn two_mounts_share_one_drive() {
    let (fs, drive, _c) = setup();
    let root = fs.root();
    let f = fs.create(root, "shared").unwrap();
    fs.write(f, 0, b"from-mount-1").unwrap();

    // A second client mounts the same partition and sees the file.
    let fs2 = S4FileServer::mount(
        LoopbackTransport::new(drive, NetworkModel::free()),
        RequestContext::user(UserId(1), ClientId(2)),
        "t",
        S4FsConfig::default(),
    )
    .unwrap();
    let f2 = fs2.resolve_path("shared").unwrap();
    assert_eq!(f2, f);
    assert_eq!(fs2.read(f2, 0, 64).unwrap(), b"from-mount-1");
}

#[test]
fn acl_denies_foreign_user_through_the_fs_layer() {
    let (fs, drive, _c) = setup();
    let root = fs.root();
    let f = fs.create(root, "private").unwrap();
    fs.write(f, 0, b"mine").unwrap();

    // A different *user* (not just client) is denied by the drive's ACLs.
    let other = S4FileServer::mount(
        LoopbackTransport::new(drive, NetworkModel::free()),
        RequestContext::user(UserId(99), ClientId(3)),
        "t",
        S4FsConfig::default(),
    )
    .unwrap();
    let fh = other.resolve_path("private");
    // Lookup reads the directory (owned by user 1): denied outright.
    assert!(matches!(fh, Err(FsError::Denied)));
}

#[test]
fn unsynced_writes_are_lost_on_crash_synced_ones_are_not() {
    // NFSv2 semantics end at the Sync boundary: with sync_per_op off,
    // a crash loses buffered mutations; with it on, nothing is lost.
    let clock = SimClock::new();
    clock.advance(SimDuration::from_secs(1));
    let drive = Arc::new(
        S4Drive::format(
            MemDisk::with_capacity_bytes(64 << 20),
            DriveConfig::small_test(),
            clock.clone(),
        )
        .unwrap(),
    );
    let fs = S4FileServer::mount(
        LoopbackTransport::new(drive.clone(), NetworkModel::free()),
        RequestContext::user(UserId(1), ClientId(1)),
        "crashy",
        S4FsConfig {
            sync_per_op: false,
            ..S4FsConfig::default()
        },
    )
    .unwrap();
    let root = fs.root();
    let f = fs.create(root, "durable").unwrap();
    fs.write(f, 0, b"synced bytes").unwrap();
    // Make this much durable explicitly.
    drive
        .op_sync(&RequestContext::user(UserId(1), ClientId(1)))
        .unwrap();
    // Unsynced follow-up.
    fs.write(f, 0, b"VOLATILE!!!!").unwrap();
    drop(fs);

    let dev = Arc::into_inner(drive).unwrap().crash();
    let d2 = Arc::new(S4Drive::mount(dev, DriveConfig::small_test(), SimClock::new()).unwrap());
    let fs2 = S4FileServer::mount(
        LoopbackTransport::new(d2, NetworkModel::free()),
        RequestContext::user(UserId(1), ClientId(1)),
        "crashy",
        S4FsConfig::default(),
    )
    .unwrap();
    let f2 = fs2.resolve_path("durable").unwrap();
    assert_eq!(fs2.read(f2, 0, 16).unwrap(), b"synced bytes");
}

#[test]
fn sync_per_op_costs_more_than_batched() {
    // NFSv2 semantics cost: sync-per-op vs no-sync configuration.
    let run = |sync: bool| {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(1));
        let disk = s4_simdisk::TimedDisk::new(
            MemDisk::with_capacity_bytes(64 << 20),
            s4_simdisk::DiskModelParams::cheetah_9gb_10k(),
            clock.clone(),
        );
        let drive = Arc::new(S4Drive::format(disk, DriveConfig::default(), clock.clone()).unwrap());
        let fs = S4FileServer::mount(
            LoopbackTransport::new(drive, NetworkModel::free()),
            RequestContext::user(UserId(1), ClientId(1)),
            "t",
            S4FsConfig {
                sync_per_op: sync,
                ..S4FsConfig::default()
            },
        )
        .unwrap();
        let root = fs.root();
        let start = fs.now();
        for i in 0..50 {
            let f = fs.create(root, &format!("f{i}")).unwrap();
            fs.write(f, 0, b"x").unwrap();
        }
        fs.now() - start
    };
    let synced = run(true);
    let batched = run(false);
    assert!(
        synced > batched,
        "sync-per-op {synced:?} must cost more than batched {batched:?}"
    );
}
