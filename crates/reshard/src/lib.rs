//! Online resharding: live `N → 2N` residue-class splits with
//! history-pool catch-up (DESIGN §6h).
//!
//! A self-securing array shards its flat namespace by residue class
//! (`oid mod N`). This crate grows a live array one class at a time:
//! source slot `s` (owning `s mod N`) splits into `s mod 2N` (kept)
//! and `N+s mod 2N` (migrated to a brand-new shard), with **zero
//! client-visible downtime**. The drive's own security machinery *is*
//! the migration mechanism:
//!
//! 1. **Snapshot.** Pick an instant `T` and bulk-copy every object of
//!    the moving class as of `T` using *historical reads* from the
//!    source's history pool — the comprehensive versioning that §3
//!    maintains for intrusion survival doubles as a consistent
//!    copy-on-write snapshot, so clients keep writing, no freeze.
//! 2. **Catch-up.** The audit log records *all* requests (§4.2.3), so
//!    replaying mutations newer than the snapshot cursor is a matter
//!    of reading the source's audit stream from a record index and
//!    re-exporting each touched object's current state. Rounds repeat
//!    until the remaining lag drops below a threshold.
//! 3. **Flip.** [`s4_array::S4Array::install_split`] briefly quiesces
//!    only the splitting shard (write gate + queue drain), this crate
//!    replays the final delta inside that window, and the new routing
//!    epoch is installed atomically — persisted in the distributed
//!    partition table so a crash remounts wholly-old or wholly-new.
//!
//! After the flip the moved objects are lazily deleted from the source
//! members; their history remains in the source's pool for the rest of
//! the detection window, exactly like any other overwritten data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;

use s4_array::{is_reserved, FlipReport, S4Array};
use s4_core::audit::OpKind;
use s4_core::{
    ClientId, ObjectId, RequestContext, S4Drive, S4Error, TraceCtx, TraceIdGen, PHASE_CATCHUP,
};
use s4_obs::{Gauge, Histogram};
use s4_simdisk::BlockDev;

/// Tuning knobs for one split.
#[derive(Clone, Copy, Debug)]
pub struct ReshardConfig {
    /// Catch-up stops (and the flip starts) once a round leaves at most
    /// this many objects dirty — the flip replays them under quiesce,
    /// so the threshold bounds the pause.
    pub lag_threshold: usize,
    /// Upper bound on catch-up rounds; if the lag has not converged by
    /// then, the flip proceeds anyway (its final round is exact, just
    /// longer).
    pub max_rounds: usize,
}

impl Default for ReshardConfig {
    fn default() -> Self {
        ReshardConfig {
            lag_threshold: 8,
            max_rounds: 16,
        }
    }
}

/// What one completed split did.
#[derive(Clone, Copy, Debug)]
pub struct ReshardReport {
    /// The source slot that split.
    pub source_slot: usize,
    /// The new shard's slot id (`base + source_slot`).
    pub target_slot: usize,
    /// Objects bulk-copied from the snapshot at `T`.
    pub snapshot_objects: usize,
    /// Catch-up rounds run before the flip.
    pub catchup_rounds: usize,
    /// Objects re-exported across all catch-up rounds.
    pub catchup_objects: usize,
    /// Objects replayed inside the quiesced flip window.
    pub final_delta_objects: usize,
    /// Moved objects lazily deleted from the source after the flip.
    pub cleaned_objects: usize,
    /// Quiesce pause and installed epoch, from the flip itself.
    pub flip: FlipReport,
}

/// Progress gauges, shared so tests and the status surface can watch a
/// split mid-flight. All live in the array's reshard registry.
struct Progress {
    active: Gauge,
    source: Gauge,
    snapshot: Gauge,
    catchup: Gauge,
    lag: Gauge,
    rounds: Gauge,
    lag_hist: Histogram,
}

impl Progress {
    fn new<D: BlockDev + 'static>(array: &S4Array<D>) -> Progress {
        let reg = array.reshard_registry();
        Progress {
            active: reg.gauge("s4_reshard_active", "1 while a split is in flight"),
            source: reg.gauge("s4_reshard_source_slot", "slot currently splitting"),
            snapshot: reg.gauge(
                "s4_reshard_snapshot_objects",
                "objects bulk-copied from the snapshot",
            ),
            catchup: reg.gauge(
                "s4_reshard_catchup_objects",
                "objects replayed by catch-up rounds",
            ),
            lag: reg.gauge(
                "s4_reshard_lag",
                "dirty objects found by the latest catch-up round",
            ),
            rounds: reg.gauge("s4_reshard_rounds", "catch-up rounds of the current split"),
            lag_hist: reg.histogram(
                "s4_reshard_lag_objects",
                "dirty objects per catch-up round",
            ),
        }
    }
}

/// True for ops that change the state an export would copy.
fn mutates_object(op: OpKind) -> bool {
    matches!(
        op,
        OpKind::Create
            | OpKind::Delete
            | OpKind::Write
            | OpKind::Append
            | OpKind::Truncate
            | OpKind::SetAttr
            | OpKind::SetAcl
    )
}

/// Exports `oid`'s current state from `source` and applies it to every
/// target (or deletes it from them if it is gone on the source).
///
/// Each applied object (or deletion) leaves a `PHASE_CATCHUP` trace
/// record on the *target* member it landed on, carrying the split's
/// trace id — so `s4 trace` can show a migration's catch-up writes as
/// one causal tree whose spans are vouched for by the drives that
/// actually received the data.
fn replay_one<D: BlockDev>(
    source: &S4Drive<D>,
    targets: &[S4Drive<D>],
    admin: &RequestContext,
    oid: u64,
    trace: TraceCtx,
) -> s4_core::Result<()> {
    let tctx = admin.with_trace(trace);
    match source.reshard_export(admin, ObjectId(oid), None)? {
        Some(obj) => {
            for t in targets {
                t.reshard_apply(admin, &obj)?;
                t.record_phase_trace(&tctx, OpKind::Write, ObjectId(oid), true, 0);
            }
        }
        None => {
            for t in targets {
                match t.op_delete(admin, ObjectId(oid)) {
                    Ok(()) | Err(S4Error::NoSuchObject) => {}
                    Err(e) => return Err(e),
                }
                t.record_phase_trace(&tctx, OpKind::Delete, ObjectId(oid), true, 0);
            }
        }
    }
    Ok(())
}

/// Splits live source slot `source_slot` of `array` onto the fresh
/// devices `target_devs` (one per mirror), following the
/// snapshot → catch-up → flip protocol in the module docs. Clients keep
/// dispatching throughout; only the flip's final delta runs under the
/// source shard's (brief) quiesce.
pub fn split_shard<D: BlockDev + 'static>(
    array: &S4Array<D>,
    source_slot: usize,
    target_devs: Vec<D>,
    cfg: ReshardConfig,
) -> s4_core::Result<ReshardReport> {
    let e = array.epoch();
    if source_slot >= e.base || e.bits & (1u64 << source_slot.min(63)) != 0 {
        return Err(S4Error::BadRequest("reshard: slot not splittable"));
    }
    if target_devs.len() != array.mirror_count() {
        return Err(S4Error::BadRequest(
            "reshard: need one target device per mirror",
        ));
    }
    // Sources sit at dense index == slot id.
    let source = array.shard_drive(source_slot);
    let drive_cfg = *source.config();
    let admin = RequestContext::admin(ClientId(0), drive_cfg.admin_token);
    // One trace id for the whole split: every catch-up replay (rounds
    // and the quiesced final delta) stamps it, so the migration shows
    // up in cross-shard assembly as a single causal tree rooted at the
    // source slot.
    let trace = TraceCtx {
        trace_id: TraceIdGen::new().next(source.clock().now().as_micros()),
        origin: source_slot as u8,
        phase: PHASE_CATCHUP,
    };
    let stride = 2 * e.base as u64;
    let target_slot = e.base + source_slot;
    let moving = |oid: u64| !is_reserved(ObjectId(oid)) && oid % stride == target_slot as u64;

    let prog = Progress::new(array);
    prog.active.set(1.0);
    prog.source.set(source_slot as f64);
    prog.snapshot.set(0.0);
    prog.catchup.set(0.0);
    prog.rounds.set(0.0);

    // Targets are formatted in the doubled class so every oid they ever
    // assign (after the flip) stays in the migrated residue.
    let targets: Vec<S4Drive<D>> = target_devs
        .into_iter()
        .map(|dev| {
            S4Drive::format(
                dev,
                drive_cfg.with_oid_class(stride, target_slot as u64),
                source.clock().clone(),
            )
        })
        .collect::<s4_core::Result<_>>()?;

    // --- Phase 1: snapshot at T via the history pool. The audit cursor
    // is taken *before* T so any mutation the snapshot misses is
    // guaranteed to appear in the catch-up stream.
    let mut cursor = source.audit_total_records(&admin)?;
    let t = source.clock().now();
    let mut snapshot_objects = 0usize;
    for oid in source.live_object_ids(&admin)? {
        if !moving(oid) {
            continue;
        }
        if let Some(obj) = source.reshard_export(&admin, ObjectId(oid), Some(t))? {
            for tgt in &targets {
                tgt.reshard_apply(&admin, &obj)?;
            }
            snapshot_objects += 1;
            prog.snapshot.add(1.0);
        }
    }

    // --- Phase 2: catch-up rounds over the audit stream.
    let mut catchup_rounds = 0usize;
    let mut catchup_objects = 0usize;
    loop {
        let recs = source.read_audit_from(&admin, cursor)?;
        cursor += recs.len() as u64;
        let dirty: BTreeSet<u64> = recs
            .iter()
            .filter(|r| r.ok && mutates_object(r.op) && moving(r.object.0))
            .map(|r| r.object.0)
            .collect();
        prog.lag.set(dirty.len() as f64);
        prog.lag_hist.record(dirty.len() as u64);
        for &oid in &dirty {
            replay_one(&source, &targets, &admin, oid, trace)?;
        }
        catchup_objects += dirty.len();
        prog.catchup.add(dirty.len() as f64);
        catchup_rounds += 1;
        prog.rounds.set(catchup_rounds as f64);
        if dirty.len() <= cfg.lag_threshold || catchup_rounds >= cfg.max_rounds {
            break;
        }
    }

    // --- Phase 3: flip. The array quiesces the source shard and hands
    // us its live members; the final (exact) delta replays inside that
    // window, then the new epoch is installed atomically.
    //
    // Flush the source members *before* taking the gate: the quiesce
    // drain ends in a durability barrier, and paying for the dirty
    // segments out here keeps the client-visible pause down to the
    // queue itself plus the (bounded) final delta.
    for (k, state) in array.member_states()[source_slot].iter().enumerate() {
        if *state != s4_array::MemberState::Dead {
            array.member_drive(source_slot, k).force_anchor()?;
        }
    }
    // Likewise pre-raise the targets' ObjectID allocators to the
    // source's current ceiling and anchor them durably now; the flip
    // re-checks the (post-drain) floor but usually finds nothing new to
    // persist inside the gate.
    let floor = source.next_oid(&admin)?;
    for t in &targets {
        t.raise_next_oid(&admin, floor)?;
        t.force_anchor()?;
    }
    let mut final_delta_objects = 0usize;
    let flip = array.install_split(source_slot, |live| {
        let src = &live[0];
        // The audit cursor indexes *one member's* stream (reads are
        // served — and audited — by the first live member only). If
        // membership changed under us and the flip handed back a
        // different member, fall back to an exact full pass over the
        // moving class instead of trusting a foreign cursor.
        let dirty: BTreeSet<u64> = if std::sync::Arc::ptr_eq(&source, src) {
            src.read_audit_from(&admin, cursor)?
                .iter()
                .filter(|r| r.ok && mutates_object(r.op) && moving(r.object.0))
                .map(|r| r.object.0)
                .collect()
        } else {
            let mut all: BTreeSet<u64> = src
                .live_object_ids(&admin)?
                .into_iter()
                .filter(|&oid| moving(oid))
                .collect();
            // Objects the target holds but the source no longer does
            // must be replayed too (they resolve to deletions).
            all.extend(
                targets[0]
                    .live_object_ids(&admin)?
                    .into_iter()
                    .filter(|&oid| moving(oid)),
            );
            all
        };
        for &oid in &dirty {
            replay_one(src, &targets, &admin, oid, trace)?;
        }
        final_delta_objects = dirty.len();
        Ok(targets)
    })?;
    prog.lag.set(0.0);

    // --- Lazy cleanup: the moved class is unreachable on the source as
    // of the flip; delete it member by member. The deleted objects'
    // history stays in each member's pool for the detection window —
    // recoverable forensically, invisible to clients.
    let mut cleaned_objects = 0usize;
    let states = array.member_states();
    for (k, state) in states[source_slot].iter().enumerate() {
        if *state == s4_array::MemberState::Dead {
            continue;
        }
        let member = array.member_drive(source_slot, k);
        let mut cleaned = 0usize;
        for oid in member.live_object_ids(&admin)? {
            if moving(oid) {
                match member.op_delete(&admin, ObjectId(oid)) {
                    Ok(()) | Err(S4Error::NoSuchObject) => cleaned += 1,
                    Err(e) => return Err(e),
                }
            }
        }
        cleaned_objects = cleaned_objects.max(cleaned);
    }

    prog.active.set(0.0);
    Ok(ReshardReport {
        source_slot,
        target_slot,
        snapshot_objects,
        catchup_rounds,
        catchup_objects,
        final_delta_objects,
        cleaned_objects,
        flip,
    })
}

/// Doubles the whole array, `N → 2N`, by splitting every source slot in
/// turn. `device_groups[s]` supplies the target devices (one per
/// mirror) for source slot `s`. Returns one report per split; the last
/// flip completes the generation (the epoch's base doubles).
pub fn double_array<D: BlockDev + 'static>(
    array: &S4Array<D>,
    device_groups: Vec<Vec<D>>,
    cfg: ReshardConfig,
) -> s4_core::Result<Vec<ReshardReport>> {
    let base = array.epoch().base;
    if device_groups.len() != base {
        return Err(S4Error::BadRequest(
            "reshard: need one target device group per source slot",
        ));
    }
    let mut reports = Vec::with_capacity(base);
    for (slot, devs) in device_groups.into_iter().enumerate() {
        reports.push(split_shard(array, slot, devs, cfg)?);
    }
    Ok(reports)
}

/// One-line human status of a split's progress (`s4 reshard` and the
/// TCP reshard frame render this via the array).
pub fn status_text<D: BlockDev + 'static>(array: &S4Array<D>) -> String {
    array.reshard_status_text()
}
