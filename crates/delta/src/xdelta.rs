//! Rolling-hash copy/insert differencing (Xdelta-style).
//!
//! The differencer indexes the *source* (old version) with a rolling hash
//! over fixed-width seeds, then scans the *target* (new version): on a
//! seed match it extends the match in both directions and emits a `Copy`;
//! unmatched bytes accumulate into `Insert`s. Typical source-tree edits
//! (a few changed lines in a large file) collapse to a handful of copies
//! plus tiny inserts.

use std::collections::HashMap;

use crate::{DeltaError, Result};

/// Width of the rolling-hash seed.
const SEED: usize = 16;

/// One delta instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DeltaOp {
    /// Copy `len` bytes from source offset `src`.
    Copy {
        /// Source offset.
        src: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Literal bytes not present in the source.
    Insert(Vec<u8>),
}

/// A complete delta: applying the ops in order against the source yields
/// the target.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Delta {
    /// Instructions, in target order.
    pub ops: Vec<DeltaOp>,
    /// Length of the target this delta produces.
    pub target_len: u64,
}

impl Delta {
    /// Size of the serialized delta in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }

    /// Serializes the delta.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.target_len.to_le_bytes());
        out.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            match op {
                DeltaOp::Copy { src, len } => {
                    out.push(1);
                    out.extend_from_slice(&src.to_le_bytes());
                    out.extend_from_slice(&len.to_le_bytes());
                }
                DeltaOp::Insert(bytes) => {
                    out.push(2);
                    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    out.extend_from_slice(bytes);
                }
            }
        }
        out
    }

    /// Deserializes a delta.
    pub fn decode(buf: &[u8]) -> Result<Delta> {
        if buf.len() < 12 {
            return Err(DeltaError::Corrupt("delta header"));
        }
        let target_len = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let n = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
        let mut pos = 12;
        // The count is untrusted: every op costs at least 5 encoded
        // bytes, so cap the pre-allocation by what the buffer can hold.
        let mut ops = Vec::with_capacity(n.min(buf.len() / 5 + 1));
        for _ in 0..n {
            if pos >= buf.len() {
                return Err(DeltaError::Corrupt("delta op tag"));
            }
            match buf[pos] {
                1 => {
                    if pos + 17 > buf.len() {
                        return Err(DeltaError::Corrupt("copy op"));
                    }
                    let src = u64::from_le_bytes(buf[pos + 1..pos + 9].try_into().unwrap());
                    let len = u64::from_le_bytes(buf[pos + 9..pos + 17].try_into().unwrap());
                    ops.push(DeltaOp::Copy { src, len });
                    pos += 17;
                }
                2 => {
                    if pos + 5 > buf.len() {
                        return Err(DeltaError::Corrupt("insert op"));
                    }
                    let len =
                        u32::from_le_bytes(buf[pos + 1..pos + 5].try_into().unwrap()) as usize;
                    if pos + 5 + len > buf.len() {
                        return Err(DeltaError::Corrupt("insert bytes"));
                    }
                    ops.push(DeltaOp::Insert(buf[pos + 5..pos + 5 + len].to_vec()));
                    pos += 5 + len;
                }
                _ => return Err(DeltaError::Corrupt("unknown op")),
            }
        }
        Ok(Delta { ops, target_len })
    }
}

fn seed_hash(window: &[u8]) -> u64 {
    // FNV-1a over the seed window; recomputed per position (SEED is small
    // enough that true rolling isn't the bottleneck at simulation scale).
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in window {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Computes a delta turning `source` into `target`.
pub fn diff(source: &[u8], target: &[u8]) -> Delta {
    let mut delta = Delta {
        ops: Vec::new(),
        target_len: target.len() as u64,
    };
    if target.is_empty() {
        return delta;
    }
    // Index source seeds (last writer wins; collisions verified later).
    let mut index: HashMap<u64, usize> = HashMap::new();
    if source.len() >= SEED {
        let mut i = 0;
        while i + SEED <= source.len() {
            // First occurrence wins: long runs anchor at their start, so
            // identical prefixes collapse to a single long copy.
            index.entry(seed_hash(&source[i..i + SEED])).or_insert(i);
            i += SEED / 2; // stride halves the index size, matches still found
        }
    }

    let mut pending: Vec<u8> = Vec::new();
    let mut t = 0usize;
    while t < target.len() {
        let candidate = if t + SEED <= target.len() {
            index
                .get(&seed_hash(&target[t..t + SEED]))
                .copied()
                .filter(|&s| source[s..s + SEED] == target[t..t + SEED])
        } else {
            None
        };
        match candidate {
            Some(s) => {
                // Extend backward into pending literals.
                let mut s0 = s;
                let mut t0 = t;
                let mut back = 0;
                while s0 > 0 && t0 > 0 && !pending.is_empty() && source[s0 - 1] == target[t0 - 1] {
                    s0 -= 1;
                    t0 -= 1;
                    pending.pop();
                    back += 1;
                }
                let _ = back;
                // Extend forward.
                let mut len = SEED + (t - t0);
                while s0 + len < source.len()
                    && t0 + len < target.len()
                    && source[s0 + len] == target[t0 + len]
                {
                    len += 1;
                }
                if !pending.is_empty() {
                    delta
                        .ops
                        .push(DeltaOp::Insert(std::mem::take(&mut pending)));
                }
                delta.ops.push(DeltaOp::Copy {
                    src: s0 as u64,
                    len: len as u64,
                });
                t = t0 + len;
            }
            None => {
                pending.push(target[t]);
                t += 1;
            }
        }
    }
    if !pending.is_empty() {
        delta.ops.push(DeltaOp::Insert(pending));
    }
    delta
}

/// Applies `delta` to `source`, producing the target.
pub fn apply(source: &[u8], delta: &Delta) -> Result<Vec<u8>> {
    // `target_len` is untrusted; cap the pre-allocation (the vec still
    // grows as ops legitimately produce output).
    let mut out = Vec::with_capacity((delta.target_len as usize).min(1 << 24));
    for op in &delta.ops {
        match op {
            DeltaOp::Copy { src, len } => {
                let src = *src as usize;
                let len = *len as usize;
                if src + len > source.len() {
                    return Err(DeltaError::SourceOutOfRange);
                }
                out.extend_from_slice(&source[src..src + len]);
            }
            DeltaOp::Insert(bytes) => out.extend_from_slice(bytes),
        }
    }
    if out.len() as u64 != delta.target_len {
        return Err(DeltaError::Corrupt("target length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(source: &[u8], target: &[u8]) -> Delta {
        let d = diff(source, target);
        assert_eq!(apply(source, &d).unwrap(), target, "round trip");
        let decoded = Delta::decode(&d.encode()).unwrap();
        assert_eq!(decoded, d, "codec round trip");
        d
    }

    #[test]
    fn identical_inputs_are_one_copy() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let d = check(&data, &data);
        assert_eq!(d.ops.len(), 1);
        assert!(matches!(d.ops[0], DeltaOp::Copy { src: 0, .. }));
        assert!(d.encoded_len() < 64);
    }

    #[test]
    fn small_edit_in_large_file_is_compact() {
        let old: Vec<u8> = (0..50_000u32).map(|i| (i % 253) as u8).collect();
        let mut new = old.clone();
        new[25_000..25_010].copy_from_slice(b"EDITEDLINE");
        let d = check(&old, &new);
        assert!(
            d.encoded_len() < 200,
            "delta should be tiny, got {}",
            d.encoded_len()
        );
    }

    #[test]
    fn insertion_shifting_everything_still_matches() {
        let old = b"the quick brown fox jumps over the lazy dog. ".repeat(100);
        let mut new = b"PREFIX ".to_vec();
        new.extend_from_slice(&old);
        let d = check(&old, &new);
        assert!(d.encoded_len() < old.len() / 4);
    }

    #[test]
    fn unrelated_inputs_degrade_to_insert() {
        let old = vec![0u8; 1000];
        let new: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let d = check(&old, &new);
        assert!(d.encoded_len() >= 1000);
    }

    #[test]
    fn empty_cases() {
        check(b"", b"");
        check(b"nonempty", b"");
        check(b"", b"target");
        check(b"short", b"sh");
    }

    #[test]
    fn apply_rejects_out_of_range_and_bad_len() {
        let d = Delta {
            ops: vec![DeltaOp::Copy { src: 10, len: 10 }],
            target_len: 10,
        };
        assert_eq!(
            apply(b"short", &d).unwrap_err(),
            DeltaError::SourceOutOfRange
        );
        let d2 = Delta {
            ops: vec![DeltaOp::Insert(vec![1, 2])],
            target_len: 3,
        };
        assert!(matches!(apply(b"", &d2), Err(DeltaError::Corrupt(_))));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Delta::decode(&[1, 2, 3]).is_err());
        let good = diff(b"abcabcabcabcabcabcabc", b"abcabcabcXbcabcabcabc").encode();
        for cut in 0..good.len() {
            let _ = Delta::decode(&good[..cut]);
        }
        let mut bad = good.clone();
        bad[12] = 99; // unknown op tag
        assert!(Delta::decode(&bad).is_err());
    }
}
