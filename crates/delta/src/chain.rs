//! Reverse delta chains over version histories.
//!
//! The S4 cleaner's differencing pass (future work in the paper, built
//! here) keeps the *newest* retained version whole and re-expresses each
//! older version as a delta against its immediate successor — reads of
//! recent versions stay cheap, and the per-version cost drops to the
//! inter-version edit distance (optionally compressed).

use crate::lzss;
use crate::xdelta::{self, Delta};
use crate::Result;

/// Storage mode for the chain's deltas.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChainMode {
    /// Deltas stored raw.
    Diff,
    /// Deltas stored LZSS-compressed (the paper's "differencing +
    /// compression" configuration).
    DiffCompress,
}

/// A version history stored as newest-full plus reverse deltas.
pub struct DeltaChain {
    mode: ChainMode,
    /// Newest version, stored whole (LZSS-compressed in
    /// [`ChainMode::DiffCompress`], matching the paper's experiment which
    /// compressed the trees as well as the diffs).
    newest: Vec<u8>,
    /// Uncompressed copy of the newest version for delta computation.
    newest_plain: Vec<u8>,
    /// `deltas[0]` turns `newest` into the second-newest version;
    /// `deltas[k]` turns version `k` (from the newest end) into version
    /// `k+1`.
    deltas: Vec<Vec<u8>>,
}

impl DeltaChain {
    /// Starts a chain from the initial (and currently newest) version.
    pub fn new(initial: &[u8], mode: ChainMode) -> Self {
        let newest = match mode {
            ChainMode::Diff => initial.to_vec(),
            ChainMode::DiffCompress => lzss::compress(initial),
        };
        DeltaChain {
            mode,
            newest,
            newest_plain: initial.to_vec(),
            deltas: Vec::new(),
        }
    }

    /// Appends a new newest version; the previous newest becomes a delta.
    pub fn push(&mut self, new_version: &[u8]) {
        let delta = xdelta::diff(new_version, &self.newest_plain).encode();
        let stored = match self.mode {
            ChainMode::Diff => delta,
            ChainMode::DiffCompress => lzss::compress(&delta),
        };
        self.deltas.insert(0, stored);
        self.newest_plain = new_version.to_vec();
        self.newest = match self.mode {
            ChainMode::Diff => new_version.to_vec(),
            ChainMode::DiffCompress => lzss::compress(new_version),
        };
    }

    /// Number of versions in the chain.
    pub fn versions(&self) -> usize {
        1 + self.deltas.len()
    }

    /// Materializes version `age` (0 = newest, `versions()-1` = oldest).
    pub fn materialize(&self, age: usize) -> Result<Vec<u8>> {
        let mut cur = self.newest_plain.clone();
        for stored in self.deltas.iter().take(age) {
            let raw = match self.mode {
                ChainMode::Diff => stored.clone(),
                ChainMode::DiffCompress => lzss::decompress(stored)?,
            };
            let delta = Delta::decode(&raw)?;
            cur = xdelta::apply(&cur, &delta)?;
        }
        Ok(cur)
    }

    /// Total bytes the chain occupies.
    pub fn stored_bytes(&self) -> usize {
        self.newest.len() + self.deltas.iter().map(Vec::len).sum::<usize>()
    }

    /// Bytes the same history would occupy with every version whole.
    pub fn full_copy_bytes(&self) -> usize {
        // Upper bound estimate requires the original sizes; callers doing
        // space studies track this externally. Here: newest counted once
        // per version as an approximation helper is *not* provided to
        // avoid misuse.
        self.newest.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn versions() -> Vec<Vec<u8>> {
        // A synthetic "source file" evolving: each day a small edit.
        let base = b"fn main() { println!(\"hello\"); }\n".repeat(300);
        let mut out = vec![base.clone()];
        let mut cur = base;
        for day in 0..7u8 {
            let at = 100 + day as usize * 900;
            cur[at..at + 11].copy_from_slice(b"CHANGED-DAY");
            cur.extend_from_slice(format!("// day {day}\n").as_bytes());
            out.push(cur.clone());
        }
        out
    }

    #[test]
    fn every_version_materializes_exactly() {
        for mode in [ChainMode::Diff, ChainMode::DiffCompress] {
            let vs = versions();
            let mut chain = DeltaChain::new(&vs[0], mode);
            for v in &vs[1..] {
                chain.push(v);
            }
            assert_eq!(chain.versions(), vs.len());
            for (age, want) in vs.iter().rev().enumerate() {
                assert_eq!(&chain.materialize(age).unwrap(), want, "age {age} {mode:?}");
            }
        }
    }

    #[test]
    fn differencing_gains_significant_space() {
        let vs = versions();
        let full: usize = vs.iter().map(Vec::len).sum();

        let mut diff_chain = DeltaChain::new(&vs[0], ChainMode::Diff);
        let mut comp_chain = DeltaChain::new(&vs[0], ChainMode::DiffCompress);
        for v in &vs[1..] {
            diff_chain.push(v);
            comp_chain.push(v);
        }
        let diff_factor = full as f64 / diff_chain.stored_bytes() as f64;
        let comp_factor = full as f64 / comp_chain.stored_bytes() as f64;
        // The paper reports ~3x from differencing and ~5x adding
        // compression on its CVS history; synthetic daily edits should
        // land at least in that band.
        assert!(diff_factor > 3.0, "diff factor {diff_factor}");
        assert!(comp_factor > diff_factor, "compression must add savings");
    }

    #[test]
    fn single_version_chain() {
        let chain = DeltaChain::new(b"only", ChainMode::Diff);
        assert_eq!(chain.versions(), 1);
        assert_eq!(chain.materialize(0).unwrap(), b"only");
    }
}
