//! LZSS compression with a 4 KiB sliding window.
//!
//! Token stream: flag bytes group 8 tokens; bit set = `(offset:12,
//! len:4+3)` back-reference packed in 2 bytes, bit clear = literal byte.
//! Matches of 3..=18 bytes at distances 1..=4095 — the classic LZSS
//! parameterization, sufficient for the ~2x gain the paper's compression
//! estimates assume on text-like data.

use std::collections::HashMap;

use crate::{DeltaError, Result};

const WINDOW: usize = 4095;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;

/// Compresses `input`. The output begins with the original length
/// (`u32-le`), so [`decompress`] can pre-allocate and validate.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());

    // Chains of positions per 3-byte prefix.
    let mut heads: HashMap<[u8; 3], Vec<usize>> = HashMap::new();

    let mut i = 0usize;
    let mut flag_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u8;

    let push_token = |out: &mut Vec<u8>, flag_pos: &mut usize, flag_bit: &mut u8| {
        if *flag_bit == 8 {
            *flag_pos = out.len();
            out.push(0);
            *flag_bit = 0;
        }
    };

    while i < input.len() {
        push_token(&mut out, &mut flag_pos, &mut flag_bit);
        let mut best: Option<(usize, usize)> = None; // (pos, len)
        if i + MIN_MATCH <= input.len() {
            let key = [input[i], input[i + 1], input[i + 2]];
            if let Some(chain) = heads.get(&key) {
                for &cand in chain.iter().rev().take(16) {
                    if i - cand > WINDOW {
                        break;
                    }
                    let mut len = 0;
                    while len < MAX_MATCH
                        && i + len < input.len()
                        && input[cand + len] == input[i + len]
                    {
                        len += 1;
                    }
                    if len >= MIN_MATCH && best.is_none_or(|(_, bl)| len > bl) {
                        best = Some((cand, len));
                        if len == MAX_MATCH {
                            break;
                        }
                    }
                }
            }
        }
        match best {
            Some((pos, len)) => {
                let dist = (i - pos) as u16; // 1..=4095
                let packed = (dist << 4) | ((len - MIN_MATCH) as u16);
                out[flag_pos] |= 1 << flag_bit;
                out.extend_from_slice(&packed.to_le_bytes());
                for k in i..(i + len).min(input.len().saturating_sub(MIN_MATCH - 1)) {
                    if k + MIN_MATCH <= input.len() {
                        heads
                            .entry([input[k], input[k + 1], input[k + 2]])
                            .or_default()
                            .push(k);
                    }
                }
                i += len;
            }
            None => {
                out.push(input[i]);
                if i + MIN_MATCH <= input.len() {
                    heads
                        .entry([input[i], input[i + 1], input[i + 2]])
                        .or_default()
                        .push(i);
                }
                i += 1;
            }
        }
        flag_bit += 1;
    }
    out
}

/// Decompresses a [`compress`] output.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    if data.len() < 4 {
        return Err(DeltaError::Corrupt("lzss header"));
    }
    let expect = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
    // `expect` is untrusted; each input token yields at most MAX_MATCH
    // output bytes, so cap the pre-allocation accordingly.
    let mut out = Vec::with_capacity(expect.min(data.len() * MAX_MATCH));
    let mut pos = 4usize;
    let mut flags = 0u8;
    let mut flag_bit = 8u8;
    while out.len() < expect {
        if flag_bit == 8 {
            if pos >= data.len() {
                return Err(DeltaError::Corrupt("lzss flags truncated"));
            }
            flags = data[pos];
            pos += 1;
            flag_bit = 0;
        }
        if flags & (1 << flag_bit) != 0 {
            if pos + 2 > data.len() {
                return Err(DeltaError::Corrupt("lzss ref truncated"));
            }
            let packed = u16::from_le_bytes(data[pos..pos + 2].try_into().unwrap());
            pos += 2;
            let dist = (packed >> 4) as usize;
            let len = (packed & 0xF) as usize + MIN_MATCH;
            if dist == 0 || dist > out.len() {
                return Err(DeltaError::Corrupt("lzss bad distance"));
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            if pos >= data.len() {
                return Err(DeltaError::Corrupt("lzss literal truncated"));
            }
            out.push(data[pos]);
            pos += 1;
        }
        flag_bit += 1;
    }
    if out.len() != expect {
        return Err(DeltaError::Corrupt("lzss length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data);
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(round_trip(b""), 5.min(round_trip(b"")));
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let text = b"int main(void) { return do_the_thing(argc, argv); }\n".repeat(200);
        let c = round_trip(&text);
        assert!(
            (c as f64) < text.len() as f64 * 0.5,
            "expected >=2x on repetitive text: {} -> {}",
            text.len(),
            c
        );
    }

    #[test]
    fn random_data_does_not_explode() {
        // Pseudo-random bytes: compression gains nothing, overhead bounded.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let c = round_trip(&data);
        assert!(c < data.len() + data.len() / 7 + 16);
    }

    #[test]
    fn run_of_zeros() {
        let c = round_trip(&vec![0u8; 100_000]);
        assert!(c < 16_000);
    }

    #[test]
    fn long_range_matches_beyond_window_are_handled() {
        // Repeats separated by more than WINDOW bytes can't back-reference
        // but must still round-trip.
        let mut data = vec![7u8; 100];
        data.extend(std::iter::repeat_n(1u8, 5000));
        data.extend_from_slice(&[7u8; 100]);
        round_trip(&data);
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(&[1, 2]).is_err());
        // Claimed length with no body.
        assert!(decompress(&[100, 0, 0, 0]).is_err());
        // Bad back-reference distance.
        let mut c = compress(b"abcabcabcabc");
        // Corrupt a reference byte if present; must error or round-trip,
        // never panic.
        if c.len() > 6 {
            c[5] ^= 0xFF;
            let _ = decompress(&c);
        }
    }
}
