//! Cross-version differencing and compression (§4.2.2, §5.2).
//!
//! "Journal-based metadata can also simplify cross-version differential
//! compression. Since the blocks changed between versions are noted
//! within each entry, it is easy to find the blocks that should be
//! compared. Once the differencing is complete, the old blocks can be
//! discarded, and the difference left in its place."
//!
//! The paper measured ~200% space-efficiency gain from differencing
//! adjacent daily versions (Xdelta) and another ~200% from compressing
//! the deltas, for 500% total — extending a 10 GB history pool's
//! detection window to 50–470 days (Figure 7). This crate implements
//! both technologies from scratch:
//!
//! * [`xdelta`] — a rolling-hash copy/insert differencer in the spirit of
//!   Xdelta (MacDonald), with a byte-stable binary encoding.
//! * [`lzss`] — LZ77/LZSS compression with a 4 KiB window.
//! * [`chain`] — reverse delta chains: newest version stored whole, each
//!   older version as a delta against its successor, exactly how the S4
//!   cleaner would repack expired-adjacent history.
//!
//! # Examples
//!
//! ```
//! let old = b"the quick brown fox jumps over the lazy dog".repeat(20);
//! let mut new = old.clone();
//! new[100..105].copy_from_slice(b"EDITS");
//!
//! // A small edit produces a tiny delta...
//! let delta = s4_delta::diff(&old, &new);
//! assert!(delta.encoded_len() < old.len() / 4);
//! // ...that reproduces the target exactly.
//! assert_eq!(s4_delta::apply(&old, &delta)?, new);
//!
//! // And LZSS round-trips losslessly.
//! let compressed = s4_delta::compress(&old);
//! assert_eq!(s4_delta::decompress(&compressed)?, old);
//! # Ok::<(), s4_delta::DeltaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod lzss;
pub mod xdelta;

pub use chain::DeltaChain;
pub use lzss::{compress, decompress};
pub use xdelta::{apply, diff, Delta, DeltaOp};

use core::fmt;

/// Errors from delta/compression decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A serialized delta failed validation.
    Corrupt(&'static str),
    /// A delta referenced source bytes out of range.
    SourceOutOfRange,
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Corrupt(what) => write!(f, "corrupt delta: {what}"),
            DeltaError::SourceOutOfRange => write!(f, "delta references bytes beyond source"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Result alias for delta operations.
pub type Result<T> = std::result::Result<T, DeltaError>;
