// Hermetic-build gate: needs the external `proptest` crate. Re-add
// `proptest = "1"` to [dev-dependencies] and run
// `cargo test --features proptest-tests` to enable.
#![cfg(feature = "proptest-tests")]

//! Property-based tests for differencing and compression.

use proptest::prelude::*;

use s4_delta::chain::ChainMode;
use s4_delta::{apply, compress, decompress, diff, Delta, DeltaChain};

/// Byte sources with enough structure to exercise both copy and insert
/// paths.
fn blob() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..2048),
        (any::<u8>(), 1usize..4096).prop_map(|(b, n)| vec![b; n]),
        (proptest::collection::vec(any::<u8>(), 1..64), 1usize..64)
            .prop_map(|(unit, reps)| unit.repeat(reps)),
    ]
}

/// `(source, target)` pairs where target is an edited source (the common
/// case for cross-version differencing).
fn edited_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        blob(),
        proptest::collection::vec(any::<u8>(), 0..64),
        any::<u16>(),
    )
        .prop_map(|(src, insert, pos)| {
            let mut dst = src.clone();
            let at = if dst.is_empty() {
                0
            } else {
                pos as usize % dst.len()
            };
            dst.splice(at..at, insert);
            (src, dst)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn diff_apply_round_trips((src, dst) in edited_pair()) {
        let d = diff(&src, &dst);
        prop_assert_eq!(apply(&src, &d).unwrap(), dst);
    }

    #[test]
    fn diff_apply_round_trips_unrelated(src in blob(), dst in blob()) {
        let d = diff(&src, &dst);
        prop_assert_eq!(apply(&src, &d).unwrap(), dst);
    }

    #[test]
    fn delta_codec_round_trips((src, dst) in edited_pair()) {
        let d = diff(&src, &dst);
        let decoded = Delta::decode(&d.encode()).unwrap();
        prop_assert_eq!(decoded, d);
    }

    #[test]
    fn delta_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Delta::decode(&bytes);
    }

    #[test]
    fn lzss_round_trips(data in blob()) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn lzss_decompress_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decompress(&bytes);
    }

    #[test]
    fn chains_materialize_every_version(
        versions in proptest::collection::vec(blob(), 1..8),
        compress_mode in any::<bool>(),
    ) {
        let mode = if compress_mode { ChainMode::DiffCompress } else { ChainMode::Diff };
        let mut chain = DeltaChain::new(&versions[0], mode);
        for v in &versions[1..] {
            chain.push(v);
        }
        prop_assert_eq!(chain.versions(), versions.len());
        for (age, want) in versions.iter().rev().enumerate() {
            prop_assert_eq!(&chain.materialize(age).unwrap(), want);
        }
    }
}
