//! Deterministic workload generators for the S4 evaluation (§5.1.1).
//!
//! The paper drives its four servers with PostMark ("Internet server"
//! workload), SSH-build ("software development" workload, an
//! Andrew-benchmark replacement), and a small-file micro-benchmark for
//! the audit-log study. This crate regenerates those workloads as
//! deterministic operation traces that replay against anything
//! implementing [`s4_fs::FileServer`]:
//!
//! * [`rng`] — seedable xoshiro256\*\* PRNG (vendored so traces are
//!   byte-stable regardless of external crate versions).
//! * [`ops`] — the [`FsOp`] trace vocabulary and the [`replay`] driver.
//! * [`postmark`] — PostMark (Katcher, TR3022): file pool, paired
//!   create/delete + read/append transactions.
//! * [`sshbuild`] — SSH-build's unpack / configure / build phases, with
//!   CPU think time for the compile-heavy parts.
//! * [`micro`] — the Figure 6 micro-benchmark: 10,000 1 KiB files in 10
//!   directories; create, read in creation order, delete in creation
//!   order.
//! * [`srctree`] — synthetic source-tree evolution (daily edits) for the
//!   §5.2 differencing/compression study.
//! * [`profiles`] — the three workload-study write rates behind
//!   Figure 7 (AFS, NT, Elephant).
//!
//! # Examples
//!
//! ```
//! use s4_workloads::postmark::{self, PostmarkConfig};
//!
//! // The paper's default PostMark, as a deterministic trace.
//! let phases = postmark::generate(&PostmarkConfig::tiny());
//! assert!(!phases.create.is_empty());
//! // Same seed, same trace — byte for byte.
//! let again = postmark::generate(&PostmarkConfig::tiny());
//! assert_eq!(phases.transactions, again.transactions);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;
pub mod ops;
pub mod postmark;
pub mod profiles;
pub mod rng;
pub mod srctree;
pub mod sshbuild;

pub use micro::{micro_benchmark, MicroConfig, MicroPhases};
pub use ops::{replay, replay_with_clock, trace_write_bytes, FsOp, ReplayStats};
pub use postmark::{PostmarkConfig, PostmarkPhases};
pub use profiles::{WorkloadProfile, AFS_SERVER, ELEPHANT_FS, NT_PERSONAL};
pub use rng::Rng;
pub use srctree::{SourceTree, SourceTreeConfig};
pub use sshbuild::{sshbuild_phases, SshBuildConfig, SshBuildPhases};
