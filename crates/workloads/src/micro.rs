//! The Figure 6 micro-benchmark.
//!
//! "The micro-benchmarks proceed in three phases: creation of 10,000 1KB
//! files (split across 10 directories), reads of the newly created files
//! in creation order, and deletion of the files in creation order."
//! (§5.1.4)

use crate::ops::FsOp;
use crate::rng::Rng;

/// Micro-benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct MicroConfig {
    /// Number of files.
    pub files: usize,
    /// Directories the files are split across.
    pub dirs: usize,
    /// Size of each file.
    pub file_size: usize,
    /// RNG seed for file contents.
    pub seed: u64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            files: 10_000,
            dirs: 10,
            file_size: 1024,
            seed: 0x4D49_4352,
        }
    }
}

impl MicroConfig {
    /// A scaled-down configuration for unit tests.
    pub fn tiny() -> Self {
        MicroConfig {
            files: 50,
            dirs: 5,
            file_size: 1024,
            seed: 5,
        }
    }
}

/// The three generated phases.
pub struct MicroPhases {
    /// Create all files.
    pub create: Vec<FsOp>,
    /// Read them in creation order.
    pub read: Vec<FsOp>,
    /// Delete them in creation order.
    pub delete: Vec<FsOp>,
}

/// Generates the micro-benchmark.
pub fn micro_benchmark(config: &MicroConfig) -> MicroPhases {
    let mut rng = Rng::new(config.seed);
    let path_of = |i: usize| format!("mb{}/f{}", i % config.dirs, i);

    let mut create = Vec::with_capacity(config.files * 2 + config.dirs);
    for d in 0..config.dirs {
        create.push(FsOp::Mkdir(format!("mb{d}")));
    }
    for i in 0..config.files {
        let path = path_of(i);
        create.push(FsOp::Create(path.clone()));
        create.push(FsOp::Write {
            path,
            offset: 0,
            data: rng.bytes(config.file_size),
        });
    }

    let read = (0..config.files)
        .map(|i| FsOp::ReadAll(path_of(i)))
        .collect();
    let delete = (0..config.files)
        .map(|i| FsOp::Remove(path_of(i)))
        .collect();

    MicroPhases {
        create,
        read,
        delete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::trace_write_bytes;

    #[test]
    fn paper_shape() {
        let m = micro_benchmark(&MicroConfig::default());
        assert_eq!(m.create.len(), 10 + 2 * 10_000);
        assert_eq!(m.read.len(), 10_000);
        assert_eq!(m.delete.len(), 10_000);
        assert_eq!(trace_write_bytes(&m.create), 10_000 * 1024);
    }

    #[test]
    fn read_order_equals_create_order() {
        let m = micro_benchmark(&MicroConfig::tiny());
        let created: Vec<&String> = m
            .create
            .iter()
            .filter_map(|o| match o {
                FsOp::Create(p) => Some(p),
                _ => None,
            })
            .collect();
        let read: Vec<&String> = m
            .read
            .iter()
            .filter_map(|o| match o {
                FsOp::ReadAll(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(created, read);
    }
}
