//! The operation-trace vocabulary and the replay driver.

use std::collections::HashMap;

use s4_clock::{SimClock, SimDuration, SimTime};
use s4_fs::{FileServer, FsError, Handle};

/// One file-system operation in a trace. Paths are `/`-separated and
/// relative to the server root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsOp {
    /// Create a directory.
    Mkdir(String),
    /// Create an empty file.
    Create(String),
    /// Write `data` at `offset`.
    Write {
        /// Target path.
        path: String,
        /// Byte offset.
        offset: u64,
        /// Payload.
        data: Vec<u8>,
    },
    /// Append `data` at end of file.
    Append {
        /// Target path.
        path: String,
        /// Payload.
        data: Vec<u8>,
    },
    /// Read `len` bytes at `offset`.
    Read {
        /// Target path.
        path: String,
        /// Byte offset.
        offset: u64,
        /// Length.
        len: u64,
    },
    /// Read the whole file in 4 KiB transfers (the paper's NFS transfer
    /// size).
    ReadAll(String),
    /// Remove a file.
    Remove(String),
    /// Remove an empty directory.
    Rmdir(String),
    /// Rename.
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// List a directory.
    Readdir(String),
    /// Stat a path.
    Stat(String),
    /// Truncate a file.
    Truncate {
        /// Target path.
        path: String,
        /// New size.
        size: u64,
    },
    /// Client CPU think time (e.g. compilation); requires
    /// [`replay_with_clock`].
    CpuThink(SimDuration),
}

/// Outcome of a trace replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Operations attempted.
    pub ops: u64,
    /// Operations that failed (traces are designed to succeed; failures
    /// indicate a server bug).
    pub errors: u64,
    /// Bytes written by the trace.
    pub bytes_written: u64,
    /// Bytes read by the trace.
    pub bytes_read: u64,
    /// Simulated time consumed.
    pub elapsed: SimDuration,
}

fn split_path(path: &str) -> (&str, &str) {
    match path.rfind('/') {
        Some(i) => (&path[..i], &path[i + 1..]),
        None => ("", path),
    }
}

fn apply_op<S: FileServer + ?Sized>(
    server: &S,
    op: &FsOp,
    handles: &mut HashMap<String, Handle>,
    stats: &mut ReplayStats,
) -> Result<(), FsError> {
    fn resolve<S: FileServer + ?Sized>(
        server: &S,
        handles: &mut HashMap<String, Handle>,
        path: &str,
    ) -> Result<Handle, FsError> {
        if path.is_empty() {
            return Ok(server.root());
        }
        if let Some(&h) = handles.get(path) {
            return Ok(h);
        }
        let h = server.resolve_path(path)?;
        handles.insert(path.to_string(), h);
        Ok(h)
    }

    match op {
        FsOp::Mkdir(path) => {
            let (dir, name) = split_path(path);
            let d = resolve(server, handles, dir)?;
            let h = server.mkdir(d, name)?;
            handles.insert(path.clone(), h);
        }
        FsOp::Create(path) => {
            let (dir, name) = split_path(path);
            let d = resolve(server, handles, dir)?;
            let h = server.create(d, name)?;
            handles.insert(path.clone(), h);
        }
        FsOp::Write { path, offset, data } => {
            let h = resolve(server, handles, path)?;
            server.write(h, *offset, data)?;
            stats.bytes_written += data.len() as u64;
        }
        FsOp::Append { path, data } => {
            let h = resolve(server, handles, path)?;
            let size = server.getattr(h)?.size;
            server.write(h, size, data)?;
            stats.bytes_written += data.len() as u64;
        }
        FsOp::Read { path, offset, len } => {
            let h = resolve(server, handles, path)?;
            let data = server.read(h, *offset, *len)?;
            stats.bytes_read += data.len() as u64;
        }
        FsOp::ReadAll(path) => {
            let h = resolve(server, handles, path)?;
            let size = server.getattr(h)?.size;
            let mut off = 0;
            while off < size {
                let data = server.read(h, off, 4096)?;
                if data.is_empty() {
                    break;
                }
                stats.bytes_read += data.len() as u64;
                off += data.len() as u64;
            }
        }
        FsOp::Remove(path) => {
            let (dir, name) = split_path(path);
            let d = resolve(server, handles, dir)?;
            server.remove(d, name)?;
            handles.remove(path);
        }
        FsOp::Rmdir(path) => {
            let (dir, name) = split_path(path);
            let d = resolve(server, handles, dir)?;
            server.rmdir(d, name)?;
            handles.remove(path);
        }
        FsOp::Rename { from, to } => {
            let (fd, fname) = split_path(from);
            let (td, tname) = split_path(to);
            let fdh = resolve(server, handles, fd)?;
            let tdh = resolve(server, handles, td)?;
            server.rename(fdh, fname, tdh, tname)?;
            if let Some(h) = handles.remove(from) {
                handles.insert(to.clone(), h);
            }
        }
        FsOp::Readdir(path) => {
            let h = resolve(server, handles, path)?;
            server.readdir(h)?;
        }
        FsOp::Stat(path) => {
            let h = resolve(server, handles, path)?;
            server.getattr(h)?;
        }
        FsOp::Truncate { path, size } => {
            let h = resolve(server, handles, path)?;
            server.truncate(h, *size)?;
        }
        FsOp::CpuThink(_) => {}
    }
    Ok(())
}

/// Replays `trace` against `server`, resolving paths through a handle
/// cache (as an NFS client's name cache would). [`FsOp::CpuThink`] ops
/// are counted but cost nothing; use [`replay_with_clock`] for traces
/// with think time.
pub fn replay<S: FileServer + ?Sized>(server: &S, trace: &[FsOp]) -> ReplayStats {
    let mut stats = ReplayStats::default();
    let start = server.now();
    let mut handles = HashMap::new();
    for op in trace {
        stats.ops += 1;
        if apply_op(server, op, &mut handles, &mut stats).is_err() {
            stats.errors += 1;
        }
    }
    stats.elapsed = server.now() - start;
    stats
}

/// Replays `trace`, advancing `clock` for [`FsOp::CpuThink`] operations
/// (client-side compilation etc.).
pub fn replay_with_clock<S: FileServer + ?Sized>(
    server: &S,
    trace: &[FsOp],
    clock: &SimClock,
) -> ReplayStats {
    let mut stats = ReplayStats::default();
    let start = server.now();
    let mut handles = HashMap::new();
    for op in trace {
        stats.ops += 1;
        if let FsOp::CpuThink(d) = op {
            clock.advance(*d);
            continue;
        }
        if apply_op(server, op, &mut handles, &mut stats).is_err() {
            stats.errors += 1;
        }
    }
    stats.elapsed = server.now() - start;
    stats
}

/// Total bytes a trace writes (for capacity accounting).
pub fn trace_write_bytes(trace: &[FsOp]) -> u64 {
    trace
        .iter()
        .map(|op| match op {
            FsOp::Write { data, .. } | FsOp::Append { data, .. } => data.len() as u64,
            _ => 0,
        })
        .sum()
}

/// Current simulated time helper for building traces against a server.
pub fn server_time<S: FileServer + ?Sized>(server: &S) -> SimTime {
    server.now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_path_cases() {
        assert_eq!(split_path("a/b/c"), ("a/b", "c"));
        assert_eq!(split_path("top"), ("", "top"));
    }

    #[test]
    fn trace_write_accounting() {
        let trace = vec![
            FsOp::Create("f".into()),
            FsOp::Write {
                path: "f".into(),
                offset: 0,
                data: vec![0; 100],
            },
            FsOp::Append {
                path: "f".into(),
                data: vec![0; 50],
            },
            FsOp::Read {
                path: "f".into(),
                offset: 0,
                len: 10,
            },
        ];
        assert_eq!(trace_write_bytes(&trace), 150);
    }
}
