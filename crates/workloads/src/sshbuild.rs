//! SSH-build: the paper's software-development workload (§5.1.1).
//!
//! "It consists of 3 phases: the unpack phase, which unpacks the
//! compressed tar archive of SSH v1.2.27 (approximately 1MB in size
//! before decompression), stresses metadata operations on files of
//! varying sizes. The configure phase consists of the automatic
//! generation of header files and Makefiles, which involves building
//! various small programs that check the existing system configuration.
//! The build phase compiles, links, and removes temporary files. This
//! last phase is the most CPU intensive, but it also generates a large
//! number of object files and a few executables."
//!
//! We regenerate the benchmark as a deterministic trace shaped like the
//! real archive: ~35 directories, ~430 files (sources, headers, docs)
//! totaling ≈3.6 MB unpacked; ~80 configure probes, each compiling and
//! deleting a tiny test program; and a build that reads each source plus
//! headers, burns compile CPU, writes a `.o`, then links two executables
//! and removes the temporaries.

use s4_clock::SimDuration;

use crate::ops::FsOp;
use crate::rng::Rng;

/// SSH-build parameters.
#[derive(Clone, Copy, Debug)]
pub struct SshBuildConfig {
    /// Number of C source files in the tree.
    pub sources: usize,
    /// Number of header files.
    pub headers: usize,
    /// Number of configure probes.
    pub probes: usize,
    /// CPU time to compile one source file.
    pub compile_cpu: SimDuration,
    /// CPU time per configure probe.
    pub probe_cpu: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SshBuildConfig {
    fn default() -> Self {
        SshBuildConfig {
            sources: 180,
            headers: 90,
            probes: 80,
            // FreeBSD/Linux PIII-600-era gcc: ~0.9 s per file; the paper's
            // build phase runs ~100-200 s wall on all systems.
            compile_cpu: SimDuration::from_millis(900),
            probe_cpu: SimDuration::from_millis(350),
            seed: 0x5353_4842,
        }
    }
}

impl SshBuildConfig {
    /// A scaled-down configuration for unit tests.
    pub fn tiny() -> Self {
        SshBuildConfig {
            sources: 8,
            headers: 4,
            probes: 5,
            compile_cpu: SimDuration::from_millis(10),
            probe_cpu: SimDuration::from_millis(5),
            seed: 3,
        }
    }
}

/// The three generated phases.
pub struct SshBuildPhases {
    /// Unpack the source archive.
    pub unpack: Vec<FsOp>,
    /// Configure probes + generated headers/Makefiles.
    pub configure: Vec<FsOp>,
    /// Compile, link, remove temporaries.
    pub build: Vec<FsOp>,
}

const DIRS: &[&str] = &[
    "ssh",
    "ssh/lib",
    "ssh/zlib",
    "ssh/gmp",
    "ssh/rsaref",
    "ssh/doc",
    "ssh/contrib",
];

/// Generates the SSH-build trace.
pub fn sshbuild_phases(config: &SshBuildConfig) -> SshBuildPhases {
    let mut rng = Rng::new(config.seed);

    // -------------------------------------------------- unpack
    let mut unpack = Vec::new();
    for d in DIRS {
        unpack.push(FsOp::Mkdir(d.to_string()));
    }
    let mut sources = Vec::new();
    let mut headers = Vec::new();
    // Sources: 2-30 KB of text-like bytes, written in 4 KB tar-extract
    // chunks.
    for i in 0..config.sources {
        let dir = DIRS[rng.index(DIRS.len() - 2)]; // not doc/contrib
        let path = format!("{dir}/src{i}.c");
        let size = rng.range(2_000, 30_000);
        unpack.push(FsOp::Create(path.clone()));
        push_chunked_write(&mut unpack, &mut rng, &path, size);
        sources.push((path, size));
    }
    for i in 0..config.headers {
        let dir = DIRS[rng.index(DIRS.len())];
        let path = format!("{dir}/hdr{i}.h");
        let size = rng.range(300, 6_000);
        unpack.push(FsOp::Create(path.clone()));
        push_chunked_write(&mut unpack, &mut rng, &path, size);
        headers.push((path, size));
    }
    // Docs, README, configure script.
    for (name, size) in [
        ("ssh/README", 12_000u64),
        ("ssh/configure", 120_000),
        ("ssh/Makefile.in", 22_000),
        ("ssh/doc/ssh.1", 18_000),
        ("ssh/doc/sshd.8", 16_000),
        ("ssh/COPYING", 14_000),
    ] {
        unpack.push(FsOp::Create(name.to_string()));
        push_chunked_write(&mut unpack, &mut rng, name, size);
    }

    // -------------------------------------------------- configure
    let mut configure = Vec::new();
    configure.push(FsOp::ReadAll("ssh/configure".into()));
    for p in 0..config.probes {
        // Write a tiny conftest.c, "compile" it, run it, delete both.
        let src = "ssh/conftest.c".to_string();
        let bin = "ssh/conftest".to_string();
        configure.push(FsOp::Create(src.clone()));
        let probe_len = rng.range(80, 600) as usize;
        configure.push(FsOp::Write {
            path: src.clone(),
            offset: 0,
            data: rng.bytes(probe_len),
        });
        // Probe compilation reads a couple of headers.
        for _ in 0..2 {
            if !headers.is_empty() {
                let (h, _) = &headers[rng.index(headers.len())];
                configure.push(FsOp::Read {
                    path: h.clone(),
                    offset: 0,
                    len: 4096,
                });
            }
        }
        configure.push(FsOp::CpuThink(config.probe_cpu));
        configure.push(FsOp::Create(bin.clone()));
        let bin_len = rng.range(4_000, 16_000) as usize;
        configure.push(FsOp::Write {
            path: bin.clone(),
            offset: 0,
            data: rng.bytes(bin_len),
        });
        configure.push(FsOp::Remove(bin));
        configure.push(FsOp::Remove(src));
        let _ = p;
    }
    // Generated outputs.
    for (name, size) in [
        ("ssh/config.h", 9_000u64),
        ("ssh/Makefile", 24_000),
        ("ssh/config.status", 15_000),
        ("ssh/config.cache", 7_000),
        ("ssh/config.log", 20_000),
    ] {
        configure.push(FsOp::Create(name.to_string()));
        push_chunked_write(&mut configure, &mut rng, name, size);
    }

    // -------------------------------------------------- build
    let mut build = Vec::new();
    let mut objects = Vec::new();
    build.push(FsOp::ReadAll("ssh/Makefile".into()));
    for (src, _size) in &sources {
        build.push(FsOp::ReadAll(src.clone()));
        // Each compile pulls in a handful of headers.
        for _ in 0..4 {
            if !headers.is_empty() {
                let (h, hsize) = &headers[rng.index(headers.len())];
                build.push(FsOp::Read {
                    path: h.clone(),
                    offset: 0,
                    len: *hsize,
                });
            }
        }
        build.push(FsOp::CpuThink(config.compile_cpu));
        let obj = format!("{}.o", src.trim_end_matches(".c"));
        let osize = rng.range(8_000, 60_000);
        build.push(FsOp::Create(obj.clone()));
        push_chunked_write(&mut build, &mut rng, &obj, osize);
        objects.push((obj, osize));
    }
    // Link ssh and sshd: read every object, burn CPU, write executables.
    for exe in ["ssh/ssh", "ssh/sshd"] {
        for (obj, osize) in &objects {
            build.push(FsOp::Read {
                path: obj.clone(),
                offset: 0,
                len: *osize,
            });
        }
        build.push(FsOp::CpuThink(SimDuration::from_secs(3)));
        build.push(FsOp::Create(exe.to_string()));
        push_chunked_write(&mut build, &mut rng, exe, 1_900_000);
    }
    // Remove temporaries (the paper: the build phase "removes temporary
    // files").
    for (obj, _) in &objects {
        build.push(FsOp::Remove(obj.clone()));
    }

    SshBuildPhases {
        unpack,
        configure,
        build,
    }
}

/// Writes `size` bytes to `path` in 4 KiB chunks (NFSv2 transfer size).
fn push_chunked_write(out: &mut Vec<FsOp>, rng: &mut Rng, path: &str, size: u64) {
    let mut off = 0;
    while off < size {
        let n = 4096.min(size - off);
        out.push(FsOp::Write {
            path: path.to_string(),
            offset: off,
            data: rng.bytes(n as usize),
        });
        off += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::trace_write_bytes;

    #[test]
    fn deterministic() {
        let a = sshbuild_phases(&SshBuildConfig::tiny());
        let b = sshbuild_phases(&SshBuildConfig::tiny());
        assert_eq!(a.unpack, b.unpack);
        assert_eq!(a.configure, b.configure);
        assert_eq!(a.build, b.build);
    }

    #[test]
    fn default_tree_is_archive_sized() {
        let p = sshbuild_phases(&SshBuildConfig::default());
        let unpacked = trace_write_bytes(&p.unpack);
        // SSH 1.2.27 unpacks to roughly 3-4 MB.
        assert!(
            (2_500_000..6_000_000).contains(&unpacked),
            "unpacked bytes {unpacked}"
        );
        // The build phase has compile think time and object writes.
        let thinks = p
            .build
            .iter()
            .filter(|o| matches!(o, FsOp::CpuThink(_)))
            .count();
        assert_eq!(thinks, 180 + 2);
    }

    #[test]
    fn configure_probes_create_and_delete() {
        let p = sshbuild_phases(&SshBuildConfig::tiny());
        let creates = p
            .configure
            .iter()
            .filter(|o| matches!(o, FsOp::Create(_)))
            .count();
        let removes = p
            .configure
            .iter()
            .filter(|o| matches!(o, FsOp::Remove(_)))
            .count();
        // Two creates and two removes per probe, plus generated outputs.
        assert_eq!(removes, 2 * 5);
        assert_eq!(creates, 2 * 5 + 5);
    }
}
