//! Write-rate profiles from the three workload studies behind Figure 7.
//!
//! "Spasojevic and Satyanarayanan's AFS trace study reports approximately
//! 143MB per day of write traffic per file server. ... Even if the
//! writes consume 1GB per day per server, as was seen by Vogels' Windows
//! NT file usage study ... Santry, et al. report a write data rate of
//! 110MB per day." (§5.2)

/// One published workload study's write rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// Study name (used as the Figure 7 x-axis label).
    pub name: &'static str,
    /// Average write traffic in MB/day.
    pub write_mb_per_day: f64,
    /// Source description.
    pub source: &'static str,
}

/// AFS wide-area file servers (Spasojevic & Satyanarayanan 1996).
pub const AFS_SERVER: WorkloadProfile = WorkloadProfile {
    name: "AFS",
    write_mb_per_day: 143.0,
    source: "70-server wide-area AFS study, ~200GB total data",
};

/// Windows NT personal/shared/administrative machines (Vogels 1999).
pub const NT_PERSONAL: WorkloadProfile = WorkloadProfile {
    name: "NT",
    write_mb_per_day: 1000.0,
    source: "45-machine NT 4.0 usage study (worst case 1GB/day)",
};

/// The Elephant file system's development server (Santry et al. 1999).
pub const ELEPHANT_FS: WorkloadProfile = WorkloadProfile {
    name: "Elephant",
    write_mb_per_day: 110.0,
    source: "single 15GB file system, a dozen researchers",
};

/// All three Figure 7 profiles.
pub const ALL: [WorkloadProfile; 3] = [AFS_SERVER, NT_PERSONAL, ELEPHANT_FS];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_match_the_paper() {
        assert_eq!(AFS_SERVER.write_mb_per_day, 143.0);
        assert_eq!(NT_PERSONAL.write_mb_per_day, 1000.0);
        assert_eq!(ELEPHANT_FS.write_mb_per_day, 110.0);
        assert_eq!(ALL.len(), 3);
    }
}
