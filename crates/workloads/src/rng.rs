//! Seedable xoshiro256\*\* PRNG (Blackman & Vigna), vendored for
//! byte-stable workload traces.

/// A xoshiro256\*\* generator seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling (Lemire); bias negligible for
        // workload purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Generates `len` pseudo-random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.fill(&mut out);
        out
    }

    /// Picks a uniformly random index into a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0);
        self.below(len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
        }
        // All values eventually hit.
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            seen[r.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(1);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = r.range(512, 9216);
            assert!((512..=9216).contains(&v));
            lo_seen |= v < 1000;
            hi_seen |= v > 8700;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn fill_produces_varied_bytes() {
        let mut r = Rng::new(9);
        let b = r.bytes(4096);
        let distinct: std::collections::HashSet<u8> = b.iter().copied().collect();
        assert!(distinct.len() > 200);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng::new(11);
        let hits = (0..100_000).filter(|_| r.chance(1, 4)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }
}
