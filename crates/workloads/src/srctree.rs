//! Synthetic source-tree evolution for the §5.2 differencing study.
//!
//! The paper retrieved its own code base from CVS "at a single point
//! each day for a week", then measured differencing + compression
//! between adjacent days. We regenerate that experiment with a synthetic
//! tree: files of pseudo-C text receive a controlled number of line
//! edits, insertions, and deletions per day, so adjacent versions have
//! realistic redundancy.

use crate::rng::Rng;

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct SourceTreeConfig {
    /// Number of files in the tree.
    pub files: usize,
    /// Snapshots (days) including the initial one.
    pub days: usize,
    /// Lines per file at creation (min, max).
    pub lines: (usize, usize),
    /// Fraction of lines edited per day, per mille.
    pub churn_per_mille: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SourceTreeConfig {
    fn default() -> Self {
        SourceTreeConfig {
            files: 120,
            days: 8, // the paper's "each day for a week"
            lines: (40, 900),
            churn_per_mille: 110, // ~11% of lines touched daily
            seed: 0x5352_4345,
        }
    }
}

/// One file's version history, oldest first.
pub struct FileHistory {
    /// Path-like name.
    pub name: String,
    /// Daily snapshots of the contents.
    pub versions: Vec<Vec<u8>>,
}

/// The generated tree: per-file histories.
pub struct SourceTree {
    /// All file histories.
    pub files: Vec<FileHistory>,
}

const IDENTS: &[&str] = &[
    "buffer", "packet", "cipher", "session", "channel", "key", "auth", "sock", "len", "ret", "ctx",
    "flags", "state", "conn", "host",
];
const SHAPES: &[&str] = &[
    "    if ({a} == NULL) return -1;",
    "    {a} = {b}_alloc(sizeof(*{a}));",
    "    memcpy({a}, {b}, sizeof({b}));",
    "    for (i = 0; i < {a}_count; i++) {b}[i] = 0;",
    "    debug(\"{a}: processing {b}\");",
    "    {a}->{b} = compute_{b}({a});",
    "    return {a} ? 0 : do_{b}();",
    "    assert({a}_len <= {b}_max);",
];

fn gen_line(rng: &mut Rng) -> String {
    let shape = SHAPES[rng.index(SHAPES.len())];
    let a = IDENTS[rng.index(IDENTS.len())];
    let b = IDENTS[rng.index(IDENTS.len())];
    let line = shape.replace("{a}", a).replace("{b}", b);
    // Sprinkle unique literals so the text compresses like real code
    // (~2x) rather than like a pure template.
    format!(
        "{line} /* 0x{:08x}:{:04x} */",
        rng.next_u64() as u32,
        rng.below(65536)
    )
}

fn render(lines: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    for l in lines {
        out.extend_from_slice(l.as_bytes());
        out.push(b'\n');
    }
    out
}

/// Generates the evolving tree.
///
/// A quarter of the files are "compiled objects": binary-ish content
/// where a third of the 1 KiB chunks change each day (the paper measured
/// its tree *after compiling*, so `.o` files — which diff and compress
/// poorly — were part of the mix).
pub fn generate(config: &SourceTreeConfig) -> SourceTree {
    let mut rng = Rng::new(config.seed);
    let mut files = Vec::with_capacity(config.files);
    for f in 0..config.files {
        if f % 4 == 3 {
            // Binary object file.
            let chunks = rng.range(8, 40) as usize;
            let mut data: Vec<Vec<u8>> = (0..chunks).map(|_| rng.bytes(1024)).collect();
            let mut versions = vec![data.concat()];
            for _day in 1..config.days {
                for c in data.iter_mut() {
                    if rng.chance(1, 3) {
                        *c = rng.bytes(1024);
                    }
                }
                versions.push(data.concat());
            }
            files.push(FileHistory {
                name: format!("src/file{f}.o"),
                versions,
            });
            continue;
        }
        let n = rng.range(config.lines.0 as u64, config.lines.1 as u64) as usize;
        let mut lines: Vec<String> = (0..n).map(|_| gen_line(&mut rng)).collect();
        let mut versions = vec![render(&lines)];
        for _day in 1..config.days {
            // Daily churn: edit, insert, and delete lines.
            let edits = (lines.len() as u64 * config.churn_per_mille / 1000).max(1);
            for _ in 0..edits {
                match rng.below(4) {
                    0 if lines.len() > 10 => {
                        let at = rng.index(lines.len());
                        lines.remove(at);
                    }
                    1 => {
                        let at = rng.index(lines.len() + 1);
                        lines.insert(at, gen_line(&mut rng));
                    }
                    _ => {
                        let at = rng.index(lines.len());
                        lines[at] = gen_line(&mut rng);
                    }
                }
            }
            versions.push(render(&lines));
        }
        files.push(FileHistory {
            name: format!("src/file{f}.c"),
            versions,
        });
    }
    SourceTree { files }
}

impl SourceTree {
    /// Total bytes across all versions of all files (the "keep every
    /// version whole" baseline).
    pub fn total_bytes(&self) -> u64 {
        self.files
            .iter()
            .flat_map(|f| f.versions.iter())
            .map(|v| v.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let t = generate(&SourceTreeConfig {
            files: 5,
            days: 4,
            ..SourceTreeConfig::default()
        });
        assert_eq!(t.files.len(), 5);
        for f in &t.files {
            assert_eq!(f.versions.len(), 4);
        }
    }

    #[test]
    fn adjacent_versions_are_similar_but_not_identical() {
        let t = generate(&SourceTreeConfig::default());
        let f = &t.files[0];
        for w in f.versions.windows(2) {
            assert_ne!(w[0], w[1], "daily churn must change the file");
            // Shared-prefix heuristic: most of the file is unchanged.
            let common = w[0]
                .iter()
                .zip(w[1].iter())
                .take_while(|(a, b)| a == b)
                .count();
            let min_len = w[0].len().min(w[1].len());
            // At least some early content survives (weak but fast check;
            // the delta crate's tests quantify the real similarity).
            assert!(common > 0, "no shared prefix at all");
            let _ = min_len;
        }
    }

    #[test]
    fn text_is_line_structured() {
        let t = generate(&SourceTreeConfig::default());
        let v = &t.files[0].versions[0];
        assert!(v.ends_with(b"\n"));
        let lines = v.split(|&b| b == b'\n').count();
        assert!(lines > 20);
    }

    #[test]
    fn deterministic() {
        let a = generate(&SourceTreeConfig::default());
        let b = generate(&SourceTreeConfig::default());
        assert_eq!(a.files[3].versions[2], b.files[3].versions[2]);
    }
}
