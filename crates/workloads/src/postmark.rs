//! PostMark (Katcher, NetApp TR3022): the paper's Internet-server
//! workload.
//!
//! "It creates a large number of small randomly-sized files (between
//! 512B and 9KB) and performs a specified number of transactions on
//! them. Each transaction consists of two sub-transactions, with one
//! being a create or delete and the other being a read or append. The
//! default configuration used for the experiments consists of 20,000
//! transactions on 5,000 files, and the biases for transaction type are
//! equal." (§5.1.1)

use crate::ops::FsOp;
use crate::rng::Rng;

/// PostMark parameters.
#[derive(Clone, Copy, Debug)]
pub struct PostmarkConfig {
    /// Initial (and target) file-pool size.
    pub nfiles: usize,
    /// Number of transactions.
    pub transactions: usize,
    /// Minimum file size in bytes.
    pub min_size: u64,
    /// Maximum file size in bytes.
    pub max_size: u64,
    /// Directories the pool is spread over.
    pub subdirs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PostmarkConfig {
    fn default() -> Self {
        PostmarkConfig {
            nfiles: 5_000,
            transactions: 20_000,
            min_size: 512,
            max_size: 9 * 1024,
            subdirs: 10,
            seed: 0x504F_5354,
        }
    }
}

impl PostmarkConfig {
    /// A scaled-down configuration for unit tests.
    pub fn tiny() -> Self {
        PostmarkConfig {
            nfiles: 40,
            transactions: 120,
            subdirs: 4,
            seed: 7,
            ..PostmarkConfig::default()
        }
    }
}

/// The generated phases of one PostMark run.
pub struct PostmarkPhases {
    /// Phase 1: create the initial pool (the paper's "creation" bar).
    pub create: Vec<FsOp>,
    /// Phase 2: the transactions (the paper's "transactions" bar).
    pub transactions: Vec<FsOp>,
    /// Phase 3: delete every remaining file (PostMark's cleanup).
    pub cleanup: Vec<FsOp>,
}

struct Pool {
    /// Live file paths; index addressing for O(1) random pick + remove.
    files: Vec<String>,
    next_id: usize,
    subdirs: usize,
}

impl Pool {
    fn new_path(&mut self) -> String {
        let id = self.next_id;
        self.next_id += 1;
        format!("pm{}/f{}", id % self.subdirs, id)
    }
}

/// Generates a PostMark run.
pub fn generate(config: &PostmarkConfig) -> PostmarkPhases {
    let mut rng = Rng::new(config.seed);
    let mut pool = Pool {
        files: Vec::with_capacity(config.nfiles * 2),
        next_id: 0,
        subdirs: config.subdirs.max(1),
    };

    // Phase 1: directories + initial pool.
    let mut create = Vec::with_capacity(config.nfiles * 2 + pool.subdirs);
    for d in 0..pool.subdirs {
        create.push(FsOp::Mkdir(format!("pm{d}")));
    }
    for _ in 0..config.nfiles {
        let path = pool.new_path();
        let size = rng.range(config.min_size, config.max_size);
        create.push(FsOp::Create(path.clone()));
        create.push(FsOp::Write {
            path: path.clone(),
            offset: 0,
            data: rng.bytes(size as usize),
        });
        pool.files.push(path);
    }

    // Phase 2: transactions. Each = (create|delete) + (read|append).
    let mut transactions = Vec::with_capacity(config.transactions * 3);
    for _ in 0..config.transactions {
        // Sub-transaction A: create or delete (equal bias).
        if rng.chance(1, 2) || pool.files.len() <= 1 {
            let path = pool.new_path();
            let size = rng.range(config.min_size, config.max_size);
            transactions.push(FsOp::Create(path.clone()));
            transactions.push(FsOp::Write {
                path: path.clone(),
                offset: 0,
                data: rng.bytes(size as usize),
            });
            pool.files.push(path);
        } else {
            let idx = rng.index(pool.files.len());
            let path = pool.files.swap_remove(idx);
            transactions.push(FsOp::Remove(path));
        }
        // Sub-transaction B: read or append (equal bias).
        let idx = rng.index(pool.files.len());
        let path = pool.files[idx].clone();
        if rng.chance(1, 2) {
            transactions.push(FsOp::ReadAll(path));
        } else {
            let len = rng.range(config.min_size, config.max_size);
            transactions.push(FsOp::Append {
                path,
                data: rng.bytes(len as usize),
            });
        }
    }

    // Phase 3: cleanup.
    let mut cleanup: Vec<FsOp> = pool.files.drain(..).map(FsOp::Remove).collect();
    for d in 0..pool.subdirs {
        cleanup.push(FsOp::Rmdir(format!("pm{d}")));
    }

    PostmarkPhases {
        create,
        transactions,
        cleanup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::trace_write_bytes;

    #[test]
    fn deterministic_generation() {
        let a = generate(&PostmarkConfig::tiny());
        let b = generate(&PostmarkConfig::tiny());
        assert_eq!(a.transactions, b.transactions);
        assert_eq!(a.create, b.create);
    }

    #[test]
    fn default_shape_matches_paper() {
        let p = generate(&PostmarkConfig::default());
        // 5000 creates + 5000 writes + 10 mkdirs.
        assert_eq!(p.create.len(), 10_010);
        // Each transaction contributes 2-3 ops.
        assert!(p.transactions.len() >= 40_000 && p.transactions.len() <= 60_000);
        // Sizes in [512, 9216]: initial pool averages ~4.8 KB/file.
        let bytes = trace_write_bytes(&p.create);
        let avg = bytes / 5_000;
        assert!((4_000..6_000).contains(&avg), "avg initial size {avg}");
    }

    #[test]
    fn trace_is_internally_consistent() {
        // Every Remove targets a path created earlier and not yet
        // removed; I/O only touches live paths; cleanup empties the pool.
        let p = generate(&PostmarkConfig::tiny());
        let mut live = std::collections::HashSet::new();
        for op in p.create.iter().chain(&p.transactions).chain(&p.cleanup) {
            match op {
                FsOp::Create(path) => assert!(live.insert(path.clone())),
                FsOp::Remove(path) => assert!(live.remove(path), "remove of dead {path}"),
                FsOp::Write { path, .. } | FsOp::Append { path, .. } | FsOp::ReadAll(path) => {
                    assert!(live.contains(path), "I/O on dead {path}")
                }
                _ => {}
            }
        }
        assert!(live.is_empty(), "cleanup must empty the pool");
    }
}
