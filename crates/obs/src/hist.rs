//! Log-linear latency histogram (HdrHistogram-style, much simpler).
//!
//! Values (simulated microseconds) land in one of a fixed set of
//! buckets: exact buckets for 0..3, then [`SUB_BUCKETS`] linear
//! sub-buckets per power-of-two octave up to 2^[`MAX_OCTAVE`], plus one
//! overflow bucket. Relative quantile error is bounded by the
//! sub-bucket width (≤ 25%), memory is constant (~1.2 KiB), and
//! recording is a single atomic increment — safe on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 4;
/// Largest octave: values in [2^MAX_OCTAVE, 2^(MAX_OCTAVE+1)) still get
/// a bucket; anything ≥ 2^(MAX_OCTAVE+1) overflows. 2^40 µs ≈ 12.7
/// simulated days, far beyond any per-request latency.
pub const MAX_OCTAVE: u32 = 39;
/// Index of the overflow bucket.
pub const OVERFLOW_BUCKET: usize = (MAX_OCTAVE as usize - 1) * SUB_BUCKETS + SUB_BUCKETS;
/// Total bucket count, including overflow.
pub const NUM_BUCKETS: usize = OVERFLOW_BUCKET + 1;

/// Maps a value to its bucket index.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // floor(log2(v)), ≥ 2
    if octave > MAX_OCTAVE {
        return OVERFLOW_BUCKET;
    }
    let base = 1u64 << octave;
    let sub = ((v - base) * SUB_BUCKETS as u64 / base) as usize;
    (octave as usize - 1) * SUB_BUCKETS + sub
}

/// Largest value that maps to bucket `i` (the bucket's inclusive upper
/// bound); quantile queries report this bound.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    if i >= OVERFLOW_BUCKET {
        return u64::MAX;
    }
    let octave = (i / SUB_BUCKETS + 1) as u32;
    let sub = (i % SUB_BUCKETS) as u64;
    let base = 1u64 << octave;
    let width = base / SUB_BUCKETS as u64;
    base + (sub + 1) * width - 1
}

struct Inner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Shared-handle histogram: clones observe the same buckets.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, AtomicU64::default);
        Histogram {
            inner: Arc::new(Inner {
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one value (relaxed atomics; totals are eventually
    /// consistent across threads, exact under the single-threaded
    /// simulation).
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (0 < p ≤ 1), or 0 when empty. The overflow bucket reports the
    /// recorded maximum instead of `u64::MAX`.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, b) in self.inner.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                if i == OVERFLOW_BUCKET {
                    return self.max();
                }
                return bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Folds another histogram's observations into this one.
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.inner.buckets.iter().zip(other.inner.buckets.iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.inner
            .count
            .fetch_add(other.count(), Ordering::Relaxed);
        self.inner.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.inner.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs, in
    /// ascending bound order (for exposition).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper_bound(i), n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_consistent() {
        // Every bucket's upper bound maps back into that bucket, and
        // upper bound + 1 maps into the next.
        for i in 0..OVERFLOW_BUCKET {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(ub + 1), i + 1, "successor of bucket {i}");
        }
        // Indices are monotone over a dense range.
        let mut last = 0;
        for v in 0..4096u64 {
            let i = bucket_index(v);
            assert!(i >= last, "bucket_index must be monotone at {v}");
            last = i;
        }
    }

    #[test]
    fn octave_math_spot_checks() {
        assert_eq!(bucket_index(4), SUB_BUCKETS); // first octave bucket
        assert_eq!(bucket_index(7), SUB_BUCKETS + 3);
        assert_eq!(bucket_index(8), 2 * SUB_BUCKETS);
        assert_eq!(bucket_index(15), 2 * SUB_BUCKETS + 3);
        assert_eq!(bucket_upper_bound(2 * SUB_BUCKETS), 9); // [8,9]
    }

    #[test]
    fn overflow_bucket_catches_huge_values() {
        assert_eq!(bucket_index(u64::MAX), OVERFLOW_BUCKET);
        assert_eq!(bucket_index(1u64 << (MAX_OCTAVE + 1)), OVERFLOW_BUCKET);
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // Overflow percentile reports the true max, not u64::MAX-as-bound.
        assert_eq!(h.percentile(0.5), u64::MAX);
    }

    #[test]
    fn percentiles_bound_true_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        // Bucketed quantiles over-approximate by at most one sub-bucket
        // width (≤ 25% relative).
        for (p, true_q) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let est = h.percentile(p);
            assert!(est >= true_q, "p{p}: {est} < {true_q}");
            assert!(est as f64 <= true_q as f64 * 1.25 + 1.0, "p{p}: {est}");
        }
        assert_eq!(h.percentile(1.0), 1000);
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 5, 9] {
            a.record(v);
        }
        for v in [2u64, 100] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 117);
        assert_eq!(a.max(), 100);
        assert_eq!(a.percentile(1.0), 100);
        assert_eq!(a.nonzero_buckets().iter().map(|&(_, n)| n).sum::<u64>(), 5);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }
}
