//! Per-request trace records and the in-memory flight recorder.
//!
//! Every dispatched request produces one fixed-size [`TraceRecord`]
//! carrying its identity (who/what/outcome) and per-layer simulated
//! timings. The [`FlightRecorder`] keeps the last N records in a ring
//! for cheap "what just happened" queries; the drive *additionally*
//! appends every encoded record to a reserved, drive-written-only
//! object (`TRACE_OBJECT` in `s4-core`) so the stream's prefix survives
//! power loss and is readable by forensics after remount — an
//! append-only black box an intruder with client privileges cannot
//! scrub (§4.2.3 applies to it exactly as to the audit log).

/// Encoded size of an untraced (v1) record. Fixed so recovery can
/// sanity-check blocks and the torture harness can predict spill
/// boundaries.
pub const TRACE_RECORD_BYTES: usize = 68;

/// Encoded size of a traced (v2) record: the v1 prefix plus the causal
/// extension (`trace_id` u64, `origin` u8, `phase` u8).
pub const TRACE_RECORD_V2_BYTES: usize = TRACE_RECORD_BYTES + 10;

/// Version byte of a legacy untraced record. v1 wrote its two reserved
/// bytes (offsets 26–27) as zeros, so the byte doubles as the version
/// marker retroactively.
pub const TRACE_VERSION_V1: u8 = 0;

/// Version byte of a record carrying the causal extension. (1 is
/// deliberately unused: a torn v1 record cannot silently promote itself
/// to "versioned" with a single bit flip of the low bit.)
pub const TRACE_VERSION_V2: u8 = 2;

/// One dispatched request, as seen by the flight recorder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceRecord {
    /// Position in the drive's persisted trace stream (0-based).
    pub seq: u64,
    /// Simulated time at dispatch completion, microseconds.
    pub time_us: u64,
    /// Requesting principal.
    pub user: u32,
    /// Originating client.
    pub client: u32,
    /// Operation kind (same byte encoding as `s4_core::OpKind`).
    pub op: u8,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Object the request touched (0 when none).
    pub object: u64,
    /// Whole-dispatch latency, simulated µs.
    pub rpc_us: u64,
    /// Simulated µs spent packing journal entries.
    pub journal_us: u64,
    /// Device µs incurred inside LFS segment flushes.
    pub lfs_us: u64,
    /// Total simulated disk service µs.
    pub disk_us: u64,
    /// Propagated causal trace id (0 = untraced; encodes as v1).
    pub trace_id: u64,
    /// Dense shard index the traced request entered the array at.
    pub origin: u8,
    /// Dispatch phase (client/apply/prepare/decide/note/catchup; the
    /// byte encoding is `s4_core::TraceCtx`'s).
    pub phase: u8,
}

impl TraceRecord {
    /// Encoded size of *this* record: untraced records keep the v1
    /// 68-byte layout, traced records append the 10-byte extension.
    pub fn encoded_len(&self) -> usize {
        if self.trace_id == 0 {
            TRACE_RECORD_BYTES
        } else {
            TRACE_RECORD_V2_BYTES
        }
    }

    /// Appends the fixed-size encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.time_us.to_le_bytes());
        out.extend_from_slice(&self.user.to_le_bytes());
        out.extend_from_slice(&self.client.to_le_bytes());
        out.push(self.op);
        out.push(self.ok as u8);
        if self.trace_id == 0 {
            out.extend_from_slice(&[TRACE_VERSION_V1, 0]); // version, flags
        } else {
            out.extend_from_slice(&[TRACE_VERSION_V2, 0]); // version, flags
        }
        out.extend_from_slice(&self.object.to_le_bytes());
        out.extend_from_slice(&self.rpc_us.to_le_bytes());
        out.extend_from_slice(&self.journal_us.to_le_bytes());
        out.extend_from_slice(&self.lfs_us.to_le_bytes());
        out.extend_from_slice(&self.disk_us.to_le_bytes());
        if self.trace_id != 0 {
            out.extend_from_slice(&self.trace_id.to_le_bytes());
            out.push(self.origin);
            out.push(self.phase);
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes one record; `None` on short or malformed input. A torn
    /// or corrupted record is caught here rather than surfacing as
    /// garbage timings: the `ok` byte must be 0/1, the flags byte must
    /// be zero, the version byte must name a known layout, and a v2
    /// record must actually carry its extension (with a nonzero id —
    /// the encoder never writes a traced record without one).
    pub fn decode(buf: &[u8]) -> Option<TraceRecord> {
        if buf.len() < TRACE_RECORD_BYTES {
            return None;
        }
        let u64at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
        let u32at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().unwrap());
        if buf[25] > 1 {
            return None; // ok flag must be 0/1
        }
        if buf[27] != 0 {
            return None; // no flags are defined; anything else is a torn record
        }
        let (trace_id, origin, phase) = match buf[26] {
            TRACE_VERSION_V1 => (0u64, 0u8, 0u8),
            TRACE_VERSION_V2 => {
                if buf.len() < TRACE_RECORD_V2_BYTES {
                    return None;
                }
                let id = u64at(68);
                if id == 0 {
                    return None; // traced records always carry a nonzero id
                }
                (id, buf[76], buf[77])
            }
            _ => return None, // unknown version byte
        };
        Some(TraceRecord {
            seq: u64at(0),
            time_us: u64at(8),
            user: u32at(16),
            client: u32at(20),
            op: buf[24],
            ok: buf[25] == 1,
            object: u64at(28),
            rpc_us: u64at(36),
            journal_us: u64at(44),
            lfs_us: u64at(52),
            disk_us: u64at(60),
            trace_id,
            origin,
            phase,
        })
    }
}

use std::sync::{Arc, Mutex};

struct Ring {
    buf: Vec<TraceRecord>,
    cap: usize,
    next: usize,
    total: u64,
}

/// Ring buffer of the last `cap` trace records (shared handle).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<Ring>>,
}

impl FlightRecorder {
    /// `cap` is clamped to at least 1.
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Mutex::new(Ring {
                buf: Vec::new(),
                cap: cap.max(1),
                next: 0,
                total: 0,
            })),
        }
    }

    pub fn push(&self, rec: TraceRecord) {
        let mut r = self.inner.lock().unwrap();
        if r.buf.len() < r.cap {
            r.buf.push(rec);
        } else {
            let i = r.next;
            r.buf[i] = rec;
        }
        r.next = (r.next + 1) % r.cap;
        r.total += 1;
    }

    /// The retained records, oldest first.
    pub fn recent(&self) -> Vec<TraceRecord> {
        let r = self.inner.lock().unwrap();
        if r.buf.len() < r.cap {
            return r.buf.clone();
        }
        let mut out = Vec::with_capacity(r.cap);
        out.extend_from_slice(&r.buf[r.next..]);
        out.extend_from_slice(&r.buf[..r.next]);
        out
    }

    /// Total records ever pushed (≥ retained count).
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap().total
    }

    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            time_us: 1000 + seq,
            user: 7,
            client: 3,
            op: 4,
            ok: seq.is_multiple_of(2),
            object: 42,
            rpc_us: 11,
            journal_us: 5,
            lfs_us: 2,
            disk_us: 9,
            ..TraceRecord::default()
        }
    }

    fn rec_v2(seq: u64) -> TraceRecord {
        TraceRecord {
            trace_id: 0xABCD_0000 + seq,
            origin: 2,
            phase: 1,
            ..rec(seq)
        }
    }

    #[test]
    fn codec_round_trip() {
        let r = rec(9);
        let enc = r.encode();
        assert_eq!(enc.len(), TRACE_RECORD_BYTES);
        assert_eq!(TraceRecord::decode(&enc), Some(r));
        assert_eq!(TraceRecord::decode(&enc[..TRACE_RECORD_BYTES - 1]), None);
        let mut bad = enc.clone();
        bad[25] = 2; // invalid ok flag
        assert_eq!(TraceRecord::decode(&bad), None);
    }

    #[test]
    fn v2_codec_round_trip_and_rejections() {
        let r = rec_v2(5);
        let enc = r.encode();
        assert_eq!(enc.len(), TRACE_RECORD_V2_BYTES);
        assert_eq!(enc[26], TRACE_VERSION_V2);
        assert_eq!(TraceRecord::decode(&enc), Some(r));
        // A truncated v2 record must not decode as anything.
        assert_eq!(TraceRecord::decode(&enc[..TRACE_RECORD_V2_BYTES - 1]), None);
        // Malformed version / flags / id bytes are caught at decode time.
        for (offset, value) in [(26u8, 1u8), (26, 3), (26, 0xFF), (27, 1), (27, 0x80)] {
            let mut bad = enc.clone();
            bad[offset as usize] = value;
            assert_eq!(TraceRecord::decode(&bad), None, "byte {offset} = {value}");
        }
        let mut zero_id = enc.clone();
        zero_id[68..76].fill(0);
        assert_eq!(TraceRecord::decode(&zero_id), None, "v2 with id 0");
    }

    #[test]
    fn v1_records_still_decode_with_empty_trace_fields() {
        let r = rec(3);
        let enc = r.encode();
        assert_eq!(enc[26], TRACE_VERSION_V1);
        let d = TraceRecord::decode(&enc).unwrap();
        assert_eq!((d.trace_id, d.origin, d.phase), (0, 0, 0));
        assert_eq!(d, r);
    }

    /// Deterministic mixed-version fuzz over the codec boundary: encode
    /// an interleaved v1/v2 stream, then attack it with truncation,
    /// single-byte corruption, and torn-sector interleave. The codec
    /// must never panic, and every accepted record must be internally
    /// consistent (valid version byte, zero flags, nonzero id iff v2).
    #[test]
    fn mixed_version_stream_fuzz() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..200u64 {
            // Build a stream of 1..=8 records, mixed v1/v2.
            let n = (rng() % 8 + 1) as usize;
            let mut stream = Vec::new();
            let mut bounds = vec![0usize];
            for i in 0..n {
                let mut r = if rng() % 2 == 0 {
                    rec(round * 100 + i as u64)
                } else {
                    rec_v2(round * 100 + i as u64)
                };
                r.rpc_us = rng() % 10_000;
                r.encode_into(&mut stream);
                bounds.push(stream.len());
            }
            // Every record boundary round-trips.
            for w in bounds.windows(2) {
                assert!(TraceRecord::decode(&stream[w[0]..w[1]]).is_some());
            }
            // Truncation at every offset: short input never panics, and
            // a cut inside a record's extension never decodes as v2.
            for cut in 0..stream.len() {
                let _ = TraceRecord::decode(&stream[..cut]);
            }
            // Single-byte corruption of the first record: decode either
            // rejects or returns a structurally valid record.
            let first_len = bounds[1];
            let pos = (rng() as usize) % first_len;
            let mut torn = stream[..first_len].to_vec();
            torn[pos] ^= (rng() % 255 + 1) as u8;
            if let Some(d) = TraceRecord::decode(&torn) {
                assert!(d.ok as u8 <= 1);
                if torn[26] == TRACE_VERSION_V2 {
                    assert_ne!(d.trace_id, 0);
                } else {
                    assert_eq!((d.trace_id, d.origin, d.phase), (0, 0, 0));
                }
            }
            // Torn-sector interleave: splice the first half of one
            // record onto the tail of another (sector-granular writes
            // can leave exactly this). Must not panic; a v1-prefix
            // spliced onto v2 tail bytes decodes as the v1 prefix says.
            if n >= 2 {
                let a = &stream[bounds[0]..bounds[1]];
                let b = &stream[bounds[1]..bounds[2]];
                let cut = a.len().min(b.len()) / 2;
                let mut spliced = a[..cut].to_vec();
                spliced.extend_from_slice(&b[cut..]);
                let _ = TraceRecord::decode(&spliced);
            }
        }
    }

    #[test]
    fn ring_wraparound_keeps_newest_oldest_first() {
        let fr = FlightRecorder::new(4);
        for s in 0..10 {
            fr.push(rec(s));
        }
        let got = fr.recent();
        assert_eq!(got.len(), 4);
        assert_eq!(
            got.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "last cap records, oldest first"
        );
        assert_eq!(fr.total(), 10);
        assert_eq!(fr.capacity(), 4);
    }

    #[test]
    fn ring_before_wrap_returns_all() {
        let fr = FlightRecorder::new(8);
        for s in 0..3 {
            fr.push(rec(s));
        }
        assert_eq!(fr.recent().len(), 3);
        assert_eq!(fr.recent()[0].seq, 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let fr = FlightRecorder::new(0);
        fr.push(rec(0));
        fr.push(rec(1));
        assert_eq!(fr.recent().len(), 1);
        assert_eq!(fr.recent()[0].seq, 1);
    }
}
