//! Per-request trace records and the in-memory flight recorder.
//!
//! Every dispatched request produces one fixed-size [`TraceRecord`]
//! carrying its identity (who/what/outcome) and per-layer simulated
//! timings. The [`FlightRecorder`] keeps the last N records in a ring
//! for cheap "what just happened" queries; the drive *additionally*
//! appends every encoded record to a reserved, drive-written-only
//! object (`TRACE_OBJECT` in `s4-core`) so the stream's prefix survives
//! power loss and is readable by forensics after remount — an
//! append-only black box an intruder with client privileges cannot
//! scrub (§4.2.3 applies to it exactly as to the audit log).

/// Encoded size of one record. Fixed so recovery can sanity-check
/// blocks and the torture harness can predict spill boundaries.
pub const TRACE_RECORD_BYTES: usize = 68;

/// One dispatched request, as seen by the flight recorder.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceRecord {
    /// Position in the drive's persisted trace stream (0-based).
    pub seq: u64,
    /// Simulated time at dispatch completion, microseconds.
    pub time_us: u64,
    /// Requesting principal.
    pub user: u32,
    /// Originating client.
    pub client: u32,
    /// Operation kind (same byte encoding as `s4_core::OpKind`).
    pub op: u8,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Object the request touched (0 when none).
    pub object: u64,
    /// Whole-dispatch latency, simulated µs.
    pub rpc_us: u64,
    /// Simulated µs spent packing journal entries.
    pub journal_us: u64,
    /// Device µs incurred inside LFS segment flushes.
    pub lfs_us: u64,
    /// Total simulated disk service µs.
    pub disk_us: u64,
}

impl TraceRecord {
    /// Appends the fixed-size encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.time_us.to_le_bytes());
        out.extend_from_slice(&self.user.to_le_bytes());
        out.extend_from_slice(&self.client.to_le_bytes());
        out.push(self.op);
        out.push(self.ok as u8);
        out.extend_from_slice(&[0u8; 2]); // reserved
        out.extend_from_slice(&self.object.to_le_bytes());
        out.extend_from_slice(&self.rpc_us.to_le_bytes());
        out.extend_from_slice(&self.journal_us.to_le_bytes());
        out.extend_from_slice(&self.lfs_us.to_le_bytes());
        out.extend_from_slice(&self.disk_us.to_le_bytes());
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(TRACE_RECORD_BYTES);
        self.encode_into(&mut out);
        out
    }

    /// Decodes one record; `None` on short or malformed input.
    pub fn decode(buf: &[u8]) -> Option<TraceRecord> {
        if buf.len() < TRACE_RECORD_BYTES {
            return None;
        }
        let u64at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
        let u32at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().unwrap());
        if buf[25] > 1 {
            return None; // ok flag must be 0/1
        }
        Some(TraceRecord {
            seq: u64at(0),
            time_us: u64at(8),
            user: u32at(16),
            client: u32at(20),
            op: buf[24],
            ok: buf[25] == 1,
            object: u64at(28),
            rpc_us: u64at(36),
            journal_us: u64at(44),
            lfs_us: u64at(52),
            disk_us: u64at(60),
        })
    }
}

use std::sync::{Arc, Mutex};

struct Ring {
    buf: Vec<TraceRecord>,
    cap: usize,
    next: usize,
    total: u64,
}

/// Ring buffer of the last `cap` trace records (shared handle).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<Ring>>,
}

impl FlightRecorder {
    /// `cap` is clamped to at least 1.
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Mutex::new(Ring {
                buf: Vec::new(),
                cap: cap.max(1),
                next: 0,
                total: 0,
            })),
        }
    }

    pub fn push(&self, rec: TraceRecord) {
        let mut r = self.inner.lock().unwrap();
        if r.buf.len() < r.cap {
            r.buf.push(rec);
        } else {
            let i = r.next;
            r.buf[i] = rec;
        }
        r.next = (r.next + 1) % r.cap;
        r.total += 1;
    }

    /// The retained records, oldest first.
    pub fn recent(&self) -> Vec<TraceRecord> {
        let r = self.inner.lock().unwrap();
        if r.buf.len() < r.cap {
            return r.buf.clone();
        }
        let mut out = Vec::with_capacity(r.cap);
        out.extend_from_slice(&r.buf[r.next..]);
        out.extend_from_slice(&r.buf[..r.next]);
        out
    }

    /// Total records ever pushed (≥ retained count).
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap().total
    }

    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            time_us: 1000 + seq,
            user: 7,
            client: 3,
            op: 4,
            ok: seq.is_multiple_of(2),
            object: 42,
            rpc_us: 11,
            journal_us: 5,
            lfs_us: 2,
            disk_us: 9,
        }
    }

    #[test]
    fn codec_round_trip() {
        let r = rec(9);
        let enc = r.encode();
        assert_eq!(enc.len(), TRACE_RECORD_BYTES);
        assert_eq!(TraceRecord::decode(&enc), Some(r));
        assert_eq!(TraceRecord::decode(&enc[..TRACE_RECORD_BYTES - 1]), None);
        let mut bad = enc.clone();
        bad[25] = 2; // invalid ok flag
        assert_eq!(TraceRecord::decode(&bad), None);
    }

    #[test]
    fn ring_wraparound_keeps_newest_oldest_first() {
        let fr = FlightRecorder::new(4);
        for s in 0..10 {
            fr.push(rec(s));
        }
        let got = fr.recent();
        assert_eq!(got.len(), 4);
        assert_eq!(
            got.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "last cap records, oldest first"
        );
        assert_eq!(fr.total(), 10);
        assert_eq!(fr.capacity(), 4);
    }

    #[test]
    fn ring_before_wrap_returns_all() {
        let fr = FlightRecorder::new(8);
        for s in 0..3 {
            fr.push(rec(s));
        }
        assert_eq!(fr.recent().len(), 3);
        assert_eq!(fr.recent()[0].seq, 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let fr = FlightRecorder::new(0);
        fr.push(rec(0));
        fr.push(rec(1));
        assert_eq!(fr.recent().len(), 1);
        assert_eq!(fr.recent()[0].seq, 1);
    }
}
