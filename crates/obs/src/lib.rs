//! Observability layer for the S4 stack: metrics, spans, and a
//! crash-surviving flight recorder.
//!
//! The paper's administrative story (§3.6, §5) assumes the operator can
//! *see* the drive: how much detection-window headroom the history pool
//! has left, what the cleaner reclaims, and what the last requests
//! looked like before an intrusion. This crate provides the plumbing,
//! with zero external dependencies so every other crate can use it:
//!
//! * [`registry`] — a named-metric registry holding monotonic
//!   [`Counter`]s, float [`Gauge`]s, and log-linear latency
//!   [`Histogram`]s, rendered as Prometheus-style text or JSON;
//! * [`hist`] — the histogram itself (4 linear sub-buckets per
//!   power-of-two octave; constant memory, lock-free recording,
//!   p50/p90/p99/max queries);
//! * [`span`] — a thread-local per-request span that hot-path layers
//!   (rpc, journal, lfs, disk) charge simulated microseconds to, so one
//!   request's latency decomposes by layer without threading a context
//!   object through every call;
//! * [`trace`] — the fixed-size [`TraceRecord`] codec and the in-memory
//!   ring-buffer [`FlightRecorder`]. The drive additionally appends
//!   every record to a reserved, drive-written-only object so the
//!   recorder's prefix survives crashes (see `s4-core`).
//!
//! Everything here measures **simulated** time (the `SimClock` the rest
//! of the stack runs on), never wall time, so recorded values are
//! deterministic and replayable — a property the crash-torture harness
//! relies on when it byte-compares recovered trace streams.

pub mod hist;
pub mod registry;
pub mod span;
pub mod trace;

pub use hist::Histogram;
pub use registry::{Counter, Exemplar, Gauge, HistogramSnapshot, Registry};
pub use span::Layer;
pub use trace::{
    FlightRecorder, TraceRecord, TRACE_RECORD_BYTES, TRACE_RECORD_V2_BYTES, TRACE_VERSION_V1,
    TRACE_VERSION_V2,
};
