//! Named-metric registry with Prometheus-style text and JSON
//! exposition.
//!
//! Names follow Prometheus conventions (`s4_requests_total`,
//! `s4_rpc_latency_us`). The registry hands out shared handles —
//! [`Counter`], [`Gauge`], [`Histogram`] — that record without taking
//! the registry lock; the lock is only held to register and to render.
//! `BTreeMap` keeps exposition output deterministically ordered.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;

/// Monotonic counter handle (clones share the same cell).
#[derive(Clone, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Float gauge handle (f64 bits in an atomic; clones share the cell).
#[derive(Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: f64) {
        // Non-finite values would corrupt JSON output; clamp to zero.
        let v = if v.is_finite() { v } else { 0.0 };
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Adds `delta` to the gauge (compare-and-swap loop; gauges are
    /// read-mostly, so contention is negligible). Migration progress
    /// gauges use this to accumulate copied objects across rounds.
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = f64::from_bits(cur) + delta;
            let next = if next.is_finite() { next } else { 0.0 };
            match self.bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(v) => cur = v,
            }
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    help: &'static str,
    metric: Metric,
}

/// Point-in-time view of one histogram: count plus the quantile bounds
/// array aggregation and the JSON exposition report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

/// One tail-latency exemplar: a traced request slow enough to make the
/// registry's top-K buffer, carrying the trace id an operator feeds to
/// `s4 trace` to reconstruct the full cross-shard causal tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// Causal trace id of the slow request (always nonzero).
    pub trace_id: u64,
    /// Completion time, simulated µs.
    pub time_us: u64,
    /// Operation kind byte.
    pub op: u8,
    /// Object the request touched (0 when none).
    pub object: u64,
    /// Whole-dispatch latency, simulated µs.
    pub rpc_us: u64,
}

/// Retained exemplars per registry. Small and fixed: the buffer answers
/// "which recent requests were slowest", not "what happened" — the
/// persisted trace stream holds the full record.
const EXEMPLAR_CAP: usize = 64;

/// The registry itself; cheap to clone (shared map).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Entry>>>,
    exemplars: Arc<Mutex<Vec<Exemplar>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or retrieves) a counter by name. Re-registering the
    /// same name returns the existing handle, so layers can look
    /// metrics up idempotently.
    pub fn counter(&self, name: &str, help: &'static str) -> Counter {
        let mut map = self.inner.lock().unwrap();
        match &map
            .entry(name.to_string())
            .or_insert_with(|| Entry {
                help,
                metric: Metric::Counter(Counter::new()),
            })
            .metric
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Registers (or retrieves) a gauge by name.
    pub fn gauge(&self, name: &str, help: &'static str) -> Gauge {
        let mut map = self.inner.lock().unwrap();
        match &map
            .entry(name.to_string())
            .or_insert_with(|| Entry {
                help,
                metric: Metric::Gauge(Gauge::new()),
            })
            .metric
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Registers (or retrieves) a histogram by name.
    pub fn histogram(&self, name: &str, help: &'static str) -> Histogram {
        let mut map = self.inner.lock().unwrap();
        match &map
            .entry(name.to_string())
            .or_insert_with(|| Entry {
                help,
                metric: Metric::Histogram(Histogram::new()),
            })
            .metric
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Snapshot of every registered counter as `(name, value)`,
    /// name-ordered — array aggregation sums these across shards.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .filter_map(|(name, e)| match &e.metric {
                Metric::Counter(c) => Some((name.clone(), c.get())),
                _ => None,
            })
            .collect()
    }

    /// Snapshot of every registered gauge as `(name, value)`,
    /// name-ordered.
    pub fn gauge_values(&self) -> Vec<(String, f64)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .filter_map(|(name, e)| match &e.metric {
                Metric::Gauge(g) => Some((name.clone(), g.get())),
                _ => None,
            })
            .collect()
    }

    /// Snapshot of every registered histogram as `(name, snapshot)`,
    /// name-ordered — the third symmetry alongside
    /// [`counter_values`](Self::counter_values) and
    /// [`gauge_values`](Self::gauge_values); array aggregation uses it
    /// to emit shard-labeled percentiles.
    pub fn histogram_values(&self) -> Vec<(String, HistogramSnapshot)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .filter_map(|(name, e)| match &e.metric {
                Metric::Histogram(h) => Some((
                    name.clone(),
                    HistogramSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        p50: h.percentile(0.5),
                        p90: h.percentile(0.9),
                        p99: h.percentile(0.99),
                        max: h.max(),
                    },
                )),
                _ => None,
            })
            .collect()
    }

    /// Offers a traced request to the top-K tail-latency exemplar
    /// buffer. Kept sorted slowest-first; a trace id already present
    /// keeps only its slowest observation, so the buffer names K
    /// *distinct* slow traces. O(log K) search + bounded shift — cheap
    /// enough for the dispatch hot path.
    pub fn offer_exemplar(&self, ex: Exemplar) {
        if ex.trace_id == 0 {
            return;
        }
        let mut buf = self.exemplars.lock().unwrap();
        if let Some(i) = buf.iter().position(|e| e.trace_id == ex.trace_id) {
            if buf[i].rpc_us >= ex.rpc_us {
                return;
            }
            buf.remove(i);
        } else if buf.len() >= EXEMPLAR_CAP && buf.last().is_some_and(|e| e.rpc_us >= ex.rpc_us) {
            return; // slower than nothing we keep
        }
        let at = buf.partition_point(|e| e.rpc_us > ex.rpc_us);
        buf.insert(at, ex);
        buf.truncate(EXEMPLAR_CAP);
    }

    /// The `k` slowest distinct traced requests seen so far, slowest
    /// first (`s4 trace --slowest K` reads this on a live registry).
    pub fn slowest_exemplars(&self, k: usize) -> Vec<Exemplar> {
        let buf = self.exemplars.lock().unwrap();
        buf.iter().take(k).copied().collect()
    }

    /// Prometheus text exposition. Histograms render as summaries:
    /// `name{quantile="…"}` lines (0.5 / 0.9 / 0.99 / 1 = max) plus
    /// `name_sum` / `name_count`.
    pub fn render_prometheus(&self) -> String {
        let map = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, e) in map.iter() {
            let _ = writeln!(out, "# HELP {name} {}", e.help);
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", fmt_f64(g.get()));
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} summary");
                    for (q, v) in [
                        ("0.5", h.percentile(0.5)),
                        ("0.9", h.percentile(0.9)),
                        ("0.99", h.percentile(0.99)),
                        ("1", h.max()),
                    ] {
                        let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// JSON exposition: `{"counters":{…},"gauges":{…},"histograms":{…}}`
    /// with per-histogram count/sum/max and p50/p90/p99. Hand-rolled —
    /// names are identifier-like, so no escaping is needed.
    pub fn render_json(&self) -> String {
        let map = self.inner.lock().unwrap();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for (name, e) in map.iter() {
            match &e.metric {
                Metric::Counter(c) => counters.push(format!("\"{name}\":{}", c.get())),
                Metric::Gauge(g) => gauges.push(format!("\"{name}\":{}", fmt_f64(g.get()))),
                Metric::Histogram(h) => hists.push(format!(
                    "\"{name}\":{{\"count\":{},\"sum_us\":{},\"max_us\":{},\
                     \"p50_us\":{},\"p90_us\":{},\"p99_us\":{}}}",
                    h.count(),
                    h.sum(),
                    h.max(),
                    h.percentile(0.5),
                    h.percentile(0.9),
                    h.percentile(0.99),
                )),
            }
        }
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

/// Formats an f64 so it round-trips as both Prometheus and JSON (always
/// finite; integral values keep a trailing `.0`? No — Prometheus and
/// JSON both accept bare integers, and `{}` on f64 prints `12` for
/// 12.0, which is valid in both).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let r = Registry::new();
        let c = r.counter("s4_requests_total", "requests");
        c.add(3);
        r.counter("s4_requests_total", "requests").inc();
        assert_eq!(c.get(), 4, "re-registration returns the same cell");
        let g = r.gauge("s4_occupancy", "fraction");
        g.set(0.25);
        assert_eq!(r.gauge("s4_occupancy", "fraction").get(), 0.25);
        g.set(f64::NAN);
        assert_eq!(g.get(), 0.0, "non-finite values clamp to zero");
    }

    #[test]
    fn prometheus_text_shape() {
        let r = Registry::new();
        r.counter("s4_b_total", "b counter").add(7);
        r.gauge("s4_a_gauge", "a gauge").set(1.5);
        let h = r.histogram("s4_lat_us", "latency");
        h.record(10);
        h.record(20);
        let text = r.render_prometheus();
        // BTreeMap ordering: gauge (a) before counter (b) before hist (lat).
        let ia = text.find("s4_a_gauge 1.5").unwrap();
        let ib = text.find("s4_b_total 7").unwrap();
        assert!(ia < ib);
        assert!(text.contains("# TYPE s4_b_total counter"));
        assert!(text.contains("# TYPE s4_lat_us summary"));
        assert!(text.contains("s4_lat_us{quantile=\"0.99\"}"));
        assert!(text.contains("s4_lat_us_sum 30"));
        assert!(text.contains("s4_lat_us_count 2"));
    }

    #[test]
    fn value_snapshots_enumerate_by_type() {
        let r = Registry::new();
        r.counter("s4_b_total", "b").add(7);
        r.counter("s4_a_total", "a").add(3);
        r.gauge("s4_g", "g").set(1.5);
        r.histogram("s4_h_us", "h").record(10);
        assert_eq!(
            r.counter_values(),
            vec![("s4_a_total".into(), 3), ("s4_b_total".into(), 7)]
        );
        assert_eq!(r.gauge_values(), vec![("s4_g".into(), 1.5)]);
    }

    #[test]
    fn histogram_values_snapshot_percentiles() {
        let r = Registry::new();
        let h = r.histogram("s4_lat_us", "lat");
        for v in 1..=100u64 {
            h.record(v);
        }
        r.counter("s4_c_total", "c").inc();
        let vals = r.histogram_values();
        assert_eq!(vals.len(), 1, "counters must not leak into histogram_values");
        let (name, snap) = &vals[0];
        assert_eq!(name, "s4_lat_us");
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.max, 100);
        assert!(snap.p50 >= 50 && snap.p50 <= 63, "p50 = {}", snap.p50);
        assert!(snap.p99 >= 99, "p99 = {}", snap.p99);
    }

    #[test]
    fn exemplar_buffer_keeps_slowest_distinct_traces() {
        let r = Registry::new();
        // Untraced requests never enter the buffer.
        r.offer_exemplar(Exemplar {
            trace_id: 0,
            time_us: 1,
            op: 4,
            object: 9,
            rpc_us: 1_000_000,
        });
        for i in 1..=200u64 {
            r.offer_exemplar(Exemplar {
                trace_id: i,
                time_us: i,
                op: 4,
                object: i,
                rpc_us: i * 10,
            });
        }
        // A repeat observation of a known trace keeps the max latency.
        r.offer_exemplar(Exemplar {
            trace_id: 150,
            time_us: 999,
            op: 4,
            object: 150,
            rpc_us: 99_999,
        });
        let top = r.slowest_exemplars(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].trace_id, 150);
        assert_eq!(top[0].rpc_us, 99_999);
        assert_eq!(top[1].trace_id, 200);
        assert_eq!(top[2].trace_id, 199);
        // The buffer is bounded and sorted slowest-first.
        let all = r.slowest_exemplars(usize::MAX);
        assert!(all.len() <= 64);
        assert!(all.windows(2).all(|w| w[0].rpc_us >= w[1].rpc_us));
        // A slower duplicate does not shrink to the faster repeat.
        r.offer_exemplar(Exemplar {
            trace_id: 150,
            time_us: 1000,
            op: 4,
            object: 150,
            rpc_us: 5,
        });
        assert_eq!(r.slowest_exemplars(1)[0].rpc_us, 99_999);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = Registry::new();
        r.counter("s4_x_total", "x").add(1);
        r.gauge("s4_y", "y").set(2.5);
        r.histogram("s4_z_us", "z").record(100);
        let j = r.render_json();
        assert!(j.starts_with("{\"counters\":{"));
        assert!(j.contains("\"s4_x_total\":1"));
        assert!(j.contains("\"s4_y\":2.5"));
        assert!(j.contains("\"s4_z_us\":{\"count\":1"));
        assert!(j.ends_with("}"));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
    }
}
