//! Named-metric registry with Prometheus-style text and JSON
//! exposition.
//!
//! Names follow Prometheus conventions (`s4_requests_total`,
//! `s4_rpc_latency_us`). The registry hands out shared handles —
//! [`Counter`], [`Gauge`], [`Histogram`] — that record without taking
//! the registry lock; the lock is only held to register and to render.
//! `BTreeMap` keeps exposition output deterministically ordered.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;

/// Monotonic counter handle (clones share the same cell).
#[derive(Clone, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Float gauge handle (f64 bits in an atomic; clones share the cell).
#[derive(Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: f64) {
        // Non-finite values would corrupt JSON output; clamp to zero.
        let v = if v.is_finite() { v } else { 0.0 };
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Adds `delta` to the gauge (compare-and-swap loop; gauges are
    /// read-mostly, so contention is negligible). Migration progress
    /// gauges use this to accumulate copied objects across rounds.
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = f64::from_bits(cur) + delta;
            let next = if next.is_finite() { next } else { 0.0 };
            match self.bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(v) => cur = v,
            }
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    help: &'static str,
    metric: Metric,
}

/// The registry itself; cheap to clone (shared map).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Entry>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or retrieves) a counter by name. Re-registering the
    /// same name returns the existing handle, so layers can look
    /// metrics up idempotently.
    pub fn counter(&self, name: &str, help: &'static str) -> Counter {
        let mut map = self.inner.lock().unwrap();
        match &map
            .entry(name.to_string())
            .or_insert_with(|| Entry {
                help,
                metric: Metric::Counter(Counter::new()),
            })
            .metric
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Registers (or retrieves) a gauge by name.
    pub fn gauge(&self, name: &str, help: &'static str) -> Gauge {
        let mut map = self.inner.lock().unwrap();
        match &map
            .entry(name.to_string())
            .or_insert_with(|| Entry {
                help,
                metric: Metric::Gauge(Gauge::new()),
            })
            .metric
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Registers (or retrieves) a histogram by name.
    pub fn histogram(&self, name: &str, help: &'static str) -> Histogram {
        let mut map = self.inner.lock().unwrap();
        match &map
            .entry(name.to_string())
            .or_insert_with(|| Entry {
                help,
                metric: Metric::Histogram(Histogram::new()),
            })
            .metric
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Snapshot of every registered counter as `(name, value)`,
    /// name-ordered — array aggregation sums these across shards.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .filter_map(|(name, e)| match &e.metric {
                Metric::Counter(c) => Some((name.clone(), c.get())),
                _ => None,
            })
            .collect()
    }

    /// Snapshot of every registered gauge as `(name, value)`,
    /// name-ordered.
    pub fn gauge_values(&self) -> Vec<(String, f64)> {
        let map = self.inner.lock().unwrap();
        map.iter()
            .filter_map(|(name, e)| match &e.metric {
                Metric::Gauge(g) => Some((name.clone(), g.get())),
                _ => None,
            })
            .collect()
    }

    /// Prometheus text exposition. Histograms render as summaries:
    /// `name{quantile="…"}` lines (0.5 / 0.9 / 0.99 / 1 = max) plus
    /// `name_sum` / `name_count`.
    pub fn render_prometheus(&self) -> String {
        let map = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, e) in map.iter() {
            let _ = writeln!(out, "# HELP {name} {}", e.help);
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", fmt_f64(g.get()));
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} summary");
                    for (q, v) in [
                        ("0.5", h.percentile(0.5)),
                        ("0.9", h.percentile(0.9)),
                        ("0.99", h.percentile(0.99)),
                        ("1", h.max()),
                    ] {
                        let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// JSON exposition: `{"counters":{…},"gauges":{…},"histograms":{…}}`
    /// with per-histogram count/sum/max and p50/p90/p99. Hand-rolled —
    /// names are identifier-like, so no escaping is needed.
    pub fn render_json(&self) -> String {
        let map = self.inner.lock().unwrap();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for (name, e) in map.iter() {
            match &e.metric {
                Metric::Counter(c) => counters.push(format!("\"{name}\":{}", c.get())),
                Metric::Gauge(g) => gauges.push(format!("\"{name}\":{}", fmt_f64(g.get()))),
                Metric::Histogram(h) => hists.push(format!(
                    "\"{name}\":{{\"count\":{},\"sum_us\":{},\"max_us\":{},\
                     \"p50_us\":{},\"p90_us\":{},\"p99_us\":{}}}",
                    h.count(),
                    h.sum(),
                    h.max(),
                    h.percentile(0.5),
                    h.percentile(0.9),
                    h.percentile(0.99),
                )),
            }
        }
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

/// Formats an f64 so it round-trips as both Prometheus and JSON (always
/// finite; integral values keep a trailing `.0`? No — Prometheus and
/// JSON both accept bare integers, and `{}` on f64 prints `12` for
/// 12.0, which is valid in both).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let r = Registry::new();
        let c = r.counter("s4_requests_total", "requests");
        c.add(3);
        r.counter("s4_requests_total", "requests").inc();
        assert_eq!(c.get(), 4, "re-registration returns the same cell");
        let g = r.gauge("s4_occupancy", "fraction");
        g.set(0.25);
        assert_eq!(r.gauge("s4_occupancy", "fraction").get(), 0.25);
        g.set(f64::NAN);
        assert_eq!(g.get(), 0.0, "non-finite values clamp to zero");
    }

    #[test]
    fn prometheus_text_shape() {
        let r = Registry::new();
        r.counter("s4_b_total", "b counter").add(7);
        r.gauge("s4_a_gauge", "a gauge").set(1.5);
        let h = r.histogram("s4_lat_us", "latency");
        h.record(10);
        h.record(20);
        let text = r.render_prometheus();
        // BTreeMap ordering: gauge (a) before counter (b) before hist (lat).
        let ia = text.find("s4_a_gauge 1.5").unwrap();
        let ib = text.find("s4_b_total 7").unwrap();
        assert!(ia < ib);
        assert!(text.contains("# TYPE s4_b_total counter"));
        assert!(text.contains("# TYPE s4_lat_us summary"));
        assert!(text.contains("s4_lat_us{quantile=\"0.99\"}"));
        assert!(text.contains("s4_lat_us_sum 30"));
        assert!(text.contains("s4_lat_us_count 2"));
    }

    #[test]
    fn value_snapshots_enumerate_by_type() {
        let r = Registry::new();
        r.counter("s4_b_total", "b").add(7);
        r.counter("s4_a_total", "a").add(3);
        r.gauge("s4_g", "g").set(1.5);
        r.histogram("s4_h_us", "h").record(10);
        assert_eq!(
            r.counter_values(),
            vec![("s4_a_total".into(), 3), ("s4_b_total".into(), 7)]
        );
        assert_eq!(r.gauge_values(), vec![("s4_g".into(), 1.5)]);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = Registry::new();
        r.counter("s4_x_total", "x").add(1);
        r.gauge("s4_y", "y").set(2.5);
        r.histogram("s4_z_us", "z").record(100);
        let j = r.render_json();
        assert!(j.starts_with("{\"counters\":{"));
        assert!(j.contains("\"s4_x_total\":1"));
        assert!(j.contains("\"s4_y\":2.5"));
        assert!(j.contains("\"s4_z_us\":{\"count\":1"));
        assert!(j.ends_with("}"));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
    }
}
