//! Thread-local per-request span.
//!
//! The drive's request path crosses several crates (rpc dispatch →
//! journal packing → lfs segment writes → simulated disk), and none of
//! them share a context object. Instead of threading one through every
//! signature, each layer charges simulated microseconds to a
//! thread-local accumulator; `dispatch` calls [`begin`] on entry and
//! [`take`] on exit to read the decomposition. The simulation executes
//! a request on one thread, so thread-local state is exactly
//! per-request state.
//!
//! Layers can overlap by construction: [`Layer::Disk`] is raw device
//! service time wherever it happens; [`Layer::Lfs`] is the portion of
//! disk time incurred inside a segment flush; [`Layer::Journal`] is
//! simulated time spent packing journal entries (including any flush it
//! triggers). They decompose a request's cost by *where it was spent*,
//! not into disjoint slices.

use std::cell::Cell;

/// Hot-path layers that charge time to the current span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layer {
    /// Whole-dispatch latency (recorded by the dispatcher itself).
    Rpc = 0,
    /// Journal entry packing (object mutations → log entries).
    Journal = 1,
    /// LFS segment writes (device time inside a log flush).
    Lfs = 2,
    /// Simulated disk service time (any device read/write).
    Disk = 3,
}

const LAYERS: usize = 4;

thread_local! {
    static SPAN: Cell<[u64; LAYERS]> = const { Cell::new([0; LAYERS]) };
}

/// Resets the current thread's span (dispatch entry).
pub fn begin() {
    SPAN.with(|s| s.set([0; LAYERS]));
}

/// Adds `us` simulated microseconds to `layer` in the current span.
pub fn charge(layer: Layer, us: u64) {
    SPAN.with(|s| {
        let mut v = s.get();
        v[layer as usize] = v[layer as usize].saturating_add(us);
        s.set(v);
    });
}

/// Total charged to `layer` since [`begin`].
pub fn charged(layer: Layer) -> u64 {
    SPAN.with(|s| s.get()[layer as usize])
}

/// Reads and resets the span; returns `[rpc, journal, lfs, disk]`
/// (rpc is only nonzero if something charged it explicitly).
pub fn take() -> [u64; LAYERS] {
    SPAN.with(|s| s.replace([0; LAYERS]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_per_layer() {
        begin();
        charge(Layer::Disk, 10);
        charge(Layer::Disk, 5);
        charge(Layer::Journal, 7);
        assert_eq!(charged(Layer::Disk), 15);
        assert_eq!(charged(Layer::Journal), 7);
        assert_eq!(charged(Layer::Lfs), 0);
        let v = take();
        assert_eq!(v, [0, 7, 0, 15]);
        assert_eq!(charged(Layer::Disk), 0, "take resets");
    }

    #[test]
    fn begin_clears_stale_state() {
        charge(Layer::Rpc, 99);
        begin();
        assert_eq!(take(), [0; 4]);
    }
}
