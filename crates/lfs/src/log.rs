//! The log: buffered append, batch flush, anchoring, and crash recovery.
//!
//! Writes are buffered into a *batch*; [`Log::flush`] lays the batch out as
//! one summary block followed by the data blocks, written with (at most)
//! two sequential device transfers. This is the LFS write path that makes
//! comprehensive versioning nearly free (§4.2.1): many small object
//! updates coalesce into large sequential writes, and old versions are
//! never moved because nothing is ever overwritten.
//!
//! Durability protocol: data blocks are written first, the summary last,
//! so a torn flush leaves an unreadable summary and recovery cleanly stops
//! at the previous batch. The *anchor* (superblock + system-state batches)
//! is written periodically, not per-sync; recovery rolls forward from the
//! anchored cursor, re-discovering every batch flushed after it. Segments
//! reclaimed since the last anchor are only *pending* free — they become
//! allocatable once the next anchor makes the reclamation durable, so a
//! crash can never observe a reused segment whose old contents the anchored
//! object map still references.

use std::collections::HashMap;

use crate::bytes::Bytes;
use s4_clock::sync::Mutex;

use s4_simdisk::BlockDev;

use crate::cache::BlockCache;
use crate::layout::{BlockAddr, BlockKind, BlockTag, Geometry, SegmentId, BLOCK_SIZE};
use crate::summary::{Summary, SummaryEntry, MAX_ENTRIES, NO_NEXT_SEGMENT};
use crate::superblock::{Superblock, NO_STATE};
use crate::usage::SegmentUsageTable;
use crate::{LfsError, Result};

/// Configuration for formatting a log.
#[derive(Clone, Copy, Debug)]
pub struct LogConfig {
    /// Blocks per segment; the paper-style default is 128 (512 KiB
    /// segments).
    pub blocks_per_segment: u32,
    /// Block-cache capacity in blocks; the paper's S4 drive used a 128 MB
    /// buffer cache.
    pub cache_blocks: usize,
    /// On a cache miss, fetch this many aligned blocks in one transfer
    /// (segment-granular readahead; 0 or 1 disables). Reading
    /// neighborhoods at once is what makes the density of a segment
    /// matter — e.g. Figure 6's audit blocks diluting data locality.
    pub readahead_blocks: u32,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            blocks_per_segment: 128,
            cache_blocks: 32 * 1024, // 128 MB
            readahead_blocks: 32,    // 128 KB
        }
    }
}

/// Statistics returned by [`Log::flush`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Blocks written, including the summary block.
    pub blocks_written: u32,
    /// True if this flush sealed the segment and moved to a new one.
    pub sealed: bool,
}

/// Everything [`Log::mount`] recovers: the log, the anchored upper-layer
/// payload, the post-anchor batches to re-apply, and the superblock.
pub type Mounted<D> = (Log<D>, Vec<u8>, Vec<RecoveredBatch>, Superblock);

/// One batch re-discovered by crash-recovery roll-forward, delivered to
/// the upper layer so it can re-apply journal entries.
#[derive(Clone, Debug)]
pub struct RecoveredBatch {
    /// The batch's summary epoch.
    pub epoch: u64,
    /// `(address, tag)` for every data block in the batch, in append
    /// order.
    pub blocks: Vec<(BlockAddr, BlockTag)>,
}

struct PendingBlock {
    addr: BlockAddr,
    tag: BlockTag,
    data: Bytes,
}

struct WriterState {
    /// Active segment.
    seg: SegmentId,
    /// Next block offset to assign within the active segment.
    cursor: u32,
    /// Offset of the open batch's reserved summary slot, if a batch is
    /// open.
    batch_start: Option<u32>,
    /// Epoch the next flush will stamp into its summary.
    next_epoch: u64,
    pending: Vec<PendingBlock>,
    pending_map: HashMap<u64, usize>,
    /// Superblock epoch last written.
    sb_epoch: u64,
    /// Addresses of the current anchor's system-state blocks (protected
    /// from cleaning; released when the next anchor supersedes them).
    state_addrs: Vec<BlockAddr>,
}

/// The log-structured store.
pub struct Log<D: BlockDev> {
    dev: D,
    geo: Geometry,
    cache: BlockCache,
    readahead: u32,
    state: Mutex<WriterState>,
    usage: Mutex<SegmentUsageTable>,
}

impl<D: BlockDev> Log<D> {
    /// Formats `dev` with a fresh, empty log and writes the initial
    /// superblock.
    pub fn format(dev: D, config: LogConfig) -> Result<Log<D>> {
        let geo = Geometry::compute(dev.num_sectors(), config.blocks_per_segment)?;
        let mut usage = SegmentUsageTable::new(&geo);
        let seg = usage.allocate()?;
        let sb = Superblock {
            epoch: 0,
            blocks_per_segment: geo.blocks_per_segment,
            num_segments: geo.num_segments,
            cursor_segment: seg,
            cursor_block: 0,
            next_summary_epoch: 1,
            state_epoch_first: NO_STATE,
            state_epoch_last: NO_STATE,
            next_stamp_seq: 1,
            anchor_time_us: 0,
        };
        sb.write_to(&dev)?;
        Ok(Log {
            dev,
            geo,
            cache: BlockCache::new(config.cache_blocks),
            readahead: config.readahead_blocks,
            state: Mutex::new(WriterState {
                seg,
                cursor: 0,
                batch_start: None,
                next_epoch: 1,
                pending: Vec::new(),
                pending_map: HashMap::new(),
                sb_epoch: 0,
                state_addrs: Vec::new(),
            }),
            usage: Mutex::new(usage),
        })
    }

    /// Mounts an existing log: reads the latest superblock, rolls the log
    /// forward to the last complete batch, and loads the anchored system
    /// state.
    ///
    /// Returns the log, the upper layer's opaque anchor payload (empty if
    /// the log was never anchored), the batches flushed *after* the anchor
    /// state (for the upper layer to re-apply), and the recovered
    /// superblock.
    pub fn mount(dev: D, cache_blocks: usize) -> Result<Mounted<D>> {
        let sb = Superblock::read_latest(&dev)?;
        let geo = sb.geometry();

        // Phase 1: scan forward from the anchored cursor, collecting every
        // complete batch in epoch order.
        let mut seg = sb.cursor_segment;
        let mut cursor = sb.cursor_block;
        let mut epoch = sb.next_summary_epoch;
        let mut scanned: Vec<(RecoveredBatch, SegmentId, Option<SegmentId>)> = Vec::new();
        loop {
            if cursor >= geo.blocks_per_segment {
                break;
            }
            let addr = geo.addr_of(seg, cursor);
            let mut buf = vec![0u8; BLOCK_SIZE];
            if dev.read(geo.sector_of(addr), &mut buf).is_err() {
                break;
            }
            let summary = match Summary::decode(&buf) {
                Ok(s) => s,
                Err(_) => break,
            };
            if summary.epoch != epoch || summary.segment != seg || summary.offset != cursor {
                break;
            }
            let n = summary.entries.len() as u32;
            let blocks: Vec<(BlockAddr, BlockTag)> = summary
                .entries
                .iter()
                .enumerate()
                .map(|(i, e)| (geo.addr_of(seg, cursor + 1 + i as u32), e.tag))
                .collect();
            let seal = summary.seals_segment().then_some(summary.next_segment);
            scanned.push((RecoveredBatch { epoch, blocks }, seg, seal));
            epoch += 1;
            match seal {
                Some(next) => {
                    seg = next;
                    cursor = 0;
                }
                None => cursor += 1 + n,
            }
        }

        // Phase 2: reassemble the anchored system state from the batches in
        // the recorded epoch range.
        let mut state_addrs = Vec::new();
        let mut blob = Vec::new();
        if !sb.has_no_state() {
            for (batch, _, _) in &scanned {
                if batch.epoch < sb.state_epoch_first || batch.epoch > sb.state_epoch_last {
                    continue;
                }
                for &(addr, tag) in &batch.blocks {
                    if tag.kind != BlockKind::SystemState {
                        return Err(LfsError::Corrupt("non-state block in state batch"));
                    }
                    let mut b = vec![0u8; BLOCK_SIZE];
                    dev.read(geo.sector_of(addr), &mut b)?;
                    blob.extend_from_slice(&b);
                    state_addrs.push(addr);
                }
            }
            if state_addrs.is_empty() {
                return Err(LfsError::Corrupt("anchor state batches missing"));
            }
        }
        let (payload, mut usage) = if blob.is_empty() {
            (Vec::new(), SegmentUsageTable::new(&geo))
        } else {
            if blob.len() < 4 {
                return Err(LfsError::Corrupt("anchor state"));
            }
            let plen = u32::from_le_bytes(blob[0..4].try_into().unwrap()) as usize;
            if blob.len() < 4 + plen {
                return Err(LfsError::Corrupt("anchor payload length"));
            }
            let payload = blob[4..4 + plen].to_vec();
            let usage = SegmentUsageTable::decode(&blob[4 + plen..])?;
            (payload, usage)
        };

        // Phase 3: replay usage accounting for every scanned batch on top
        // of the anchored table. The anchor is durable, so segments the
        // previous incarnation had reclaimed become allocatable.
        usage.promote_pending_free();
        if sb.has_no_state() {
            usage.force_allocate(sb.cursor_segment);
        }
        for (batch, bseg, seal) in &scanned {
            usage.note_append(
                *bseg,
                batch.blocks.len() as u32 + 1,
                batch.blocks.len() as u32,
            );
            if let Some(next) = seal {
                usage.force_allocate(*next);
            }
        }

        // Phase 4: hand post-state batches to the upper layer.
        let upper_batches: Vec<RecoveredBatch> = scanned
            .into_iter()
            .map(|(b, _, _)| b)
            .filter(|b| sb.has_no_state() || b.epoch > sb.state_epoch_last)
            .collect();

        let log = Log {
            dev,
            geo,
            cache: BlockCache::new(cache_blocks),
            readahead: 32,
            state: Mutex::new(WriterState {
                seg,
                cursor,
                batch_start: None,
                next_epoch: epoch,
                pending: Vec::new(),
                pending_map: HashMap::new(),
                sb_epoch: sb.epoch,
                state_addrs,
            }),
            usage: Mutex::new(usage),
        };
        Ok((log, payload, upper_batches, sb))
    }

    /// Device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// The block cache (exposed for cold-cache experiments).
    pub fn cache(&self) -> &BlockCache {
        &self.cache
    }

    /// The underlying device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Consumes the log, returning the underlying device (used by crash
    /// tests to remount).
    pub fn into_device(self) -> D {
        self.dev
    }

    /// Appends one block (at most [`BLOCK_SIZE`] bytes; shorter payloads
    /// are zero-padded) and returns its assigned address. The block is
    /// buffered until the next [`Log::flush`] but is immediately readable
    /// through [`Log::read_block`].
    pub fn append(&self, tag: BlockTag, data: &[u8]) -> Result<BlockAddr> {
        let mut st = self.state.lock();
        self.append_locked(&mut st, tag, data)
    }

    fn append_locked(&self, st: &mut WriterState, tag: BlockTag, data: &[u8]) -> Result<BlockAddr> {
        if data.len() > BLOCK_SIZE {
            return Err(LfsError::Oversize(data.len()));
        }
        // Flush implicitly if the open batch hit the summary-entry limit or
        // the end of the segment.
        if st.batch_start.is_some()
            && (st.pending.len() >= MAX_ENTRIES || st.cursor >= self.geo.blocks_per_segment)
        {
            self.flush_locked(st)?;
        }
        if st.batch_start.is_none() {
            // The post-flush invariant guarantees room for summary + one
            // block in the active segment.
            debug_assert!(st.cursor + 2 <= self.geo.blocks_per_segment);
            st.batch_start = Some(st.cursor);
            st.cursor += 1;
        }
        let mut padded = vec![0u8; BLOCK_SIZE];
        padded[..data.len()].copy_from_slice(data);
        let addr = self.geo.addr_of(st.seg, st.cursor);
        st.cursor += 1;
        let idx = st.pending.len();
        st.pending.push(PendingBlock {
            addr,
            tag,
            data: Bytes::from(padded),
        });
        st.pending_map.insert(addr.0, idx);
        Ok(addr)
    }

    /// Flushes the open batch: one sequential write for the data blocks,
    /// then the summary block. Seals the segment (allocating the next one)
    /// if fewer than two blocks would remain.
    pub fn flush(&self) -> Result<FlushStats> {
        let mut st = self.state.lock();
        self.flush_locked(&mut st)
    }

    fn flush_locked(&self, st: &mut WriterState) -> Result<FlushStats> {
        let Some(batch_start) = st.batch_start else {
            return Ok(FlushStats::default());
        };
        let n = st.pending.len() as u32;
        debug_assert!(n > 0, "batch_start implies pending blocks");
        let seg = st.seg;

        // Seal if the remainder cannot host summary + one block.
        let after = batch_start + 1 + n;
        let remaining = self.geo.blocks_per_segment - after;
        let (next_segment, sealed) = if remaining < 2 {
            let next = self.usage.lock().allocate()?;
            (next, true)
        } else {
            (NO_NEXT_SEGMENT, false)
        };

        // Write data blocks as one contiguous transfer. Device time
        // spent inside the flush is also charged to the Lfs span layer,
        // so per-request latency decomposes segment-write cost out of
        // total disk cost.
        let disk_before = s4_obs::span::charged(s4_obs::Layer::Disk);
        let mut data_buf = Vec::with_capacity(st.pending.len() * BLOCK_SIZE);
        for p in &st.pending {
            data_buf.extend_from_slice(&p.data);
        }
        let first_data = self.geo.addr_of(seg, batch_start + 1);
        self.dev.write(self.geo.sector_of(first_data), &data_buf)?;

        // Then the summary, making the batch durable.
        let summary = Summary {
            epoch: st.next_epoch,
            segment: seg,
            offset: batch_start,
            next_segment,
            entries: st
                .pending
                .iter()
                .map(|p| SummaryEntry { tag: p.tag })
                .collect(),
        };
        let sum_addr = self.geo.addr_of(seg, batch_start);
        self.dev
            .write(self.geo.sector_of(sum_addr), &summary.encode())?;
        s4_obs::span::charge(
            s4_obs::Layer::Lfs,
            s4_obs::span::charged(s4_obs::Layer::Disk) - disk_before,
        );

        // Account and cache.
        self.usage.lock().note_append(seg, n + 1, n);
        for p in st.pending.drain(..) {
            self.cache.insert(p.addr, p.data);
        }
        st.pending_map.clear();
        st.batch_start = None;
        st.next_epoch += 1;
        if sealed {
            st.seg = next_segment;
            st.cursor = 0;
        } else {
            st.cursor = after;
        }
        Ok(FlushStats {
            blocks_written: n + 1,
            sealed,
        })
    }

    /// Reads one block, consulting the open batch, then the cache, then
    /// the device.
    pub fn read_block(&self, addr: BlockAddr) -> Result<Bytes> {
        self.geo.check(addr)?;
        {
            let st = self.state.lock();
            if let Some(&idx) = st.pending_map.get(&addr.0) {
                return Ok(st.pending[idx].data.clone());
            }
        }
        if let Some(hit) = self.cache.get(addr) {
            return Ok(hit);
        }
        // Readahead: fetch an aligned run (clamped to the segment) in one
        // transfer and cache every block of it.
        let ra = self.readahead.max(1) as u64;
        if ra > 1 {
            let seg_start =
                (addr.0 / self.geo.blocks_per_segment as u64) * self.geo.blocks_per_segment as u64;
            let seg_end = seg_start + self.geo.blocks_per_segment as u64;
            let run_start = (addr.0 - addr.0 % ra).max(seg_start);
            let run_end = (run_start + ra).min(seg_end);
            let n = (run_end - run_start) as usize;
            let mut buf = vec![0u8; n * BLOCK_SIZE];
            self.dev
                .read(self.geo.sector_of(BlockAddr(run_start)), &mut buf)?;
            let mut wanted = None;
            for (i, chunk) in buf.chunks_exact(BLOCK_SIZE).enumerate() {
                let a = BlockAddr(run_start + i as u64);
                let data = Bytes::from(chunk);
                if a == addr {
                    wanted = Some(data.clone());
                }
                self.cache.insert(a, data);
            }
            return Ok(wanted.expect("requested block inside readahead run"));
        }
        let mut buf = vec![0u8; BLOCK_SIZE];
        self.dev.read(self.geo.sector_of(addr), &mut buf)?;
        let data = Bytes::from(buf);
        self.cache.insert(addr, data.clone());
        Ok(data)
    }

    /// Reads `n` contiguous blocks starting at `head` in one device
    /// transfer, bypassing the cache (used by the cleaner, whose large
    /// sequential reads the paper's Figure 5 cost model depends on).
    pub fn read_blocks_raw(&self, head: BlockAddr, n: u32) -> Result<Vec<u8>> {
        self.flush()?;
        self.geo.check(head)?;
        if n == 0 {
            return Ok(Vec::new());
        }
        self.geo.check(BlockAddr(head.0 + n as u64 - 1))?;
        let mut buf = vec![0u8; n as usize * BLOCK_SIZE];
        self.dev.read(self.geo.sector_of(head), &mut buf)?;
        Ok(buf)
    }

    /// Writes a new anchor: flushes, appends `payload` plus the usage
    /// table as system-state blocks, and commits a new superblock whose
    /// roll-forward cursor covers the state batches themselves. Once the
    /// superblock is durable, segments reclaimed since the previous anchor
    /// become allocatable.
    pub fn write_anchor(
        &self,
        payload: &[u8],
        next_stamp_seq: u64,
        anchor_time_us: u64,
    ) -> Result<()> {
        let mut st = self.state.lock();
        self.flush_locked(&mut st)?;

        // Capture the pre-state cursor: recovery replays the state batches.
        let cursor_segment = st.seg;
        let cursor_block = st.cursor;
        let next_summary_epoch = st.next_epoch;
        let state_epoch_first = st.next_epoch;

        // Serialize payload + usage table (as of this instant; the state
        // batches themselves are replayed into the table at mount).
        let mut blob = Vec::with_capacity(4 + payload.len());
        blob.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        blob.extend_from_slice(payload);
        blob.extend_from_slice(&self.usage.lock().encode());

        let n_blocks = blob.len().div_ceil(BLOCK_SIZE).max(1) as u32;
        let mut new_state_addrs = Vec::with_capacity(n_blocks as usize);
        for i in 0..n_blocks {
            let lo = i as usize * BLOCK_SIZE;
            let hi = (lo + BLOCK_SIZE).min(blob.len());
            let addr = self.append_locked(
                &mut st,
                BlockTag::new(BlockKind::SystemState, 0, i as u64),
                &blob[lo..hi],
            )?;
            new_state_addrs.push(addr);
        }
        self.flush_locked(&mut st)?;
        let state_epoch_last = st.next_epoch - 1;

        // Release the previous anchor's state blocks and install the new.
        let old_state = std::mem::replace(&mut st.state_addrs, new_state_addrs);
        {
            let mut usage = self.usage.lock();
            for a in old_state {
                usage.release_blocks(self.geo.segment_of(a), 1);
            }
        }

        st.sb_epoch += 1;
        let sb = Superblock {
            epoch: st.sb_epoch,
            blocks_per_segment: self.geo.blocks_per_segment,
            num_segments: self.geo.num_segments,
            cursor_segment,
            cursor_block,
            next_summary_epoch,
            state_epoch_first,
            state_epoch_last,
            next_stamp_seq,
            anchor_time_us,
        };
        sb.write_to(&self.dev)?;

        // Anchor durable: reclaimed segments may now be reused.
        self.usage.lock().promote_pending_free();
        Ok(())
    }

    /// Decrements the live count of the segment holding each address
    /// (called when versions age out of the detection window or are
    /// administratively flushed).
    pub fn release_blocks<I: IntoIterator<Item = BlockAddr>>(&self, addrs: I) {
        let mut usage = self.usage.lock();
        for a in addrs {
            usage.release_blocks(self.geo.segment_of(a), 1);
        }
    }

    /// Moves every fully-dead segment (zero live blocks) to pending-free
    /// without copying; returns how many were reclaimed.
    pub fn free_dead_segments(&self) -> u32 {
        let exclude = self.protected_segments();
        let mut usage = self.usage.lock();
        let dead = usage.dead_segments(&exclude);
        for &seg in &dead {
            usage.free_segment(seg);
            self.cache.invalidate_segment(&self.geo, seg);
        }
        dead.len() as u32
    }

    /// Segments that must never be reclaimed: the active segment and the
    /// segments holding the current anchor state.
    pub fn protected_segments(&self) -> Vec<SegmentId> {
        let st = self.state.lock();
        let mut out = vec![st.seg];
        for a in &st.state_addrs {
            let seg = self.geo.segment_of(*a);
            if !out.contains(&seg) {
                out.push(seg);
            }
        }
        out
    }

    /// Snapshot of the usage table (for the cleaner and for utilization
    /// reporting).
    pub fn usage_snapshot(&self) -> SegmentUsageTable {
        self.usage.lock().clone()
    }

    /// Marks `seg` pending-free after the cleaner has relocated its live
    /// blocks.
    pub fn reclaim_segment(&self, seg: SegmentId) {
        let mut usage = self.usage.lock();
        // The cleaner has relocated everything; zero any residual count.
        let residual = usage.get(seg).live_blocks;
        if residual > 0 {
            usage.release_blocks(seg, residual);
        }
        usage.free_segment(seg);
        self.cache.invalidate_segment(&self.geo, seg);
    }

    /// Replaces every segment's live count with counts recomputed from an
    /// authoritative set of reachable block addresses (used after crash
    /// recovery, when batches replayed from the log may include blocks —
    /// e.g. cleaner relocations or orphaned checkpoints — that the
    /// recovered object state no longer references).
    pub fn rebuild_live_counts<I: IntoIterator<Item = BlockAddr>>(&self, live: I) {
        let mut usage = self.usage.lock();
        usage.zero_live();
        for a in live {
            usage.add_live(self.geo.segment_of(a), 1);
        }
    }

    /// Free segments remaining (excludes pending-free).
    pub fn free_segments(&self) -> u32 {
        self.usage.lock().free_segments()
    }

    /// Fraction of data-area blocks currently referenced.
    pub fn utilization(&self) -> f64 {
        self.usage.lock().utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4_simdisk::MemDisk;

    fn small_log() -> Log<MemDisk> {
        Log::format(
            MemDisk::new(200_000),
            LogConfig {
                blocks_per_segment: 16,
                cache_blocks: 64,
                readahead_blocks: 1,
            },
        )
        .unwrap()
    }

    fn tag(obj: u64, aux: u64) -> BlockTag {
        BlockTag::new(BlockKind::Data, obj, aux)
    }

    #[test]
    fn append_read_before_and_after_flush() {
        let log = small_log();
        let a = log.append(tag(1, 0), b"hello").unwrap();
        // Readable from the open batch.
        assert_eq!(&log.read_block(a).unwrap()[..5], b"hello");
        log.flush().unwrap();
        assert_eq!(&log.read_block(a).unwrap()[..5], b"hello");
        // And from a cold cache.
        log.cache().clear();
        assert_eq!(&log.read_block(a).unwrap()[..5], b"hello");
    }

    #[test]
    fn addresses_are_contiguous_within_a_batch() {
        let log = small_log();
        let a = log.append(tag(1, 0), b"a").unwrap();
        let b = log.append(tag(1, 1), b"b").unwrap();
        assert_eq!(b.0, a.0 + 1);
        // Address 0 of the first segment is the reserved summary slot.
        assert_eq!(a.0, 1);
    }

    #[test]
    fn segment_seals_and_log_continues() {
        let log = small_log();
        let mut last = BlockAddr(0);
        for i in 0..100u64 {
            last = log.append(tag(1, i), &i.to_le_bytes()).unwrap();
            if i % 3 == 0 {
                log.flush().unwrap();
            }
        }
        log.flush().unwrap();
        assert!(log.geometry().segment_of(last) >= 2);
        log.cache().clear();
        assert_eq!(&log.read_block(last).unwrap()[..8], &99u64.to_le_bytes());
    }

    #[test]
    fn flush_empty_is_noop() {
        let log = small_log();
        assert_eq!(log.flush().unwrap(), FlushStats::default());
    }

    #[test]
    fn mount_recovers_unanchored_batches() {
        let cfg = LogConfig {
            blocks_per_segment: 16,
            cache_blocks: 64,
            readahead_blocks: 1,
        };
        let log = Log::format(MemDisk::new(200_000), cfg).unwrap();
        let mut addrs = Vec::new();
        for i in 0..20u64 {
            addrs.push(log.append(tag(7, i), &i.to_le_bytes()).unwrap());
        }
        log.flush().unwrap();
        // No anchor written: recovery must roll forward from format.
        let dev = log.into_device();
        let (log2, payload, batches, _sb) = Log::mount(dev, 64).unwrap();
        assert!(payload.is_empty());
        let recovered: Vec<(BlockAddr, BlockTag)> =
            batches.iter().flat_map(|b| b.blocks.clone()).collect();
        assert_eq!(recovered.len(), 20);
        assert_eq!(recovered[7].0, addrs[7]);
        assert_eq!(recovered[7].1, tag(7, 7));
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(
                &log2.read_block(*a).unwrap()[..8],
                &(i as u64).to_le_bytes()
            );
        }
    }

    #[test]
    fn anchor_then_mount_restores_payload_and_skips_prior_batches() {
        let cfg = LogConfig {
            blocks_per_segment: 16,
            cache_blocks: 64,
            readahead_blocks: 1,
        };
        let log = Log::format(MemDisk::new(200_000), cfg).unwrap();
        for i in 0..10u64 {
            log.append(tag(1, i), &i.to_le_bytes()).unwrap();
        }
        log.flush().unwrap();
        log.write_anchor(b"OBJECT-MAP-STATE", 555, 42).unwrap();
        // Post-anchor writes.
        let post = log.append(tag(2, 99), b"post").unwrap();
        log.flush().unwrap();

        let dev = log.into_device();
        let (log2, payload, batches, sb) = Log::mount(dev, 64).unwrap();
        assert_eq!(payload, b"OBJECT-MAP-STATE");
        assert_eq!(sb.next_stamp_seq, 555);
        assert_eq!(sb.anchor_time_us, 42);
        // Only the post-anchor data batch is delivered to the upper layer.
        let objs: Vec<u64> = batches
            .iter()
            .flat_map(|b| b.blocks.iter().map(|(_, t)| t.object))
            .collect();
        assert_eq!(objs, vec![2]);
        assert_eq!(&log2.read_block(post).unwrap()[..4], b"post");
    }

    #[test]
    fn large_anchor_payload_spans_batches() {
        let cfg = LogConfig {
            blocks_per_segment: 8, // tiny segments force multi-batch state
            cache_blocks: 64,
            readahead_blocks: 1,
        };
        let log = Log::format(MemDisk::new(400_000), cfg).unwrap();
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        log.write_anchor(&payload, 9, 9).unwrap();
        let dev = log.into_device();
        let (_log2, restored, batches, _) = Log::mount(dev, 64).unwrap();
        assert_eq!(restored, payload);
        assert!(batches.is_empty());
    }

    #[test]
    fn torn_flush_recovers_to_previous_batch() {
        use s4_simdisk::{FaultPlan, FaultyDisk};
        let cfg = LogConfig {
            blocks_per_segment: 16,
            cache_blocks: 64,
            readahead_blocks: 1,
        };
        let log = Log::format(MemDisk::new(200_000), cfg).unwrap();
        let a = log.append(tag(1, 0), b"durable").unwrap();
        log.flush().unwrap();
        let dev = FaultyDisk::new(log.into_device(), FaultPlan::power_loss_after_writes(0, 0));
        let (log, _, _, _) = Log::mount(dev, 64).unwrap();
        // This flush tears: its data write is dropped and the device dies.
        log.append(tag(1, 1), b"lost").unwrap();
        assert!(log.flush().is_err());
        let dev = log.into_device();
        dev.revive();
        let (log2, _, batches, _) = Log::mount(dev, 64).unwrap();
        let recovered: Vec<u64> = batches
            .iter()
            .flat_map(|b| b.blocks.iter().map(|(_, t)| t.aux))
            .collect();
        assert_eq!(recovered, vec![0], "only the durable batch survives");
        assert_eq!(&log2.read_block(a).unwrap()[..7], b"durable");
    }

    #[test]
    fn usage_tracks_appends_and_releases() {
        let log = small_log();
        let a = log.append(tag(1, 0), b"x").unwrap();
        let _b = log.append(tag(1, 1), b"y").unwrap();
        log.flush().unwrap();
        let seg = log.geometry().segment_of(a);
        let u = log.usage_snapshot();
        assert_eq!(u.get(seg).live_blocks, 2);
        assert_eq!(u.get(seg).written_blocks, 3); // + summary
        log.release_blocks([a]);
        assert_eq!(log.usage_snapshot().get(seg).live_blocks, 1);
    }

    #[test]
    fn dead_segments_become_reusable_after_anchor() {
        let cfg = LogConfig {
            blocks_per_segment: 8,
            cache_blocks: 64,
            readahead_blocks: 1,
        };
        let log = Log::format(MemDisk::new(200_000), cfg).unwrap();
        let mut addrs = Vec::new();
        for i in 0..30u64 {
            addrs.push(log.append(tag(1, i), &i.to_le_bytes()).unwrap());
            log.flush().unwrap();
        }
        let before = log.free_segments();
        log.release_blocks(addrs.iter().copied());
        let freed = log.free_dead_segments();
        assert!(freed > 0);
        // Not yet allocatable: pending until the next anchor.
        assert_eq!(log.free_segments(), before);
        log.write_anchor(b"", 1, 1).unwrap();
        assert!(log.free_segments() > before);
    }

    #[test]
    fn oversize_append_rejected() {
        let log = small_log();
        assert!(matches!(
            log.append(tag(1, 0), &vec![0u8; BLOCK_SIZE + 1]),
            Err(LfsError::Oversize(_))
        ));
    }

    #[test]
    fn large_batch_autoflushes_and_survives() {
        let log = Log::format(
            MemDisk::new(2_000_000),
            LogConfig {
                blocks_per_segment: 128,
                cache_blocks: 16,
                readahead_blocks: 1,
            },
        )
        .unwrap();
        let addrs: Vec<BlockAddr> = (0..500u64)
            .map(|i| log.append(tag(3, i), &i.to_le_bytes()).unwrap())
            .collect();
        log.flush().unwrap();
        log.cache().clear();
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(&log.read_block(*a).unwrap()[..8], &(i as u64).to_le_bytes());
        }
    }

    #[test]
    fn second_anchor_releases_first_anchor_state() {
        let log = small_log();
        log.append(tag(1, 0), b"x").unwrap();
        log.write_anchor(b"A1", 1, 1).unwrap();
        log.write_anchor(b"A2-bigger-payload", 2, 2).unwrap();
        let dev = log.into_device();
        let (_log2, payload, _, _) = Log::mount(dev, 16).unwrap();
        assert_eq!(payload, b"A2-bigger-payload");
    }

    #[test]
    fn repeated_crashless_remounts_are_stable() {
        let cfg = LogConfig {
            blocks_per_segment: 16,
            cache_blocks: 64,
            readahead_blocks: 1,
        };
        let mut dev = MemDisk::new(200_000);
        {
            let log = Log::format(dev, cfg).unwrap();
            log.append(tag(1, 1), b"v1").unwrap();
            log.write_anchor(b"S", 10, 10).unwrap();
            dev = log.into_device();
        }
        for round in 0..3u64 {
            let (log, payload, _batches, _) = Log::mount(dev, 64).unwrap();
            assert_eq!(payload, b"S");
            log.append(tag(2, round), b"more").unwrap();
            log.flush().unwrap();
            dev = log.into_device();
        }
        let (_, _, batches, _) = Log::mount(dev, 64).unwrap();
        // Three post-anchor data batches survive.
        let n: usize = batches
            .iter()
            .flat_map(|b| b.blocks.iter())
            .filter(|(_, t)| t.object == 2)
            .count();
        assert_eq!(n, 3);
    }
}
