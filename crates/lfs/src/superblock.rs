//! Dual-copy checksummed superblock.
//!
//! The superblock records the geometry and the *log anchor*: the position
//! from which crash recovery rolls forward, plus the summary-epoch range
//! of the batches holding the most recent system-state checkpoint. Two
//! copies live at the front of the device and are written alternately
//! (selected by epoch parity), so a torn superblock write always leaves
//! the previous copy intact.

use s4_simdisk::{BlockDev, SECTOR_SIZE};

use crate::crc::crc32;
use crate::layout::{Geometry, SegmentId};
use crate::{LfsError, Result};

const MAGIC: u32 = 0x5334_4C46; // "S4LF"
const SB_BYTES: usize = 96;

/// Sentinel for "the log has never been anchored".
pub const NO_STATE: u64 = u64::MAX;

/// On-disk superblock contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// Monotonically increasing write epoch; the copy with the larger
    /// valid epoch wins at mount.
    pub epoch: u64,
    /// Blocks per segment (fixed at format time).
    pub blocks_per_segment: u32,
    /// Number of segments (fixed at format time).
    pub num_segments: u32,
    /// Segment the log cursor was in at anchor time.
    pub cursor_segment: SegmentId,
    /// Block offset of the cursor within that segment.
    pub cursor_block: u32,
    /// Epoch the first summary after the anchor carries; roll-forward
    /// accepts only exact epoch sequence from here.
    pub next_summary_epoch: u64,
    /// First summary epoch of the system-state batches ([`NO_STATE`] if
    /// never anchored).
    pub state_epoch_first: u64,
    /// Last summary epoch of the system-state batches.
    pub state_epoch_last: u64,
    /// Next hybrid-timestamp sequence number (so version stamps keep
    /// increasing across remounts).
    pub next_stamp_seq: u64,
    /// Simulated time at anchor (restored into the clock on mount of a
    /// long-lived history).
    pub anchor_time_us: u64,
}

impl Superblock {
    /// Serializes to exactly [`SECTOR_SIZE`] bytes with magic and CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; SECTOR_SIZE];
        buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        // CRC at 4..8 filled last.
        buf[8..16].copy_from_slice(&self.epoch.to_le_bytes());
        buf[16..20].copy_from_slice(&self.blocks_per_segment.to_le_bytes());
        buf[20..24].copy_from_slice(&self.num_segments.to_le_bytes());
        buf[24..28].copy_from_slice(&self.cursor_segment.to_le_bytes());
        buf[28..32].copy_from_slice(&self.cursor_block.to_le_bytes());
        buf[32..40].copy_from_slice(&self.next_summary_epoch.to_le_bytes());
        buf[40..48].copy_from_slice(&self.state_epoch_first.to_le_bytes());
        buf[48..56].copy_from_slice(&self.state_epoch_last.to_le_bytes());
        buf[56..64].copy_from_slice(&self.next_stamp_seq.to_le_bytes());
        buf[64..72].copy_from_slice(&self.anchor_time_us.to_le_bytes());
        let crc = crc32(&buf[8..SB_BYTES]);
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parses and validates a sector.
    pub fn decode(buf: &[u8]) -> Result<Superblock> {
        if buf.len() < SECTOR_SIZE {
            return Err(LfsError::Corrupt("superblock length"));
        }
        if buf[0..4] != MAGIC.to_le_bytes() {
            return Err(LfsError::Corrupt("superblock magic"));
        }
        let stored = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if crc32(&buf[8..SB_BYTES]) != stored {
            return Err(LfsError::Corrupt("superblock crc"));
        }
        let u64at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
        let u32at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().unwrap());
        Ok(Superblock {
            epoch: u64at(8),
            blocks_per_segment: u32at(16),
            num_segments: u32at(20),
            cursor_segment: u32at(24),
            cursor_block: u32at(28),
            next_summary_epoch: u64at(32),
            state_epoch_first: u64at(40),
            state_epoch_last: u64at(48),
            next_stamp_seq: u64at(56),
            anchor_time_us: u64at(64),
        })
    }

    /// True if the log has never been anchored.
    pub fn has_no_state(&self) -> bool {
        self.state_epoch_first == NO_STATE
    }

    /// Writes this superblock to the copy slot selected by epoch parity.
    pub fn write_to<D: BlockDev>(&self, dev: &D) -> Result<()> {
        let slot = (self.epoch % 2) * Geometry::SUPERBLOCK_COPY_SECTORS;
        dev.write(slot, &self.encode())?;
        dev.sync()?;
        Ok(())
    }

    /// Reads both copies and returns the valid one with the larger epoch.
    pub fn read_latest<D: BlockDev>(dev: &D) -> Result<Superblock> {
        let mut best: Option<Superblock> = None;
        for copy in 0..2u64 {
            let mut buf = vec![0u8; SECTOR_SIZE];
            if dev
                .read(copy * Geometry::SUPERBLOCK_COPY_SECTORS, &mut buf)
                .is_err()
            {
                continue;
            }
            if let Ok(sb) = Superblock::decode(&buf) {
                if best.as_ref().is_none_or(|b| sb.epoch > b.epoch) {
                    best = Some(sb);
                }
            }
        }
        best.ok_or(LfsError::Corrupt("no valid superblock"))
    }

    /// Geometry implied by this superblock.
    pub fn geometry(&self) -> Geometry {
        Geometry {
            superblock_sectors: Geometry::SUPERBLOCK_COPY_SECTORS * 2,
            blocks_per_segment: self.blocks_per_segment,
            num_segments: self.num_segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4_simdisk::MemDisk;

    fn sample(epoch: u64) -> Superblock {
        Superblock {
            epoch,
            blocks_per_segment: 128,
            num_segments: 1000,
            cursor_segment: 5,
            cursor_block: 17,
            next_summary_epoch: 42,
            state_epoch_first: 40,
            state_epoch_last: 41,
            next_stamp_seq: 7_000,
            anchor_time_us: 123_456,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let sb = sample(9);
        assert_eq!(Superblock::decode(&sb.encode()).unwrap(), sb);
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut buf = sample(1).encode();
        buf[30] ^= 0xFF;
        assert!(Superblock::decode(&buf).is_err());
        let mut buf2 = sample(1).encode();
        buf2[0] = 0;
        assert!(Superblock::decode(&buf2).is_err());
    }

    #[test]
    fn read_latest_prefers_higher_epoch() {
        let dev = MemDisk::new(1024);
        sample(4).write_to(&dev).unwrap();
        sample(7).write_to(&dev).unwrap();
        assert_eq!(Superblock::read_latest(&dev).unwrap().epoch, 7);
    }

    #[test]
    fn torn_superblock_write_falls_back_to_previous_copy() {
        let dev = MemDisk::new(1024);
        sample(4).write_to(&dev).unwrap();
        sample(5).write_to(&dev).unwrap();
        // Corrupt the epoch-5 copy in place (slot 1).
        let mut garbage = vec![0u8; SECTOR_SIZE];
        garbage[0] = 0xBB;
        dev.write(Geometry::SUPERBLOCK_COPY_SECTORS, &garbage)
            .unwrap();
        assert_eq!(Superblock::read_latest(&dev).unwrap().epoch, 4);
    }

    #[test]
    fn empty_disk_has_no_superblock() {
        let dev = MemDisk::new(1024);
        assert!(Superblock::read_latest(&dev).is_err());
    }

    #[test]
    fn no_state_sentinel() {
        let mut sb = sample(1);
        sb.state_epoch_first = NO_STATE;
        assert!(sb.has_no_state());
        assert!(!sample(1).has_no_state());
    }
}
