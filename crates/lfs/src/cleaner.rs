//! The S4 cleaner (§4.2.1, Figure 5 of the paper).
//!
//! Unlike a classic LFS cleaner, the S4 cleaner may only reclaim blocks
//! whose versions have aged out of the detection window — the upper layer
//! expresses this by releasing blocks from the usage table as versions
//! expire. The cleaner then:
//!
//! 1. frees *dead* segments (zero referenced blocks) without copying, and
//! 2. if more space is needed, picks the in-use segment with the fewest
//!    referenced blocks, reads the **whole segment** (the extra reads the
//!    paper blames for S4's higher cleaning overhead), asks the upper
//!    layer which blocks are still live, copies those forward through the
//!    normal append path, and reclaims the segment.
//!
//! The upper layer participates through [`RelocationCallbacks`], because
//! only it can map a block to the object version(s) referencing it and
//! update their pointers.

use s4_simdisk::BlockDev;

use crate::layout::{BlockAddr, BlockTag, SegmentId, BLOCK_SIZE};
use crate::log::Log;
use crate::summary::Summary;
use crate::Result;

/// Upper-layer hooks the cleaner needs.
pub trait RelocationCallbacks {
    /// True if the block at `addr` is still referenced by the current
    /// state or by any in-window history version.
    fn is_live(&self, tag: &BlockTag, addr: BlockAddr) -> bool;

    /// Re-home a live block: append it at the log head and update every
    /// pointer that referenced `addr`.
    fn relocate(&self, tag: &BlockTag, addr: BlockAddr, data: &[u8]) -> Result<()>;
}

/// Cleaner tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct CleanerConfig {
    /// Keep cleaning until at least this many segments are free (or
    /// pending-free).
    pub min_free_target: u32,
    /// Upper bound on segments copied per [`Cleaner::clean_pass`] call,
    /// bounding how much a foreground pass steals from request service.
    pub max_segments_per_pass: u32,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        CleanerConfig {
            min_free_target: 8,
            max_segments_per_pass: 4,
        }
    }
}

/// Outcome of one cleaning pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CleanOutcome {
    /// Segments freed without copying (fully expired).
    pub dead_freed: u32,
    /// Segments reclaimed by copy-forward.
    pub copied_segments: u32,
    /// Live blocks relocated.
    pub blocks_relocated: u32,
    /// Blocks read while examining victim segments.
    pub blocks_read: u32,
}

/// The cleaner. Stateless; all persistent state lives in the log's usage
/// table.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cleaner {
    config: CleanerConfig,
}

impl Cleaner {
    /// Creates a cleaner with the given configuration.
    pub fn new(config: CleanerConfig) -> Self {
        Cleaner { config }
    }

    /// Runs one cleaning pass. Returns what was reclaimed.
    pub fn clean_pass<D: BlockDev, C: RelocationCallbacks>(
        &self,
        log: &Log<D>,
        callbacks: &C,
    ) -> Result<CleanOutcome> {
        let mut outcome = CleanOutcome {
            dead_freed: log.free_dead_segments(),
            ..CleanOutcome::default()
        };

        let mut copied = 0;
        while copied < self.config.max_segments_per_pass {
            let usage = log.usage_snapshot();
            let free_now = usage.free_segments() + usage.pending_free_segments();
            if free_now >= self.config.min_free_target {
                break;
            }
            let exclude = log.protected_segments();
            let Some((victim, live)) = usage.lowest_utilization(&exclude) else {
                break;
            };
            // A fully-live victim cannot gain us a segment: copying its
            // blocks forward consumes as much as it frees.
            let written = usage.get(victim).written_blocks;
            if live >= written {
                break;
            }
            outcome.blocks_relocated += self.copy_segment_forward(log, callbacks, victim)?;
            outcome.blocks_read += log.geometry().blocks_per_segment;
            outcome.copied_segments += 1;
            copied += 1;
        }
        Ok(outcome)
    }

    /// Reads `victim` in one sequential transfer, relocates its live
    /// blocks, and reclaims it. Returns the number of blocks relocated.
    fn copy_segment_forward<D: BlockDev, C: RelocationCallbacks>(
        &self,
        log: &Log<D>,
        callbacks: &C,
        victim: SegmentId,
    ) -> Result<u32> {
        let geo = *log.geometry();
        let written = log.usage_snapshot().get(victim).written_blocks;
        let head = geo.addr_of(victim, 0);
        let raw = log.read_blocks_raw(head, written)?;

        // Structurally walk the batches inside the segment: a summary at
        // offset p describes the blocks at p+1 ..= p+n.
        let mut relocated = 0;
        let mut p: u32 = 0;
        while p < written {
            let s = &raw[p as usize * BLOCK_SIZE..][..BLOCK_SIZE];
            let Ok(summary) = Summary::decode(s) else {
                break;
            };
            let n = summary.entries.len() as u32;
            for (i, e) in summary.entries.iter().enumerate() {
                let off = p + 1 + i as u32;
                if off >= written {
                    break;
                }
                let addr = geo.addr_of(victim, off);
                if callbacks.is_live(&e.tag, addr) {
                    let data = &raw[off as usize * BLOCK_SIZE..][..BLOCK_SIZE];
                    callbacks.relocate(&e.tag, addr, data)?;
                    relocated += 1;
                }
            }
            p += 1 + n;
        }
        log.reclaim_segment(victim);
        Ok(relocated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::BlockKind;
    use crate::log::LogConfig;
    use s4_clock::sync::Mutex;
    use s4_simdisk::MemDisk;
    use std::collections::HashMap;

    /// A toy upper layer: a map from logical id to current address.
    struct ToyCb<'a> {
        current: &'a Mutex<HashMap<u64, BlockAddr>>,
        log: &'a Log<MemDisk>,
    }

    impl RelocationCallbacks for ToyCb<'_> {
        fn is_live(&self, tag: &BlockTag, addr: BlockAddr) -> bool {
            self.current.lock().get(&tag.aux) == Some(&addr)
        }
        fn relocate(&self, tag: &BlockTag, addr: BlockAddr, data: &[u8]) -> Result<()> {
            let new = self.log.append(*tag, data)?;
            let mut cur = self.current.lock();
            assert_eq!(cur.insert(tag.aux, new), Some(addr));
            // The old block is no longer referenced.
            self.log.release_blocks([addr]);
            Ok(())
        }
    }

    #[test]
    fn cleaner_frees_dead_and_copies_sparse_segments() {
        let log = Log::format(
            MemDisk::new(400_000),
            LogConfig {
                blocks_per_segment: 8,
                cache_blocks: 256,
                readahead_blocks: 1,
            },
        )
        .unwrap();
        let current = Mutex::new(HashMap::new());

        // Write 100 logical blocks, then overwrite most of them so early
        // segments hold mostly-garbage.
        for i in 0..100u64 {
            let a = log
                .append(BlockTag::new(BlockKind::Data, 1, i), &i.to_le_bytes())
                .unwrap();
            current.lock().insert(i, a);
            log.flush().unwrap();
        }
        for i in 0..90u64 {
            let a = log
                .append(
                    BlockTag::new(BlockKind::Data, 1, i),
                    &(i + 1000).to_le_bytes(),
                )
                .unwrap();
            let old = current.lock().insert(i, a).unwrap();
            log.release_blocks([old]);
            log.flush().unwrap();
        }

        let free_before = {
            let u = log.usage_snapshot();
            u.free_segments() + u.pending_free_segments()
        };
        let cleaner = Cleaner::new(CleanerConfig {
            min_free_target: free_before + 6,
            max_segments_per_pass: 32,
        });
        let cb = ToyCb {
            current: &current,
            log: &log,
        };
        let outcome = cleaner.clean_pass(&log, &cb).unwrap();
        assert!(
            outcome.copied_segments > 0 || outcome.dead_freed > 0,
            "cleaner reclaimed nothing: {outcome:?}"
        );

        // Every logical block still reads its latest value.
        log.flush().unwrap();
        log.cache().clear();
        for i in 0..100u64 {
            let addr = current.lock()[&i];
            let expect = if i < 90 { i + 1000 } else { i };
            assert_eq!(
                &log.read_block(addr).unwrap()[..8],
                &expect.to_le_bytes(),
                "logical block {i}"
            );
        }
        let after = {
            let u = log.usage_snapshot();
            u.free_segments() + u.pending_free_segments()
        };
        assert!(after > free_before);
    }

    #[test]
    fn cleaner_respects_target_and_pass_bound() {
        let log = Log::format(
            MemDisk::new(400_000),
            LogConfig {
                blocks_per_segment: 8,
                cache_blocks: 64,
                readahead_blocks: 1,
            },
        )
        .unwrap();
        let current: Mutex<HashMap<u64, BlockAddr>> = Mutex::new(HashMap::new());
        let cb = ToyCb {
            current: &current,
            log: &log,
        };
        // Target already satisfied: nothing happens.
        let cleaner = Cleaner::new(CleanerConfig {
            min_free_target: 1,
            max_segments_per_pass: 4,
        });
        let outcome = cleaner.clean_pass(&log, &cb).unwrap();
        assert_eq!(outcome, CleanOutcome::default());
    }
}
