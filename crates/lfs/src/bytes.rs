//! Cheaply cloneable immutable byte buffers.
//!
//! The log hands out whole 4 KiB blocks that are never mutated in place,
//! so readers and the cache can share one allocation. `Arc<[u8]>` gives
//! exactly that (clone = refcount bump, `Deref` to `&[u8]`, content
//! equality) without an external crate, keeping the tier-1 build
//! hermetic.

/// An immutable, reference-counted byte buffer.
///
/// Construct with `Bytes::from(vec)` or `Bytes::from(&slice[..])`.
pub type Bytes = std::sync::Arc<[u8]>;

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Bytes::from(vec![7u8; 4096]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_ptr(), b.as_ptr()));
        assert_eq!(&a[..], &b[..]);
    }

    #[test]
    fn from_slice_copies() {
        let src = [1u8, 2, 3];
        let b = Bytes::from(&src[..]);
        assert_eq!(&b[..], &src);
    }
}
