//! CRC-32 (IEEE 802.3 polynomial) for on-disk structure validation.
//!
//! Implemented locally so the on-disk format has no dependency on external
//! crate behavior. Table-driven, byte-at-a-time; fast enough for 4 KiB
//! blocks at simulation scale.

/// Lazily built 256-entry CRC table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sensitive_to_single_bit_flip() {
        let mut data = vec![0u8; 4096];
        let a = crc32(&data);
        data[2048] ^= 0x01;
        assert_ne!(a, crc32(&data));
    }
}
