//! Partial-segment summary blocks.
//!
//! Every flush of the log writes one summary block at the head of the
//! batch, describing each block that follows (its [`BlockTag`]). Summaries
//! carry a strictly increasing epoch; crash recovery rolls forward from
//! the anchored cursor, accepting summaries only in exact epoch order, so
//! a torn flush cleanly terminates recovery at the last complete batch
//! (§4.2.2: "journal sectors are identified by segment summary
//! information").

use crate::crc::crc32;
use crate::layout::{BlockKind, BlockTag, SegmentId, BLOCK_SIZE};
use crate::{LfsError, Result};

const MAGIC: u32 = 0x5334_534D; // "S4SM"
const HEADER_BYTES: usize = 44;
const ENTRY_BYTES: usize = 17;

/// Sentinel for "this summary does not seal the segment".
pub const NO_NEXT_SEGMENT: u32 = u32::MAX;

/// One block description inside a summary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SummaryEntry {
    /// Tag of the described block.
    pub tag: BlockTag,
}

/// A decoded partial-segment summary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Summary {
    /// Flush sequence number; recovery accepts epochs in exact order.
    pub epoch: u64,
    /// Segment this summary lives in (sanity check for recovery).
    pub segment: SegmentId,
    /// Block offset within the segment of the summary block itself.
    pub offset: u32,
    /// If this flush sealed the segment, the segment where the log
    /// continues; otherwise [`NO_NEXT_SEGMENT`].
    pub next_segment: SegmentId,
    /// Descriptions of the `entries.len()` blocks that follow the summary.
    pub entries: Vec<SummaryEntry>,
}

/// Maximum number of block entries one summary block can describe.
pub const MAX_ENTRIES: usize = (BLOCK_SIZE - HEADER_BYTES) / ENTRY_BYTES;

impl Summary {
    /// Serializes into exactly one block.
    ///
    /// # Panics
    ///
    /// Panics if `entries.len() > MAX_ENTRIES`; the log writer limits batch
    /// size so this cannot happen in normal operation.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.entries.len() <= MAX_ENTRIES, "summary overflow");
        let mut buf = vec![0u8; BLOCK_SIZE];
        buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        // CRC at 4..8 filled last.
        buf[8..16].copy_from_slice(&self.epoch.to_le_bytes());
        buf[16..20].copy_from_slice(&self.segment.to_le_bytes());
        buf[20..24].copy_from_slice(&self.offset.to_le_bytes());
        buf[24..28].copy_from_slice(&self.next_segment.to_le_bytes());
        buf[28..32].copy_from_slice(&(self.entries.len() as u32).to_le_bytes());
        let mut o = HEADER_BYTES;
        for e in &self.entries {
            buf[o] = e.tag.kind as u8;
            buf[o + 1..o + 9].copy_from_slice(&e.tag.object.to_le_bytes());
            buf[o + 9..o + 17].copy_from_slice(&e.tag.aux.to_le_bytes());
            o += ENTRY_BYTES;
        }
        let crc = crc32(&buf[8..]);
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parses and validates a block.
    pub fn decode(buf: &[u8]) -> Result<Summary> {
        if buf.len() != BLOCK_SIZE {
            return Err(LfsError::Corrupt("summary length"));
        }
        if buf[0..4] != MAGIC.to_le_bytes() {
            return Err(LfsError::Corrupt("summary magic"));
        }
        let stored = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if crc32(&buf[8..]) != stored {
            return Err(LfsError::Corrupt("summary crc"));
        }
        let epoch = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let segment = u32::from_le_bytes(buf[16..20].try_into().unwrap());
        let offset = u32::from_le_bytes(buf[20..24].try_into().unwrap());
        let next_segment = u32::from_le_bytes(buf[24..28].try_into().unwrap());
        let n = u32::from_le_bytes(buf[28..32].try_into().unwrap()) as usize;
        if n > MAX_ENTRIES {
            return Err(LfsError::Corrupt("summary entry count"));
        }
        let mut entries = Vec::with_capacity(n);
        let mut o = HEADER_BYTES;
        for _ in 0..n {
            let kind = BlockKind::from_u8(buf[o])?;
            let object = u64::from_le_bytes(buf[o + 1..o + 9].try_into().unwrap());
            let aux = u64::from_le_bytes(buf[o + 9..o + 17].try_into().unwrap());
            entries.push(SummaryEntry {
                tag: BlockTag { kind, object, aux },
            });
            o += ENTRY_BYTES;
        }
        Ok(Summary {
            epoch,
            segment,
            offset,
            next_segment,
            entries,
        })
    }

    /// True if this flush sealed its segment.
    pub fn seals_segment(&self) -> bool {
        self.next_segment != NO_NEXT_SEGMENT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Summary {
        Summary {
            epoch: 77,
            segment: 3,
            offset: 40,
            next_segment: NO_NEXT_SEGMENT,
            entries: (0..10)
                .map(|i| SummaryEntry {
                    tag: BlockTag::new(BlockKind::Data, 100 + i, i * 7),
                })
                .collect(),
        }
    }

    #[test]
    fn round_trip() {
        let s = sample();
        assert_eq!(Summary::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn round_trip_max_entries() {
        let mut s = sample();
        s.entries = (0..MAX_ENTRIES as u64)
            .map(|i| SummaryEntry {
                tag: BlockTag::new(BlockKind::JournalSector, i, u64::MAX - i),
            })
            .collect();
        assert_eq!(Summary::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn corruption_detected() {
        let mut buf = sample().encode();
        buf[100] ^= 1;
        assert!(Summary::decode(&buf).is_err());
    }

    #[test]
    fn zero_block_is_not_a_summary() {
        assert!(Summary::decode(&vec![0u8; BLOCK_SIZE]).is_err());
    }

    #[test]
    fn seals_segment_flag() {
        let mut s = sample();
        assert!(!s.seals_segment());
        s.next_segment = 9;
        assert!(s.seals_segment());
    }

    #[test]
    fn max_entries_is_plausible() {
        // A 512 KiB segment has 128 blocks; one summary must be able to
        // describe a full segment's worth of blocks.
        const { assert!(MAX_ENTRIES >= 127) };
    }
}
