//! The block (buffer) cache.
//!
//! The S4 drive in the paper ran with a 128 MB buffer cache; the baselines
//! used the host page cache. [`BlockCache`] is a strict-LRU cache over log
//! blocks keyed by [`BlockAddr`], sized in blocks. Entries are immutable
//! [`crate::bytes::Bytes`] — the log never overwrites a block in place, so cached
//! contents can only become irrelevant (when a segment is reclaimed and
//! reused), handled by [`BlockCache::invalidate_segment`].

use std::collections::{BTreeMap, HashMap};

use crate::bytes::Bytes;
use s4_clock::sync::Mutex;

use crate::layout::{BlockAddr, Geometry, SegmentId};

/// A thread-safe LRU block cache.
pub struct BlockCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

struct Inner {
    /// addr -> (data, LRU generation).
    map: HashMap<u64, (Bytes, u64)>,
    /// LRU generation -> addr, oldest first.
    order: BTreeMap<u64, u64>,
    next_gen: u64,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    /// Creates a cache holding up to `capacity` blocks (0 disables
    /// caching).
    pub fn new(capacity: usize) -> Self {
        BlockCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                next_gen: 0,
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Creates a cache sized for `bytes` bytes of block data.
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        Self::new((bytes / crate::layout::BLOCK_SIZE as u64) as usize)
    }

    /// Looks up a block, refreshing its LRU position.
    pub fn get(&self, addr: BlockAddr) -> Option<Bytes> {
        let mut g = self.inner.lock();
        let gen = g.next_gen;
        match g.map.get_mut(&addr.0) {
            Some((data, old_gen)) => {
                let data = data.clone();
                let old = *old_gen;
                *old_gen = gen;
                g.next_gen += 1;
                g.order.remove(&old);
                g.order.insert(gen, addr.0);
                g.hits += 1;
                Some(data)
            }
            None => {
                g.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a block, evicting the least recently used
    /// entries if over capacity.
    pub fn insert(&self, addr: BlockAddr, data: Bytes) {
        if self.capacity == 0 {
            return;
        }
        let mut g = self.inner.lock();
        let gen = g.next_gen;
        g.next_gen += 1;
        if let Some((_, old)) = g.map.insert(addr.0, (data, gen)) {
            g.order.remove(&old);
        }
        g.order.insert(gen, addr.0);
        while g.map.len() > self.capacity {
            let (&oldest, &victim) = g.order.iter().next().expect("order tracks map");
            g.order.remove(&oldest);
            g.map.remove(&victim);
        }
    }

    /// Drops one block.
    pub fn invalidate(&self, addr: BlockAddr) {
        let mut g = self.inner.lock();
        if let Some((_, gen)) = g.map.remove(&addr.0) {
            g.order.remove(&gen);
        }
    }

    /// Drops every cached block belonging to `seg` (called when a segment
    /// is reclaimed for reuse).
    pub fn invalidate_segment(&self, geo: &Geometry, seg: SegmentId) {
        let start = geo.addr_of(seg, 0).0;
        let end = start + geo.blocks_per_segment as u64;
        let mut g = self.inner.lock();
        let victims: Vec<u64> = g
            .map
            .keys()
            .copied()
            .filter(|&a| (start..end).contains(&a))
            .collect();
        for v in victims {
            if let Some((_, gen)) = g.map.remove(&v) {
                g.order.remove(&gen);
            }
        }
    }

    /// Empties the cache (used to emulate a cold cache or a crash).
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.map.clear();
        g.order.clear();
    }

    /// Returns `(hits, misses)` since creation.
    pub fn hit_stats(&self) -> (u64, u64) {
        let g = self.inner.lock();
        (g.hits, g.misses)
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u8) -> Bytes {
        Bytes::from(vec![v; 4])
    }

    #[test]
    fn insert_get() {
        let c = BlockCache::new(4);
        c.insert(BlockAddr(1), b(1));
        assert_eq!(c.get(BlockAddr(1)).unwrap(), b(1));
        assert!(c.get(BlockAddr(2)).is_none());
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = BlockCache::new(2);
        c.insert(BlockAddr(1), b(1));
        c.insert(BlockAddr(2), b(2));
        c.get(BlockAddr(1)); // 2 is now LRU
        c.insert(BlockAddr(3), b(3));
        assert!(c.get(BlockAddr(2)).is_none(), "2 should have been evicted");
        assert!(c.get(BlockAddr(1)).is_some());
        assert!(c.get(BlockAddr(3)).is_some());
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let c = BlockCache::new(2);
        c.insert(BlockAddr(1), b(1));
        c.insert(BlockAddr(1), b(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(BlockAddr(1)).unwrap(), b(9));
    }

    #[test]
    fn zero_capacity_disables() {
        let c = BlockCache::new(0);
        c.insert(BlockAddr(1), b(1));
        assert!(c.get(BlockAddr(1)).is_none());
    }

    #[test]
    fn invalidate_segment_drops_only_that_segment() {
        let geo = Geometry::compute(1_000_000, 128).unwrap();
        let c = BlockCache::new(100);
        c.insert(geo.addr_of(0, 5), b(1));
        c.insert(geo.addr_of(1, 5), b(2));
        c.invalidate_segment(&geo, 0);
        assert!(c.get(geo.addr_of(0, 5)).is_none());
        assert!(c.get(geo.addr_of(1, 5)).is_some());
    }

    #[test]
    fn clear_empties() {
        let c = BlockCache::new(10);
        c.insert(BlockAddr(1), b(1));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_single_block() {
        let c = BlockCache::new(10);
        c.insert(BlockAddr(4), b(4));
        c.insert(BlockAddr(5), b(5));
        c.invalidate(BlockAddr(4));
        assert!(c.get(BlockAddr(4)).is_none());
        assert!(c.get(BlockAddr(5)).is_some());
        // Invalidating a missing block is a no-op.
        c.invalidate(BlockAddr(99));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn with_capacity_bytes_sizes_in_blocks() {
        let c = BlockCache::with_capacity_bytes(8 * 4096);
        for i in 0..20u64 {
            c.insert(BlockAddr(i), b(i as u8));
        }
        assert!(c.len() <= 8);
    }
}
