//! Log-structured on-disk layout for the S4 self-securing storage server.
//!
//! S4 stores everything — object data, journal sectors, metadata
//! checkpoints, audit records, and its own system state — in a
//! log-structured layout modeled on LFS (Rosenblum & Ousterhout), because
//! data in the history pool must never be overwritten in place (§4.2.1 of
//! the paper). This crate implements that layout over any
//! [`s4_simdisk::BlockDev`]:
//!
//! * [`layout`] — geometry, block addressing, block kinds and tags.
//! * [`superblock`] — dual-copy checksummed superblock with the log anchor.
//! * [`summary`] — partial-segment summary blocks, chained by epoch, that
//!   describe every block appended to the log.
//! * [`log`] — the [`Log`]: buffered append, flush (one sequential write
//!   per batch plus a summary), read-through block cache, anchor
//!   checkpointing, and crash-recovery roll-forward.
//! * [`usage`] — the segment usage table tracking live blocks per segment.
//! * [`cleaner`] — the S4 cleaner: reclaims segments whose contents have
//!   aged out of the detection window, copying still-live blocks forward
//!   through upper-layer callbacks.
//! * [`cache`] — the block (buffer) cache.
//! * [`crc`] — CRC-32 used by all on-disk structures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod cache;
pub mod cleaner;
pub mod crc;
pub mod layout;
pub mod log;
pub mod summary;
pub mod superblock;
pub mod usage;

pub use bytes::Bytes;
pub use cache::BlockCache;
pub use cleaner::{CleanOutcome, Cleaner, CleanerConfig, RelocationCallbacks};
pub use layout::{BlockAddr, BlockKind, BlockTag, Geometry, SegmentId, BLOCK_SIZE};
pub use log::{FlushStats, Log, LogConfig, RecoveredBatch};
pub use summary::SummaryEntry;
pub use superblock::Superblock;
pub use usage::{SegmentState, SegmentUsageTable};

use std::fmt;

/// Errors surfaced by the log layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LfsError {
    /// The underlying device failed.
    Disk(s4_simdisk::DiskError),
    /// The device is full: no free segments remain.
    NoFreeSegments,
    /// A structure failed validation (bad magic or checksum).
    Corrupt(&'static str),
    /// The device is too small for the requested geometry.
    TooSmall,
    /// An address referenced a block outside the data area.
    BadAddress(u64),
    /// A block payload exceeded [`BLOCK_SIZE`].
    Oversize(usize),
}

impl fmt::Display for LfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfsError::Disk(e) => write!(f, "disk error: {e}"),
            LfsError::NoFreeSegments => write!(f, "log full: no free segments"),
            LfsError::Corrupt(what) => write!(f, "corrupt on-disk structure: {what}"),
            LfsError::TooSmall => write!(f, "device too small for log geometry"),
            LfsError::BadAddress(a) => write!(f, "block address {a} out of range"),
            LfsError::Oversize(n) => write!(f, "payload of {n} bytes exceeds block size"),
        }
    }
}

impl std::error::Error for LfsError {}

impl From<s4_simdisk::DiskError> for LfsError {
    fn from(e: s4_simdisk::DiskError) -> Self {
        LfsError::Disk(e)
    }
}

/// Result alias for log-layer operations.
pub type Result<T> = std::result::Result<T, LfsError>;
