//! Disk geometry, block addressing, and block classification.

use s4_simdisk::SECTOR_SIZE;

use crate::{LfsError, Result};

/// Size of one log block in bytes (8 sectors). All log I/O is in whole
/// blocks; object data is block-granular, matching the paper's 4 KB NFS
/// transfer size.
pub const BLOCK_SIZE: usize = 4096;

/// Sectors per log block.
pub const SECTORS_PER_BLOCK: u64 = (BLOCK_SIZE / SECTOR_SIZE) as u64;

/// Index of a segment within the data area.
pub type SegmentId = u32;

/// Absolute index of a block within the data area of the device.
///
/// Blocks are the unit of allocation and caching; the segment a block
/// belongs to is `addr / blocks_per_segment`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Sentinel for "no block" (used in on-disk pointers).
    pub const NONE: BlockAddr = BlockAddr(u64::MAX);

    /// True if this address is the [`BlockAddr::NONE`] sentinel.
    pub fn is_none(self) -> bool {
        self == BlockAddr::NONE
    }
}

/// Classification of a log block, recorded in segment summaries so crash
/// recovery and the cleaner know how to treat each block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum BlockKind {
    /// Object data.
    Data = 1,
    /// A packed journal sector holding metadata-change entries for one
    /// object (§4.2.2).
    JournalSector = 2,
    /// A checkpoint of one object's complete metadata.
    ObjectCheckpoint = 3,
    /// Drive system state written at anchor time (object map, usage table).
    SystemState = 4,
    /// Audit-log data (the reserved audit object, §4.2.3).
    Audit = 5,
    /// Cross-version delta payloads: history blocks re-encoded as
    /// differences against newer versions (§4.2.2's differencing).
    DeltaData = 6,
}

impl BlockKind {
    /// Parses the on-disk representation.
    pub fn from_u8(v: u8) -> Result<BlockKind> {
        Ok(match v {
            1 => BlockKind::Data,
            2 => BlockKind::JournalSector,
            3 => BlockKind::ObjectCheckpoint,
            4 => BlockKind::SystemState,
            5 => BlockKind::Audit,
            6 => BlockKind::DeltaData,
            _ => return Err(LfsError::Corrupt("block kind")),
        })
    }
}

/// Per-block description stored in segment summaries: what the block is,
/// which object it belongs to, and a kind-specific auxiliary value (e.g.
/// the logical block number for data, or the version sequence for
/// checkpoints).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockTag {
    /// Block classification.
    pub kind: BlockKind,
    /// Owning object identifier (0 for system blocks).
    pub object: u64,
    /// Kind-specific auxiliary value.
    pub aux: u64,
}

impl BlockTag {
    /// Builds a tag.
    pub fn new(kind: BlockKind, object: u64, aux: u64) -> Self {
        BlockTag { kind, object, aux }
    }
}

/// Computed layout of the device: where superblocks live, how many
/// segments fit, and translation from block addresses to sectors.
#[derive(Clone, Copy, Debug)]
pub struct Geometry {
    /// Sectors reserved at the front of the device for the two superblock
    /// copies.
    pub superblock_sectors: u64,
    /// Blocks per segment.
    pub blocks_per_segment: u32,
    /// Number of segments in the data area.
    pub num_segments: u32,
}

impl Geometry {
    /// Sectors occupied by one superblock copy.
    pub const SUPERBLOCK_COPY_SECTORS: u64 = 8;

    /// Computes a geometry for a device of `num_sectors` sectors with the
    /// given segment size in blocks.
    pub fn compute(num_sectors: u64, blocks_per_segment: u32) -> Result<Geometry> {
        let superblock_sectors = Self::SUPERBLOCK_COPY_SECTORS * 2;
        let data_sectors = num_sectors.saturating_sub(superblock_sectors);
        let total_blocks = data_sectors / SECTORS_PER_BLOCK;
        let num_segments = (total_blocks / blocks_per_segment as u64) as u32;
        if num_segments < 4 {
            return Err(LfsError::TooSmall);
        }
        Ok(Geometry {
            superblock_sectors,
            blocks_per_segment,
            num_segments,
        })
    }

    /// Total blocks in the data area.
    pub fn total_blocks(&self) -> u64 {
        self.num_segments as u64 * self.blocks_per_segment as u64
    }

    /// Total data-area capacity in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.total_blocks() * BLOCK_SIZE as u64
    }

    /// First sector of the data area.
    pub fn data_start_sector(&self) -> u64 {
        self.superblock_sectors
    }

    /// Translates a block address to its first sector on the device.
    pub fn sector_of(&self, addr: BlockAddr) -> u64 {
        self.data_start_sector() + addr.0 * SECTORS_PER_BLOCK
    }

    /// The segment containing `addr`.
    pub fn segment_of(&self, addr: BlockAddr) -> SegmentId {
        (addr.0 / self.blocks_per_segment as u64) as SegmentId
    }

    /// Block offset of `addr` within its segment.
    pub fn offset_in_segment(&self, addr: BlockAddr) -> u32 {
        (addr.0 % self.blocks_per_segment as u64) as u32
    }

    /// Address of block `offset` within segment `seg`.
    pub fn addr_of(&self, seg: SegmentId, offset: u32) -> BlockAddr {
        BlockAddr(seg as u64 * self.blocks_per_segment as u64 + offset as u64)
    }

    /// Validates that `addr` falls inside the data area.
    pub fn check(&self, addr: BlockAddr) -> Result<BlockAddr> {
        if addr.0 >= self.total_blocks() {
            return Err(LfsError::BadAddress(addr.0));
        }
        Ok(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_round_trips_addresses() {
        let g = Geometry::compute(1_000_000, 128).unwrap();
        for addr in [0u64, 1, 127, 128, 12_345] {
            let a = BlockAddr(addr);
            let seg = g.segment_of(a);
            let off = g.offset_in_segment(a);
            assert_eq!(g.addr_of(seg, off), a);
        }
    }

    #[test]
    fn geometry_rejects_tiny_devices() {
        assert!(matches!(
            Geometry::compute(100, 128),
            Err(LfsError::TooSmall)
        ));
    }

    #[test]
    fn sector_translation_skips_superblocks() {
        let g = Geometry::compute(1_000_000, 128).unwrap();
        assert_eq!(g.sector_of(BlockAddr(0)), 16);
        assert_eq!(g.sector_of(BlockAddr(1)), 16 + SECTORS_PER_BLOCK);
    }

    #[test]
    fn block_kind_round_trip() {
        for k in [
            BlockKind::Data,
            BlockKind::JournalSector,
            BlockKind::ObjectCheckpoint,
            BlockKind::SystemState,
            BlockKind::Audit,
            BlockKind::DeltaData,
        ] {
            assert_eq!(BlockKind::from_u8(k as u8).unwrap(), k);
        }
        assert!(BlockKind::from_u8(0).is_err());
        assert!(BlockKind::from_u8(99).is_err());
    }

    #[test]
    fn check_rejects_out_of_range() {
        let g = Geometry::compute(1_000_000, 128).unwrap();
        assert!(g.check(BlockAddr(g.total_blocks())).is_err());
        assert!(g.check(BlockAddr(0)).is_ok());
    }
}
