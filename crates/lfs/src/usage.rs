//! Segment usage table and free-segment allocation.
//!
//! Tracks, per segment, how many blocks are *referenced* — reachable from
//! current object state **or** from any history-pool version still inside
//! the detection window. A block's count is decremented only when the
//! version holding it ages out of the window (or is administratively
//! flushed); a segment whose count reaches zero can be reclaimed without
//! copying (§4.2.1). Segments with a few stragglers are reclaimed by the
//! cleaner, which copies live blocks forward.

use crate::layout::{Geometry, SegmentId};
use crate::{LfsError, Result};

/// Lifecycle state of a segment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum SegmentState {
    /// On the free list; contents are garbage.
    Free = 0,
    /// The log cursor is (or has been) inside; blocks may be referenced.
    InUse = 1,
    /// Reclaimed since the last anchor; contents may still be referenced
    /// by the *anchored* (on-disk) object map, so the segment must not be
    /// reused until the next anchor makes the reclamation durable.
    PendingFree = 2,
}

/// Per-segment accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentUsage {
    /// Lifecycle state.
    pub state: SegmentState,
    /// Referenced (current + in-window history) blocks.
    pub live_blocks: u32,
    /// Blocks appended so far (summaries included); equals the write
    /// cursor if this is the active segment.
    pub written_blocks: u32,
}

/// The usage table for every segment on the device.
#[derive(Clone, Debug)]
pub struct SegmentUsageTable {
    segs: Vec<SegmentUsage>,
    blocks_per_segment: u32,
    free_count: u32,
}

impl SegmentUsageTable {
    /// Creates a table with every segment free.
    pub fn new(geo: &Geometry) -> Self {
        SegmentUsageTable {
            segs: vec![
                SegmentUsage {
                    state: SegmentState::Free,
                    live_blocks: 0,
                    written_blocks: 0,
                };
                geo.num_segments as usize
            ],
            blocks_per_segment: geo.blocks_per_segment,
            free_count: geo.num_segments,
        }
    }

    /// Number of segments in the table.
    pub fn num_segments(&self) -> u32 {
        self.segs.len() as u32
    }

    /// Number of free segments.
    pub fn free_segments(&self) -> u32 {
        self.free_count
    }

    /// Usage record for `seg`.
    pub fn get(&self, seg: SegmentId) -> SegmentUsage {
        self.segs[seg as usize]
    }

    /// Allocates the lowest-numbered free segment, marking it in use.
    pub fn allocate(&mut self) -> Result<SegmentId> {
        let idx = self
            .segs
            .iter()
            .position(|s| s.state == SegmentState::Free)
            .ok_or(LfsError::NoFreeSegments)?;
        self.segs[idx] = SegmentUsage {
            state: SegmentState::InUse,
            live_blocks: 0,
            written_blocks: 0,
        };
        self.free_count -= 1;
        Ok(idx as SegmentId)
    }

    /// Marks `seg` allocated (used during crash-recovery roll-forward when
    /// the log is discovered to have continued into `seg`).
    pub fn force_allocate(&mut self, seg: SegmentId) {
        let s = &mut self.segs[seg as usize];
        if s.state == SegmentState::Free {
            self.free_count -= 1;
        }
        *s = SegmentUsage {
            state: SegmentState::InUse,
            live_blocks: 0,
            written_blocks: 0,
        };
    }

    /// Records `n` blocks appended to `seg`, `live` of which are
    /// referenced (summary blocks are written but never referenced).
    pub fn note_append(&mut self, seg: SegmentId, n: u32, live: u32) {
        let s = &mut self.segs[seg as usize];
        debug_assert_eq!(s.state, SegmentState::InUse);
        s.written_blocks = (s.written_blocks + n).min(self.blocks_per_segment);
        s.live_blocks += live;
    }

    /// Decrements the live count of `seg` by `n` (versions aged out or
    /// administratively flushed).
    pub fn release_blocks(&mut self, seg: SegmentId, n: u32) {
        let s = &mut self.segs[seg as usize];
        s.live_blocks = s.live_blocks.saturating_sub(n);
    }

    /// Zeroes every segment's live count (prelude to
    /// [`SegmentUsageTable::add_live`]-based reconstruction from an
    /// authoritative reachable-block set after crash recovery).
    pub fn zero_live(&mut self) {
        for s in &mut self.segs {
            s.live_blocks = 0;
        }
    }

    /// Increments the live count of `seg` by `n`.
    pub fn add_live(&mut self, seg: SegmentId, n: u32) {
        self.segs[seg as usize].live_blocks += n;
    }

    /// Moves `seg` to the pending-free list; it becomes allocatable only
    /// after [`SegmentUsageTable::promote_pending_free`] (called once the
    /// next anchor is durable).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the segment still has live blocks.
    pub fn free_segment(&mut self, seg: SegmentId) {
        let s = &mut self.segs[seg as usize];
        debug_assert_eq!(s.live_blocks, 0, "freeing a segment with live blocks");
        *s = SegmentUsage {
            state: SegmentState::PendingFree,
            live_blocks: 0,
            written_blocks: 0,
        };
    }

    /// Promotes every pending-free segment to free. Safe only once a new
    /// anchor (whose object map no longer references those segments) is
    /// durable on disk.
    pub fn promote_pending_free(&mut self) -> u32 {
        let mut n = 0;
        for s in &mut self.segs {
            if s.state == SegmentState::PendingFree {
                s.state = SegmentState::Free;
                self.free_count += 1;
                n += 1;
            }
        }
        n
    }

    /// Number of segments reclaimed but awaiting the next anchor.
    pub fn pending_free_segments(&self) -> u32 {
        self.segs
            .iter()
            .filter(|s| s.state == SegmentState::PendingFree)
            .count() as u32
    }

    /// Segments that are fully written, have zero live blocks, and can be
    /// freed without any copying.
    pub fn dead_segments(&self, exclude: &[SegmentId]) -> Vec<SegmentId> {
        self.segs
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                s.state == SegmentState::InUse
                    && s.live_blocks == 0
                    && s.written_blocks > 0
                    && !exclude.contains(&(*i as SegmentId))
            })
            .map(|(i, _)| i as SegmentId)
            .collect()
    }

    /// The in-use, fully-or-partially written segment with the lowest
    /// live-block count (the cleaner's greedy victim), excluding the
    /// listed segments (e.g. the active one).
    pub fn lowest_utilization(&self, exclude: &[SegmentId]) -> Option<(SegmentId, u32)> {
        self.segs
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                s.state == SegmentState::InUse
                    && s.written_blocks > 0
                    && !exclude.contains(&(*i as SegmentId))
            })
            .map(|(i, s)| (i as SegmentId, s.live_blocks))
            .min_by_key(|&(_, live)| live)
    }

    /// Fraction of data-area blocks currently referenced.
    pub fn utilization(&self) -> f64 {
        let live: u64 = self.segs.iter().map(|s| s.live_blocks as u64).sum();
        live as f64 / (self.segs.len() as u64 * self.blocks_per_segment as u64) as f64
    }

    /// Serializes for inclusion in the anchor's system state.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.segs.len() * 9);
        out.extend_from_slice(&(self.segs.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.blocks_per_segment.to_le_bytes());
        for s in &self.segs {
            out.push(s.state as u8);
            out.extend_from_slice(&s.live_blocks.to_le_bytes());
            out.extend_from_slice(&s.written_blocks.to_le_bytes());
        }
        out
    }

    /// Deserializes from anchor system state.
    pub fn decode(buf: &[u8]) -> Result<SegmentUsageTable> {
        if buf.len() < 8 {
            return Err(LfsError::Corrupt("usage table header"));
        }
        let n = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let blocks_per_segment = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if buf.len() < 8 + n * 9 {
            return Err(LfsError::Corrupt("usage table body"));
        }
        let mut segs = Vec::with_capacity(n);
        let mut free_count = 0;
        for i in 0..n {
            let o = 8 + i * 9;
            let state = match buf[o] {
                0 => SegmentState::Free,
                1 => SegmentState::InUse,
                2 => SegmentState::PendingFree,
                _ => return Err(LfsError::Corrupt("segment state")),
            };
            if state == SegmentState::Free {
                free_count += 1;
            }
            segs.push(SegmentUsage {
                state,
                live_blocks: u32::from_le_bytes(buf[o + 1..o + 5].try_into().unwrap()),
                written_blocks: u32::from_le_bytes(buf[o + 5..o + 9].try_into().unwrap()),
            });
        }
        Ok(SegmentUsageTable {
            segs,
            blocks_per_segment,
            free_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SegmentUsageTable {
        let geo = Geometry::compute(200_000, 16).unwrap();
        SegmentUsageTable::new(&geo)
    }

    #[test]
    fn allocate_and_free_cycle() {
        let mut t = table();
        let total = t.free_segments();
        let a = t.allocate().unwrap();
        let b = t.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(t.free_segments(), total - 2);
        t.note_append(a, 4, 3);
        t.release_blocks(a, 3);
        t.free_segment(a);
        // Pending-free is not yet allocatable.
        assert_eq!(t.free_segments(), total - 2);
        assert_eq!(t.pending_free_segments(), 1);
        assert_eq!(t.promote_pending_free(), 1);
        assert_eq!(t.free_segments(), total - 1);
        // Freed segment is allocatable again.
        assert_eq!(t.allocate().unwrap(), a);
    }

    #[test]
    fn exhaustion_reported() {
        let mut t = table();
        while t.free_segments() > 0 {
            t.allocate().unwrap();
        }
        assert!(matches!(t.allocate(), Err(LfsError::NoFreeSegments)));
    }

    #[test]
    fn dead_segment_detection() {
        let mut t = table();
        let a = t.allocate().unwrap();
        let b = t.allocate().unwrap();
        t.note_append(a, 4, 3);
        t.note_append(b, 4, 4);
        assert!(t.dead_segments(&[]).is_empty());
        t.release_blocks(a, 3);
        assert_eq!(t.dead_segments(&[]), vec![a]);
        assert!(t.dead_segments(&[a]).is_empty(), "exclusion respected");
    }

    #[test]
    fn lowest_utilization_picks_emptiest() {
        let mut t = table();
        let a = t.allocate().unwrap();
        let b = t.allocate().unwrap();
        t.note_append(a, 10, 9);
        t.note_append(b, 10, 2);
        assert_eq!(t.lowest_utilization(&[]), Some((b, 2)));
        assert_eq!(t.lowest_utilization(&[b]), Some((a, 9)));
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut t = table();
        let a = t.allocate().unwrap();
        t.note_append(a, 7, 5);
        let d = SegmentUsageTable::decode(&t.encode()).unwrap();
        assert_eq!(d.get(a), t.get(a));
        assert_eq!(d.free_segments(), t.free_segments());
        assert_eq!(d.num_segments(), t.num_segments());
    }

    #[test]
    fn force_allocate_is_idempotent_on_used_segments() {
        let mut t = table();
        let a = t.allocate().unwrap();
        let free = t.free_segments();
        t.force_allocate(a);
        assert_eq!(t.free_segments(), free);
        t.force_allocate(a + 1);
        assert_eq!(t.free_segments(), free - 1);
    }

    #[test]
    fn utilization_fraction() {
        let mut t = table();
        assert_eq!(t.utilization(), 0.0);
        let a = t.allocate().unwrap();
        t.note_append(a, 16, 16);
        assert!(t.utilization() > 0.0);
    }
}
