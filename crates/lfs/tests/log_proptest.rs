// Hermetic-build gate: needs the external `proptest` crate. Re-add
// `proptest = "1"` to [dev-dependencies] and run
// `cargo test --features proptest-tests` to enable.
#![cfg(feature = "proptest-tests")]

//! Property-based tests for the log: arbitrary append/flush/remount
//! sequences against an in-memory oracle of block contents.

use proptest::prelude::*;

use s4_lfs::{BlockAddr, BlockKind, BlockTag, Log, LogConfig};
use s4_simdisk::MemDisk;

#[derive(Debug, Clone)]
enum Action {
    Append { payload: Vec<u8> },
    Flush,
    Remount,
    ClearCache,
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        6 => proptest::collection::vec(any::<u8>(), 1..256)
            .prop_map(|payload| Action::Append { payload }),
        2 => Just(Action::Flush),
        1 => Just(Action::Remount),
        1 => Just(Action::ClearCache),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn log_round_trips_all_blocks(actions in proptest::collection::vec(action(), 1..80)) {
        let cfg = LogConfig {
            blocks_per_segment: 8,
            cache_blocks: 16,
            readahead_blocks: 4,
        };
        let mut log = Some(Log::format(MemDisk::new(400_000), cfg).unwrap());
        // Oracle: (addr, payload, flushed?) — unflushed blocks may vanish
        // on remount, flushed blocks never may.
        let mut oracle: Vec<(BlockAddr, Vec<u8>, bool)> = Vec::new();
        let mut seq = 0u64;

        for a in &actions {
            match a {
                Action::Append { payload } => {
                    seq += 1;
                    let addr = log
                        .as_ref()
                        .unwrap()
                        .append(BlockTag::new(BlockKind::Data, 1, seq), payload)
                        .unwrap();
                    oracle.push((addr, payload.clone(), false));
                }
                Action::Flush => {
                    log.as_ref().unwrap().flush().unwrap();
                    for e in &mut oracle {
                        e.2 = true;
                    }
                }
                Action::Remount => {
                    let dev = log.take().unwrap().into_device();
                    let (l, _payload, _batches, _sb) = Log::mount(dev, 16).unwrap();
                    log = Some(l);
                    // Unflushed appends are gone.
                    oracle.retain(|(_, _, flushed)| *flushed);
                }
                Action::ClearCache => {
                    log.as_ref().unwrap().cache().clear();
                }
            }
            // Every surviving block must read back exactly (zero-padded).
            let l = log.as_ref().unwrap();
            for (addr, want, _) in &oracle {
                let got = l.read_block(*addr).unwrap();
                prop_assert_eq!(&got[..want.len()], &want[..]);
                prop_assert!(got[want.len()..].iter().all(|&b| b == 0));
            }
        }
    }

    #[test]
    fn recovery_reports_exactly_the_flushed_batches(
        batches in proptest::collection::vec(1usize..12, 1..10)
    ) {
        let cfg = LogConfig {
            blocks_per_segment: 16,
            cache_blocks: 16,
            readahead_blocks: 1,
        };
        let log = Log::format(MemDisk::new(400_000), cfg).unwrap();
        let mut expected = Vec::new();
        let mut seq = 0u64;
        for n in &batches {
            for _ in 0..*n {
                seq += 1;
                let addr = log
                    .append(BlockTag::new(BlockKind::Data, 7, seq), &seq.to_le_bytes())
                    .unwrap();
                expected.push((addr, seq));
            }
            log.flush().unwrap();
        }
        // One unflushed straggler must not be recovered.
        log.append(BlockTag::new(BlockKind::Data, 7, 9999), b"lost").unwrap();

        let dev = log.into_device();
        let (_l, _p, recovered, _sb) = Log::mount(dev, 16).unwrap();
        let got: Vec<(BlockAddr, u64)> = recovered
            .iter()
            .flat_map(|b| b.blocks.iter().map(|(a, t)| (*a, t.aux)))
            .collect();
        prop_assert_eq!(got, expected);
    }
}
