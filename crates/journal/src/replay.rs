//! Undo/redo of journal entries and point-in-time reconstruction.
//!
//! Because every entry carries both old and new values, a metadata record
//! can be rolled in either direction:
//!
//! * **redo** (oldest → newest) rebuilds current state from an anchored
//!   checkpoint during crash recovery;
//! * **undo** (newest → oldest) walks the backward journal chain to
//!   materialize "the version that was most current at time T" for
//!   time-based reads of the history pool.

use s4_clock::HybridTimestamp;

use crate::entry::JournalEntry;
use crate::meta::ObjectMeta;

/// Applies `e` forward to `meta`.
pub fn redo(meta: &mut ObjectMeta, e: &JournalEntry) {
    match e {
        JournalEntry::Create { stamp } => {
            meta.created = *stamp;
            meta.deleted = None;
        }
        JournalEntry::Delete { stamp } => {
            meta.deleted = Some(*stamp);
        }
        JournalEntry::Write {
            new_size, changes, ..
        } => {
            for c in changes {
                if c.new.is_none() {
                    meta.blocks.remove(&c.lbn);
                } else {
                    meta.blocks.insert(c.lbn, c.new);
                }
            }
            meta.size = *new_size;
        }
        JournalEntry::Truncate {
            new_size, freed, ..
        } => {
            for c in freed {
                meta.blocks.remove(&c.lbn);
            }
            meta.size = *new_size;
        }
        JournalEntry::SetAttr { new, .. } => {
            meta.attrs = new.clone();
        }
        JournalEntry::SetAcl { new, .. } => {
            meta.acl = new.clone();
        }
        JournalEntry::Checkpoint { .. } => {}
        JournalEntry::Revive { .. } => {
            meta.deleted = None;
        }
    }
    if e.is_mutation() && e.stamp() > meta.modified {
        meta.modified = e.stamp();
    }
}

/// Applies `e` backward to `meta`. Returns `false` when a `Create` was
/// undone — the object did not exist before this entry.
pub fn undo(meta: &mut ObjectMeta, e: &JournalEntry) -> bool {
    match e {
        JournalEntry::Create { .. } => return false,
        JournalEntry::Delete { .. } => {
            meta.deleted = None;
        }
        JournalEntry::Write {
            old_size, changes, ..
        } => {
            for c in changes {
                if c.old.is_none() {
                    meta.blocks.remove(&c.lbn);
                } else {
                    meta.blocks.insert(c.lbn, c.old);
                }
            }
            meta.size = *old_size;
        }
        JournalEntry::Truncate {
            old_size, freed, ..
        } => {
            for c in freed {
                if !c.old.is_none() {
                    meta.blocks.insert(c.lbn, c.old);
                }
            }
            meta.size = *old_size;
        }
        JournalEntry::SetAttr { old, .. } => {
            meta.attrs = old.clone();
        }
        JournalEntry::SetAcl { old, .. } => {
            meta.acl = old.clone();
        }
        JournalEntry::Checkpoint { .. } => {}
        JournalEntry::Revive { was_deleted, .. } => {
            meta.deleted = Some(*was_deleted);
        }
    }
    true
}

/// Reconstructs the metadata version that was current at `bound` by
/// walking `entries_newest_first` (the object's full mutation history,
/// newest first) backward from the current record.
///
/// Returns `None` if the object did not yet exist at `bound` — including
/// the case where the entry stream shows a `Create` after `bound` (objects
/// can be deleted and their IDs never reused, so one `Create` begins each
/// object's history).
pub fn reconstruct_at<I>(
    current: &ObjectMeta,
    entries_newest_first: I,
    bound: HybridTimestamp,
) -> Option<ObjectMeta>
where
    I: IntoIterator<Item = JournalEntry>,
{
    let mut meta = current.clone();
    let mut modified = HybridTimestamp::ZERO;
    for e in entries_newest_first {
        if e.stamp() <= bound {
            // Everything from here back is already reflected; the first
            // such entry is the version's own modification stamp.
            if e.is_mutation() {
                modified = e.stamp();
            }
            break;
        }
        if !undo(&mut meta, &e) {
            return None; // Created after `bound`.
        }
    }
    if meta.created > bound {
        return None;
    }
    if modified != HybridTimestamp::ZERO {
        meta.modified = modified;
    }
    Some(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::PtrChange;
    use s4_clock::SimTime;
    use s4_lfs::BlockAddr;

    fn st(t: u64) -> HybridTimestamp {
        HybridTimestamp::new(SimTime::from_micros(t), t)
    }

    /// Builds a history: create@1, write b0@2, write b0'+b1@3, setattr@4,
    /// truncate@5, delete@6. Returns (current meta, entries oldest first).
    fn history() -> (ObjectMeta, Vec<JournalEntry>) {
        let entries = vec![
            JournalEntry::Create { stamp: st(1) },
            JournalEntry::Write {
                stamp: st(2),
                old_size: 0,
                new_size: 4096,
                changes: vec![PtrChange {
                    lbn: 0,
                    old: BlockAddr::NONE,
                    new: BlockAddr(10),
                }],
            },
            JournalEntry::Write {
                stamp: st(3),
                old_size: 4096,
                new_size: 8192,
                changes: vec![
                    PtrChange {
                        lbn: 0,
                        old: BlockAddr(10),
                        new: BlockAddr(20),
                    },
                    PtrChange {
                        lbn: 1,
                        old: BlockAddr::NONE,
                        new: BlockAddr(21),
                    },
                ],
            },
            JournalEntry::SetAttr {
                stamp: st(4),
                old: vec![],
                new: vec![0xAA],
            },
            JournalEntry::Truncate {
                stamp: st(5),
                old_size: 8192,
                new_size: 4096,
                freed: vec![PtrChange {
                    lbn: 1,
                    old: BlockAddr(21),
                    new: BlockAddr::NONE,
                }],
            },
            JournalEntry::Delete { stamp: st(6) },
        ];
        let mut meta = ObjectMeta::new(7, st(1));
        for e in &entries {
            redo(&mut meta, e);
        }
        (meta, entries)
    }

    #[test]
    fn redo_builds_expected_current_state() {
        let (meta, _) = history();
        assert_eq!(meta.size, 4096);
        assert_eq!(meta.blocks.get(&0), Some(&BlockAddr(20)));
        assert_eq!(meta.blocks.get(&1), None);
        assert_eq!(meta.attrs, vec![0xAA]);
        assert!(!meta.is_live());
        assert_eq!(meta.modified, st(6));
    }

    #[test]
    fn reconstruct_every_epoch() {
        let (meta, entries) = history();
        let newest_first: Vec<_> = entries.iter().rev().cloned().collect();

        // Before creation: no object.
        assert!(reconstruct_at(&meta, newest_first.clone(), st(0)).is_none());

        // At t=2: one block, 4 KB.
        let v2 = reconstruct_at(&meta, newest_first.clone(), st(2)).unwrap();
        assert_eq!(v2.size, 4096);
        assert_eq!(v2.blocks.get(&0), Some(&BlockAddr(10)));
        assert!(v2.attrs.is_empty());
        assert!(v2.is_live());
        assert_eq!(v2.modified, st(2));

        // At t=3: two blocks, 8 KB, block 0 overwritten.
        let v3 = reconstruct_at(&meta, newest_first.clone(), st(3)).unwrap();
        assert_eq!(v3.size, 8192);
        assert_eq!(v3.blocks.get(&0), Some(&BlockAddr(20)));
        assert_eq!(v3.blocks.get(&1), Some(&BlockAddr(21)));

        // At t=5: truncated back to 4 KB but attr set.
        let v5 = reconstruct_at(&meta, newest_first.clone(), st(5)).unwrap();
        assert_eq!(v5.size, 4096);
        assert_eq!(v5.attrs, vec![0xAA]);
        assert!(v5.is_live());

        // At t=6 (and later): deleted.
        let v6 = reconstruct_at(&meta, newest_first.clone(), st(100)).unwrap();
        assert!(!v6.is_live());
    }

    #[test]
    fn undo_redo_are_inverses() {
        let (meta, entries) = history();
        // Walk all the way back, then forward again.
        let mut m = meta.clone();
        for e in entries.iter().rev().take(entries.len() - 1) {
            assert!(undo(&mut m, e));
        }
        // m is now the state just after Create.
        for e in entries.iter().skip(1) {
            redo(&mut m, e);
        }
        // modified stamps track the max; state must match.
        assert_eq!(m, meta);
    }

    #[test]
    fn reconstruct_with_bound_in_the_future_returns_current() {
        let (meta, entries) = history();
        let newest_first: Vec<_> = entries.iter().rev().cloned().collect();
        let v = reconstruct_at(&meta, newest_first, HybridTimestamp::MAX).unwrap();
        assert_eq!(v, meta);
    }

    #[test]
    fn revive_cancels_a_delete_and_undoes_back_to_it() {
        let (mut meta, _) = history(); // ends deleted @6
        assert!(!meta.is_live());
        let was = meta.deleted.unwrap();
        let rv = JournalEntry::Revive {
            stamp: st(7),
            was_deleted: was,
        };
        redo(&mut meta, &rv);
        assert!(meta.is_live());
        assert_eq!(meta.modified, st(7));
        // Undo restores the deletion stamp exactly.
        assert!(undo(&mut meta, &rv));
        assert_eq!(meta.deleted, Some(was));
        // And reconstruction before the revive sees the deleted state.
        let mut live = meta.clone();
        redo(&mut live, &rv);
        let v6 = reconstruct_at(&live, vec![rv.clone()], st(6)).unwrap();
        assert!(!v6.is_live());
    }

    #[test]
    fn checkpoint_entries_are_transparent() {
        let (mut meta, _) = history();
        let before = meta.clone();
        let cp = JournalEntry::Checkpoint {
            stamp: st(10),
            root: BlockAddr(500),
        };
        redo(&mut meta, &cp);
        assert_eq!(meta, before);
        assert!(undo(&mut meta, &cp));
        assert_eq!(meta, before);
    }
}
