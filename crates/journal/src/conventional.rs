//! The conventional versioning metadata baseline (Figure 2, left side).
//!
//! "In a conventional versioning system, a single update to a
//! triple-indirect block could require four new blocks as well as a new
//! inode. Early experiments with this type of versioning system showed
//! that modifying a large file could cause up to a 4x growth in disk
//! usage." (§4.2.2)
//!
//! [`ConventionalMeta`] models exactly that: an FFS-style inode with 12
//! direct pointers and single/double/triple indirect trees, where every
//! update copies-on-write the whole pointer path (because old versions
//! must remain intact) and writes a fresh inode plus an Elephant-style
//! inode-log entry. Writes are issued through a [`BlockSink`] so the bench
//! can either count them or land them on the real log.

use std::collections::HashMap;

use s4_lfs::{BlockAddr, BLOCK_SIZE};

/// Pointers per indirect block (4096 / 8).
pub const PTRS_PER_BLOCK: u64 = (BLOCK_SIZE / 8) as u64;

/// Direct pointers in the inode.
pub const N_DIRECT: u64 = 12;

/// Where metadata blocks written by the conventional scheme go.
pub trait BlockSink {
    /// Writes one metadata block, returning its address.
    fn write_meta_block(&mut self, payload: &[u8]) -> BlockAddr;
}

/// A sink that only counts (for pure cost accounting).
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Metadata blocks written so far.
    pub blocks: u64,
    next: u64,
}

impl BlockSink for CountingSink {
    fn write_meta_block(&mut self, _payload: &[u8]) -> BlockAddr {
        self.blocks += 1;
        self.next += 1;
        BlockAddr(self.next)
    }
}

/// Cost of one update under the conventional scheme.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateCost {
    /// Indirect blocks newly written (copy-on-write path).
    pub indirect_blocks: u32,
    /// Inode blocks newly written (always 1 per update).
    pub inode_blocks: u32,
    /// Inode-log entries appended (always 1 per update, Elephant-style).
    pub inode_log_entries: u32,
}

impl UpdateCost {
    /// Total metadata bytes written for this update (block-granular).
    pub fn metadata_bytes(&self) -> u64 {
        (self.indirect_blocks as u64 + self.inode_blocks as u64) * BLOCK_SIZE as u64
    }
}

/// Identifies one node of the indirect tree: `(level, index)` where level
/// 1..=3 and index is the node's ordinal among its level.
type NodePos = (u8, u64);

/// Conventional copy-on-write versioned metadata for one file.
#[derive(Debug, Default)]
pub struct ConventionalMeta {
    /// Current address of each live indirect-tree node.
    nodes: HashMap<NodePos, BlockAddr>,
    /// Current inode address.
    inode: BlockAddr,
    /// Data pointers (kept logically; the bench manages data blocks).
    data: HashMap<u64, BlockAddr>,
    /// Total metadata blocks written over the file's lifetime.
    pub total_meta_blocks: u64,
}

impl ConventionalMeta {
    /// Creates an empty file (no metadata written yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Depth of the pointer path for logical block `lbn`: 0 for direct,
    /// 1..=3 for single/double/triple indirect.
    pub fn path_depth(lbn: u64) -> u8 {
        let single = PTRS_PER_BLOCK;
        let double = single * PTRS_PER_BLOCK;
        let triple = double * PTRS_PER_BLOCK;
        if lbn < N_DIRECT {
            0
        } else if lbn < N_DIRECT + single {
            1
        } else if lbn < N_DIRECT + single + double {
            2
        } else if lbn < N_DIRECT + single + double + triple {
            3
        } else {
            panic!("lbn {lbn} beyond triple-indirect range");
        }
    }

    /// The tree nodes on the path to `lbn`, top-down.
    fn path_nodes(lbn: u64) -> Vec<NodePos> {
        let depth = Self::path_depth(lbn);
        if depth == 0 {
            return Vec::new();
        }
        let single = PTRS_PER_BLOCK;
        let double = single * PTRS_PER_BLOCK;
        let off = match depth {
            1 => lbn - N_DIRECT,
            2 => lbn - N_DIRECT - single,
            3 => lbn - N_DIRECT - single - double,
            _ => unreachable!(),
        };
        // Node index at each level below the top, for this subtree.
        let mut nodes = Vec::with_capacity(depth as usize);
        for lvl in (1..=depth).rev() {
            // Index of the node at `lvl` levels above the data.
            let span = PTRS_PER_BLOCK.pow(lvl as u32 - 1);
            nodes.push((lvl, ((depth as u64) << 56) | (off / span)));
        }
        nodes
    }

    /// Records an update of logical block `lbn` (the data block itself is
    /// written by the caller): copies-on-write every indirect block on the
    /// path plus a fresh inode, and appends an inode-log entry.
    pub fn update_block<S: BlockSink>(
        &mut self,
        lbn: u64,
        data_addr: BlockAddr,
        sink: &mut S,
    ) -> UpdateCost {
        let path = Self::path_nodes(lbn);
        let payload = vec![0u8; BLOCK_SIZE];
        let mut cost = UpdateCost {
            indirect_blocks: 0,
            inode_blocks: 1,
            inode_log_entries: 1,
        };
        // New copy of every indirect block on the path (a version must not
        // share mutable metadata with its predecessor).
        for pos in path {
            let addr = sink.write_meta_block(&payload);
            self.nodes.insert(pos, addr);
            cost.indirect_blocks += 1;
        }
        // And a new inode.
        self.inode = sink.write_meta_block(&payload);
        self.data.insert(lbn, data_addr);
        self.total_meta_blocks += cost.indirect_blocks as u64 + cost.inode_blocks as u64;
        cost
    }

    /// Current data pointer for `lbn`.
    pub fn get(&self, lbn: u64) -> Option<BlockAddr> {
        self.data.get(&lbn).copied()
    }

    /// Current inode address.
    pub fn inode_addr(&self) -> BlockAddr {
        self.inode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_depths_match_ffs_layout() {
        assert_eq!(ConventionalMeta::path_depth(0), 0);
        assert_eq!(ConventionalMeta::path_depth(11), 0);
        assert_eq!(ConventionalMeta::path_depth(12), 1);
        assert_eq!(ConventionalMeta::path_depth(12 + 511), 1);
        assert_eq!(ConventionalMeta::path_depth(12 + 512), 2);
        assert_eq!(ConventionalMeta::path_depth(12 + 512 + 512 * 512 - 1), 2);
        assert_eq!(ConventionalMeta::path_depth(12 + 512 + 512 * 512), 3);
    }

    #[test]
    fn direct_update_writes_inode_only() {
        let mut m = ConventionalMeta::new();
        let mut sink = CountingSink::default();
        let c = m.update_block(3, BlockAddr(1000), &mut sink);
        assert_eq!(c.indirect_blocks, 0);
        assert_eq!(c.inode_blocks, 1);
        assert_eq!(sink.blocks, 1);
        assert_eq!(m.get(3), Some(BlockAddr(1000)));
    }

    #[test]
    fn triple_indirect_update_writes_four_meta_blocks() {
        // The exact Figure 2 scenario: one update to a triple-indirect
        // block requires three indirect blocks + an inode.
        let lbn = 12 + 512 + 512 * 512 + 5;
        let mut m = ConventionalMeta::new();
        let mut sink = CountingSink::default();
        let c = m.update_block(lbn, BlockAddr(1), &mut sink);
        assert_eq!(c.indirect_blocks, 3);
        assert_eq!(c.inode_blocks, 1);
        assert_eq!(c.metadata_bytes(), 4 * BLOCK_SIZE as u64);
    }

    #[test]
    fn repeated_updates_accumulate_metadata() {
        let mut m = ConventionalMeta::new();
        let mut sink = CountingSink::default();
        for i in 0..100u64 {
            m.update_block(12 + (i % 40), BlockAddr(i), &mut sink);
        }
        // Every update rewrote 1 indirect + 1 inode.
        assert_eq!(m.total_meta_blocks, 200);
        assert_eq!(sink.blocks, 200);
    }

    #[test]
    fn distinct_subtrees_get_distinct_nodes() {
        let a = ConventionalMeta::path_nodes(12); // first single-indirect
        let b = ConventionalMeta::path_nodes(12 + 512 + 7); // double subtree
        assert_ne!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
    }
}
