//! Journal sectors: packed per-object entry blocks, chained backward in
//! time.
//!
//! "Storing an object's changes within the log is done using journal
//! sectors. Each journal sector contains the packed journal entries that
//! refer to a single object's changes ... The sectors are chained together
//! backward in time to allow for version reconstruction." (§4.2.2)
//!
//! [`encode_sectors`] splits a run of entries into one or more sector
//! payloads; the caller appends each to the log in order, threading the
//! address the log assigns to sector *k* into the `prev` pointer of sector
//! *k+1*, so the newest sector always heads the chain.

use s4_lfs::{BlockAddr, BLOCK_SIZE};

use crate::entry::JournalEntry;
use crate::{JournalError, Result};

const MAGIC: u32 = 0x5334_4A53; // "S4JS"
const HEADER_BYTES: usize = 28;

/// Maximum payload bytes of entries per sector block.
pub const MAX_SECTOR_BYTES: usize = BLOCK_SIZE - HEADER_BYTES;

/// One encoded sector payload plus the entries it holds (handy for
/// accounting in callers).
#[derive(Clone, Debug)]
pub struct SectorPayload {
    /// The entries packed into this sector, oldest first.
    pub entries: Vec<JournalEntry>,
    /// Encoded entry bytes (header is added by [`finish_sector`]).
    encoded: Vec<u8>,
}

impl SectorPayload {
    /// Finalizes the sector into a block payload given the owning object
    /// and the address of the previous sector in the chain.
    pub fn finish(&self, object: u64, prev: BlockAddr) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.encoded.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&object.to_le_bytes());
        out.extend_from_slice(&prev.0.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.encoded.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.encoded);
        debug_assert!(out.len() <= BLOCK_SIZE);
        out
    }
}

/// Splits `entries` (oldest first) into sector payloads, each fitting in
/// one block.
pub fn encode_sectors(entries: &[JournalEntry]) -> Vec<SectorPayload> {
    let mut out: Vec<SectorPayload> = Vec::new();
    let mut cur = SectorPayload {
        entries: Vec::new(),
        encoded: Vec::new(),
    };
    for e in entries {
        let len = e.encoded_len();
        if !cur.entries.is_empty() && cur.encoded.len() + len > MAX_SECTOR_BYTES {
            out.push(std::mem::replace(
                &mut cur,
                SectorPayload {
                    entries: Vec::new(),
                    encoded: Vec::new(),
                },
            ));
        }
        e.encode_into(&mut cur.encoded);
        cur.entries.push(e.clone());
    }
    if !cur.entries.is_empty() {
        out.push(cur);
    }
    out
}

/// Decodes a sector block: returns `(object, prev, entries)` with entries
/// oldest first.
pub fn decode_sector(buf: &[u8]) -> Result<(u64, BlockAddr, Vec<JournalEntry>)> {
    if buf.len() < HEADER_BYTES {
        return Err(JournalError::Corrupt("sector header"));
    }
    if buf[0..4] != MAGIC.to_le_bytes() {
        return Err(JournalError::Corrupt("sector magic"));
    }
    let object = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let prev = BlockAddr(u64::from_le_bytes(buf[12..20].try_into().unwrap()));
    let count = u32::from_le_bytes(buf[20..24].try_into().unwrap()) as usize;
    let len = u32::from_le_bytes(buf[24..28].try_into().unwrap()) as usize;
    if HEADER_BYTES + len > buf.len() {
        return Err(JournalError::Corrupt("sector body length"));
    }
    let body = &buf[HEADER_BYTES..HEADER_BYTES + len];
    let mut pos = 0;
    // Untrusted count: entries are >= 17 bytes each.
    let mut entries = Vec::with_capacity(count.min(len / 17 + 1));
    for _ in 0..count {
        entries.push(JournalEntry::decode_from(body, &mut pos)?);
    }
    if pos != len {
        return Err(JournalError::Corrupt("sector trailing bytes"));
    }
    Ok((object, prev, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::PtrChange;
    use s4_clock::{HybridTimestamp, SimTime};

    fn entry(i: u64) -> JournalEntry {
        JournalEntry::Write {
            stamp: HybridTimestamp::new(SimTime::from_micros(i), i),
            old_size: i,
            new_size: i + 4096,
            changes: vec![PtrChange {
                lbn: i,
                old: BlockAddr::NONE,
                new: BlockAddr(i),
            }],
        }
    }

    #[test]
    fn single_sector_round_trip() {
        let entries: Vec<_> = (0..5).map(entry).collect();
        let sectors = encode_sectors(&entries);
        assert_eq!(sectors.len(), 1);
        let block = sectors[0].finish(42, BlockAddr(7));
        let (obj, prev, got) = decode_sector(&block).unwrap();
        assert_eq!(obj, 42);
        assert_eq!(prev, BlockAddr(7));
        assert_eq!(got, entries);
    }

    #[test]
    fn many_entries_split_across_sectors_in_order() {
        let entries: Vec<_> = (0..500).map(entry).collect();
        let sectors = encode_sectors(&entries);
        assert!(sectors.len() > 1);
        let mut reassembled = Vec::new();
        for s in &sectors {
            let block = s.finish(1, BlockAddr::NONE);
            assert!(block.len() <= BLOCK_SIZE);
            let (_, _, es) = decode_sector(&block).unwrap();
            reassembled.extend(es);
        }
        assert_eq!(reassembled, entries);
    }

    #[test]
    fn empty_input_yields_no_sectors() {
        assert!(encode_sectors(&[]).is_empty());
    }

    #[test]
    fn corruption_rejected() {
        let block = encode_sectors(&[entry(1)])[0].finish(1, BlockAddr::NONE);
        let mut bad = block.clone();
        bad[0] = 0;
        assert!(decode_sector(&bad).is_err());
        let mut short = block;
        short.truncate(10);
        assert!(decode_sector(&short).is_err());
    }

    #[test]
    fn huge_single_entry_still_fits_or_splits() {
        // A SetAttr with large blobs must still produce sectors <= block.
        let e = JournalEntry::SetAttr {
            stamp: HybridTimestamp::ZERO,
            old: vec![1; 1500],
            new: vec![2; 1500],
        };
        let sectors = encode_sectors(&[e.clone(), e.clone()]);
        for s in &sectors {
            assert!(s.finish(1, BlockAddr::NONE).len() <= BLOCK_SIZE);
        }
    }
}
