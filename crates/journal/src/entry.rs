//! Journal entry types and their binary codec.
//!
//! Every entry carries both the *old* and *new* values it changes, so a
//! metadata record can be rolled **backward** (for time-based reads of the
//! history pool) or **forward** (for crash-recovery replay over the
//! anchored object map). Entries are small — tens of bytes — which is the
//! whole point: Figure 2 of the paper contrasts one journal entry against
//! a conventional versioning system's new data block, indirect block(s),
//! and inode per update.

use s4_clock::{HybridTimestamp, SimTime};
use s4_lfs::BlockAddr;

use crate::{JournalError, Result};

/// One logical-block pointer change: logical block `lbn` moved from `old`
/// to `new` ([`BlockAddr::NONE`] encodes absence on either side).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PtrChange {
    /// Logical block number within the object.
    pub lbn: u64,
    /// Previous address ([`BlockAddr::NONE`] if the block did not exist).
    pub old: BlockAddr,
    /// New address ([`BlockAddr::NONE`] if the block was removed).
    pub new: BlockAddr,
}

/// A metadata-change record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JournalEntry {
    /// Object creation.
    Create {
        /// Version stamp of the mutation.
        stamp: HybridTimestamp,
    },
    /// Object deletion (the object and its versions stay in the history
    /// pool; deletion only ends the live version).
    Delete {
        /// Version stamp of the mutation.
        stamp: HybridTimestamp,
    },
    /// A data write (including appends): the affected block pointers and
    /// the size change.
    Write {
        /// Version stamp of the mutation.
        stamp: HybridTimestamp,
        /// Object size before the write.
        old_size: u64,
        /// Object size after the write.
        new_size: u64,
        /// Pointer changes, one per affected logical block.
        changes: Vec<PtrChange>,
    },
    /// A truncation: the new size and the pointers dropped.
    Truncate {
        /// Version stamp of the mutation.
        stamp: HybridTimestamp,
        /// Object size before the truncate.
        old_size: u64,
        /// Object size after the truncate.
        new_size: u64,
        /// Pointers removed (`new` is [`BlockAddr::NONE`] in each).
        freed: Vec<PtrChange>,
    },
    /// Replacement of the opaque client attribute blob.
    SetAttr {
        /// Version stamp of the mutation.
        stamp: HybridTimestamp,
        /// Previous attribute bytes.
        old: Vec<u8>,
        /// New attribute bytes.
        new: Vec<u8>,
    },
    /// Replacement of the encoded ACL table.
    SetAcl {
        /// Version stamp of the mutation.
        stamp: HybridTimestamp,
        /// Previous ACL bytes.
        old: Vec<u8>,
        /// New ACL bytes.
        new: Vec<u8>,
    },
    /// A checkpoint marker: a consistent copy of the object's metadata was
    /// written at `root` (§4.2.2: "it is necessary to have at least one
    /// checkpoint of an object's metadata on disk at all times").
    Checkpoint {
        /// Version stamp at checkpoint time.
        stamp: HybridTimestamp,
        /// First block of the checkpoint chain.
        root: BlockAddr,
    },
    /// Un-deletion of a deleted object — the inverse of [`Delete`],
    /// used by transaction abort compensation to put a mid-transaction
    /// deletion back. A distinct variant (rather than reusing `Create`)
    /// keeps the "one `Create` begins each object's history" invariant
    /// that point-in-time reconstruction relies on.
    ///
    /// [`Delete`]: JournalEntry::Delete
    Revive {
        /// Version stamp of the mutation.
        stamp: HybridTimestamp,
        /// The deletion stamp this entry cancels (restored on undo).
        was_deleted: HybridTimestamp,
    },
}

impl JournalEntry {
    /// The mutation stamp of this entry.
    pub fn stamp(&self) -> HybridTimestamp {
        match self {
            JournalEntry::Create { stamp }
            | JournalEntry::Delete { stamp }
            | JournalEntry::Write { stamp, .. }
            | JournalEntry::Truncate { stamp, .. }
            | JournalEntry::SetAttr { stamp, .. }
            | JournalEntry::SetAcl { stamp, .. }
            | JournalEntry::Checkpoint { stamp, .. }
            | JournalEntry::Revive { stamp, .. } => *stamp,
        }
    }

    /// True for entries that change visible object state (everything but
    /// checkpoints).
    pub fn is_mutation(&self) -> bool {
        !matches!(self, JournalEntry::Checkpoint { .. })
    }

    /// Serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        let body = match self {
            JournalEntry::Create { .. } | JournalEntry::Delete { .. } => 0,
            JournalEntry::Write { changes, .. } => 16 + 4 + changes.len() * 24,
            JournalEntry::Truncate { freed, .. } => 16 + 4 + freed.len() * 24,
            JournalEntry::SetAttr { old, new, .. } | JournalEntry::SetAcl { old, new, .. } => {
                4 + old.len() + 4 + new.len()
            }
            JournalEntry::Checkpoint { .. } => 8,
            JournalEntry::Revive { .. } => 16,
        };
        1 + 16 + body // type + stamp + body
    }

    /// Appends the binary encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let tag = match self {
            JournalEntry::Create { .. } => 1u8,
            JournalEntry::Delete { .. } => 2,
            JournalEntry::Write { .. } => 3,
            JournalEntry::Truncate { .. } => 4,
            JournalEntry::SetAttr { .. } => 5,
            JournalEntry::SetAcl { .. } => 6,
            JournalEntry::Checkpoint { .. } => 7,
            JournalEntry::Revive { .. } => 8,
        };
        out.push(tag);
        let s = self.stamp();
        out.extend_from_slice(&s.time.as_micros().to_le_bytes());
        out.extend_from_slice(&s.seq.to_le_bytes());
        match self {
            JournalEntry::Create { .. } | JournalEntry::Delete { .. } => {}
            JournalEntry::Write {
                old_size,
                new_size,
                changes,
                ..
            }
            | JournalEntry::Truncate {
                old_size,
                new_size,
                freed: changes,
                ..
            } => {
                out.extend_from_slice(&old_size.to_le_bytes());
                out.extend_from_slice(&new_size.to_le_bytes());
                out.extend_from_slice(&(changes.len() as u32).to_le_bytes());
                for c in changes {
                    out.extend_from_slice(&c.lbn.to_le_bytes());
                    out.extend_from_slice(&c.old.0.to_le_bytes());
                    out.extend_from_slice(&c.new.0.to_le_bytes());
                }
            }
            JournalEntry::SetAttr { old, new, .. } | JournalEntry::SetAcl { old, new, .. } => {
                out.extend_from_slice(&(old.len() as u32).to_le_bytes());
                out.extend_from_slice(old);
                out.extend_from_slice(&(new.len() as u32).to_le_bytes());
                out.extend_from_slice(new);
            }
            JournalEntry::Checkpoint { root, .. } => {
                out.extend_from_slice(&root.0.to_le_bytes());
            }
            JournalEntry::Revive { was_deleted, .. } => {
                out.extend_from_slice(&was_deleted.time.as_micros().to_le_bytes());
                out.extend_from_slice(&was_deleted.seq.to_le_bytes());
            }
        }
    }

    /// Decodes one entry from `buf[*pos..]`, advancing `pos`.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<JournalEntry> {
        let need = |p: usize, n: usize| {
            if p + n > buf.len() {
                Err(JournalError::Corrupt("journal entry truncated"))
            } else {
                Ok(())
            }
        };
        need(*pos, 17)?;
        let tag = buf[*pos];
        let time = u64::from_le_bytes(buf[*pos + 1..*pos + 9].try_into().unwrap());
        let seq = u64::from_le_bytes(buf[*pos + 9..*pos + 17].try_into().unwrap());
        let stamp = HybridTimestamp::new(SimTime::from_micros(time), seq);
        *pos += 17;
        let e = match tag {
            1 => JournalEntry::Create { stamp },
            2 => JournalEntry::Delete { stamp },
            3 | 4 => {
                need(*pos, 20)?;
                let old_size = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
                let new_size = u64::from_le_bytes(buf[*pos + 8..*pos + 16].try_into().unwrap());
                let n = u32::from_le_bytes(buf[*pos + 16..*pos + 20].try_into().unwrap()) as usize;
                *pos += 20;
                need(*pos, n * 24)?;
                let mut changes = Vec::with_capacity(n);
                for _ in 0..n {
                    let lbn = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
                    let old = BlockAddr(u64::from_le_bytes(
                        buf[*pos + 8..*pos + 16].try_into().unwrap(),
                    ));
                    let new = BlockAddr(u64::from_le_bytes(
                        buf[*pos + 16..*pos + 24].try_into().unwrap(),
                    ));
                    changes.push(PtrChange { lbn, old, new });
                    *pos += 24;
                }
                if tag == 3 {
                    JournalEntry::Write {
                        stamp,
                        old_size,
                        new_size,
                        changes,
                    }
                } else {
                    JournalEntry::Truncate {
                        stamp,
                        old_size,
                        new_size,
                        freed: changes,
                    }
                }
            }
            5 | 6 => {
                need(*pos, 4)?;
                let ol = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
                *pos += 4;
                need(*pos, ol)?;
                let old = buf[*pos..*pos + ol].to_vec();
                *pos += ol;
                need(*pos, 4)?;
                let nl = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
                *pos += 4;
                need(*pos, nl)?;
                let new = buf[*pos..*pos + nl].to_vec();
                *pos += nl;
                if tag == 5 {
                    JournalEntry::SetAttr { stamp, old, new }
                } else {
                    JournalEntry::SetAcl { stamp, old, new }
                }
            }
            7 => {
                need(*pos, 8)?;
                let root = BlockAddr(u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap()));
                *pos += 8;
                JournalEntry::Checkpoint { stamp, root }
            }
            8 => {
                need(*pos, 16)?;
                let time = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
                let seq = u64::from_le_bytes(buf[*pos + 8..*pos + 16].try_into().unwrap());
                *pos += 16;
                JournalEntry::Revive {
                    stamp,
                    was_deleted: HybridTimestamp::new(SimTime::from_micros(time), seq),
                }
            }
            _ => return Err(JournalError::Corrupt("journal entry tag")),
        };
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(t: u64, s: u64) -> HybridTimestamp {
        HybridTimestamp::new(SimTime::from_micros(t), s)
    }

    fn samples() -> Vec<JournalEntry> {
        vec![
            JournalEntry::Create { stamp: st(1, 1) },
            JournalEntry::Write {
                stamp: st(2, 2),
                old_size: 0,
                new_size: 8192,
                changes: vec![
                    PtrChange {
                        lbn: 0,
                        old: BlockAddr::NONE,
                        new: BlockAddr(100),
                    },
                    PtrChange {
                        lbn: 1,
                        old: BlockAddr::NONE,
                        new: BlockAddr(101),
                    },
                ],
            },
            JournalEntry::Truncate {
                stamp: st(3, 3),
                old_size: 8192,
                new_size: 4096,
                freed: vec![PtrChange {
                    lbn: 1,
                    old: BlockAddr(101),
                    new: BlockAddr::NONE,
                }],
            },
            JournalEntry::SetAttr {
                stamp: st(4, 4),
                old: vec![1, 2, 3],
                new: vec![4, 5],
            },
            JournalEntry::SetAcl {
                stamp: st(5, 5),
                old: vec![],
                new: vec![9; 40],
            },
            JournalEntry::Checkpoint {
                stamp: st(6, 6),
                root: BlockAddr(555),
            },
            JournalEntry::Delete { stamp: st(7, 7) },
            JournalEntry::Revive {
                stamp: st(8, 8),
                was_deleted: st(7, 7),
            },
        ]
    }

    #[test]
    fn round_trip_all_variants() {
        let mut buf = Vec::new();
        for e in samples() {
            e.encode_into(&mut buf);
        }
        let mut pos = 0;
        for want in samples() {
            let got = JournalEntry::decode_from(&buf, &mut pos).unwrap();
            assert_eq!(got, want);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn encoded_len_matches_actual() {
        for e in samples() {
            let mut buf = Vec::new();
            e.encode_into(&mut buf);
            assert_eq!(buf.len(), e.encoded_len(), "variant {e:?}");
        }
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        samples()[1].encode_into(&mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            let _ = JournalEntry::decode_from(&buf[..cut], &mut pos);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = vec![0u8; 17];
        buf[0] = 99;
        let mut pos = 0;
        assert!(JournalEntry::decode_from(&buf, &mut pos).is_err());
    }

    #[test]
    fn entry_is_compact_relative_to_a_block() {
        // The Figure 2 claim: a single-block update costs a ~tens-of-bytes
        // journal entry instead of new metadata blocks.
        let e = JournalEntry::Write {
            stamp: st(1, 1),
            old_size: 1 << 30,
            new_size: 1 << 30,
            changes: vec![PtrChange {
                lbn: 262144,
                old: BlockAddr(1),
                new: BlockAddr(2),
            }],
        };
        assert!(e.encoded_len() < 100);
    }
}
