//! Per-drive transaction log records for cross-shard two-phase commit.
//!
//! Each participant drive in a distributed transaction appends these
//! records to a reserved, journaled table object (the drive layer owns
//! the object; this module owns only the codec and the in-doubt fold).
//! The record sequence per transaction is:
//!
//! 1. [`Prepared`] — flushed *before* the sub-batch executes, capturing
//!    the pre-transaction time `t0`. A crash after this record but
//!    before [`Touched`] means the sub-batch may have partially
//!    executed; recovery compensates by restoring **everything** the
//!    drive changed after `t0` (the worker holds the drive exclusively
//!    during prepare, so nothing else can have written in between).
//! 2. [`Touched`] — flushed *after* the sub-batch executed, naming the
//!    exact objects and partition names it touched. Its presence is the
//!    participant's yes-vote: effects are durable and scoped.
//! 3. [`Resolved`] — the coordinator's decision has been applied here
//!    (commit: nothing to do; abort: compensation ran). Once every
//!    pending transaction is resolved the drive truncates the log.
//!
//! A `Prepared` without a matching `Resolved` is an **in-doubt**
//! transaction; mount-time recovery resolves it by consulting the
//! coordinator's decision note on shard 0 (present ⇒ commit, absent ⇒
//! abort — presumed abort).
//!
//! [`Prepared`]: TxnRecord::Prepared
//! [`Touched`]: TxnRecord::Touched
//! [`Resolved`]: TxnRecord::Resolved

use crate::{JournalError, Result};

/// One record of a drive's transaction log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnRecord {
    /// Phase-1 intent: the sub-batch of transaction `txid` is about to
    /// execute; every effect it will create is stamped strictly after
    /// `t0_us` (microseconds).
    Prepared {
        /// Transaction identifier (globally unique per array lifetime).
        txid: u64,
        /// Pre-transaction timestamp in microseconds; compensation
        /// restores state as of this instant.
        t0_us: u64,
    },
    /// Phase-1 vote: the sub-batch executed; these are the objects and
    /// partition names it touched.
    Touched {
        /// Transaction identifier.
        txid: u64,
        /// ObjectIDs written, created, deleted, or re-ACLed.
        oids: Vec<u64>,
        /// Partition names the sub-batch added.
        names: Vec<String>,
    },
    /// Phase-2 outcome applied locally (true = committed).
    Resolved {
        /// Transaction identifier.
        txid: u64,
        /// Whether the coordinator decided commit.
        committed: bool,
    },
}

impl TxnRecord {
    /// The transaction this record belongs to.
    pub fn txid(&self) -> u64 {
        match self {
            TxnRecord::Prepared { txid, .. }
            | TxnRecord::Touched { txid, .. }
            | TxnRecord::Resolved { txid, .. } => *txid,
        }
    }

    /// Appends the binary encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            TxnRecord::Prepared { txid, t0_us } => {
                out.push(1);
                out.extend_from_slice(&txid.to_le_bytes());
                out.extend_from_slice(&t0_us.to_le_bytes());
            }
            TxnRecord::Touched { txid, oids, names } => {
                out.push(2);
                out.extend_from_slice(&txid.to_le_bytes());
                out.extend_from_slice(&(oids.len() as u32).to_le_bytes());
                for o in oids {
                    out.extend_from_slice(&o.to_le_bytes());
                }
                out.extend_from_slice(&(names.len() as u32).to_le_bytes());
                for n in names {
                    let b = n.as_bytes();
                    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                    out.extend_from_slice(b);
                }
            }
            TxnRecord::Resolved { txid, committed } => {
                out.push(3);
                out.extend_from_slice(&txid.to_le_bytes());
                out.push(u8::from(*committed));
            }
        }
    }

    /// Decodes one record from `buf[*pos..]`, advancing `pos`.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<TxnRecord> {
        let need = |p: usize, n: usize| {
            if p + n > buf.len() {
                Err(JournalError::Corrupt("txn record truncated"))
            } else {
                Ok(())
            }
        };
        need(*pos, 9)?;
        let tag = buf[*pos];
        let txid = u64::from_le_bytes(buf[*pos + 1..*pos + 9].try_into().unwrap());
        *pos += 9;
        let r = match tag {
            1 => {
                need(*pos, 8)?;
                let t0_us = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
                *pos += 8;
                TxnRecord::Prepared { txid, t0_us }
            }
            2 => {
                need(*pos, 4)?;
                let no = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
                *pos += 4;
                need(*pos, no * 8)?;
                let mut oids = Vec::with_capacity(no);
                for _ in 0..no {
                    oids.push(u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap()));
                    *pos += 8;
                }
                need(*pos, 4)?;
                let nn = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
                *pos += 4;
                let mut names = Vec::with_capacity(nn);
                for _ in 0..nn {
                    need(*pos, 4)?;
                    let l = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
                    *pos += 4;
                    need(*pos, l)?;
                    let s = std::str::from_utf8(&buf[*pos..*pos + l])
                        .map_err(|_| JournalError::Corrupt("txn partition name utf8"))?;
                    names.push(s.to_string());
                    *pos += l;
                }
                TxnRecord::Touched { txid, oids, names }
            }
            3 => {
                need(*pos, 1)?;
                let committed = buf[*pos] == 1;
                *pos += 1;
                TxnRecord::Resolved { txid, committed }
            }
            _ => return Err(JournalError::Corrupt("txn record tag")),
        };
        Ok(r)
    }
}

/// Decodes a whole transaction log. The log object is journaled, so its
/// recovered content is a synced prefix of what was appended — a
/// truncated or garbled tail therefore cannot happen on the recovery
/// path, but `scan` still refuses it loudly instead of panicking.
pub fn scan(buf: &[u8]) -> Result<Vec<TxnRecord>> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < buf.len() {
        out.push(TxnRecord::decode_from(buf, &mut pos)?);
    }
    Ok(out)
}

/// One unresolved transaction recovered from a drive's log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InDoubtTxn {
    /// Transaction identifier.
    pub txid: u64,
    /// Pre-transaction timestamp (microseconds).
    pub t0_us: u64,
    /// Exact touch scope if the vote record made it to disk; `None`
    /// means the crash hit mid-prepare and compensation must restore
    /// everything stamped after `t0_us`.
    pub touched: Option<(Vec<u64>, Vec<String>)>,
}

/// Folds a record stream into the set of in-doubt transactions: every
/// `Prepared` without a matching `Resolved`, ordered as prepared.
pub fn in_doubt(records: &[TxnRecord]) -> Vec<InDoubtTxn> {
    let mut open: Vec<InDoubtTxn> = Vec::new();
    for r in records {
        match r {
            TxnRecord::Prepared { txid, t0_us } => open.push(InDoubtTxn {
                txid: *txid,
                t0_us: *t0_us,
                touched: None,
            }),
            TxnRecord::Touched { txid, oids, names } => {
                if let Some(t) = open.iter_mut().find(|t| t.txid == *txid) {
                    t.touched = Some((oids.clone(), names.clone()));
                }
            }
            TxnRecord::Resolved { txid, .. } => open.retain(|t| t.txid != *txid),
        }
    }
    open
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TxnRecord> {
        vec![
            TxnRecord::Prepared { txid: 7, t0_us: 1_000_000 },
            TxnRecord::Touched {
                txid: 7,
                oids: vec![4, 12, 9000],
                names: vec!["home".into(), "спул".into()],
            },
            TxnRecord::Resolved { txid: 7, committed: true },
            TxnRecord::Prepared { txid: 9, t0_us: 2_000_000 },
            TxnRecord::Resolved { txid: 9, committed: false },
        ]
    }

    #[test]
    fn round_trip_all_variants() {
        let mut buf = Vec::new();
        for r in samples() {
            r.encode_into(&mut buf);
        }
        assert_eq!(scan(&buf).unwrap(), samples());
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        for r in samples() {
            r.encode_into(&mut buf);
        }
        for cut in 1..buf.len() {
            // Either a clean shorter prefix or a loud error.
            let _ = scan(&buf[..cut]);
        }
        assert!(scan(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = vec![0u8; 9];
        buf[0] = 77;
        assert!(scan(&buf).is_err());
    }

    #[test]
    fn in_doubt_folds_prepared_without_resolved() {
        let mut recs = samples();
        assert!(in_doubt(&recs).is_empty(), "all sample txns resolved");

        recs.push(TxnRecord::Prepared { txid: 11, t0_us: 3_000_000 });
        recs.push(TxnRecord::Touched {
            txid: 11,
            oids: vec![42],
            names: vec![],
        });
        recs.push(TxnRecord::Prepared { txid: 13, t0_us: 4_000_000 });
        let open = in_doubt(&recs);
        assert_eq!(open.len(), 2);
        assert_eq!(open[0].txid, 11);
        assert_eq!(open[0].touched, Some((vec![42], vec![])));
        assert_eq!(open[1].txid, 13);
        assert_eq!(open[1].touched, None, "crashed mid-prepare: blanket scope");
    }
}
