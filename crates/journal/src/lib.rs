//! Journal-based metadata versioning — the paper's key structural novelty
//! (§4.2.2, Figure 2).
//!
//! Because S4 clients are untrusted, *every* modification creates a new
//! version, so a conventional versioning layout would write a new inode
//! (and every indirect block on the path) per update — up to 4× space
//! growth for large files. S4 instead records each metadata change as a
//! compact **journal entry** carrying both the old and new values
//! (undo+redo), packs the entries into per-object **journal sectors**
//! chained backward in time, and checkpoints an object's full metadata
//! only when it is evicted from the cache or at sync. Any version of the
//! metadata can then be recreated by replaying entries from the nearest
//! checkpoint.
//!
//! Modules:
//!
//! * [`entry`] — the journal entry types and their binary codec.
//! * [`sector`] — packing entries into chained journal-sector blocks.
//! * [`meta`] — the object metadata record ([`ObjectMeta`]) and its
//!   checkpoint codec.
//! * [`replay`] — undo/redo of entries over a metadata record, and
//!   point-in-time reconstruction.
//! * [`conventional`] — the conventional copy-on-write metadata baseline
//!   (new inode + indirect path per update), used by the Figure 2
//!   experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conventional;
pub mod entry;
pub mod meta;
pub mod replay;
pub mod sector;
pub mod txn;

pub use conventional::{BlockSink, ConventionalMeta, CountingSink, UpdateCost};
pub use entry::{JournalEntry, PtrChange};
pub use meta::ObjectMeta;
pub use replay::{reconstruct_at, redo, undo};
pub use sector::{decode_sector, encode_sectors, SectorPayload, MAX_SECTOR_BYTES};
pub use txn::{in_doubt, InDoubtTxn, TxnRecord};

use std::fmt;

/// Errors surfaced by the journal layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// A serialized structure failed validation.
    Corrupt(&'static str),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Corrupt(what) => write!(f, "corrupt journal structure: {what}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// Result alias for journal operations.
pub type Result<T> = std::result::Result<T, JournalError>;
