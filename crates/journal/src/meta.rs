//! The object metadata record and its checkpoint codec.
//!
//! [`ObjectMeta`] is the drive's in-memory "inode" for one object: sizes,
//! stamps, opaque client attributes, the encoded ACL table, the sparse
//! logical-block map, and the head of the object's journal-sector chain.
//! Checkpoints serialize the whole record; unlike conventional journaling,
//! checkpointing never prunes journal space — only aging may prune
//! (§4.2.2).

use std::collections::BTreeMap;

use s4_clock::{HybridTimestamp, SimTime};
use s4_lfs::BlockAddr;

use crate::{JournalError, Result};

const MAGIC: u32 = 0x5334_4D54; // "S4MT"

/// One object's metadata.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ObjectMeta {
    /// Object identifier (drive-assigned, §4.1).
    pub id: u64,
    /// Stamp of the creating mutation.
    pub created: HybridTimestamp,
    /// Stamp of the most recent mutation.
    pub modified: HybridTimestamp,
    /// Set when the live object was deleted (versions remain in the
    /// history pool).
    pub deleted: Option<HybridTimestamp>,
    /// Current size in bytes.
    pub size: u64,
    /// Opaque attribute space for client file systems (§4.1: "objects
    /// also have ... opaque attribute space").
    pub attrs: Vec<u8>,
    /// Encoded ACL table (interpreted by the drive's access-control
    /// layer).
    pub acl: Vec<u8>,
    /// Sparse logical-block map: logical block number → log address.
    pub blocks: BTreeMap<u64, BlockAddr>,
    /// Newest journal sector of this object's backward chain
    /// ([`BlockAddr::NONE`] if nothing has been packed to disk yet).
    pub journal_head: BlockAddr,
}

impl ObjectMeta {
    /// Creates metadata for a newly created object.
    pub fn new(id: u64, created: HybridTimestamp) -> Self {
        ObjectMeta {
            id,
            created,
            modified: created,
            deleted: None,
            size: 0,
            attrs: Vec::new(),
            acl: Vec::new(),
            blocks: BTreeMap::new(),
            journal_head: BlockAddr::NONE,
        }
    }

    /// True if the live object exists (created and not deleted).
    pub fn is_live(&self) -> bool {
        self.deleted.is_none()
    }

    /// Number of logical blocks currently mapped.
    pub fn mapped_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Serializes the record (checkpoint / anchor format).
    pub fn encode(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(96 + self.attrs.len() + self.acl.len() + self.blocks.len() * 16);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.id.to_le_bytes());
        push_stamp(&mut out, self.created);
        push_stamp(&mut out, self.modified);
        match self.deleted {
            Some(d) => {
                out.push(1);
                push_stamp(&mut out, d);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&(self.attrs.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.attrs);
        out.extend_from_slice(&(self.acl.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.acl);
        out.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        for (&lbn, &addr) in &self.blocks {
            out.extend_from_slice(&lbn.to_le_bytes());
            out.extend_from_slice(&addr.0.to_le_bytes());
        }
        out.extend_from_slice(&self.journal_head.0.to_le_bytes());
        out
    }

    /// Deserializes a record from `buf[*pos..]`, advancing `pos`.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Result<ObjectMeta> {
        let need = |p: usize, n: usize| {
            if p + n > buf.len() {
                Err(JournalError::Corrupt("object meta truncated"))
            } else {
                Ok(())
            }
        };
        need(*pos, 12)?;
        if buf[*pos..*pos + 4] != MAGIC.to_le_bytes() {
            return Err(JournalError::Corrupt("object meta magic"));
        }
        let id = u64::from_le_bytes(buf[*pos + 4..*pos + 12].try_into().unwrap());
        *pos += 12;
        let created = read_stamp(buf, pos)?;
        let modified = read_stamp(buf, pos)?;
        need(*pos, 1)?;
        let has_deleted = buf[*pos] == 1;
        *pos += 1;
        let deleted = if has_deleted {
            Some(read_stamp(buf, pos)?)
        } else {
            None
        };
        need(*pos, 12)?;
        let size = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
        *pos += 8;
        let alen = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
        *pos += 4;
        need(*pos, alen)?;
        let attrs = buf[*pos..*pos + alen].to_vec();
        *pos += alen;
        need(*pos, 4)?;
        let clen = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
        *pos += 4;
        need(*pos, clen)?;
        let acl = buf[*pos..*pos + clen].to_vec();
        *pos += clen;
        need(*pos, 4)?;
        let n = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
        *pos += 4;
        need(*pos, n * 16 + 8)?;
        let mut blocks = BTreeMap::new();
        for _ in 0..n {
            let lbn = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
            let addr = BlockAddr(u64::from_le_bytes(
                buf[*pos + 8..*pos + 16].try_into().unwrap(),
            ));
            blocks.insert(lbn, addr);
            *pos += 16;
        }
        let journal_head = BlockAddr(u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap()));
        *pos += 8;
        Ok(ObjectMeta {
            id,
            created,
            modified,
            deleted,
            size,
            attrs,
            acl,
            blocks,
            journal_head,
        })
    }
}

fn push_stamp(out: &mut Vec<u8>, s: HybridTimestamp) {
    out.extend_from_slice(&s.time.as_micros().to_le_bytes());
    out.extend_from_slice(&s.seq.to_le_bytes());
}

fn read_stamp(buf: &[u8], pos: &mut usize) -> Result<HybridTimestamp> {
    if *pos + 16 > buf.len() {
        return Err(JournalError::Corrupt("stamp truncated"));
    }
    let time = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
    let seq = u64::from_le_bytes(buf[*pos + 8..*pos + 16].try_into().unwrap());
    *pos += 16;
    Ok(HybridTimestamp::new(SimTime::from_micros(time), seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObjectMeta {
        let mut m = ObjectMeta::new(99, HybridTimestamp::new(SimTime::from_micros(5), 1));
        m.modified = HybridTimestamp::new(SimTime::from_micros(9), 4);
        m.size = 12_345;
        m.attrs = vec![1, 2, 3, 4];
        m.acl = vec![7; 33];
        m.blocks.insert(0, BlockAddr(10));
        m.blocks.insert(2, BlockAddr(12));
        m.journal_head = BlockAddr(777);
        m
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let buf = m.encode();
        let mut pos = 0;
        assert_eq!(ObjectMeta::decode_from(&buf, &mut pos).unwrap(), m);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn round_trip_deleted() {
        let mut m = sample();
        m.deleted = Some(HybridTimestamp::new(SimTime::from_micros(11), 9));
        let buf = m.encode();
        let mut pos = 0;
        assert_eq!(ObjectMeta::decode_from(&buf, &mut pos).unwrap(), m);
    }

    #[test]
    fn multiple_records_stream() {
        let a = sample();
        let mut b = sample();
        b.id = 100;
        let mut buf = a.encode();
        buf.extend(b.encode());
        let mut pos = 0;
        assert_eq!(ObjectMeta::decode_from(&buf, &mut pos).unwrap().id, 99);
        assert_eq!(ObjectMeta::decode_from(&buf, &mut pos).unwrap().id, 100);
    }

    #[test]
    fn truncation_is_an_error() {
        let buf = sample().encode();
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(ObjectMeta::decode_from(&buf[..cut], &mut pos).is_err());
        }
    }

    #[test]
    fn fresh_meta_is_live_and_empty() {
        let m = ObjectMeta::new(1, HybridTimestamp::ZERO);
        assert!(m.is_live());
        assert_eq!(m.mapped_blocks(), 0);
        assert!(m.journal_head.is_none());
    }
}
