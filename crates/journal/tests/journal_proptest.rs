// Hermetic-build gate: needs the external `proptest` crate. Re-add
// `proptest = "1"` to [dev-dependencies] and run
// `cargo test --features proptest-tests` to enable.
#![cfg(feature = "proptest-tests")]

//! Property-based tests for journal entries: codec stability, undo/redo
//! inversion, and point-in-time reconstruction against replayed state.

use proptest::prelude::*;

use s4_clock::{HybridTimestamp, SimTime};
use s4_journal::{
    decode_sector, encode_sectors, reconstruct_at, redo, undo, JournalEntry, ObjectMeta, PtrChange,
};
use s4_lfs::BlockAddr;

fn stamp(i: u64) -> HybridTimestamp {
    HybridTimestamp::new(SimTime::from_micros(i * 10), i)
}

/// Generates a *consistent* entry history: old values always match the
/// state produced by the previous entries (as the drive guarantees).
#[allow(clippy::explicit_counter_loop)]
fn history() -> impl Strategy<Value = Vec<JournalEntry>> {
    proptest::collection::vec(
        prop_oneof![
            6 => (0u64..8, any::<u16>()).prop_map(|(lbn, fill)| (0u8, lbn, fill as u64)),
            2 => (0u64..8, any::<u16>()).prop_map(|(len, a)| (1u8, len, a as u64)),
            2 => proptest::collection::vec(any::<u8>(), 0..24).prop_map(|b| (2u8, b.len() as u64, b.first().copied().unwrap_or(0) as u64)),
            1 => Just((3u8, 0, 0)),
        ],
        0..40,
    )
    .prop_map(|raw| {
        let mut meta = ObjectMeta::new(1, stamp(1));
        let mut out = vec![JournalEntry::Create { stamp: stamp(1) }];
        redo(&mut meta, &out[0]);
        let mut next_addr = 100u64;
        let mut seq = 2u64;
        for (kind, a, b) in raw {
            if meta.deleted.is_some() {
                break;
            }
            let e = match kind {
                0 => {
                    let lbn = a;
                    let old = meta.blocks.get(&lbn).copied().unwrap_or(BlockAddr::NONE);
                    next_addr += 1;
                    JournalEntry::Write {
                        stamp: stamp(seq),
                        old_size: meta.size,
                        new_size: meta.size.max((lbn + 1) * 4096).max(b),
                        changes: vec![PtrChange {
                            lbn,
                            old,
                            new: BlockAddr(next_addr),
                        }],
                    }
                }
                1 => {
                    let new_size = a * 512;
                    let keep = new_size.div_ceil(4096);
                    let freed: Vec<PtrChange> = meta
                        .blocks
                        .range(keep..)
                        .map(|(&lbn, &old)| PtrChange {
                            lbn,
                            old,
                            new: BlockAddr::NONE,
                        })
                        .collect();
                    JournalEntry::Truncate {
                        stamp: stamp(seq),
                        old_size: meta.size,
                        new_size,
                        freed,
                    }
                }
                2 => JournalEntry::SetAttr {
                    stamp: stamp(seq),
                    old: meta.attrs.clone(),
                    new: vec![b as u8; a as usize],
                },
                _ => JournalEntry::Delete { stamp: stamp(seq) },
            };
            redo(&mut meta, &e);
            out.push(e);
            seq += 1;
        }
        out
    })
}

fn replay_all(entries: &[JournalEntry]) -> ObjectMeta {
    let mut meta = ObjectMeta::new(1, entries[0].stamp());
    for e in entries {
        redo(&mut meta, e);
    }
    meta
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn sector_codec_round_trips(entries in history()) {
        let sectors = encode_sectors(&entries);
        let mut reassembled = Vec::new();
        for s in &sectors {
            let payload = s.finish(1, BlockAddr::NONE);
            prop_assert!(payload.len() <= s4_lfs::BLOCK_SIZE);
            let (oid, _prev, es) = decode_sector(&payload).unwrap();
            prop_assert_eq!(oid, 1);
            reassembled.extend(es);
        }
        prop_assert_eq!(reassembled, entries);
    }

    #[test]
    fn undo_inverts_redo(entries in history()) {
        let final_meta = replay_all(&entries);
        // Undo everything but the Create; then redo; must converge.
        let mut m = final_meta.clone();
        for e in entries.iter().rev().take(entries.len() - 1) {
            prop_assert!(undo(&mut m, e));
        }
        for e in entries.iter().skip(1) {
            redo(&mut m, e);
        }
        prop_assert_eq!(m, final_meta);
    }

    #[test]
    fn reconstruction_matches_prefix_replay(entries in history()) {
        let final_meta = replay_all(&entries);
        let newest_first: Vec<_> = entries.iter().rev().cloned().collect();
        // Reconstructing at entry k's stamp must equal replaying the
        // prefix 0..=k.
        for k in 0..entries.len() {
            let bound = entries[k].stamp();
            let got = reconstruct_at(&final_meta, newest_first.clone(), bound).unwrap();
            let want = replay_all(&entries[..=k]);
            prop_assert_eq!(got.size, want.size, "size at {}", k);
            prop_assert_eq!(&got.blocks, &want.blocks, "blocks at {}", k);
            prop_assert_eq!(&got.attrs, &want.attrs, "attrs at {}", k);
            prop_assert_eq!(got.deleted.is_some(), want.deleted.is_some(), "liveness at {}", k);
        }
        // Before creation: no object.
        prop_assert!(reconstruct_at(
            &final_meta,
            newest_first,
            HybridTimestamp::ZERO
        )
        .is_none());
    }

    #[test]
    fn meta_codec_round_trips(entries in history()) {
        let meta = replay_all(&entries);
        let buf = meta.encode();
        let mut pos = 0;
        let decoded = ObjectMeta::decode_from(&buf, &mut pos).unwrap();
        prop_assert_eq!(decoded, meta);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn entry_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut pos = 0;
        let _ = JournalEntry::decode_from(&bytes, &mut pos);
        let _ = decode_sector(&bytes);
    }
}
