//! Decoder for the file server's directory-object format.
//!
//! The drive stores directories as opaque objects; the format below is
//! the `s4-fs` convention (entry count, then `name, handle, kind`
//! triples). Forensics needs to *read* that namespace from the drive
//! side — at historical times, without a live file server — so the
//! codec is duplicated here rather than importing `s4-fs` (which
//! depends on this crate). The byte format is pinned by round-trip
//! tests on both sides.

use s4_core::S4Error;

/// Directory entry kind byte (the `s4-fs` convention).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum EntryKind {
    /// Regular file.
    File = 1,
    /// Directory.
    Dir = 2,
    /// Symbolic link.
    Symlink = 3,
}

impl EntryKind {
    /// Parses the on-disk kind byte.
    pub fn from_u8(v: u8) -> Result<EntryKind, S4Error> {
        match v {
            1 => Ok(EntryKind::File),
            2 => Ok(EntryKind::Dir),
            3 => Ok(EntryKind::Symlink),
            _ => Err(S4Error::BadRequest("directory entry kind")),
        }
    }
}

/// One decoded directory entry: name, target object id, kind.
pub type DirEntry = (String, u64, EntryKind);

/// Decodes a directory blob. An empty blob is an empty directory.
pub fn decode(data: &[u8]) -> Result<Vec<DirEntry>, S4Error> {
    if data.is_empty() {
        return Ok(Vec::new());
    }
    if data.len() < 4 {
        return Err(S4Error::BadRequest("directory blob truncated"));
    }
    let n = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
    let mut pos = 4;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        if pos + 2 > data.len() {
            return Err(S4Error::BadRequest("directory entry truncated"));
        }
        let nl = u16::from_le_bytes(data[pos..pos + 2].try_into().unwrap()) as usize;
        pos += 2;
        if pos + nl + 9 > data.len() {
            return Err(S4Error::BadRequest("directory name truncated"));
        }
        let name = String::from_utf8(data[pos..pos + nl].to_vec())
            .map_err(|_| S4Error::BadRequest("directory name utf8"))?;
        pos += nl;
        let handle = u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap());
        pos += 8;
        let kind = EntryKind::from_u8(data[pos])?;
        pos += 1;
        out.push((name, handle, kind));
    }
    Ok(out)
}

/// Encodes a directory blob (used by recovery to relink entries).
pub fn encode(entries: &[DirEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + entries.len() * 24);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, handle, kind) in entries {
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&handle.to_le_bytes());
        out.push(*kind as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let entries = vec![
            ("etc".to_string(), 5, EntryKind::Dir),
            ("auth.log".to_string(), 9, EntryKind::File),
            ("link".to_string(), 12, EntryKind::Symlink),
        ];
        assert_eq!(decode(&encode(&entries)).unwrap(), entries);
        assert!(decode(&[]).unwrap().is_empty());
    }

    #[test]
    fn rejects_corruption() {
        let blob = encode(&[("x".to_string(), 1, EntryKind::File)]);
        assert!(decode(&blob[..3]).is_err());
        assert!(decode(&blob[..blob.len() - 1]).is_err());
        let mut bad_kind = blob.clone();
        *bad_kind.last_mut().unwrap() = 7;
        assert!(decode(&bad_kind).is_err());
    }
}
