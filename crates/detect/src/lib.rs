//! Intrusion detection, forensics, and recovery for self-securing
//! storage.
//!
//! The paper's security model (§3) makes the drive a vantage point the
//! intruder cannot reach: every request is versioned and audited behind
//! the physical interface boundary, so the drive sees a complete,
//! tamper-proof record of what happened even when every client OS is
//! compromised. This crate is the machinery that *exploits* that vantage
//! point, in three layers:
//!
//! * **Detection** ([`detector`], [`rules`]) — streaming analytics over
//!   the drive-written audit log (§4.2.3). A pluggable [`Detector`]
//!   trait consumes [`AuditRecord`](s4_core::AuditRecord)s one at a
//!   time; the built-in rules flag the §2 intrusion shapes: scrubbing an
//!   append-only log, bursts of ACL/attribute tampering, mass overwrite
//!   storms (the ransomware shape), write-rate spikes, a known user
//!   suddenly operating from a foreign client, and gaps in audit
//!   coverage. Detectors run *offline* over the decoded log
//!   ([`scan_audit`]) or *online* inside the drive via
//!   [`OnlineMonitor`], with alerts persisted to a second reserved,
//!   drive-writable-only object that the intruder can neither suppress
//!   nor rewrite.
//! * **Forensics** ([`forensics`], [`timeline`]) — given an intrusion
//!   time `T`, reconstruct what happened: per-principal activity
//!   summaries, per-object tamper timelines merging the journal's
//!   version history with the audit stream, namespace tree diffs
//!   between `T` and now, and the §3.6 damage report (reads, writes,
//!   and crude taint propagation for a suspect principal).
//! * **Recovery** ([`recovery`]) — turn the forensic picture into a
//!   reviewable [`RecoveryPlan`]: restore tampered objects to their
//!   pre-intrusion versions, undelete destroyed ones, remove planted
//!   ones (landmark-pinned first, as evidence), and quarantine
//!   already-deleted exploit tools. [`execute_plan`] applies it with
//!   time-based reads and copy-forward writes — history is never
//!   rewritten, so recovery itself is auditable and undoable.
//!
//! The crate deliberately depends only on `s4-core` (drive interface):
//! it lives with the administrator inside the security perimeter, not
//! with any file-system client. The file-server layer (`s4-fs`)
//! re-exports the damage report from here for compatibility.

#![warn(missing_docs)]

pub mod alert;
pub mod detector;
pub mod dirblob;
pub mod forensics;
pub mod recovery;
pub mod rules;
pub mod timeline;

pub use alert::{Alert, Severity};
pub use detector::{
    install_standard_monitor, read_alerts, scan_audit, AlertPoller, Detector, DetectorSet,
    OnlineMonitor,
};
pub use forensics::{
    assemble_traces, audit_coverage, damage_report, flight_log, object_timeline,
    render_trace_tree, slowest_traces, tree_at, tree_diff, CoverageReport, DamageReport,
    FlightEntry, TimelineEvent, TimelineSource, TraceSpan, TraceTree, TreeDiff, TreeNode,
};
pub use recovery::{
    execute_plan, execute_plan_atomic, execute_plan_atomic_on, plan_recovery, Dispatch, Landmark,
    PlannedAction, RecoveryAction, RecoveryPlan, RecoveryReport,
    Suspects,
};
pub use timeline::{ActivityTimeline, ObjectProfile, PrincipalActivity};
