//! Forensic analysis: damage reports, per-object tamper timelines,
//! namespace tree diffs, and audit-coverage accounting.
//!
//! Everything here runs against the drive interface with the admin
//! context — the administrator's console inside the security perimeter
//! (§3.5–§3.6), after detection has placed an intrusion at time `T`.

use std::collections::{BTreeMap, BTreeSet};

use s4_clock::{SimDuration, SimTime};
use s4_core::{
    ClientId, ObjectId, OpKind, RequestContext, S4Drive, S4Error, UserId, VersionRecord,
};
use s4_simdisk::BlockDev;

use crate::dirblob::{self, EntryKind};

// ---------------------------------------------------------------------
// Damage report (§3.6). Migrated from `s4_fs::tools`, which re-exports
// it for compatibility: diagnosis is drive-level work and must not
// require a file-server mount.
// ---------------------------------------------------------------------

/// The outcome of an audit-log damage analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DamageReport {
    /// Objects the suspect modified (write/append/truncate/setattr/
    /// setacl/delete) in the interval.
    pub modified: BTreeSet<u64>,
    /// Objects the suspect read in the interval.
    pub read: BTreeSet<u64>,
    /// Objects written by *anyone* shortly after the suspect read another
    /// object — possible propagation of tainted data ("diagnosis tools
    /// may be able to establish a link between objects based on the fact
    /// that one was read just before another was written", §3.6).
    pub possibly_tainted: BTreeSet<u64>,
    /// Total suspect requests in the interval.
    pub request_count: u64,
}

/// Builds a [`DamageReport`] for `suspect` over `[from, to]` from the
/// drive's audit log (requires the admin context).
pub fn damage_report<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    suspect: ClientId,
    from: SimTime,
    to: SimTime,
    taint_window: SimDuration,
) -> Result<DamageReport, S4Error> {
    let records = drive.read_audit_records(admin)?;
    let mut report = DamageReport::default();
    let mut last_suspect_read: Option<SimTime> = None;
    for r in &records {
        if r.time < from || r.time > to {
            continue;
        }
        let is_suspect = r.client == suspect;
        if is_suspect {
            report.request_count += 1;
        }
        let modifies = matches!(
            r.op,
            OpKind::Write
                | OpKind::Append
                | OpKind::Truncate
                | OpKind::SetAttr
                | OpKind::SetAcl
                | OpKind::Delete
                | OpKind::Create
        );
        if is_suspect && r.ok {
            if modifies && r.object != ObjectId(0) {
                report.modified.insert(r.object.0);
            }
            if matches!(r.op, OpKind::Read | OpKind::GetAttr) && r.object != ObjectId(0) {
                report.read.insert(r.object.0);
                last_suspect_read = Some(r.time);
            }
        }
        // Crude propagation: any write soon after a suspect read may
        // carry tainted bytes.
        if modifies && r.ok && r.object != ObjectId(0) {
            if let Some(t) = last_suspect_read {
                if r.time.saturating_since(t) <= taint_window {
                    report.possibly_tainted.insert(r.object.0);
                }
            }
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------
// Audit coverage.
// ---------------------------------------------------------------------

/// Accounting of audit-log completeness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoverageReport {
    /// Records the drive has ever appended (its monotonic counter).
    pub appended: u64,
    /// Records currently decodable from the log (blocks + tail).
    pub decodable: u64,
}

impl CoverageReport {
    /// Records appended but no longer decodable — typically the
    /// volatile tail lost in a crash. Nonzero means the record stream
    /// has a gap and conclusions drawn from it are lower bounds.
    pub fn missing(&self) -> u64 {
        self.appended.saturating_sub(self.decodable)
    }
}

/// Compares the drive's append counter against the decodable record
/// count (admin only).
pub fn audit_coverage<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
) -> Result<CoverageReport, S4Error> {
    let appended = drive.audit_total_records(admin)?;
    let decodable = drive.read_audit_records(admin)?.len() as u64;
    Ok(CoverageReport {
        appended,
        decodable,
    })
}

// ---------------------------------------------------------------------
// Per-object tamper timeline.
// ---------------------------------------------------------------------

/// Where a timeline event was reconstructed from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimelineSource {
    /// The object's retained journal history (what the version became).
    Journal,
    /// The audit log (who asked for what, and whether it was allowed).
    Audit {
        /// Requesting user.
        user: UserId,
        /// Originating client.
        client: ClientId,
        /// Whether the drive executed the request.
        ok: bool,
    },
}

/// One event in an object's merged tamper timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineEvent {
    /// When it happened (drive clock).
    pub time: SimTime,
    /// Journal or audit provenance.
    pub source: TimelineSource,
    /// Human-readable description.
    pub description: String,
}

/// Merges the object's journal version history with every audit record
/// that targeted it, sorted by time — the complete who/what/when view
/// of one object (admin only).
pub fn object_timeline<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    oid: ObjectId,
) -> Result<Vec<TimelineEvent>, S4Error> {
    let mut events = Vec::new();
    let history: Vec<VersionRecord> = drive.version_history(admin, oid)?;
    for v in &history {
        let size = match v.size_after {
            Some(s) => format!(" -> {s} bytes"),
            None => String::new(),
        };
        events.push(TimelineEvent {
            time: v.stamp.time,
            source: TimelineSource::Journal,
            description: format!("version {:?}{size}", v.kind),
        });
    }
    for r in drive.read_audit_records(admin)? {
        if r.object != oid {
            continue;
        }
        events.push(TimelineEvent {
            time: r.time,
            source: TimelineSource::Audit {
                user: r.user,
                client: r.client,
                ok: r.ok,
            },
            description: format!(
                "{:?}({}, {}) by user {} from client {}{}",
                r.op,
                r.arg1,
                r.arg2,
                r.user.0,
                r.client.0,
                if r.ok { "" } else { " DENIED" }
            ),
        });
    }
    events.sort_by_key(|e| e.time);
    Ok(events)
}

// ---------------------------------------------------------------------
// Namespace tree walks and diffs.
// ---------------------------------------------------------------------

/// One entry in a reconstructed namespace tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeNode {
    /// Target object.
    pub oid: ObjectId,
    /// File/dir/symlink, per the directory entry.
    pub kind: EntryKind,
    /// Object size (0 if unreadable).
    pub size: u64,
    /// Last-modified time of the object (ZERO if unreadable).
    pub modified: SimTime,
}

/// Walks the namespace under directory object `root` as of `time`
/// (`None` = now), returning `path -> node` with `/`-joined relative
/// paths. Entries whose target object cannot be read are still listed
/// (with zero size); unreadable subdirectories are not descended into.
pub fn tree_at<D: BlockDev>(
    drive: &S4Drive<D>,
    ctx: &RequestContext,
    root: ObjectId,
    time: Option<SimTime>,
) -> Result<BTreeMap<String, TreeNode>, S4Error> {
    let mut out = BTreeMap::new();
    let mut visited = BTreeSet::new();
    let mut stack = vec![(String::new(), root)];
    while let Some((prefix, dir)) = stack.pop() {
        if !visited.insert(dir.0) {
            continue; // cycle guard
        }
        let entries = match read_dir_object(drive, ctx, dir, time) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for (name, handle, kind) in entries {
            let path = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}/{name}")
            };
            let oid = ObjectId(handle);
            let (size, modified) = match drive.op_getattr(ctx, oid, time) {
                Ok(a) => (a.size, a.modified),
                Err(_) => (0, SimTime::ZERO),
            };
            if kind == EntryKind::Dir {
                stack.push((path.clone(), oid));
            }
            out.insert(
                path,
                TreeNode {
                    oid,
                    kind,
                    size,
                    modified,
                },
            );
        }
    }
    Ok(out)
}

/// Reads and decodes one directory object, optionally at a time.
pub fn read_dir_object<D: BlockDev>(
    drive: &S4Drive<D>,
    ctx: &RequestContext,
    dir: ObjectId,
    time: Option<SimTime>,
) -> Result<Vec<dirblob::DirEntry>, S4Error> {
    let attrs = drive.op_getattr(ctx, dir, time)?;
    let data = if attrs.size == 0 {
        Vec::new()
    } else {
        drive.op_read(ctx, dir, 0, attrs.size, time)?
    };
    dirblob::decode(&data)
}

/// A namespace diff between two instants.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TreeDiff {
    /// Paths present now but not then.
    pub added: Vec<(String, TreeNode)>,
    /// Paths present then but not now.
    pub removed: Vec<(String, TreeNode)>,
    /// Paths present in both whose object was modified (or replaced by
    /// a different object) in between.
    pub modified: Vec<(String, TreeNode)>,
}

impl TreeDiff {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.modified.is_empty()
    }
}

/// Diffs the namespace under `root` between `then` and `now_time`
/// (`None` = now) — "what did the intruder change" at a glance.
pub fn tree_diff<D: BlockDev>(
    drive: &S4Drive<D>,
    ctx: &RequestContext,
    root: ObjectId,
    then: SimTime,
    now_time: Option<SimTime>,
) -> Result<TreeDiff, S4Error> {
    let before = tree_at(drive, ctx, root, Some(then))?;
    let after = tree_at(drive, ctx, root, now_time)?;
    let mut diff = TreeDiff::default();
    for (path, node) in &after {
        match before.get(path) {
            None => diff.added.push((path.clone(), node.clone())),
            Some(old) => {
                if old.oid != node.oid || old.modified != node.modified || old.size != node.size {
                    diff.modified.push((path.clone(), node.clone()));
                }
            }
        }
    }
    for (path, node) in &before {
        if !after.contains_key(path) {
            diff.removed.push((path.clone(), node.clone()));
        }
    }
    Ok(diff)
}

// ---------------------------------------------------------------------
// Flight-recorder readback. The drive persists a trace record per
// dispatched request to a reserved, drive-written-only object (see
// `s4_core::TRACE_OBJECT`); like the audit log it survives crashes and
// host compromise, so the administrator can reconstruct the request
// stream — with per-layer latency attribution — leading up to an
// incident or power loss.
// ---------------------------------------------------------------------

/// One decoded flight-recorder trace: a dispatched request with its
/// per-layer latency attribution (simulated microseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEntry {
    /// Position in the drive's trace stream (contiguous from 0).
    pub seq: u64,
    /// Drive-clock time the request completed.
    pub time: SimTime,
    /// Requesting user.
    pub user: UserId,
    /// Requesting client machine.
    pub client: ClientId,
    /// Operation kind.
    pub op: OpKind,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Primary object touched (0 when not object-specific).
    pub object: ObjectId,
    /// End-to-end dispatch latency.
    pub rpc_us: u64,
    /// Time spent in the metadata journal (including its flushes).
    pub journal_us: u64,
    /// Disk time incurred inside LFS segment writes.
    pub lfs_us: u64,
    /// Raw device service time.
    pub disk_us: u64,
}

/// Reads back the drive's persisted flight-recorder stream, oldest
/// first (admin only). After a crash this returns the prefix of the
/// trace stream that had spilled to stable storage — the last moments
/// before the lights went out.
pub fn flight_log<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
) -> Result<Vec<FlightEntry>, S4Error> {
    drive
        .read_traces(admin)?
        .into_iter()
        .map(|r| {
            Ok(FlightEntry {
                seq: r.seq,
                time: SimTime::from_micros(r.time_us),
                user: UserId(r.user),
                client: ClientId(r.client),
                op: OpKind::from_u8(r.op)?,
                ok: r.ok,
                object: ObjectId(r.object),
                rpc_us: r.rpc_us,
                journal_us: r.journal_us,
                lfs_us: r.lfs_us,
                disk_us: r.disk_us,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4_clock::{SimClock, SimDuration};
    use s4_core::{DriveConfig, Request, Response};
    use s4_simdisk::MemDisk;

    fn drive() -> (S4Drive<MemDisk>, RequestContext, RequestContext) {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(1));
        let d = S4Drive::format(MemDisk::new(400_000), DriveConfig::small_test(), clock).unwrap();
        let admin = RequestContext::admin(ClientId(9), d.config().admin_token);
        let user = RequestContext::user(UserId(1), ClientId(1));
        (d, admin, user)
    }

    fn create(d: &S4Drive<MemDisk>, ctx: &RequestContext) -> ObjectId {
        match d.dispatch(ctx, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("unexpected {other:?}"),
        }
    }

    fn tick(d: &S4Drive<MemDisk>) {
        d.clock().advance(SimDuration::from_millis(50));
    }

    #[test]
    fn object_timeline_merges_journal_and_audit() {
        let (d, admin, user) = drive();
        let oid = create(&d, &user);
        tick(&d);
        d.dispatch(
            &user,
            &Request::Write {
                oid,
                offset: 0,
                data: b"hello".to_vec(),
            },
        )
        .unwrap();
        tick(&d);
        let events = object_timeline(&d, &admin, oid).unwrap();
        assert!(events
            .iter()
            .any(|e| e.source == TimelineSource::Journal && e.description.contains("Create")));
        assert!(events.iter().any(|e| matches!(
            e.source,
            TimelineSource::Audit { user: UserId(1), .. }
        ) && e.description.contains("Write")));
        // Sorted by time.
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn tree_walk_and_diff_see_the_change() {
        let (d, admin, user) = drive();
        // Hand-build a namespace: root -> { etc -> { passwd } }.
        let root = create(&d, &user);
        let etc = create(&d, &user);
        let passwd = create(&d, &user);
        d.op_write(&user, passwd, 0, b"root:x:0:0\n").unwrap();
        let etc_blob = dirblob::encode(&[("passwd".into(), passwd.0, EntryKind::File)]);
        d.op_write(&user, etc, 0, &etc_blob).unwrap();
        let root_blob = dirblob::encode(&[("etc".into(), etc.0, EntryKind::Dir)]);
        d.op_write(&user, root, 0, &root_blob).unwrap();

        tick(&d);
        let t0 = d.now();
        tick(&d);

        // Change passwd and plant a new file.
        d.op_append(&user, passwd, b"evil:x:0:0\n").unwrap();
        let planted = create(&d, &user);
        d.op_write(&user, planted, 0, b"#!/bin/sh").unwrap();
        let etc_blob2 = dirblob::encode(&[
            ("passwd".into(), passwd.0, EntryKind::File),
            ("backdoor.sh".into(), planted.0, EntryKind::File),
        ]);
        d.op_write(&user, etc, 0, &etc_blob2).unwrap();

        let tree_now = tree_at(&d, &admin, root, None).unwrap();
        assert_eq!(tree_now["etc/passwd"].oid, passwd);
        assert!(tree_now.contains_key("etc/backdoor.sh"));

        let diff = tree_diff(&d, &admin, root, t0, None).unwrap();
        let added: Vec<&str> = diff.added.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(added, vec!["etc/backdoor.sh"]);
        assert!(diff
            .modified
            .iter()
            .any(|(p, _)| p == "etc/passwd" || p == "etc"));
        assert!(diff.removed.is_empty());
    }

    #[test]
    fn coverage_counts_records() {
        let (d, admin, user) = drive();
        let oid = create(&d, &user);
        d.dispatch(
            &user,
            &Request::Write {
                oid,
                offset: 0,
                data: b"x".to_vec(),
            },
        )
        .unwrap();
        let cov = audit_coverage(&d, &admin).unwrap();
        assert_eq!(cov.appended, cov.decodable);
        assert_eq!(cov.missing(), 0);
        assert!(cov.appended >= 2);
    }

    #[test]
    fn flight_log_mirrors_the_request_stream() {
        let (d, admin, user) = drive();
        let oid = create(&d, &user);
        tick(&d);
        d.dispatch(
            &user,
            &Request::Write {
                oid,
                offset: 0,
                data: b"hello".to_vec(),
            },
        )
        .unwrap();
        tick(&d);
        // A denied request is traced too, with ok = false.
        let mallory = RequestContext::user(UserId(7), ClientId(7));
        assert!(d
            .dispatch(
                &mallory,
                &Request::Write {
                    oid,
                    offset: 0,
                    data: b"tamper".to_vec(),
                },
            )
            .is_err());

        let log = flight_log(&d, &admin).unwrap();
        assert!(log.len() >= 3);
        for (i, e) in log.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "trace stream must be contiguous");
        }
        let write = log
            .iter()
            .find(|e| e.op == OpKind::Write && e.user == UserId(1))
            .unwrap();
        assert!(write.ok);
        assert_eq!(write.object, oid);
        let denied = log
            .iter()
            .find(|e| e.user == UserId(7))
            .expect("denied request must still be traced");
        assert!(!denied.ok);
        assert_eq!(denied.op, OpKind::Write);

        // Non-admin principals cannot read the flight recorder.
        assert!(matches!(
            flight_log(&d, &user),
            Err(S4Error::AccessDenied)
        ));
    }

    /// The drive raises its alert-object-growth self-alert with a wire
    /// format it encodes by hand (it cannot depend on this crate); pin
    /// the two codecs together by driving a real spill and decoding the
    /// blob with [`Alert::decode`].
    #[test]
    fn growth_self_alert_decodes_with_the_alert_codec() {
        use crate::alert::{Alert, Severity};
        use s4_core::{AuditObserver, AuditRecord, ALERT_OBJECT};

        struct Noisy;
        impl AuditObserver for Noisy {
            fn on_record(&mut self, rec: &AuditRecord) -> Vec<Vec<u8>> {
                // A fat but decodable alert per request so the alert
                // object spills a block quickly (~3 per 4 KiB block).
                vec![Alert {
                    time: rec.time,
                    severity: Severity::Info,
                    rule: "noisy-test-rule".into(),
                    user: rec.user,
                    client: rec.client,
                    object: rec.object,
                    message: "x".repeat(1200),
                }
                .encode()]
            }
        }

        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(1));
        let mut cfg = DriveConfig::small_test();
        cfg.alert_warn_blocks = 1; // warn as soon as one block spills
        let d = S4Drive::format(MemDisk::new(400_000), cfg, clock).unwrap();
        let admin = RequestContext::admin(ClientId(9), d.config().admin_token);
        let user = RequestContext::user(UserId(1), ClientId(1));
        d.register_audit_observer(Box::new(Noisy));

        let oid = create(&d, &user);
        for i in 0..8 {
            tick(&d);
            d.dispatch(
                &user,
                &Request::Write {
                    oid,
                    offset: 0,
                    data: vec![i as u8; 16],
                },
            )
            .unwrap();
        }

        let blobs = d.read_alerts(&admin).unwrap();
        let growth: Vec<Alert> = blobs
            .iter()
            .map(|b| Alert::decode(b).expect("every persisted blob must decode"))
            .filter(|a| a.rule == "alert-object-growth")
            .collect();
        assert_eq!(growth.len(), 1, "warn threshold fires exactly once");
        assert_eq!(growth[0].severity, Severity::Warning);
        assert_eq!(growth[0].object, ALERT_OBJECT);
        assert_eq!(growth[0].user, UserId(0));
        assert!(growth[0].message.contains("warn threshold"));
    }
}
