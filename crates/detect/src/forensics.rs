//! Forensic analysis: damage reports, per-object tamper timelines,
//! namespace tree diffs, and audit-coverage accounting.
//!
//! Everything here runs against the drive interface with the admin
//! context — the administrator's console inside the security perimeter
//! (§3.5–§3.6), after detection has placed an intrusion at time `T`.

use std::collections::{BTreeMap, BTreeSet};

use s4_clock::{SimDuration, SimTime};
use s4_core::{
    ClientId, ObjectId, OpKind, RequestContext, S4Drive, S4Error, UserId, VersionRecord,
};
use s4_simdisk::BlockDev;

use crate::dirblob::{self, EntryKind};

// ---------------------------------------------------------------------
// Damage report (§3.6). Migrated from `s4_fs::tools`, which re-exports
// it for compatibility: diagnosis is drive-level work and must not
// require a file-server mount.
// ---------------------------------------------------------------------

/// The outcome of an audit-log damage analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DamageReport {
    /// Objects the suspect modified (write/append/truncate/setattr/
    /// setacl/delete) in the interval.
    pub modified: BTreeSet<u64>,
    /// Objects the suspect read in the interval.
    pub read: BTreeSet<u64>,
    /// Objects written by *anyone* shortly after the suspect read another
    /// object — possible propagation of tainted data ("diagnosis tools
    /// may be able to establish a link between objects based on the fact
    /// that one was read just before another was written", §3.6).
    pub possibly_tainted: BTreeSet<u64>,
    /// Total suspect requests in the interval.
    pub request_count: u64,
}

/// Builds a [`DamageReport`] for `suspect` over `[from, to]` from the
/// drive's audit log (requires the admin context).
pub fn damage_report<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    suspect: ClientId,
    from: SimTime,
    to: SimTime,
    taint_window: SimDuration,
) -> Result<DamageReport, S4Error> {
    let records = drive.read_audit_records(admin)?;
    let mut report = DamageReport::default();
    let mut last_suspect_read: Option<SimTime> = None;
    for r in &records {
        if r.time < from || r.time > to {
            continue;
        }
        let is_suspect = r.client == suspect;
        if is_suspect {
            report.request_count += 1;
        }
        let modifies = matches!(
            r.op,
            OpKind::Write
                | OpKind::Append
                | OpKind::Truncate
                | OpKind::SetAttr
                | OpKind::SetAcl
                | OpKind::Delete
                | OpKind::Create
        );
        if is_suspect && r.ok {
            if modifies && r.object != ObjectId(0) {
                report.modified.insert(r.object.0);
            }
            if matches!(r.op, OpKind::Read | OpKind::GetAttr) && r.object != ObjectId(0) {
                report.read.insert(r.object.0);
                last_suspect_read = Some(r.time);
            }
        }
        // Crude propagation: any write soon after a suspect read may
        // carry tainted bytes.
        if modifies && r.ok && r.object != ObjectId(0) {
            if let Some(t) = last_suspect_read {
                if r.time.saturating_since(t) <= taint_window {
                    report.possibly_tainted.insert(r.object.0);
                }
            }
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------
// Audit coverage.
// ---------------------------------------------------------------------

/// Accounting of audit-log completeness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoverageReport {
    /// Records the drive has ever appended (its monotonic counter).
    pub appended: u64,
    /// Records currently decodable from the log (blocks + tail).
    pub decodable: u64,
}

impl CoverageReport {
    /// Records appended but no longer decodable — typically the
    /// volatile tail lost in a crash. Nonzero means the record stream
    /// has a gap and conclusions drawn from it are lower bounds.
    pub fn missing(&self) -> u64 {
        self.appended.saturating_sub(self.decodable)
    }
}

/// Compares the drive's append counter against the decodable record
/// count (admin only).
pub fn audit_coverage<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
) -> Result<CoverageReport, S4Error> {
    let appended = drive.audit_total_records(admin)?;
    let decodable = drive.read_audit_records(admin)?.len() as u64;
    Ok(CoverageReport {
        appended,
        decodable,
    })
}

// ---------------------------------------------------------------------
// Per-object tamper timeline.
// ---------------------------------------------------------------------

/// Where a timeline event was reconstructed from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimelineSource {
    /// The object's retained journal history (what the version became).
    Journal,
    /// The audit log (who asked for what, and whether it was allowed).
    Audit {
        /// Requesting user.
        user: UserId,
        /// Originating client.
        client: ClientId,
        /// Whether the drive executed the request.
        ok: bool,
    },
}

/// One event in an object's merged tamper timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineEvent {
    /// When it happened (drive clock).
    pub time: SimTime,
    /// Journal or audit provenance.
    pub source: TimelineSource,
    /// Human-readable description.
    pub description: String,
}

/// Merges the object's journal version history with every audit record
/// that targeted it, sorted by time — the complete who/what/when view
/// of one object (admin only).
pub fn object_timeline<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
    oid: ObjectId,
) -> Result<Vec<TimelineEvent>, S4Error> {
    let mut events = Vec::new();
    let history: Vec<VersionRecord> = drive.version_history(admin, oid)?;
    for v in &history {
        let size = match v.size_after {
            Some(s) => format!(" -> {s} bytes"),
            None => String::new(),
        };
        events.push(TimelineEvent {
            time: v.stamp.time,
            source: TimelineSource::Journal,
            description: format!("version {:?}{size}", v.kind),
        });
    }
    for r in drive.read_audit_records(admin)? {
        if r.object != oid {
            continue;
        }
        events.push(TimelineEvent {
            time: r.time,
            source: TimelineSource::Audit {
                user: r.user,
                client: r.client,
                ok: r.ok,
            },
            description: format!(
                "{:?}({}, {}) by user {} from client {}{}",
                r.op,
                r.arg1,
                r.arg2,
                r.user.0,
                r.client.0,
                if r.ok { "" } else { " DENIED" }
            ),
        });
    }
    events.sort_by_key(|e| e.time);
    Ok(events)
}

// ---------------------------------------------------------------------
// Namespace tree walks and diffs.
// ---------------------------------------------------------------------

/// One entry in a reconstructed namespace tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeNode {
    /// Target object.
    pub oid: ObjectId,
    /// File/dir/symlink, per the directory entry.
    pub kind: EntryKind,
    /// Object size (0 if unreadable).
    pub size: u64,
    /// Last-modified time of the object (ZERO if unreadable).
    pub modified: SimTime,
}

/// Walks the namespace under directory object `root` as of `time`
/// (`None` = now), returning `path -> node` with `/`-joined relative
/// paths. Entries whose target object cannot be read are still listed
/// (with zero size); unreadable subdirectories are not descended into.
pub fn tree_at<D: BlockDev>(
    drive: &S4Drive<D>,
    ctx: &RequestContext,
    root: ObjectId,
    time: Option<SimTime>,
) -> Result<BTreeMap<String, TreeNode>, S4Error> {
    let mut out = BTreeMap::new();
    let mut visited = BTreeSet::new();
    let mut stack = vec![(String::new(), root)];
    while let Some((prefix, dir)) = stack.pop() {
        if !visited.insert(dir.0) {
            continue; // cycle guard
        }
        let entries = match read_dir_object(drive, ctx, dir, time) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for (name, handle, kind) in entries {
            let path = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}/{name}")
            };
            let oid = ObjectId(handle);
            let (size, modified) = match drive.op_getattr(ctx, oid, time) {
                Ok(a) => (a.size, a.modified),
                Err(_) => (0, SimTime::ZERO),
            };
            if kind == EntryKind::Dir {
                stack.push((path.clone(), oid));
            }
            out.insert(
                path,
                TreeNode {
                    oid,
                    kind,
                    size,
                    modified,
                },
            );
        }
    }
    Ok(out)
}

/// Reads and decodes one directory object, optionally at a time.
pub fn read_dir_object<D: BlockDev>(
    drive: &S4Drive<D>,
    ctx: &RequestContext,
    dir: ObjectId,
    time: Option<SimTime>,
) -> Result<Vec<dirblob::DirEntry>, S4Error> {
    let attrs = drive.op_getattr(ctx, dir, time)?;
    let data = if attrs.size == 0 {
        Vec::new()
    } else {
        drive.op_read(ctx, dir, 0, attrs.size, time)?
    };
    dirblob::decode(&data)
}

/// A namespace diff between two instants.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TreeDiff {
    /// Paths present now but not then.
    pub added: Vec<(String, TreeNode)>,
    /// Paths present then but not now.
    pub removed: Vec<(String, TreeNode)>,
    /// Paths present in both whose object was modified (or replaced by
    /// a different object) in between.
    pub modified: Vec<(String, TreeNode)>,
}

impl TreeDiff {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.modified.is_empty()
    }
}

/// Diffs the namespace under `root` between `then` and `now_time`
/// (`None` = now) — "what did the intruder change" at a glance.
pub fn tree_diff<D: BlockDev>(
    drive: &S4Drive<D>,
    ctx: &RequestContext,
    root: ObjectId,
    then: SimTime,
    now_time: Option<SimTime>,
) -> Result<TreeDiff, S4Error> {
    let before = tree_at(drive, ctx, root, Some(then))?;
    let after = tree_at(drive, ctx, root, now_time)?;
    let mut diff = TreeDiff::default();
    for (path, node) in &after {
        match before.get(path) {
            None => diff.added.push((path.clone(), node.clone())),
            Some(old) => {
                if old.oid != node.oid || old.modified != node.modified || old.size != node.size {
                    diff.modified.push((path.clone(), node.clone()));
                }
            }
        }
    }
    for (path, node) in &before {
        if !after.contains_key(path) {
            diff.removed.push((path.clone(), node.clone()));
        }
    }
    Ok(diff)
}

// ---------------------------------------------------------------------
// Flight-recorder readback. The drive persists a trace record per
// dispatched request to a reserved, drive-written-only object (see
// `s4_core::TRACE_OBJECT`); like the audit log it survives crashes and
// host compromise, so the administrator can reconstruct the request
// stream — with per-layer latency attribution — leading up to an
// incident or power loss.
// ---------------------------------------------------------------------

/// One decoded flight-recorder trace: a dispatched request with its
/// per-layer latency attribution (simulated microseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEntry {
    /// Position in the drive's trace stream (contiguous from 0).
    pub seq: u64,
    /// Drive-clock time the request completed.
    pub time: SimTime,
    /// Requesting user.
    pub user: UserId,
    /// Requesting client machine.
    pub client: ClientId,
    /// Operation kind.
    pub op: OpKind,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Primary object touched (0 when not object-specific).
    pub object: ObjectId,
    /// End-to-end dispatch latency.
    pub rpc_us: u64,
    /// Time spent in the metadata journal (including its flushes).
    pub journal_us: u64,
    /// Disk time incurred inside LFS segment writes.
    pub lfs_us: u64,
    /// Raw device service time.
    pub disk_us: u64,
    /// Causal trace id this record belongs to (0 = untraced v1 record).
    pub trace_id: u64,
    /// Dense shard index the traced request entered the array at.
    pub origin: u8,
    /// Dispatch phase (one of `s4_core`'s `PHASE_*` constants).
    pub phase: u8,
}

/// Reads back the drive's persisted flight-recorder stream, oldest
/// first (admin only). After a crash this returns the prefix of the
/// trace stream that had spilled to stable storage — the last moments
/// before the lights went out.
pub fn flight_log<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
) -> Result<Vec<FlightEntry>, S4Error> {
    drive
        .read_traces(admin)?
        .into_iter()
        .map(|r| {
            Ok(FlightEntry {
                seq: r.seq,
                time: SimTime::from_micros(r.time_us),
                user: UserId(r.user),
                client: ClientId(r.client),
                op: OpKind::from_u8(r.op)?,
                ok: r.ok,
                object: ObjectId(r.object),
                rpc_us: r.rpc_us,
                journal_us: r.journal_us,
                lfs_us: r.lfs_us,
                disk_us: r.disk_us,
                trace_id: r.trace_id,
                origin: r.origin,
                phase: r.phase,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Cross-shard trace assembly (DESIGN §6j). Each member drive persists
// v2 trace records carrying a causal trace id; joining every member's
// stream on that id reconstructs the whole distributed request — which
// shards it touched, which mirror members executed it, and how long
// each layer took on each of them — from evidence no single compromised
// host could have forged or scrubbed.
// ---------------------------------------------------------------------

/// One span of an assembled trace: a trace record read back from a
/// specific member drive's stream. The (shard, member) provenance comes
/// from *which stream vouches for it*, not from the record bytes — a
/// drive can only write its own stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Dense shard index whose member stream held the record.
    pub shard: usize,
    /// Mirror member index within the shard.
    pub member: usize,
    /// The record itself.
    pub entry: FlightEntry,
}

/// One distributed request, re-joined from every member stream that
/// recorded a span of it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceTree {
    /// The causal trace id the spans joined on.
    pub trace_id: u64,
    /// Entry shard annotation carried by the spans.
    pub origin: u8,
    /// Every span, ordered causally: by phase (client, apply, prepare,
    /// note, decide, catchup), then shard, then member, then stream
    /// position.
    pub spans: Vec<TraceSpan>,
}

impl TraceTree {
    /// Earliest span completion time (drive clock).
    pub fn start(&self) -> SimTime {
        self.spans.iter().map(|s| s.entry.time).min().unwrap_or(SimTime::ZERO)
    }

    /// Slowest single span's end-to-end latency — the trace's critical
    /// path lower bound (spans on distinct shards overlap).
    pub fn max_rpc_us(&self) -> u64 {
        self.spans.iter().map(|s| s.entry.rpc_us).max().unwrap_or(0)
    }

    /// Distinct dense shard indices the trace touched.
    pub fn shards(&self) -> BTreeSet<usize> {
        self.spans.iter().map(|s| s.shard).collect()
    }

    /// Distinct `(shard, member)` pairs that vouch for a span.
    pub fn members(&self) -> BTreeSet<(usize, usize)> {
        self.spans.iter().map(|s| (s.shard, s.member)).collect()
    }
}

/// Causal rank of a phase byte: the order spans are listed within a
/// tree. Unknown phases sort last, after every known one.
fn phase_rank(phase: u8) -> u8 {
    use s4_core::{PHASE_APPLY, PHASE_CATCHUP, PHASE_CLIENT, PHASE_DECIDE, PHASE_NOTE, PHASE_PREPARE};
    match phase {
        PHASE_CLIENT => 0,
        PHASE_APPLY => 1,
        PHASE_PREPARE => 2,
        PHASE_NOTE => 3,
        PHASE_DECIDE => 4,
        PHASE_CATCHUP => 5,
        _ => u8::MAX,
    }
}

/// Joins per-member trace streams on trace id: `streams` pairs each
/// `(shard, member)` with that member drive's flight log (see
/// [`flight_log`]). Untraced (v1) records are skipped. Returns one
/// [`TraceTree`] per distinct id, ordered by first span time.
pub fn assemble_traces(streams: &[(usize, usize, Vec<FlightEntry>)]) -> Vec<TraceTree> {
    let mut by_id: BTreeMap<u64, Vec<TraceSpan>> = BTreeMap::new();
    for (shard, member, entries) in streams {
        for e in entries {
            if e.trace_id == 0 {
                continue;
            }
            by_id.entry(e.trace_id).or_default().push(TraceSpan {
                shard: *shard,
                member: *member,
                entry: e.clone(),
            });
        }
    }
    let mut trees: Vec<TraceTree> = by_id
        .into_iter()
        .map(|(trace_id, mut spans)| {
            spans.sort_by_key(|s| (phase_rank(s.entry.phase), s.shard, s.member, s.entry.seq));
            let origin = spans[0].entry.origin;
            TraceTree {
                trace_id,
                origin,
                spans,
            }
        })
        .collect();
    trees.sort_by_key(|t| (t.start(), t.trace_id));
    trees
}

/// The `k` slowest assembled traces by [`TraceTree::max_rpc_us`],
/// slowest first — the cold-mount answer to "which requests hurt",
/// computed entirely from the crash-surviving streams.
pub fn slowest_traces(trees: &[TraceTree], k: usize) -> Vec<&TraceTree> {
    let mut refs: Vec<&TraceTree> = trees.iter().collect();
    refs.sort_by_key(|t| (std::cmp::Reverse(t.max_rpc_us()), t.trace_id));
    refs.truncate(k);
    refs
}

/// Renders one assembled trace as a causal tree, one span per line,
/// grouped by phase and indented under per-shard headers:
///
/// ```text
/// trace 0x5f3a... origin shard 1: 3 shards, 6 members, max rpc 412us
///   phase apply
///     shard 1
///       member 0: Write obj:9 ok rpc=412us journal=80us lfs=64us disk=200us
/// ```
pub fn render_trace_tree(tree: &TraceTree) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {:#018x} origin shard {}: {} shard(s), {} member stream(s), max rpc {}us",
        tree.trace_id,
        tree.origin,
        tree.shards().len(),
        tree.members().len(),
        tree.max_rpc_us(),
    );
    let mut last_phase: Option<u8> = None;
    let mut last_shard: Option<usize> = None;
    for s in &tree.spans {
        if last_phase != Some(s.entry.phase) {
            let _ = writeln!(
                out,
                "  phase {}",
                s4_core::TraceCtx::phase_name(s.entry.phase)
            );
            last_phase = Some(s.entry.phase);
            last_shard = None;
        }
        if last_shard != Some(s.shard) {
            let _ = writeln!(out, "    shard {}", s.shard);
            last_shard = Some(s.shard);
        }
        let _ = writeln!(
            out,
            "      member {}: {:?} {} {} rpc={}us journal={}us lfs={}us disk={}us @{}us",
            s.member,
            s.entry.op,
            s.entry.object,
            if s.entry.ok { "ok" } else { "FAILED" },
            s.entry.rpc_us,
            s.entry.journal_us,
            s.entry.lfs_us,
            s.entry.disk_us,
            s.entry.time.as_micros(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4_clock::{SimClock, SimDuration};
    use s4_core::{DriveConfig, Request, Response};
    use s4_simdisk::MemDisk;

    fn drive() -> (S4Drive<MemDisk>, RequestContext, RequestContext) {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(1));
        let d = S4Drive::format(MemDisk::new(400_000), DriveConfig::small_test(), clock).unwrap();
        let admin = RequestContext::admin(ClientId(9), d.config().admin_token);
        let user = RequestContext::user(UserId(1), ClientId(1));
        (d, admin, user)
    }

    fn create(d: &S4Drive<MemDisk>, ctx: &RequestContext) -> ObjectId {
        match d.dispatch(ctx, &Request::Create).unwrap() {
            Response::Created(oid) => oid,
            other => panic!("unexpected {other:?}"),
        }
    }

    fn tick(d: &S4Drive<MemDisk>) {
        d.clock().advance(SimDuration::from_millis(50));
    }

    #[test]
    fn object_timeline_merges_journal_and_audit() {
        let (d, admin, user) = drive();
        let oid = create(&d, &user);
        tick(&d);
        d.dispatch(
            &user,
            &Request::Write {
                oid,
                offset: 0,
                data: b"hello".to_vec(),
            },
        )
        .unwrap();
        tick(&d);
        let events = object_timeline(&d, &admin, oid).unwrap();
        assert!(events
            .iter()
            .any(|e| e.source == TimelineSource::Journal && e.description.contains("Create")));
        assert!(events.iter().any(|e| matches!(
            e.source,
            TimelineSource::Audit { user: UserId(1), .. }
        ) && e.description.contains("Write")));
        // Sorted by time.
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn tree_walk_and_diff_see_the_change() {
        let (d, admin, user) = drive();
        // Hand-build a namespace: root -> { etc -> { passwd } }.
        let root = create(&d, &user);
        let etc = create(&d, &user);
        let passwd = create(&d, &user);
        d.op_write(&user, passwd, 0, b"root:x:0:0\n").unwrap();
        let etc_blob = dirblob::encode(&[("passwd".into(), passwd.0, EntryKind::File)]);
        d.op_write(&user, etc, 0, &etc_blob).unwrap();
        let root_blob = dirblob::encode(&[("etc".into(), etc.0, EntryKind::Dir)]);
        d.op_write(&user, root, 0, &root_blob).unwrap();

        tick(&d);
        let t0 = d.now();
        tick(&d);

        // Change passwd and plant a new file.
        d.op_append(&user, passwd, b"evil:x:0:0\n").unwrap();
        let planted = create(&d, &user);
        d.op_write(&user, planted, 0, b"#!/bin/sh").unwrap();
        let etc_blob2 = dirblob::encode(&[
            ("passwd".into(), passwd.0, EntryKind::File),
            ("backdoor.sh".into(), planted.0, EntryKind::File),
        ]);
        d.op_write(&user, etc, 0, &etc_blob2).unwrap();

        let tree_now = tree_at(&d, &admin, root, None).unwrap();
        assert_eq!(tree_now["etc/passwd"].oid, passwd);
        assert!(tree_now.contains_key("etc/backdoor.sh"));

        let diff = tree_diff(&d, &admin, root, t0, None).unwrap();
        let added: Vec<&str> = diff.added.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(added, vec!["etc/backdoor.sh"]);
        assert!(diff
            .modified
            .iter()
            .any(|(p, _)| p == "etc/passwd" || p == "etc"));
        assert!(diff.removed.is_empty());
    }

    #[test]
    fn coverage_counts_records() {
        let (d, admin, user) = drive();
        let oid = create(&d, &user);
        d.dispatch(
            &user,
            &Request::Write {
                oid,
                offset: 0,
                data: b"x".to_vec(),
            },
        )
        .unwrap();
        let cov = audit_coverage(&d, &admin).unwrap();
        assert_eq!(cov.appended, cov.decodable);
        assert_eq!(cov.missing(), 0);
        assert!(cov.appended >= 2);
    }

    #[test]
    fn flight_log_mirrors_the_request_stream() {
        let (d, admin, user) = drive();
        let oid = create(&d, &user);
        tick(&d);
        d.dispatch(
            &user,
            &Request::Write {
                oid,
                offset: 0,
                data: b"hello".to_vec(),
            },
        )
        .unwrap();
        tick(&d);
        // A denied request is traced too, with ok = false.
        let mallory = RequestContext::user(UserId(7), ClientId(7));
        assert!(d
            .dispatch(
                &mallory,
                &Request::Write {
                    oid,
                    offset: 0,
                    data: b"tamper".to_vec(),
                },
            )
            .is_err());

        let log = flight_log(&d, &admin).unwrap();
        assert!(log.len() >= 3);
        for (i, e) in log.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "trace stream must be contiguous");
        }
        let write = log
            .iter()
            .find(|e| e.op == OpKind::Write && e.user == UserId(1))
            .unwrap();
        assert!(write.ok);
        assert_eq!(write.object, oid);
        let denied = log
            .iter()
            .find(|e| e.user == UserId(7))
            .expect("denied request must still be traced");
        assert!(!denied.ok);
        assert_eq!(denied.op, OpKind::Write);

        // Non-admin principals cannot read the flight recorder.
        assert!(matches!(
            flight_log(&d, &user),
            Err(S4Error::AccessDenied)
        ));
    }

    #[test]
    fn trace_assembly_joins_member_streams_on_id() {
        use s4_core::{PHASE_APPLY, PHASE_DECIDE, PHASE_PREPARE};
        let entry = |seq: u64, id: u64, phase: u8, rpc: u64| FlightEntry {
            seq,
            time: SimTime::from_micros(1_000 + seq),
            user: UserId(1),
            client: ClientId(1),
            op: OpKind::Write,
            ok: true,
            object: ObjectId(9),
            rpc_us: rpc,
            journal_us: 0,
            lfs_us: 0,
            disk_us: 0,
            trace_id: id,
            origin: 1,
            phase,
        };
        // Two shards, two members each; trace 0x42 touches both shards
        // (prepare + decide), trace 0x43 only shard 0; untraced records
        // are ignored.
        let streams = vec![
            (0usize, 0usize, vec![entry(0, 0, PHASE_APPLY, 5), entry(1, 0x42, PHASE_PREPARE, 40), entry(2, 0x42, PHASE_DECIDE, 7), entry(3, 0x43, PHASE_APPLY, 90)]),
            (0, 1, vec![entry(1, 0x42, PHASE_PREPARE, 40), entry(2, 0x42, PHASE_DECIDE, 7), entry(3, 0x43, PHASE_APPLY, 90)]),
            (1, 0, vec![entry(0, 0x42, PHASE_PREPARE, 55), entry(1, 0x42, PHASE_DECIDE, 6)]),
            (1, 1, vec![entry(0, 0x42, PHASE_PREPARE, 55), entry(1, 0x42, PHASE_DECIDE, 6)]),
        ];
        let trees = assemble_traces(&streams);
        assert_eq!(trees.len(), 2);
        let t42 = trees.iter().find(|t| t.trace_id == 0x42).unwrap();
        assert_eq!(t42.shards().len(), 2);
        assert_eq!(t42.members().len(), 4);
        assert_eq!(t42.max_rpc_us(), 55);
        assert_eq!(t42.origin, 1);
        // Causal order: every prepare span precedes every decide span.
        let last_prepare = t42.spans.iter().rposition(|s| s.entry.phase == PHASE_PREPARE);
        let first_decide = t42.spans.iter().position(|s| s.entry.phase == PHASE_DECIDE);
        assert!(last_prepare.unwrap() < first_decide.unwrap());

        let slow = slowest_traces(&trees, 1);
        assert_eq!(slow[0].trace_id, 0x43);
        let text = render_trace_tree(t42);
        assert!(text.contains("phase prepare"), "{text}");
        assert!(text.contains("phase decide"), "{text}");
        assert!(text.contains("shard 1"), "{text}");
        assert!(text.contains("member 1"), "{text}");
    }

    /// The drive raises its alert-object-growth self-alert with a wire
    /// format it encodes by hand (it cannot depend on this crate); pin
    /// the two codecs together by driving a real spill and decoding the
    /// blob with [`Alert::decode`].
    #[test]
    fn growth_self_alert_decodes_with_the_alert_codec() {
        use crate::alert::{Alert, Severity};
        use s4_core::{AuditObserver, AuditRecord, ALERT_OBJECT};

        struct Noisy;
        impl AuditObserver for Noisy {
            fn on_record(&mut self, rec: &AuditRecord) -> Vec<Vec<u8>> {
                // A fat but decodable alert per request so the alert
                // object spills a block quickly (~3 per 4 KiB block).
                vec![Alert {
                    time: rec.time,
                    severity: Severity::Info,
                    rule: "noisy-test-rule".into(),
                    user: rec.user,
                    client: rec.client,
                    object: rec.object,
                    message: "x".repeat(1200),
                }
                .encode()]
            }
        }

        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(1));
        let mut cfg = DriveConfig::small_test();
        cfg.alert_warn_blocks = 1; // warn as soon as one block spills
        let d = S4Drive::format(MemDisk::new(400_000), cfg, clock).unwrap();
        let admin = RequestContext::admin(ClientId(9), d.config().admin_token);
        let user = RequestContext::user(UserId(1), ClientId(1));
        d.register_audit_observer(Box::new(Noisy));

        let oid = create(&d, &user);
        for i in 0..8 {
            tick(&d);
            d.dispatch(
                &user,
                &Request::Write {
                    oid,
                    offset: 0,
                    data: vec![i as u8; 16],
                },
            )
            .unwrap();
        }

        let blobs = d.read_alerts(&admin).unwrap();
        let growth: Vec<Alert> = blobs
            .iter()
            .map(|b| Alert::decode(b).expect("every persisted blob must decode"))
            .filter(|a| a.rule == "alert-object-growth")
            .collect();
        assert_eq!(growth.len(), 1, "warn threshold fires exactly once");
        assert_eq!(growth[0].severity, Severity::Warning);
        assert_eq!(growth[0].object, ALERT_OBJECT);
        assert_eq!(growth[0].user, UserId(0));
        assert!(growth[0].message.contains("warn threshold"));
    }
}
