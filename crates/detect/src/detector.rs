//! The detector pipeline: pluggable rules, offline scans, and the
//! online monitor that runs inside the drive.

use s4_core::{AlertCursor, AuditObserver, AuditRecord, RequestContext, S4Drive, S4Error};
use s4_simdisk::BlockDev;

use crate::alert::Alert;
use crate::rules;

/// A streaming intrusion-detection rule over the audit record stream.
///
/// Detectors are fed records in append order and push any findings into
/// the `sink`; they carry their own state, so one instance analyses one
/// stream (offline scan or online drive feed, not both).
pub trait Detector: Send {
    /// Stable rule name (also stamped on raised alerts).
    fn name(&self) -> &'static str;
    /// Consumes one record, pushing zero or more alerts.
    fn observe(&mut self, rec: &AuditRecord, sink: &mut Vec<Alert>);
}

/// An ordered collection of detectors fed as one unit.
pub struct DetectorSet {
    detectors: Vec<Box<dyn Detector>>,
}

impl DetectorSet {
    /// An empty set; add rules with [`push`](Self::push).
    pub fn empty() -> Self {
        DetectorSet {
            detectors: Vec::new(),
        }
    }

    /// The built-in rules at their default thresholds.
    pub fn standard() -> Self {
        let mut set = DetectorSet::empty();
        set.push(Box::new(rules::AppendOnlyViolation::new()));
        set.push(Box::new(rules::ForeignClient::new()));
        set.push(Box::new(rules::RansomStorm::new()));
        set.push(Box::new(rules::WriteRateSpike::new()));
        set.push(Box::new(rules::AclTamperBurst::new()));
        set.push(Box::new(rules::AuditGapCheck::new()));
        set
    }

    /// Adds a rule to the set.
    pub fn push(&mut self, d: Box<dyn Detector>) {
        self.detectors.push(d);
    }

    /// Names of the registered rules, in feed order.
    pub fn names(&self) -> Vec<&'static str> {
        self.detectors.iter().map(|d| d.name()).collect()
    }

    /// Feeds one record to every rule.
    pub fn observe(&mut self, rec: &AuditRecord, sink: &mut Vec<Alert>) {
        for d in &mut self.detectors {
            d.observe(rec, sink);
        }
    }

    /// Runs the whole set over a record slice, returning every alert.
    pub fn scan(&mut self, records: &[AuditRecord]) -> Vec<Alert> {
        let mut sink = Vec::new();
        for r in records {
            self.observe(r, &mut sink);
        }
        sink
    }
}

/// Adapts a [`DetectorSet`] to the drive's [`AuditObserver`] hook:
/// every audited request is analysed as it happens and any alerts are
/// returned encoded, which the drive persists to the tamper-proof
/// alert object.
pub struct OnlineMonitor {
    set: DetectorSet,
}

impl OnlineMonitor {
    /// Monitor running the standard rules.
    pub fn standard() -> Self {
        OnlineMonitor {
            set: DetectorSet::standard(),
        }
    }

    /// Monitor running a custom rule set.
    pub fn with_set(set: DetectorSet) -> Self {
        OnlineMonitor { set }
    }
}

impl AuditObserver for OnlineMonitor {
    fn on_record(&mut self, rec: &AuditRecord) -> Vec<Vec<u8>> {
        let mut sink = Vec::new();
        self.set.observe(rec, &mut sink);
        sink.iter().map(Alert::encode).collect()
    }
}

/// Registers the standard rule set as an online monitor on `drive`.
/// From this point every audited request is analysed inside the
/// security perimeter and alerts land in the drive's alert object.
pub fn install_standard_monitor<D: BlockDev>(drive: &S4Drive<D>) {
    drive.register_audit_observer(Box::new(OnlineMonitor::standard()));
}

/// Offline sweep: decodes the full audit log (admin only) and runs the
/// standard rules over it. This is the "analyse the log after the fact"
/// path; it sees the same records the online monitor would have.
pub fn scan_audit<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
) -> Result<Vec<Alert>, S4Error> {
    let records = drive.read_audit_records(admin)?;
    Ok(DetectorSet::standard().scan(&records))
}

/// Decodes every alert the drive has persisted (admin only), oldest
/// first. Blobs that fail to decode are skipped rather than failing the
/// whole read — the alert object must stay readable even if a future
/// version wrote records this build does not understand.
pub fn read_alerts<D: BlockDev>(
    drive: &S4Drive<D>,
    admin: &RequestContext,
) -> Result<Vec<Alert>, S4Error> {
    let blobs = drive.read_alerts(admin)?;
    Ok(blobs.iter().filter_map(|b| Alert::decode(b).ok()).collect())
}

/// Incremental alert reader. Where [`read_alerts`] rescans every alert
/// block on each call, a poller carries an [`AlertCursor`] so each
/// [`poll`](AlertPoller::poll) decodes only the blobs appended since the
/// previous one — the natural shape for a monitoring loop that watches a
/// long-lived drive. Undecodable blobs are skipped, as in
/// [`read_alerts`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AlertPoller {
    cursor: AlertCursor,
}

impl AlertPoller {
    /// A poller positioned at the start of the alert object.
    pub fn new() -> Self {
        AlertPoller::default()
    }

    /// Decodes the alerts appended since the previous poll (admin only),
    /// oldest first, and advances the cursor.
    pub fn poll<D: BlockDev>(
        &mut self,
        drive: &S4Drive<D>,
        admin: &RequestContext,
    ) -> Result<Vec<Alert>, S4Error> {
        let blobs = drive.read_alerts_from(admin, &mut self.cursor)?;
        Ok(blobs.iter().filter_map(|b| Alert::decode(b).ok()).collect())
    }

    /// The poller's current resume point.
    pub fn cursor(&self) -> AlertCursor {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4_clock::{SimClock, SimDuration};
    use s4_core::{ClientId, DriveConfig, UserId};
    use s4_simdisk::MemDisk;

    fn drive() -> S4Drive<MemDisk> {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(1));
        S4Drive::format(MemDisk::new(400_000), DriveConfig::small_test(), clock).unwrap()
    }

    #[test]
    fn standard_set_lists_all_rules() {
        let names = DetectorSet::standard().names();
        for n in [
            "append-only-violation",
            "foreign-client",
            "ransom-storm",
            "write-rate-spike",
            "acl-tamper-burst",
            "audit-gap",
        ] {
            assert!(names.contains(&n), "missing rule {n}");
        }
    }

    #[test]
    fn online_monitor_persists_alerts_in_the_drive() {
        use s4_core::Request;
        let drive = drive();
        install_standard_monitor(&drive);
        let admin = RequestContext::admin(ClientId(9), drive.config().admin_token);
        let user = RequestContext::user(UserId(1), ClientId(1));

        // Build an append-only object through the audited dispatch path,
        // then scrub it.
        let oid = match drive.dispatch(&user, &Request::Create).unwrap() {
            s4_core::Response::Created(oid) => oid,
            other => panic!("unexpected {other:?}"),
        };
        for _ in 0..3 {
            drive
                .dispatch(
                    &user,
                    &Request::Append {
                        oid,
                        data: b"10:02 login ok\n".to_vec(),
                    },
                )
                .unwrap();
        }
        assert!(read_alerts(&drive, &admin).unwrap().is_empty());
        drive
            .dispatch(&user, &Request::Truncate { oid, len: 0 })
            .unwrap();

        let alerts = read_alerts(&drive, &admin).unwrap();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "append-only-violation");
        assert_eq!(alerts[0].object, oid);
        // And the offline scan over the same audit log agrees.
        let offline = scan_audit(&drive, &admin).unwrap();
        assert_eq!(offline.len(), 1);
        assert_eq!(offline[0].rule, alerts[0].rule);
        assert_eq!(offline[0].object, alerts[0].object);
    }

    #[test]
    fn alert_poller_is_incremental() {
        use s4_core::Request;
        let drive = drive();
        install_standard_monitor(&drive);
        let admin = RequestContext::admin(ClientId(9), drive.config().admin_token);
        let user = RequestContext::user(UserId(1), ClientId(1));
        let mut poller = AlertPoller::new();
        assert!(poller.poll(&drive, &admin).unwrap().is_empty());

        // Raise one alert: truncate an object that looked append-only.
        let oid = match drive.dispatch(&user, &Request::Create).unwrap() {
            s4_core::Response::Created(oid) => oid,
            other => panic!("unexpected {other:?}"),
        };
        for _ in 0..3 {
            drive
                .dispatch(
                    &user,
                    &Request::Append {
                        oid,
                        data: b"10:02 login ok\n".to_vec(),
                    },
                )
                .unwrap();
        }
        drive
            .dispatch(&user, &Request::Truncate { oid, len: 0 })
            .unwrap();

        let first = poller.poll(&drive, &admin).unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].rule, "append-only-violation");
        // Nothing new: the next poll is empty instead of rereading.
        assert!(poller.poll(&drive, &admin).unwrap().is_empty());

        // A second violation (fresh object: the rule alerts once per
        // object) yields exactly the delta.
        let oid2 = match drive.dispatch(&user, &Request::Create).unwrap() {
            s4_core::Response::Created(oid) => oid,
            other => panic!("unexpected {other:?}"),
        };
        for _ in 0..3 {
            drive
                .dispatch(
                    &user,
                    &Request::Append {
                        oid: oid2,
                        data: b"x".to_vec(),
                    },
                )
                .unwrap();
        }
        drive
            .dispatch(&user, &Request::Truncate { oid: oid2, len: 0 })
            .unwrap();
        let second = poller.poll(&drive, &admin).unwrap();
        assert_eq!(second.len(), 1);

        // Cumulative polls match the full rescan.
        let full = read_alerts(&drive, &admin).unwrap();
        assert_eq!(full.len(), first.len() + second.len());
    }

    #[test]
    fn alert_poller_survives_spill_to_block() {
        // Force the pending tail to spill into flushed blocks and check
        // the cursor's skip-count hand-off: nothing is dropped, nothing
        // is repeated.
        use s4_core::Request;
        let drive = drive();
        install_standard_monitor(&drive);
        let admin = RequestContext::admin(ClientId(9), drive.config().admin_token);
        let user = RequestContext::user(UserId(1), ClientId(1));
        let mut poller = AlertPoller::new();
        let mut seen = 0usize;
        for round in 0..40 {
            // Fresh object each round: the append-only rule alerts once
            // per object.
            let oid = match drive.dispatch(&user, &Request::Create).unwrap() {
                s4_core::Response::Created(oid) => oid,
                other => panic!("unexpected {other:?}"),
            };
            for _ in 0..3 {
                drive
                    .dispatch(
                        &user,
                        &Request::Append {
                            oid,
                            data: vec![b'a'; 64],
                        },
                    )
                    .unwrap();
            }
            drive
                .dispatch(&user, &Request::Truncate { oid, len: 0 })
                .unwrap();
            seen += poller.poll(&drive, &admin).unwrap().len();
            if round == 20 {
                // Mid-stream sync exercises the anchor-persist path too.
                drive.op_sync(&user).unwrap();
            }
        }
        let full = read_alerts(&drive, &admin).unwrap();
        assert!(!full.is_empty());
        assert_eq!(seen, full.len(), "incremental polls must equal rescan");
    }

    #[test]
    fn alert_object_is_not_client_writable() {
        let drive = drive();
        let user = RequestContext::user(UserId(1), ClientId(1));
        let err = drive
            .op_write(&user, s4_core::ALERT_OBJECT, 0, b"forged")
            .unwrap_err();
        assert_eq!(err, S4Error::AccessDenied);
        // Reading alerts requires the admin token.
        assert!(drive.read_alerts(&user).is_err());
    }
}
