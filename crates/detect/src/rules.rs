//! Built-in detection rules.
//!
//! Each rule is a streaming [`Detector`](crate::Detector) over the
//! audit stream, tuned so a heavy-but-honest workload (the PostMark
//! harness: thousands of create/append/delete transactions from one
//! client) raises **zero** alerts, while the §2 intrusion shapes fire
//! reliably:
//!
//! | rule | intrusion shape |
//! |------|-----------------|
//! | [`AppendOnlyViolation`] | scrubbing a log file (truncate/overwrite below the high-water mark) |
//! | [`ForeignClient`] | stolen credentials used from a different client machine |
//! | [`RansomStorm`] | mass overwrite/shrink across many objects in a short window |
//! | [`WriteRateSpike`] | write throughput far above the principal's learned baseline |
//! | [`AclTamperBurst`] | bursts of ACL changes, denials, and attr tampering |
//! | [`AuditGapCheck`] | non-monotonic audit stream (records missing or reordered) |

use std::collections::{HashMap, HashSet, VecDeque};

use s4_clock::{SimDuration, SimTime};
use s4_core::{AuditRecord, OpKind};

use crate::alert::{Alert, Severity};
use crate::detector::Detector;
use crate::timeline::{is_mutation, write_bytes, ObjectProfile, ProfileEvent};

fn alert(rec: &AuditRecord, severity: Severity, rule: &str, message: String) -> Alert {
    Alert {
        time: rec.time,
        severity,
        rule: rule.to_string(),
        user: rec.user,
        client: rec.client,
        object: rec.object,
        message,
    }
}

// ---------------------------------------------------------------------
// Append-only violation (log scrubbing).
// ---------------------------------------------------------------------

/// Flags destruction of data in objects that have behaved append-only —
/// the classic "intruders scrub the system log" move of §2.1. An object
/// qualifies after [`min_appends`](Self::min_appends) strictly-appending
/// mutations with no prior overwrite; directory blobs disqualify
/// themselves immediately (their entry count at offset 0 is rewritten
/// on every update), and deletes are deliberately *not* violations —
/// a deleted log is trivially recovered from the history pool, while a
/// scrubbed-in-place one is what the audit log exists to catch.
pub struct AppendOnlyViolation {
    /// Appending mutations required before an object qualifies.
    pub min_appends: u32,
    profiles: HashMap<u64, ObjectProfile>,
}

impl AppendOnlyViolation {
    /// Default thresholds.
    pub fn new() -> Self {
        AppendOnlyViolation {
            min_appends: 2,
            profiles: HashMap::new(),
        }
    }
}

impl Default for AppendOnlyViolation {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for AppendOnlyViolation {
    fn name(&self) -> &'static str {
        "append-only-violation"
    }

    fn observe(&mut self, rec: &AuditRecord, sink: &mut Vec<Alert>) {
        if !rec.ok || rec.object.0 == 0 {
            return;
        }
        match rec.op {
            OpKind::Create => {
                self.profiles.insert(rec.object.0, ObjectProfile::default());
            }
            OpKind::Delete => {
                self.profiles.remove(&rec.object.0);
            }
            OpKind::Write | OpKind::Append | OpKind::Truncate => {
                let p = self.profiles.entry(rec.object.0).or_default();
                if let ProfileEvent::Destructive { first: true } = p.observe(rec, self.min_appends)
                {
                    sink.push(alert(
                        rec,
                        Severity::Critical,
                        "append-only-violation",
                        format!(
                            "{:?} destroyed data in an object with {} strictly-appending \
                             mutations (log-scrub shape)",
                            rec.op, p.appends
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Foreign client (stolen credentials).
// ---------------------------------------------------------------------

/// Flags a user mutating objects from a client machine other than the
/// one their history established — §3.2's point that audit records name
/// the *client machine*, bounding damage from a single compromised
/// host. The home client is learned from the user's first
/// [`min_home_ops`](Self::min_home_ops) requests; mutations from
/// anywhere else then raise one warning per `(client, object)` pair.
pub struct ForeignClient {
    /// Requests from the home client required before alerting.
    pub min_home_ops: u64,
    homes: HashMap<u32, (u32, u64)>,
    reported: HashSet<(u32, u32, u64)>,
}

impl ForeignClient {
    /// Default thresholds.
    pub fn new() -> Self {
        ForeignClient {
            min_home_ops: 8,
            homes: HashMap::new(),
            reported: HashSet::new(),
        }
    }
}

impl Default for ForeignClient {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for ForeignClient {
    fn name(&self) -> &'static str {
        "foreign-client"
    }

    fn observe(&mut self, rec: &AuditRecord, sink: &mut Vec<Alert>) {
        let (home, ops) = self
            .homes
            .entry(rec.user.0)
            .or_insert((rec.client.0, 0));
        if *home == rec.client.0 {
            *ops += 1;
            return;
        }
        if *ops < self.min_home_ops || !rec.ok || !is_mutation(rec.op) {
            return;
        }
        let home = *home;
        if self
            .reported
            .insert((rec.user.0, rec.client.0, rec.object.0))
        {
            sink.push(alert(
                rec,
                Severity::Warning,
                "foreign-client",
                format!(
                    "user {} (home client {}) issued {:?} from client {} — stolen credentials?",
                    rec.user.0, home, rec.op, rec.client.0
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Ransomware-shaped overwrite storm.
// ---------------------------------------------------------------------

/// Flags many *distinct* objects being overwritten or shrunk inside a
/// short window — the encrypt-in-place ransomware shape. Pure mass
/// deletion deliberately does not alarm: deleted objects remain fully
/// recoverable inside the detection window (§3.1), whereas overwrites
/// consume history-pool space and signal data replacement.
pub struct RansomStorm {
    /// Sliding window length.
    pub window: SimDuration,
    /// Distinct destructively-modified objects that trip the alarm.
    pub threshold: usize,
    profiles: HashMap<u64, ObjectProfile>,
    events: VecDeque<(SimTime, u64)>,
    // Multiplicity of each object in `events`, kept incrementally so
    // the distinct count is O(1) per record (the window can span the
    // whole run when simulated time moves slowly).
    in_window: HashMap<u64, u32>,
}

impl RansomStorm {
    /// Default thresholds.
    pub fn new() -> Self {
        RansomStorm {
            window: SimDuration::from_secs(60),
            threshold: 24,
            profiles: HashMap::new(),
            events: VecDeque::new(),
            in_window: HashMap::new(),
        }
    }
}

impl Default for RansomStorm {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for RansomStorm {
    fn name(&self) -> &'static str {
        "ransom-storm"
    }

    fn observe(&mut self, rec: &AuditRecord, sink: &mut Vec<Alert>) {
        if !rec.ok || rec.object.0 == 0 {
            return;
        }
        match rec.op {
            OpKind::Create => {
                self.profiles.insert(rec.object.0, ObjectProfile::default());
                return;
            }
            OpKind::Delete => {
                self.profiles.remove(&rec.object.0);
                return;
            }
            OpKind::Write | OpKind::Append | OpKind::Truncate => {}
            _ => return,
        }
        let p = self.profiles.entry(rec.object.0).or_default();
        if !matches!(p.observe(rec, u32::MAX), ProfileEvent::Destructive { .. }) {
            return;
        }
        self.events.push_back((rec.time, rec.object.0));
        *self.in_window.entry(rec.object.0).or_insert(0) += 1;
        while let Some(&(t, o)) = self.events.front() {
            if rec.time.saturating_since(t) > self.window {
                self.events.pop_front();
                if let Some(n) = self.in_window.get_mut(&o) {
                    *n -= 1;
                    if *n == 0 {
                        self.in_window.remove(&o);
                    }
                }
            } else {
                break;
            }
        }
        if self.in_window.len() >= self.threshold {
            sink.push(alert(
                rec,
                Severity::Critical,
                "ransom-storm",
                format!(
                    "{} distinct objects overwritten or shrunk within {:.0}s",
                    self.in_window.len(),
                    self.window.as_secs_f64()
                ),
            ));
            // Rearm rather than alert per record.
            self.events.clear();
            self.in_window.clear();
        }
    }
}

// ---------------------------------------------------------------------
// Write-rate spike.
// ---------------------------------------------------------------------

struct RateState {
    window_start: SimTime,
    bytes: u64,
    baseline: Option<f64>,
    alerted: bool,
}

/// Flags a principal writing far above their own learned baseline —
/// the same per-principal byte accounting the §3.3 throttle uses, but
/// as a detector instead of a brake. The first active window only
/// trains the baseline; subsequent windows alarm when they exceed
/// `factor ×` the exponential moving average (with an absolute floor so
/// modest workloads never alarm).
pub struct WriteRateSpike {
    /// Accounting window length.
    pub window: SimDuration,
    /// Multiple of the baseline that trips the alarm.
    pub factor: u64,
    /// Bytes below which a window never alarms, whatever the baseline.
    pub min_bytes: u64,
    state: HashMap<(u32, u32), RateState>,
}

impl WriteRateSpike {
    /// Default thresholds.
    pub fn new() -> Self {
        WriteRateSpike {
            window: SimDuration::from_secs(10),
            factor: 8,
            min_bytes: 8 << 20,
            state: HashMap::new(),
        }
    }
}

impl Default for WriteRateSpike {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for WriteRateSpike {
    fn name(&self) -> &'static str {
        "write-rate-spike"
    }

    fn observe(&mut self, rec: &AuditRecord, sink: &mut Vec<Alert>) {
        if !rec.ok {
            return;
        }
        let b = write_bytes(rec);
        if b == 0 {
            return;
        }
        let st = self
            .state
            .entry((rec.user.0, rec.client.0))
            .or_insert(RateState {
                window_start: rec.time,
                bytes: 0,
                baseline: None,
                alerted: false,
            });
        if rec.time.saturating_since(st.window_start) >= self.window {
            // Fold the completed window into the baseline. Idle windows
            // are skipped so a quiet hour does not erode it.
            let done = st.bytes as f64;
            st.baseline = Some(match st.baseline {
                None => done,
                Some(ema) => 0.75 * ema + 0.25 * done,
            });
            st.window_start = rec.time;
            st.bytes = 0;
            st.alerted = false;
        }
        st.bytes += b;
        if st.alerted {
            return;
        }
        if let Some(ema) = st.baseline {
            let threshold = (self.factor as f64 * ema).max(self.min_bytes as f64);
            if st.bytes as f64 > threshold {
                st.alerted = true;
                sink.push(alert(
                    rec,
                    Severity::Warning,
                    "write-rate-spike",
                    format!(
                        "{} bytes written in the current {:.0}s window vs baseline {:.0}",
                        st.bytes,
                        self.window.as_secs_f64(),
                        ema
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// ACL / attribute tampering burst.
// ---------------------------------------------------------------------

/// Flags bursts of permission fiddling: successful ACL changes, denied
/// requests of any kind, and attribute rewrites on long-established
/// objects. Attribute writes right after creation are the file server
/// initializing metadata and are ignored.
pub struct AclTamperBurst {
    /// Sliding window length.
    pub window: SimDuration,
    /// Tamper-shaped events in the window that trip the alarm.
    pub threshold: usize,
    /// Object age below which `SetAttr` is considered initialization.
    pub grace: SimDuration,
    created_at: HashMap<u64, SimTime>,
    events: HashMap<(u32, u32), VecDeque<SimTime>>,
}

impl AclTamperBurst {
    /// Default thresholds.
    pub fn new() -> Self {
        AclTamperBurst {
            window: SimDuration::from_secs(60),
            threshold: 6,
            grace: SimDuration::from_secs(60),
            created_at: HashMap::new(),
            events: HashMap::new(),
        }
    }

    fn is_tamper(&self, rec: &AuditRecord) -> bool {
        if !rec.ok {
            return true; // any denial counts
        }
        match rec.op {
            OpKind::SetAcl => true,
            OpKind::SetAttr => match self.created_at.get(&rec.object.0) {
                // Unknown creation time = predates monitoring = established.
                None => true,
                Some(&t) => rec.time.saturating_since(t) > self.grace,
            },
            _ => false,
        }
    }
}

impl Default for AclTamperBurst {
    fn default() -> Self {
        Self::new()
    }
}

impl Detector for AclTamperBurst {
    fn name(&self) -> &'static str {
        "acl-tamper-burst"
    }

    fn observe(&mut self, rec: &AuditRecord, sink: &mut Vec<Alert>) {
        if rec.ok && rec.op == OpKind::Create {
            self.created_at.insert(rec.object.0, rec.time);
            return;
        }
        if !self.is_tamper(rec) {
            return;
        }
        let q = self.events.entry((rec.user.0, rec.client.0)).or_default();
        q.push_back(rec.time);
        while let Some(&t) = q.front() {
            if rec.time.saturating_since(t) > self.window {
                q.pop_front();
            } else {
                break;
            }
        }
        if q.len() >= self.threshold {
            q.clear(); // rearm
            sink.push(alert(
                rec,
                Severity::Warning,
                "acl-tamper-burst",
                format!(
                    "{} ACL changes / denials / attr rewrites within {:.0}s",
                    self.threshold,
                    self.window.as_secs_f64()
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Audit coverage gap.
// ---------------------------------------------------------------------

/// Flags a non-monotonic audit stream. The drive appends records in
/// dispatch order under a single clock, so time ever moving backwards
/// means records were lost, reordered, or spliced — a coverage gap.
/// (Whole-tail loss across a crash is caught offline by
/// [`audit_coverage`](crate::forensics::audit_coverage), which compares
/// the decodable record count against the drive's append counter.)
#[derive(Default)]
pub struct AuditGapCheck {
    last: Option<SimTime>,
}

impl AuditGapCheck {
    /// New streaming check.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Detector for AuditGapCheck {
    fn name(&self) -> &'static str {
        "audit-gap"
    }

    fn observe(&mut self, rec: &AuditRecord, sink: &mut Vec<Alert>) {
        if let Some(last) = self.last {
            if rec.time < last {
                sink.push(alert(
                    rec,
                    Severity::Critical,
                    "audit-gap",
                    format!("audit time went backwards ({last} then {})", rec.time),
                ));
            }
        }
        self.last = Some(self.last.unwrap_or(rec.time).max(rec.time));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4_core::{ClientId, ObjectId, UserId};

    #[allow(clippy::too_many_arguments)]
    fn rec_at(
        secs: u64,
        user: u32,
        client: u32,
        op: OpKind,
        ok: bool,
        object: u64,
        arg1: u64,
        arg2: u64,
    ) -> AuditRecord {
        AuditRecord {
            time: SimTime::from_secs(secs),
            user: UserId(user),
            client: ClientId(client),
            op,
            ok,
            object: ObjectId(object),
            arg1,
            arg2,
        }
    }

    #[test]
    fn append_only_rule_fires_on_log_scrub() {
        let mut d = AppendOnlyViolation::new();
        let mut sink = Vec::new();
        d.observe(&rec_at(1, 1, 1, OpKind::Create, true, 9, 0, 0), &mut sink);
        d.observe(&rec_at(2, 1, 1, OpKind::Write, true, 9, 0, 40), &mut sink);
        d.observe(&rec_at(3, 1, 1, OpKind::Append, true, 9, 30, 0), &mut sink);
        assert!(sink.is_empty());
        d.observe(&rec_at(4, 1, 66, OpKind::Truncate, true, 9, 0, 0), &mut sink);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].rule, "append-only-violation");
        assert_eq!(sink[0].object, ObjectId(9));
        assert_eq!(sink[0].severity, Severity::Critical);
    }

    #[test]
    fn append_only_rule_ignores_scratch_files() {
        let mut d = AppendOnlyViolation::new();
        let mut sink = Vec::new();
        // Overwritten from the start: never qualifies.
        d.observe(&rec_at(1, 1, 1, OpKind::Create, true, 3, 0, 0), &mut sink);
        d.observe(&rec_at(2, 1, 1, OpKind::Write, true, 3, 0, 40), &mut sink);
        d.observe(&rec_at(3, 1, 1, OpKind::Write, true, 3, 0, 40), &mut sink);
        d.observe(&rec_at(4, 1, 1, OpKind::Truncate, true, 3, 0, 0), &mut sink);
        assert!(sink.is_empty());
    }

    #[test]
    fn foreign_client_needs_a_learned_home() {
        let mut d = ForeignClient::new();
        let mut sink = Vec::new();
        // Only 3 home ops: a foreign mutation stays silent.
        for s in 0..3 {
            d.observe(&rec_at(s, 7, 1, OpKind::Read, true, 2, 0, 0), &mut sink);
        }
        d.observe(&rec_at(5, 7, 9, OpKind::Write, true, 2, 0, 10), &mut sink);
        assert!(sink.is_empty());
        // Establish the home properly, then mutate from elsewhere.
        for s in 0..8 {
            d.observe(&rec_at(10 + s, 7, 1, OpKind::Read, true, 2, 0, 0), &mut sink);
        }
        d.observe(&rec_at(30, 7, 9, OpKind::Write, true, 2, 0, 10), &mut sink);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].rule, "foreign-client");
        // Same (client, object) pair does not repeat-alert.
        d.observe(&rec_at(31, 7, 9, OpKind::Write, true, 2, 0, 10), &mut sink);
        assert_eq!(sink.len(), 1);
        // A different object does.
        d.observe(&rec_at(32, 7, 9, OpKind::Delete, true, 4, 0, 0), &mut sink);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn ransom_storm_fires_on_mass_overwrite_not_mass_delete() {
        let mut d = RansomStorm::new();
        let mut sink = Vec::new();
        // Mass delete: silent (recoverable in the window).
        for o in 100..200 {
            d.observe(&rec_at(1, 1, 1, OpKind::Delete, true, o, 0, 0), &mut sink);
        }
        assert!(sink.is_empty());
        // Mass in-place overwrite: encrypt-in-place shape.
        for o in 200..240 {
            d.observe(&rec_at(2, 1, 1, OpKind::Write, true, o, 0, 100), &mut sink);
            d.observe(&rec_at(2, 1, 1, OpKind::Write, true, o, 0, 100), &mut sink);
        }
        assert!(!sink.is_empty());
        assert_eq!(sink[0].rule, "ransom-storm");
    }

    #[test]
    fn write_rate_spike_learns_then_alerts() {
        let mut d = WriteRateSpike::new();
        d.min_bytes = 1000; // small floor for the test
        let mut sink = Vec::new();
        // Window 1 (learning): 400 bytes.
        for s in 0..4 {
            d.observe(&rec_at(s, 1, 1, OpKind::Write, true, 5, 0, 100), &mut sink);
        }
        // Window 2: similar volume — quiet.
        for s in 10..14 {
            d.observe(&rec_at(s, 1, 1, OpKind::Write, true, 5, 0, 100), &mut sink);
        }
        assert!(sink.is_empty());
        // Window 3: 100x the baseline.
        for s in 20..24 {
            d.observe(&rec_at(s, 1, 1, OpKind::Write, true, 5, 0, 10_000), &mut sink);
        }
        assert_eq!(sink.len(), 1, "alerts once, not per record");
        assert_eq!(sink[0].rule, "write-rate-spike");
    }

    #[test]
    fn acl_burst_ignores_initialization_setattr() {
        let mut d = AclTamperBurst::new();
        let mut sink = Vec::new();
        // create+setattr pairs, the file-server shape: quiet.
        for o in 0..20 {
            d.observe(&rec_at(o, 1, 1, OpKind::Create, true, 50 + o, 0, 0), &mut sink);
            d.observe(&rec_at(o, 1, 1, OpKind::SetAttr, true, 50 + o, 3, 0), &mut sink);
        }
        assert!(sink.is_empty());
        // A burst of denials trips it.
        for s in 100..106 {
            d.observe(&rec_at(s, 6, 6, OpKind::Read, false, 50, 0, 0), &mut sink);
        }
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].rule, "acl-tamper-burst");
    }

    #[test]
    fn audit_gap_flags_time_reversal() {
        let mut d = AuditGapCheck::new();
        let mut sink = Vec::new();
        d.observe(&rec_at(10, 1, 1, OpKind::Sync, true, 0, 0, 0), &mut sink);
        d.observe(&rec_at(11, 1, 1, OpKind::Sync, true, 0, 0, 0), &mut sink);
        assert!(sink.is_empty());
        d.observe(&rec_at(5, 1, 1, OpKind::Sync, true, 0, 0, 0), &mut sink);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink[0].rule, "audit-gap");
    }
}
